"""Tests for lowering configurations to hardware state (Section V-E)."""

import pytest

from repro.arch.accelerator import morph, morph_base
from repro.core.dims import DataType, Dim
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import TileShape
from repro.optimizer.schedule import LayerProgram, lower, program_boundary
from repro.optimizer.search import LayerOptimizer, OptimizerOptions

LAYER = ConvLayer(
    "sched", h=14, w=14, c=64, f=4, k=64, r=3, s=3, t=3,
    pad_h=1, pad_w=1, pad_f=1,
)


@pytest.fixture(scope="module")
def evaluation():
    return LayerOptimizer(morph(), OptimizerOptions.fast()).optimize(LAYER).best


@pytest.fixture(scope="module")
def program(evaluation) -> LayerProgram:
    return lower(evaluation)


class TestBoundaryProgram:
    def test_fsm_walks_every_tile(self):
        parent = TileShape(w=8, h=8, c=16, k=8, f=4)
        child = TileShape(w=4, h=2, c=16, k=4, f=2)
        prog = program_boundary(
            "b", parent, child, LoopOrder.parse("WHCKF").dims
        )
        trips = parent.trip_counts(child)
        expected = 1
        for dim in Dim:
            expected *= trips[dim]
        assert prog.fsm.total_states == expected

    def test_origins_unique_per_tile(self):
        """Each FSM state addresses a distinct tile origin."""
        parent = TileShape(w=8, h=8, c=16, k=8, f=4)
        child = TileShape(w=4, h=2, c=16, k=4, f=2)
        prog = program_boundary("b", parent, child, LoopOrder.parse("WHCKF").dims)
        origins = prog.origins()
        assert len(origins) == len(set(origins))

    def test_degenerate_loops_removed(self):
        parent = TileShape(w=8, h=8, c=16, k=8, f=4)
        child = TileShape(w=8, h=8, c=16, k=4, f=4)  # only K tiled
        prog = program_boundary("b", parent, child, LoopOrder.parse("WHCKF").dims)
        assert prog.dims == (Dim.K,)
        assert prog.fsm.total_states == 2

    def test_innermost_loop_strides_child_extent(self):
        """Consecutive addresses along the innermost loop step by the
        child tile's linearised size in that dim."""
        parent = TileShape(w=4, h=1, c=1, k=1, f=1)
        child = TileShape(w=2, h=1, c=1, k=1, f=1)
        prog = program_boundary("b", parent, child, LoopOrder.parse("HCKFW").dims)
        origins = prog.origins()
        # W stride in [W,H,C,K,F] row-major linearisation of (4,1,1,1,1)
        assert origins == [0, 2]

    def test_tile_done_fires_once(self):
        parent = TileShape(w=8, h=8, c=16, k=8, f=4)
        child = TileShape(w=4, h=4, c=16, k=8, f=4)
        prog = program_boundary("b", parent, child, LoopOrder.parse("WHCKF").dims)
        events = [s.events for s in prog.fsm.states()]
        assert sum("tile_done" in e for e in events) == 1


class TestLayerProgram:
    def test_bank_assignment_per_flexible_level(self, program, evaluation):
        arch = evaluation.arch
        assert len(program.bank_assignments) == arch.num_levels
        for level, assignment in zip(arch.levels, program.bank_assignments):
            assert assignment is not None
            assert sum(assignment.values()) <= level.banks

    def test_bank_assignment_covers_tiles(self, program, evaluation):
        layer = evaluation.layer
        arch = evaluation.arch
        for index, assignment in enumerate(program.bank_assignments):
            tile = evaluation.dataflow.hierarchy.tiles[index]
            for data_type in DataType:
                needed = tile.bytes_of(data_type, layer, arch.precision)
                granted = assignment[data_type] * arch.levels[index].bank_bytes
                assert granted >= needed

    def test_static_machine_needs_no_bank_state(self):
        base_ev = (
            LayerOptimizer(morph_base(), OptimizerOptions.fast())
            .optimize(LAYER)
            .best
        )
        base_prog = lower(base_ev)
        assert all(a is None for a in base_prog.bank_assignments)

    def test_one_program_per_boundary(self, program, evaluation):
        assert len(program.boundary_programs) == evaluation.arch.num_levels

    def test_fsm_state_count_matches_schedule(self, program, evaluation):
        """The outer FSM walks exactly the L2-tile schedule."""
        layer = evaluation.layer
        tile = evaluation.dataflow.hierarchy.outermost
        trips = TileShape.full(layer).trip_counts(tile)
        expected = 1
        for dim in Dim:
            expected *= trips[dim]
        assert program.boundary_programs[0].fsm.total_states == expected

    def test_masks_match_parallelism(self, program, evaluation):
        arch = evaluation.arch
        assert program.pe_mask.fanout <= arch.pes_per_cluster
        assert program.cluster_mask.fanout <= arch.clusters
        assert program.last_round_mask.fanout <= program.pe_mask.fanout
