"""The serving contract (docs/INVARIANTS.md): coalescing, quotas,
backpressure, deadline SLOs, bit-identity and clean shutdown.

The deterministic levers: the injectable serve clock
(:mod:`repro.serve.clock`) freezes quota refill and deadline mapping; a
gate network (an object whose ``layers`` property blocks on an event)
pins requests in-flight for backpressure/shutdown tests; and the
optimizer's in-flight table is exercised directly (claim/join/publish)
for the coalescing unit tests, so no assertion rides on scheduler
timing.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading

import pytest

import repro.optimizer.engine as eng_mod
from repro.api import Session, SessionConfig
from repro.arch.accelerator import morph
from repro.core.layer import ConvLayer
from repro.optimizer.engine import (
    OptimizerEngine,
    _inflight_claim,
    _inflight_publish,
    _search_one,
    inflight_searches,
    reset_engine_defaults,
    search_signature,
    signature_key,
)
from repro.optimizer.search import OptimizerOptions, clear_cache
from repro.serve import (
    ServeConfig,
    ServeRejected,
    ServeRequest,
    use_clock,
)
from repro.serve.protocol import decode_request, encode_response

TINY = OptimizerOptions.fast(
    max_l2_candidates=2,
    keep_allocations=1,
    keep_per_level=2,
    max_parallelism_candidates=1,
)

LAYER = ConvLayer("serve-a", h=14, w=14, c=16, f=4, k=32, r=3, s=3, t=3,
                  pad_h=1, pad_w=1, pad_f=1)
LAYER_B = ConvLayer("serve-b", h=7, w=7, c=32, f=4, k=32, r=3, s=3, t=3,
                    pad_h=1, pad_w=1, pad_f=1)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_cache()
    reset_engine_defaults()
    yield
    clear_cache()
    reset_engine_defaults()


def run(coro):
    return asyncio.run(coro)


class _FakeClock:
    """A hand-advanced serve clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, ms: float) -> None:
        self.now += ms


class _GateNetwork:
    """A network whose layer list blocks until released — pins the
    owning request in its worker slot deterministically."""

    name = "gated"

    def __init__(self, layers=(LAYER,)) -> None:
        self._layers = tuple(layers)
        self.entered = threading.Event()
        self.release = threading.Event()

    @property
    def layers(self):
        self.entered.set()
        assert self.release.wait(timeout=60), "gate never released"
        return self._layers


# ----------------------------------------------------------------------
# In-flight coalescing at the engine level (deterministic claim/join)
# ----------------------------------------------------------------------
class TestInflightTable:
    def _key(self, engine: OptimizerEngine, layer: ConvLayer) -> str:
        return signature_key(
            search_signature(layer, engine.arch, engine.options)
        )

    def test_claim_then_join_then_publish(self, morph_arch):
        engine = OptimizerEngine(morph_arch, TINY, cache_dir=False)
        key = self._key(engine, LAYER)
        entry, owned = _inflight_claim(key)
        assert owned
        assert inflight_searches() == 1
        again, owned_again = _inflight_claim(key)
        assert again is entry and not owned_again
        result = _search_one((LAYER, engine.arch, engine.options))
        _inflight_publish(key, entry, result)
        assert inflight_searches() == 0
        assert entry.wait(1.0) is result
        # a post-publish claim starts fresh
        fresh, owned_fresh = _inflight_claim(key)
        assert owned_fresh and fresh is not entry
        _inflight_publish(key, fresh, result)

    def test_joiner_subscribes_to_published_result(
        self, morph_arch, monkeypatch
    ):
        """While one search is in flight, a second engine requesting the
        same signature subscribes instead of searching again."""
        engine = OptimizerEngine(morph_arch, TINY, cache_dir=False)
        key = self._key(engine, LAYER)
        entry, owned = _inflight_claim(key)  # we are the in-flight owner
        assert owned

        joined = threading.Event()
        real_claim = _inflight_claim

        def spy(claim_key):
            inner_entry, inner_owned = real_claim(claim_key)
            if not inner_owned:
                joined.set()
            return inner_entry, inner_owned

        monkeypatch.setattr(eng_mod, "_inflight_claim", spy)
        outcome: dict = {}

        def subscribe():
            outcome["results"] = engine.optimize_layers((LAYER,))

        worker = threading.Thread(target=subscribe)
        worker.start()
        assert joined.wait(timeout=60), "engine never joined the claim"
        shared = _search_one((LAYER, engine.arch, engine.options))
        _inflight_publish(key, entry, shared)
        worker.join(timeout=60)
        assert outcome["results"][0] == shared
        assert engine.stats.coalesced == 1
        assert engine.stats.searched == 0

    def test_publish_error_falls_back_to_own_search(
        self, morph_arch, monkeypatch
    ):
        """An owner that dies publishes its error; subscribers run the
        search themselves instead of hanging or re-raising."""
        engine = OptimizerEngine(morph_arch, TINY, cache_dir=False)
        key = self._key(engine, LAYER)
        entry, owned = _inflight_claim(key)
        assert owned

        joined = threading.Event()
        real_claim = _inflight_claim

        def spy(claim_key):
            inner_entry, inner_owned = real_claim(claim_key)
            if not inner_owned:
                joined.set()
            return inner_entry, inner_owned

        monkeypatch.setattr(eng_mod, "_inflight_claim", spy)
        outcome: dict = {}

        def subscribe():
            outcome["results"] = engine.optimize_layers((LAYER,))

        worker = threading.Thread(target=subscribe)
        worker.start()
        assert joined.wait(timeout=60)
        _inflight_publish(key, entry, None, RuntimeError("owner died"))
        worker.join(timeout=60)
        assert outcome["results"][0].best.total_energy_pj > 0
        assert engine.stats.coalesced == 0
        assert engine.stats.searched == 1

    def test_coalesce_opt_out_ignores_inflight_claims(self, morph_arch):
        """coalesce_inflight=False searches even while an identical
        search is claimed elsewhere (and never blocks on it)."""
        engine = OptimizerEngine(
            morph_arch, TINY, cache_dir=False, use_cache=False,
            coalesce_inflight=False,
        )
        key = self._key(engine, LAYER)
        entry, owned = _inflight_claim(key)
        assert owned
        try:
            results = engine.optimize_layers((LAYER,))
            assert engine.stats.searched == 1
            assert engine.stats.coalesced == 0
            assert results[0].best.total_energy_pj > 0
        finally:
            _inflight_publish(key, entry, None)

    def test_budgeted_engine_never_claims(self, morph_arch):
        """A deadline-bounded search is a request-specific prefix: it
        must neither claim (sharing it would violate the anytime
        contract) nor join (it cannot wait out its own budget)."""
        engine = OptimizerEngine(
            morph_arch, TINY, cache_dir=False, use_cache=False,
            budget_ms=0.0,
        )
        result = engine.optimize_layers((LAYER,))[0]
        assert inflight_searches() == 0
        assert result.budget_exhausted
        assert engine.stats.searched == 1

    def test_owner_search_failure_releases_waiters(
        self, morph_arch, monkeypatch
    ):
        """If the owning engine's search raises, subscribers get the
        error published and fall back instead of waiting forever."""
        engine_a = OptimizerEngine(morph_arch, TINY, cache_dir=False)
        engine_b = OptimizerEngine(morph_arch, TINY, cache_dir=False)
        key = self._key(engine_a, LAYER)

        joined = threading.Event()
        real_claim = _inflight_claim

        def spy(claim_key):
            inner_entry, inner_owned = real_claim(claim_key)
            if not inner_owned:
                joined.set()
            return inner_entry, inner_owned

        real_search = _search_one

        def failing_search(payload):
            assert joined.wait(timeout=60)  # hold until B subscribed
            raise RuntimeError("search exploded")

        outcome: dict = {}

        def owner():
            monkeypatch.setattr(eng_mod, "_search_one", failing_search)
            try:
                engine_a.optimize_layers((LAYER,))
            except RuntimeError as error:
                outcome["owner_error"] = error
            finally:
                monkeypatch.setattr(eng_mod, "_search_one", real_search)

        def subscriber():
            monkeypatch.setattr(eng_mod, "_inflight_claim", spy)
            outcome["results"] = engine_b.optimize_layers((LAYER,))

        thread_a = threading.Thread(target=owner)
        thread_a.start()
        # Wait for A to hold the claim before B tries it.
        for _ in range(600):
            if inflight_searches() == 1:
                break
            threading.Event().wait(0.01)
        assert inflight_searches() == 1
        thread_b = threading.Thread(target=subscriber)
        thread_b.start()
        thread_a.join(timeout=60)
        thread_b.join(timeout=60)
        assert isinstance(outcome.get("owner_error"), RuntimeError)
        assert outcome["results"][0].best.total_energy_pj > 0
        assert engine_b.stats.searched == 1


# ----------------------------------------------------------------------
# ServeConfig resolution
# ----------------------------------------------------------------------
class TestServeConfig:
    def test_env_materialisation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "9")
        monkeypatch.setenv("REPRO_SERVE_TENANT_RATE", "2.5")
        monkeypatch.setenv("REPRO_SERVE_COALESCE", "off")
        config = ServeConfig.from_env()
        assert config.max_workers == 9
        assert config.tenant_rate == 2.5
        assert config.coalesce is False
        assert config.max_queue_depth is None

    @pytest.mark.parametrize(
        "variable, value",
        [
            ("REPRO_SERVE_WORKERS", "many"),
            ("REPRO_SERVE_WORKERS", "0"),
            ("REPRO_SERVE_QUEUE_DEPTH", "-1"),
            ("REPRO_SERVE_TENANT_RATE", "0"),
            ("REPRO_SERVE_TENANT_BURST", "0.5"),
            ("REPRO_SERVE_COALESCE", "maybe"),
            ("REPRO_SERVE_DEADLINE_MS", "-5"),
        ],
    )
    def test_env_strict_parsing_names_variable(
        self, monkeypatch, variable, value
    ):
        monkeypatch.setenv(variable, value)
        with pytest.raises(ValueError, match=variable):
            ServeConfig.from_env()

    def test_resolve_precedence_explicit_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "9")
        monkeypatch.setenv("REPRO_SERVE_QUEUE_DEPTH", "5")
        config = ServeConfig.resolve(max_workers=2)
        assert config.max_workers == 2  # explicit wins
        assert config.max_queue_depth == 5  # env fills the rest

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ServeConfig"):
            ServeConfig.from_dict({"max_werkers": 4})

    def test_validation(self):
        with pytest.raises(ValueError, match="max_workers"):
            ServeConfig(max_workers=0)
        with pytest.raises(ValueError, match="tenant_rate"):
            ServeConfig(tenant_rate=-1.0)
        with pytest.raises(ValueError, match="deadline"):
            ServeConfig(default_deadline_ms=-1.0)

    def test_effective_defaults(self):
        config = ServeConfig()
        assert config.effective_max_workers == 4
        assert config.effective_max_queue_depth == 64
        assert config.effective_coalesce is True
        assert config.tenant_rate is None  # unlimited by default


# ----------------------------------------------------------------------
# The serving engine
# ----------------------------------------------------------------------
class TestServeEngine:
    def test_coalescing_eight_clients_one_search_per_signature(self):
        """The acceptance criterion: 8 concurrent clients requesting
        overlapping networks perform exactly one engine search per
        unique search signature, and every served result is bit-identical
        to the direct Session.optimize_network call."""
        arch = morph()
        session = Session(use_cache=True)
        net = session.build_network("c3d")

        # Ground truth (also the unique-signature count), then wipe the
        # caches so serving does all the searching itself.
        probe = session.engine(arch, TINY)
        probe.optimize_layers(net.layers)
        unique = probe.stats.unique
        assert probe.stats.searched == unique
        direct = session.optimize_network(net, arch, TINY)
        clear_cache()

        async def drive():
            serve = session.serve(max_workers=8)
            requests = [
                ServeRequest(
                    network=net, tenant=f"tenant-{i}", arch=arch,
                    options=TINY,
                )
                for i in range(8)
            ]
            results = await asyncio.gather(
                *[serve.submit(r) for r in requests]
            )
            metrics = serve.metrics()
            await serve.aclose()
            return results, metrics

        results, metrics = run(drive())
        assert metrics.engine.searched == unique  # exactly one per signature
        # Every other resolution was shared: subscribed in-flight or
        # recalled from the memo another request populated.  Serving
        # resolves layer-by-layer, so the pool is one resolution per
        # layer occurrence per client.
        assert (
            metrics.engine.coalesced + metrics.engine.memo_hits
            == 8 * len(net.layers) - unique
        )
        assert metrics.completed == 8
        assert metrics.admitted == 8
        for served in results:
            assert served.result == direct  # bit-identical
        assert len({s.tenant for s in results}) == 8
        assert metrics.coalesce_rate == pytest.approx(
            metrics.engine.coalesced
            / (metrics.engine.coalesced + metrics.engine.searched)
        )

    def test_overlapping_mixed_networks_share_common_layers(self):
        """Two different request shapes with shared layers: the common
        signature is searched once across the whole mix."""
        arch = morph()
        session = Session(use_cache=True)
        shared = LAYER
        net_a = (shared, LAYER_B)
        net_b = (shared,)

        async def drive():
            serve = session.serve(max_workers=4)
            results = await asyncio.gather(
                serve.submit(ServeRequest(network=net_a, tenant="a",
                                          arch=arch, options=TINY)),
                serve.submit(ServeRequest(network=net_b, tenant="b",
                                          arch=arch, options=TINY)),
            )
            metrics = serve.metrics()
            await serve.aclose()
            return results, metrics

        (res_a, res_b), metrics = run(drive())
        assert metrics.engine.searched == 2  # LAYER and LAYER_B, once each
        assert res_a.result.layers[0].best.dataflow == \
            res_b.result.layers[0].best.dataflow
        assert res_a.result.layers[0].score == res_b.result.layers[0].score

    def test_streaming_yields_layers_incrementally(self):
        arch = morph()
        session = Session(use_cache=True)

        async def drive():
            serve = session.serve(max_workers=1)
            events = []
            async for event in serve.stream(
                ServeRequest(network=(LAYER, LAYER_B), arch=arch,
                             options=TINY)
            ):
                events.append(event)
            await serve.aclose()
            return events

        events = run(drive())
        kinds = [e.kind for e in events]
        assert kinds == ["layer", "layer", "result"]
        assert [e.index for e in events[:-1]] == [0, 1]
        assert all(e.total == 2 for e in events[:-1])
        assert events[0].layer_result.layer.name == "serve-a"
        final = events[-1].result
        assert final.result.layers == (
            events[0].layer_result, events[1].layer_result,
        )

    def test_quota_token_bucket_with_frozen_clock(self):
        """burst=2, rate=1 req/s under a hand-advanced clock: two
        admits, a rejection with an exact retry hint, then a refill."""
        arch = morph()
        session = Session(use_cache=True)
        clock = _FakeClock()

        async def drive():
            serve = session.serve(
                max_workers=2, tenant_rate=1.0, tenant_burst=2.0
            )
            request = ServeRequest(network=(LAYER,), tenant="metered",
                                   arch=arch, options=TINY)
            first = await serve.submit(request)
            second = await serve.submit(request)
            with pytest.raises(ServeRejected) as rejection:
                await serve.submit(request)
            assert rejection.value.reason == "quota"
            # Empty bucket at rate 0.001 tokens/ms: one token in 1000 ms.
            assert rejection.value.retry_after_ms == pytest.approx(1000.0)
            # An unrelated tenant has its own bucket.
            other = await serve.submit(
                dataclasses.replace(request, tenant="fresh")
            )
            # Refill restores service for the metered tenant.
            clock.advance(1000.0)
            third = await serve.submit(request)
            metrics = serve.metrics()
            await serve.aclose()
            return first, second, other, third, metrics

        with use_clock(clock):
            first, second, other, third, metrics = run(drive())
        assert first.result == second.result == third.result
        tenant = metrics.per_tenant["metered"]
        assert tenant.admitted == 3
        assert tenant.rejected_quota == 1
        assert metrics.per_tenant["fresh"].admitted == 1
        assert metrics.rejected_quota == 1
        assert metrics.admitted == 4

    def test_backpressure_rejects_with_retry_hint(self):
        """queue depth 1: while one request is pinned in flight, the
        next admission is rejected as backpressure, and the slot frees
        once the first completes."""
        arch = morph()
        session = Session(use_cache=True)
        gate = _GateNetwork()

        async def drive():
            serve = session.serve(max_workers=1, max_queue_depth=1)
            pinned = asyncio.ensure_future(
                serve.submit(ServeRequest(network=gate, tenant="a",
                                          arch=arch, options=TINY))
            )
            await asyncio.sleep(0)  # run admission of the pinned request
            await asyncio.to_thread(gate.entered.wait, 60)
            with pytest.raises(ServeRejected) as rejection:
                await serve.submit(
                    ServeRequest(network=(LAYER,), tenant="b",
                                 arch=arch, options=TINY)
                )
            assert rejection.value.reason == "backpressure"
            assert rejection.value.retry_after_ms is not None
            assert rejection.value.retry_after_ms > 0
            gate.release.set()
            first = await pinned
            second = await serve.submit(
                ServeRequest(network=(LAYER,), tenant="b", arch=arch,
                             options=TINY)
            )
            metrics = serve.metrics()
            await serve.aclose()
            return first, second, metrics

        first, second, metrics = run(drive())
        assert first.result.layers[0].best.dataflow == \
            second.result.layers[0].best.dataflow
        assert metrics.rejected_backpressure == 1
        assert metrics.per_tenant["b"].rejected_backpressure == 1
        assert metrics.peak_queue_depth == 1
        assert metrics.queue_depth == 0

    def test_deadline_maps_to_budget_and_never_caches(self):
        """A deadline-bounded request returns certified best-so-far
        results (bound_gap set, budget_exhausted) that are bit-identical
        to the direct budgeted call and enter no cache layer."""
        arch = morph()
        session = Session(use_cache=True)
        network = (LAYER, LAYER_B)
        # Direct ground truth: budget 0 stops each layer search at its
        # first block boundary, deterministically.
        direct = session.optimize_network(
            network, arch, TINY, budget_ms=0.0
        )
        assert all(r.budget_exhausted for r in direct.layers)
        assert eng_mod._LAYER_MEMO == {}  # exhausted results not cached

        async def drive():
            serve = session.serve(max_workers=2)
            served = await serve.submit(
                ServeRequest(network=network, arch=arch, options=TINY,
                             deadline_ms=0.0, tenant="slo")
            )
            metrics = serve.metrics()
            await serve.aclose()
            return served, metrics

        with use_clock(_FakeClock()):  # frozen: remaining deadline == 0
            served, metrics = run(drive())
        assert served.budget_exhausted
        assert served.result == direct  # bit-identical, prefixes included
        for layer_result in served.result.layers:
            assert layer_result.budget_exhausted
            assert layer_result.bound_gap is not None
            assert layer_result.bound_gap >= 0.0
        # The never-cache rule held across the serve path too.
        assert eng_mod._LAYER_MEMO == {}
        assert eng_mod._NETWORK_MEMO == {}
        assert inflight_searches() == 0
        assert metrics.engine.budget_exhausted == 2
        assert metrics.engine.coalesced == 0  # budgeted: never coalesced

    def test_default_deadline_from_serve_config(self):
        arch = morph()
        session = Session(use_cache=True)

        async def drive():
            serve = session.serve(max_workers=1, default_deadline_ms=0.0)
            served = await serve.submit(
                ServeRequest(network=(LAYER,), arch=arch, options=TINY)
            )
            await serve.aclose()
            return served

        with use_clock(_FakeClock()):
            served = run(drive())
        assert served.budget_exhausted
        assert eng_mod._LAYER_MEMO == {}

    def test_per_request_session_config_overlay(self, tmp_path):
        """A request's SessionConfig overlay is honoured (its cache_dir
        receives the record) without touching the base session."""
        arch = morph()
        session = Session(use_cache=True)
        overlay = SessionConfig(
            cache_dir=tmp_path / "request-store", cache_backend="local"
        )

        async def drive():
            serve = session.serve(max_workers=1)
            served = await serve.submit(
                ServeRequest(network=(LAYER,), arch=arch, options=TINY,
                             config=overlay)
            )
            await serve.aclose()
            return served

        served = run(drive())
        assert served.result.layers[0].best.total_energy_pj > 0
        records = list((tmp_path / "request-store").glob("*.json"))
        assert len(records) == 1  # the overlay's store got the record
        assert session.store() is None  # base session still storeless

    def test_clean_shutdown_with_inflight_request(self):
        """close() drains: the pinned request completes, new admissions
        are rejected as closed, and close() is safe to call twice."""
        arch = morph()
        session = Session(use_cache=True)
        gate = _GateNetwork()

        async def drive():
            serve = session.serve(max_workers=1)
            pinned = asyncio.ensure_future(
                serve.submit(ServeRequest(network=gate, arch=arch,
                                          options=TINY))
            )
            await asyncio.sleep(0)
            await asyncio.to_thread(gate.entered.wait, 60)
            closer = asyncio.ensure_future(asyncio.to_thread(session.close))
            await asyncio.sleep(0.05)
            assert not pinned.done()  # close() is draining, not cancelling
            gate.release.set()
            await closer
            served = await pinned  # the in-flight request completed
            with pytest.raises(ServeRejected) as rejection:
                await serve.submit(
                    ServeRequest(network=(LAYER,), arch=arch, options=TINY)
                )
            assert rejection.value.reason == "closed"
            session.close()  # idempotent: second close is a no-op
            metrics = serve.metrics()
            return served, metrics

        served, metrics = run(drive())
        assert served.result.layers[0].best.total_energy_pj > 0
        assert metrics.completed == 1
        assert metrics.rejected_closed == 1
        assert metrics.failed == 0

    def test_serve_engine_context_manager(self):
        arch = morph()
        session = Session(use_cache=True)

        async def drive():
            async with session.serve(max_workers=1) as serve:
                served = await serve.submit(
                    ServeRequest(network=(LAYER,), arch=arch, options=TINY)
                )
            assert serve.closed
            return served

        served = run(drive())
        assert served.result.layers[0].best.total_energy_pj > 0

    def test_request_failure_is_isolated_and_counted(self):
        session = Session(use_cache=True)

        async def drive():
            serve = session.serve(max_workers=1)
            with pytest.raises(KeyError):
                await serve.submit(
                    ServeRequest(network="no-such-network", options=TINY)
                )
            served = await serve.submit(
                ServeRequest(network=(LAYER,), arch=morph(), options=TINY)
            )
            metrics = serve.metrics()
            await serve.aclose()
            return served, metrics

        served, metrics = run(drive())
        assert served.result.layers[0].best.total_energy_pj > 0
        assert metrics.failed == 1
        assert metrics.completed == 1
        assert metrics.queue_depth == 0  # the failed slot was released

    def test_metrics_latency_percentiles_from_serve_clock(self):
        arch = morph()
        session = Session(use_cache=True)

        async def drive():
            serve = session.serve(max_workers=1)
            for _ in range(3):
                await serve.submit(
                    ServeRequest(network=(LAYER,), arch=arch, options=TINY)
                )
            metrics = serve.metrics()
            await serve.aclose()
            return metrics

        with use_clock(_FakeClock()):  # frozen clock: all latencies 0.0
            metrics = run(drive())
        assert metrics.latency_p50_ms == 0.0
        assert metrics.latency_p95_ms == 0.0
        assert metrics.latency_p99_ms == 0.0
        assert "coalesce rate" in metrics.describe()


# ----------------------------------------------------------------------
# Line-JSON protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_decode_optimize_request(self):
        request = decode_request(
            '{"network": "c3d", "tenant": "a", "deadline_ms": 5,'
            ' "request_id": "r1", "config": {"frames": 8}}'
        )
        assert isinstance(request, ServeRequest)
        assert request.network == "c3d"
        assert request.tenant == "a"
        assert request.deadline_ms == 5.0
        assert request.request_id == "r1"
        assert request.config.frames == 8

    def test_decode_control_ops(self):
        assert decode_request('{"op": "metrics"}') == "metrics"
        assert decode_request('{"op": "shutdown"}') == "shutdown"

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"op": "explode"}',
            '{"op": "optimize"}',
            '{"network": ""}',
        ],
    )
    def test_decode_rejects_malformed(self, line):
        with pytest.raises(ValueError):
            decode_request(line)

    def test_encode_response_is_stable_json(self):
        text = encode_response({"b": 1, "a": 2})
        assert text == '{"a": 2, "b": 1}'

    def test_serve_stdio_loop(self):
        """The stdio loop end to end, without a search: a malformed
        line answers ``bad-request``, a metrics probe answers live
        counters, an unknown network answers ``ok: false`` with the
        error, and the shutdown ack carries the settled final metrics
        (the live probe is racy by design — the ack is not)."""
        import io
        import json

        from repro.serve.protocol import serve_stdio

        stdin = io.StringIO(
            "not json\n"
            "\n"
            '{"op": "metrics"}\n'
            '{"network": "no-such-network", "request_id": "r1"}\n'
            '{"op": "shutdown"}\n'
        )
        stdout = io.StringIO()
        session = Session(use_cache=False)
        try:

            async def drive():
                return await serve_stdio(
                    session.serve(max_workers=1), stdin, stdout
                )

            served = run(drive())
        finally:
            session.close()
        assert served == 0
        responses = [
            json.loads(line)
            for line in stdout.getvalue().splitlines()
            if line
        ]
        bad, probe, error, bye = responses
        assert bad == {
            "ok": False,
            "reason": "bad-request",
            "error": bad["error"],
        }
        assert probe["op"] == "metrics" and probe["ok"]
        assert not error["ok"] and error["reason"] == "error"
        assert error["request_id"] == "r1"
        assert "no-such-network" in error["error"]
        assert bye["op"] == "shutdown" and bye["served"] == 0
        assert bye["metrics"]["failed"] == 1
        assert bye["metrics"]["searched"] == 0
