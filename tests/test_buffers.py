"""Unit tests for buffer levels and partitioning policies."""

import pytest

from repro.arch.buffers import (
    MORPH_BASE_L0_PARTITION,
    MORPH_BASE_L1_PARTITION,
    MORPH_BASE_L2_PARTITION,
    BufferLevel,
    FlexiblePartition,
    StaticPartition,
)
from repro.core.dims import DataType


class TestBufferLevel:
    def test_basic_properties(self):
        level = BufferLevel("L2", 1024 * 1024, banks=16)
        assert level.bank_bytes == 64 * 1024
        assert level.bank_kb == 64.0
        assert level.capacity_kb == 1024.0

    def test_double_buffering_halves_usable(self):
        """Section III footnote: 1 MB L2 bounds live tiles by 512 kB."""
        level = BufferLevel("L2", 1024 * 1024, banks=16)
        assert level.usable_bytes == 512 * 1024
        assert level.usable_banks == 8

    def test_single_buffered(self):
        level = BufferLevel("L", 4096, banks=4, double_buffered=False)
        assert level.usable_bytes == 4096
        assert level.usable_banks == 4

    def test_rejects_non_dividing_banks(self):
        with pytest.raises(ValueError, match="divide"):
            BufferLevel("L", 1000, banks=16)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BufferLevel("L", 0, banks=1)

    def test_energy_grows_with_bank_size(self):
        small = BufferLevel("a", 16 * 1024, banks=16)
        big = BufferLevel("b", 1024 * 1024, banks=16)
        assert big.read_pj_per_byte() > small.read_pj_per_byte()

    def test_write_costs_more_than_read(self):
        level = BufferLevel("L", 64 * 1024, banks=16)
        assert level.write_pj_per_byte() > level.read_pj_per_byte()


class TestStaticPartition:
    def test_table1_l2_fractions(self):
        """Paper Table I: L2 = 38.5% inputs / 40% outputs / 21.5% weights."""
        assert MORPH_BASE_L2_PARTITION.input_frac == 0.385
        assert MORPH_BASE_L2_PARTITION.psum_frac == 0.40
        assert MORPH_BASE_L2_PARTITION.weight_frac == 0.215

    def test_table1_l1_l0_fractions(self):
        for partition in (MORPH_BASE_L1_PARTITION, MORPH_BASE_L0_PARTITION):
            assert partition.input_frac == 0.40
            assert partition.psum_frac == 0.10
            assert partition.weight_frac == 0.50

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            StaticPartition(input_frac=0.5, psum_frac=0.5, weight_frac=0.5)

    def test_capacity_for(self):
        level = BufferLevel("L", 1000 * 16, banks=1)
        partition = StaticPartition(input_frac=0.5, psum_frac=0.3, weight_frac=0.2)
        assert partition.capacity_for(level, DataType.INPUTS) == 4000  # of 8000

    def test_fits_respects_each_partition(self):
        level = BufferLevel("L", 16000, banks=1)
        partition = StaticPartition(input_frac=0.5, psum_frac=0.3, weight_frac=0.2)
        ok = {DataType.INPUTS: 4000, DataType.PSUMS: 2400, DataType.WEIGHTS: 1600}
        assert partition.fits(level, ok)
        # Inputs fit globally but exceed their partition: must fail even
        # though total is under capacity (fragmentation, Observation 2).
        bad = {DataType.INPUTS: 4500, DataType.PSUMS: 100, DataType.WEIGHTS: 100}
        assert not partition.fits(level, bad)

    def test_monolithic_macro_energy(self):
        level = BufferLevel("L0", 16 * 1024, banks=1)
        partition = StaticPartition(input_frac=0.40, psum_frac=0.10, weight_frac=0.50)
        assert partition.activated_macro_kb(level, DataType.WEIGHTS) == 8.0
        assert partition.activated_macro_kb(level, DataType.PSUMS) == pytest.approx(1.6)

    def test_banked_partition_macro(self):
        level = BufferLevel("GLB", 1408 * 1024, banks=16)
        partition = StaticPartition(
            input_frac=0.5, psum_frac=0.45, weight_frac=0.05, banks_per_partition=8
        )
        assert partition.activated_macro_kb(level, DataType.INPUTS) == 88.0


class TestFlexiblePartition:
    LEVEL = BufferLevel("L2", 1024 * 1024, banks=16)

    def test_fits_at_bank_granularity(self):
        """Tiles occupy whole banks: 8 usable banks of 64 kB."""
        policy = FlexiblePartition()
        ok = {
            DataType.INPUTS: 300 * 1024,  # 5 banks
            DataType.PSUMS: 120 * 1024,  # 2 banks
            DataType.WEIGHTS: 60 * 1024,  # 1 bank
        }
        assert policy.fits(self.LEVEL, ok)

    def test_fragmentation_can_reject(self):
        """Three tiles of 2.1 banks each need 9 banks > 8 usable, even
        though their byte total would fit — the paper's internal
        fragmentation trade-off."""
        policy = FlexiblePartition()
        size = int(2.1 * 64 * 1024)
        tiles = {dt: size for dt in DataType}
        assert sum(tiles.values()) < self.LEVEL.usable_bytes
        assert not policy.fits(self.LEVEL, tiles)

    def test_bank_assignment_counts(self):
        policy = FlexiblePartition()
        tiles = {
            DataType.INPUTS: 130 * 1024,
            DataType.PSUMS: 64 * 1024,
            DataType.WEIGHTS: 1,
        }
        assignment = policy.bank_assignment(self.LEVEL, tiles)
        assert assignment[DataType.INPUTS] == 3
        assert assignment[DataType.PSUMS] == 1
        assert assignment[DataType.WEIGHTS] == 1

    def test_bank_assignment_rejects_overflow(self):
        policy = FlexiblePartition()
        tiles = {dt: 512 * 1024 for dt in DataType}
        with pytest.raises(ValueError, match="exceed"):
            policy.bank_assignment(self.LEVEL, tiles)

    def test_activated_macro_is_one_bank(self):
        policy = FlexiblePartition()
        assert policy.activated_macro_kb(self.LEVEL, DataType.INPUTS) == 64.0

    def test_flexible_beats_static_on_skewed_tiles(self):
        """The paper's point: flexible sharing stores skewed tile mixes a
        static split cannot."""
        flexible = FlexiblePartition()
        static = MORPH_BASE_L2_PARTITION
        skewed = {
            DataType.INPUTS: 380 * 1024,  # 6 banks; 74% of usable space
            DataType.PSUMS: 32 * 1024,
            DataType.WEIGHTS: 32 * 1024,
        }
        assert flexible.fits(self.LEVEL, skewed)
        assert not static.fits(self.LEVEL, skewed)
