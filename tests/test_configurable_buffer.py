"""Functional tests for the configurable banked buffer (paper Figure 7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.buffers import BufferLevel
from repro.arch.configurable_buffer import (
    BankConflictError,
    BankRange,
    ConfigurableBuffer,
)
from repro.core.dims import DataType


def make_buffer(capacity=16 * 1024, banks=16):
    return ConfigurableBuffer(BufferLevel("L0", capacity, banks=banks))


class TestConfiguration:
    def test_contiguous_assignment(self):
        buf = make_buffer()
        buf.configure({DataType.INPUTS: 6, DataType.WEIGHTS: 8, DataType.PSUMS: 2})
        ranges = buf.assignment
        assert ranges[DataType.INPUTS] == BankRange(0, 6)
        assert ranges[DataType.WEIGHTS] == BankRange(6, 8)
        assert ranges[DataType.PSUMS] == BankRange(14, 2)

    def test_no_overlap_between_types(self):
        buf = make_buffer()
        buf.configure({DataType.INPUTS: 5, DataType.WEIGHTS: 5, DataType.PSUMS: 5})
        used = []
        for rng in buf.assignment.values():
            used.extend(range(rng.first, rng.first + rng.count))
        assert len(used) == len(set(used))

    def test_rejects_over_allocation(self):
        buf = make_buffer()
        with pytest.raises(ValueError, match="available"):
            buf.configure({DataType.INPUTS: 10, DataType.WEIGHTS: 10, DataType.PSUMS: 1})

    def test_rejects_negative(self):
        buf = make_buffer()
        with pytest.raises(ValueError):
            buf.configure({DataType.INPUTS: -1})

    def test_reconfiguration_replaces_layout(self):
        """Per-layer reconfiguration: bank split changes at layer start."""
        buf = make_buffer()
        buf.configure({DataType.INPUTS: 12, DataType.WEIGHTS: 2, DataType.PSUMS: 2})
        assert buf.capacity_bytes(DataType.INPUTS) == 12 * 1024
        buf.configure({DataType.INPUTS: 2, DataType.WEIGHTS: 12, DataType.PSUMS: 2})
        assert buf.capacity_bytes(DataType.WEIGHTS) == 12 * 1024

    def test_fragmentation_accounting(self):
        buf = make_buffer()
        buf.configure({DataType.INPUTS: 2, DataType.WEIGHTS: 1, DataType.PSUMS: 1})
        tile_bytes = {
            DataType.INPUTS: 1500,
            DataType.WEIGHTS: 1024,
            DataType.PSUMS: 100,
        }
        expected_waste = (2 * 1024 - 1500) + 0 + (1024 - 100)
        assert buf.fragmentation_bytes(tile_bytes) == expected_waste


class TestAccess:
    def test_write_read_roundtrip(self):
        buf = make_buffer()
        buf.configure({DataType.INPUTS: 8, DataType.WEIGHTS: 4, DataType.PSUMS: 4})
        buf.write(DataType.WEIGHTS, 100, b"morph")
        assert buf.read(DataType.WEIGHTS, 100, 5) == b"morph"

    def test_types_are_isolated(self):
        """Same address, different type => different physical banks."""
        buf = make_buffer()
        buf.configure({DataType.INPUTS: 8, DataType.WEIGHTS: 4, DataType.PSUMS: 4})
        buf.write(DataType.INPUTS, 0, b"\x11")
        buf.write(DataType.WEIGHTS, 0, b"\x22")
        assert buf.read(DataType.INPUTS, 0, 1) == b"\x11"
        assert buf.read(DataType.WEIGHTS, 0, 1) == b"\x22"

    def test_write_spanning_banks(self):
        buf = make_buffer()
        buf.configure({DataType.INPUTS: 8, DataType.WEIGHTS: 4, DataType.PSUMS: 4})
        data = bytes(range(64))
        buf.write(DataType.INPUTS, 1024 - 32, data)  # crosses bank 0 -> 1
        assert buf.read(DataType.INPUTS, 1024 - 32, 64) == data

    def test_out_of_range_address(self):
        buf = make_buffer()
        buf.configure({DataType.INPUTS: 1, DataType.WEIGHTS: 1, DataType.PSUMS: 1})
        with pytest.raises(IndexError, match="outside"):
            buf.read(DataType.INPUTS, 1024, 1)

    def test_unassigned_type_rejected(self):
        buf = make_buffer()
        buf.configure({DataType.INPUTS: 8})
        with pytest.raises(KeyError):
            buf.read(DataType.WEIGHTS, 0, 1)

    def test_access_counters(self):
        buf = make_buffer()
        buf.configure({DataType.INPUTS: 8, DataType.WEIGHTS: 4, DataType.PSUMS: 4})
        buf.write(DataType.INPUTS, 0, b"ab")
        buf.read(DataType.INPUTS, 0, 2)
        assert buf.write_count == 1
        assert buf.read_count == 1
        assert sum(buf.bank_activations) == 4  # 2 written + 2 read bytes


class TestParallelRead:
    def test_one_read_per_type_no_conflict(self):
        """Figure 7: replicated output muxes serve all three types in one
        cycle; contiguous assignment makes bank conflicts impossible."""
        buf = make_buffer()
        buf.configure({DataType.INPUTS: 6, DataType.WEIGHTS: 6, DataType.PSUMS: 4})
        hits = buf.parallel_read(
            {DataType.INPUTS: 0, DataType.WEIGHTS: 0, DataType.PSUMS: 0}
        )
        assert len(set(hits.values())) == 3

    @given(
        banks=st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 4)),
        addr_frac=st.tuples(st.floats(0, 0.99), st.floats(0, 0.99), st.floats(0, 0.99)),
    )
    def test_property_contiguous_assignment_never_conflicts(self, banks, addr_frac):
        buf = make_buffer()
        n_in, n_w, n_p = banks
        buf.configure(
            {DataType.INPUTS: n_in, DataType.WEIGHTS: n_w, DataType.PSUMS: n_p}
        )
        requests = {}
        for dt, count, frac in zip(
            (DataType.INPUTS, DataType.WEIGHTS, DataType.PSUMS),
            banks,
            addr_frac,
        ):
            requests[dt] = int(frac * count * 1024)
        hits = buf.parallel_read(requests)  # must not raise
        assert len(set(hits.values())) == 3

    def test_conflict_detection_exists(self):
        """The error path is exercised directly (cannot happen through the
        public configure/read API)."""
        buf = make_buffer()
        buf.configure({DataType.INPUTS: 8, DataType.WEIGHTS: 4, DataType.PSUMS: 4})
        buf._assignment[DataType.WEIGHTS] = BankRange(0, 4)  # force overlap
        with pytest.raises(BankConflictError):
            buf.parallel_read({DataType.INPUTS: 0, DataType.WEIGHTS: 0})
