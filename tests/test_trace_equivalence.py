"""Property tests: the analytic access model against the trace simulator.

The trace simulator walks the complete tile schedule with residency
tracking and no closed-form assumptions.  On evenly-dividing shapes the
analytic model must agree **exactly**; on ragged shapes (its ceil-trip
approximation) it must stay close.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access_model import compute_traffic
from repro.core.dataflow import Dataflow
from repro.core.dims import ALL_DIMS, DataType, Dim
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import TileHierarchy, TileShape
from repro.sim.trace import trace_dataflow

ORDERS = ["WHCKF", "KWHCF", "WFKHC", "FWHCK", "CKWHF", "KCFWH", "WHKFC", "CFWHK"]


def divisor_strategy(n: int):
    return st.sampled_from([d for d in range(1, n + 1) if n % d == 0])


@st.composite
def divisible_config(draw):
    """A layer plus a 2-3 level hierarchy where every tile divides evenly."""
    out_w = draw(st.sampled_from([4, 6, 8, 12]))
    out_h = draw(st.sampled_from([4, 6, 8]))
    c = draw(st.sampled_from([2, 4, 6, 8]))
    k = draw(st.sampled_from([2, 4, 8]))
    out_f = draw(st.sampled_from([2, 4, 6]))
    r = draw(st.sampled_from([1, 3]))
    t = draw(st.sampled_from([1, 3]))
    layer = ConvLayer(
        "prop",
        h=out_h + r - 1,
        w=out_w + r - 1,
        c=c,
        f=out_f + t - 1,
        k=k,
        r=r,
        s=r,
        t=t,
    )
    levels = draw(st.integers(2, 3))
    tiles = []
    parent = {Dim.W: out_w, Dim.H: out_h, Dim.C: c, Dim.K: k, Dim.F: out_f}
    for _ in range(levels):
        tile = {d: draw(divisor_strategy(parent[d])) for d in ALL_DIMS}
        tiles.append(TileShape.from_mapping(tile))
        parent = tile
    outer = draw(st.sampled_from(ORDERS))
    inner = draw(st.sampled_from(ORDERS))
    return Dataflow(
        LoopOrder.parse(outer),
        LoopOrder.parse(inner),
        TileHierarchy(layer, tuple(tiles)),
    )


@st.composite
def ragged_config(draw):
    """Arbitrary (non-dividing) tile extents."""
    layer = ConvLayer(
        "ragged",
        h=draw(st.integers(5, 14)),
        w=draw(st.integers(5, 14)),
        c=draw(st.integers(1, 8)),
        f=draw(st.integers(3, 8)),
        k=draw(st.integers(1, 8)),
        r=3, s=3, t=3,
    )
    tiles = []
    parent = TileShape.full(layer)
    for _ in range(draw(st.integers(2, 3))):
        tile = TileShape.from_mapping(
            {d: draw(st.integers(1, parent.extent(d))) for d in ALL_DIMS}
        )
        tiles.append(tile)
        parent = tile
    return Dataflow(
        LoopOrder.parse(draw(st.sampled_from(ORDERS))),
        LoopOrder.parse(draw(st.sampled_from(ORDERS))),
        TileHierarchy(layer, tuple(tiles)),
    )


def assert_exact_match(dataflow: Dataflow) -> None:
    analytic = compute_traffic(dataflow)
    trace = trace_dataflow(dataflow, vectorize=False)
    # The columnar pass must agree with the scalar walk bit for bit — so
    # both must match the analytic model exactly on dividing shapes.
    columnar = trace_dataflow(dataflow, vectorize=True)
    for sb, cb in zip(trace.boundaries, columnar.boundaries):
        assert sb.fills == cb.fills, dataflow.describe()
        assert sb.fill_bytes == cb.fill_bytes, dataflow.describe()
        assert sb.psum_load_bytes == cb.psum_load_bytes
        assert sb.psum_writeback_bytes == cb.psum_writeback_bytes
    for i, (ab, tb) in enumerate(zip(analytic.boundaries, trace.boundaries)):
        for dt in DataType:
            a = ab.of(dt)
            if dt is DataType.PSUMS:
                wb = (
                    trace.dram_psum_writeback_bytes()
                    if i == 0
                    else tb.psum_writeback_bytes
                )
                assert a.fill_bytes == tb.fill_bytes[dt], (i, dt, dataflow.describe())
                assert a.load_bytes == tb.psum_load_bytes, (i, dt, dataflow.describe())
                assert a.writeback_bytes == wb, (i, dt, dataflow.describe())
            else:
                assert a.fills == tb.fills[dt], (i, dt, dataflow.describe())
                assert a.fill_bytes == tb.fill_bytes[dt], (i, dt, dataflow.describe())


@given(dataflow=divisible_config())
@settings(max_examples=40)
def test_analytic_equals_trace_on_divisible_shapes(dataflow):
    assert_exact_match(dataflow)


@given(dataflow=ragged_config())
@settings(max_examples=25)
def test_analytic_close_to_trace_on_ragged_shapes(dataflow):
    """Sanity bounds for the ceil-trip approximation on ragged shapes.

    The analytic model assumes every parent tile is full-sized, so it
    overcounts at partial edge tiles; the error compounds across boundaries
    but stays bounded (exactness on dividing shapes is asserted above).
    """
    analytic = compute_traffic(dataflow)
    trace = trace_dataflow(dataflow)
    for ab, tb in zip(analytic.boundaries, trace.boundaries):
        for dt in (DataType.INPUTS, DataType.WEIGHTS):
            a_bytes = ab.of(dt).fill_bytes
            t_bytes = tb.fill_bytes[dt]
            assert a_bytes >= t_bytes * 0.6  # never dramatically optimistic
            # The pessimism ceiling is loose: ragged edge tiles compound a
            # ceil() per dim per boundary.  Exactness on dividing shapes is
            # the real contract (asserted above); this is a smoke ceiling.
            assert a_bytes <= t_bytes * 24.0 + 512


@pytest.mark.parametrize("outer", ORDERS)
@pytest.mark.parametrize("inner", ["CFWHK", "KCFWH"])
def test_exhaustive_small_case(outer, inner):
    """Deterministic cross-product on one divisible case (fast)."""
    layer = ConvLayer("t", h=12, w=12, c=8, f=6, k=8, r=3, s=3, t=3)
    hierarchy = TileHierarchy(
        layer,
        (
            TileShape(w=5, h=10, c=4, k=4, f=2),
            TileShape(w=5, h=5, c=2, k=2, f=2),
            TileShape(w=5, h=5, c=1, k=2, f=1),
        ),
    )
    assert_exact_match(
        Dataflow(LoopOrder.parse(outer), LoopOrder.parse(inner), hierarchy)
    )


def test_2d_special_case_matches():
    layer = ConvLayer("t2d", h=10, w=10, c=4, f=1, k=4, r=3, s=3, t=1)
    hierarchy = TileHierarchy(
        layer,
        (TileShape(w=4, h=8, c=2, k=2, f=1), TileShape(w=4, h=4, c=2, k=1, f=1)),
    )
    assert_exact_match(
        Dataflow(LoopOrder.parse("KWHCF"), LoopOrder.parse("CFWHK"), hierarchy)
    )


def test_strided_layer_matches():
    layer = ConvLayer(
        "strided", h=11, w=11, c=2, f=5, k=2, r=3, s=3, t=3,
        stride_h=2, stride_w=2,
    )
    hierarchy = TileHierarchy(
        layer, (TileShape(w=5, h=5, c=2, k=2, f=3), TileShape(w=5, h=5, c=1, k=1, f=1))
    )
    assert_exact_match(
        Dataflow(LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"), hierarchy)
    )
