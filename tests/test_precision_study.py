"""Reduced-scope test of the precision-sensitivity extension study."""

import pytest

from repro.experiments.precision_study import run_precision_study


@pytest.fixture(scope="module")
def result():
    return run_precision_study(fast=True, layers=("layer3a",))


class TestPrecisionStudy:
    def test_all_points_present(self, result):
        assert set(result.points) == {"int4", "int8", "int16"}

    def test_energy_monotone_in_width(self, result):
        assert (
            result.energy("int4")
            <= result.energy("int8")
            <= result.energy("int16")
        )

    def test_wider_data_superlinear_dram(self, result):
        """Doubling datum width more than doubles DRAM traffic: larger
        footprints also evict working sets that used to pin on-chip."""
        _, dram8 = result.points["int8"]
        _, dram16 = result.points["int16"]
        assert dram16 > 1.5 * dram8

    def test_int16_costs_more(self, result):
        assert result.scaling_int16_over_int8() > 1.2
