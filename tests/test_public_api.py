"""The public API surface: everything README promises must import and work."""

import subprocess
import sys

import pytest

import repro


class TestTopLevelImports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__

    def test_readme_quickstart_snippet(self):
        """The exact flow the README and module docstring advertise."""
        layer = repro.c3d().layers[4]  # a later layer keeps this quick
        result = repro.LayerOptimizer(
            repro.morph(), repro.OptimizerOptions.fast()
        ).optimize(layer)
        assert "layer4a" in result.best.describe()

    def test_machine_factories(self):
        assert repro.morph().name == "Morph"
        assert repro.morph_base().name == "Morph_base"
        assert repro.eyeriss_like().name == "Eyeriss"

    def test_network_factories_exported(self):
        for factory in (
            repro.alexnet, repro.c3d, repro.i3d, repro.inception,
            repro.resnet3d50, repro.resnet50, repro.two_stream,
        ):
            assert len(factory().layers) > 0


class TestRunnerCli:
    def test_lists_experiments_on_bad_name(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.runner", "nonsense"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode != 0
        assert "fig9" in proc.stderr

    def test_table4_via_cli(self):
        """The cheapest experiment end-to-end through the CLI."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.runner", "table4"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "Table IV" in proc.stdout
        assert "4.98%" in proc.stdout  # paper column present

    def test_help(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.runner", "--help"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "--thorough" in proc.stdout


class TestExamplesImportable:
    """Examples must at least parse/import (full runs are manual)."""

    @pytest.mark.parametrize(
        "path",
        [
            "examples/quickstart.py",
            "examples/video_pipeline.py",
            "examples/design_space_exploration.py",
            "examples/custom_network.py",
        ],
    )
    def test_compiles(self, path):
        with open(path) as handle:
            compile(handle.read(), path, "exec")
