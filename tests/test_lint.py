"""Tests for the repro.lint invariant-checker suite.

Each rule gets positive fixtures (a seeded violation the rule must
catch) and negative fixtures (idiomatic repro code that must stay
clean), plus suppression handling, the CLI contract and the pinned
"clean tree" test asserting the real repository passes its own linter.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import Linter, default_linter, load_module
from repro.lint.engine import parse_suppressions, walk_paths
from repro.lint.rules import (
    ALL_RULES,
    AtomicWriteRule,
    DeterminismRule,
    KernelPurityRule,
    ScopedConfigRule,
    SignatureCompletenessRule,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(
    rule, source: str, relpath: str, tmp_path: Path, extra: dict | None = None
):
    """Run one rule over fixture source planted at ``relpath``."""
    files = {relpath: source}
    files.update(extra or {})
    modules = []
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
        modules.append(load_module(path, display=rel))
    return Linter([rule]).lint_modules(modules)


# ----------------------------------------------------------------------
# kernel-purity
# ----------------------------------------------------------------------
class TestKernelPurity:
    def check(self, source, tmp_path, relpath="src/repro/core/fix.py"):
        return lint_source(KernelPurityRule(), source, relpath, tmp_path)

    def test_numpy_reference_flagged(self, tmp_path):
        findings = self.check(
            """
            def pad_kernel(x):
                return np.maximum(x, 0)
            """,
            tmp_path,
        )
        assert any("numpy" in f.message for f in findings)

    def test_branch_on_argument_flagged(self, tmp_path):
        findings = self.check(
            """
            def relu_kernel(x):
                if x > 0:
                    return x
                return 0
            """,
            tmp_path,
        )
        assert any("branches on argument" in f.message for f in findings)

    def test_bool_op_flagged(self, tmp_path):
        findings = self.check(
            """
            def gate_kernel(a, b):
                return a and b
            """,
            tmp_path,
        )
        assert any("and" in f.message for f in findings)

    def test_argument_mutation_flagged(self, tmp_path):
        findings = self.check(
            """
            def scale_kernel(col, factor):
                col[0] = col[0] * factor
                return col
            """,
            tmp_path,
        )
        assert any("mutates argument" in f.message for f in findings)

    def test_module_global_flagged(self, tmp_path):
        findings = self.check(
            """
            lut = {}

            def lookup_kernel(x):
                return lut[x]
            """,
            tmp_path,
        )
        assert any("module global" in f.message for f in findings)

    def test_array_hostile_builtin_flagged(self, tmp_path):
        findings = self.check(
            """
            def clamp_kernel(a, b):
                return min(a, b)
            """,
            tmp_path,
        )
        assert any("array-hostile" in f.message for f in findings)

    def test_masking_idiom_passes(self, tmp_path):
        findings = self.check(
            """
            def ceil_div(a, b):
                return -(-a // b)

            def minimum_kernel(a, b):
                return b + (a - b) * (a < b)

            def clipped_kernel(x, lo):
                gap = x - lo
                return lo + gap * (gap > 0)

            def combined_kernel(a, b, c):
                mask = (a > 0) & (b > 0) | (c > 0)
                return minimum_kernel(a, b) * mask + ceil_div(a, c)
            """,
            tmp_path,
        )
        assert findings == []

    def test_constants_classes_and_annotations_exempt(self, tmp_path):
        findings = self.check(
            """
            def typed_kernel(x: "np.ndarray", dt) -> "np.ndarray":
                total: "np.ndarray" = x * SCALE_TABLE[0]
                flag = 1 * (dt == DataType.PSUMS)
                return total * flag
            """,
            tmp_path,
        )
        assert findings == []

    def test_tests_and_private_helpers_exempt(self, tmp_path):
        findings = self.check(
            """
            import numpy as np

            def test_identity_kernel():
                assert np.zeros(3).sum() == 0

            def _shim_kernel(x):
                return np.asarray(x)
            """,
            tmp_path,
            relpath="tests/test_fix.py",
        )
        assert findings == []

    def test_backend_module_sanctioned_by_path(self, tmp_path):
        # The kernel-execution backend lowers kernels (JIT guards,
        # globals rebinding) — module machinery the purity checks would
        # flag anywhere else.  It is sanctioned by path.
        findings = self.check(
            """
            import types

            def guarded_kernel(fn, jitted):
                if jitted is None:
                    return fn
                return jitted
            """,
            tmp_path,
            relpath="src/repro/core/backend.py",
        )
        assert findings == []

    def test_core_kernel_redefinition_outside_core_flagged(self, tmp_path):
        findings = lint_source(
            KernelPurityRule(),
            """
            def input_extent_kernel(w, k, s):
                return w * s + k + 1
            """,
            "src/repro/sim/fork.py",
            tmp_path,
            extra={
                "src/repro/core/tiling.py": """
                def input_extent_kernel(w, k, s):
                    return w * s + k
                """
            },
        )
        assert any("never fork" in f.message for f in findings)
        assert all(f.path == "src/repro/sim/fork.py" for f in findings)

    def test_backend_module_may_not_fork_core_kernels(self, tmp_path):
        # Sanctioned to lower, not to fork: the finish() check still
        # applies to the backend module itself.
        findings = lint_source(
            KernelPurityRule(),
            """
            def edp_kernel(energy, cycles):
                return energy * cycles * 2
            """,
            "src/repro/core/backend.py",
            tmp_path,
            extra={
                "src/repro/core/evaluate.py": """
                def edp_kernel(energy, cycles):
                    return energy * cycles
                """
            },
        )
        assert any("never fork" in f.message for f in findings)

    def test_distinct_sim_kernel_names_pass(self, tmp_path):
        findings = lint_source(
            KernelPurityRule(),
            """
            def interval_span_kernel(a, b):
                return a + b
            """,
            "src/repro/sim/trace.py",
            tmp_path,
            extra={
                "src/repro/core/tiling.py": """
                def input_extent_kernel(w, k, s):
                    return w * s + k
                """
            },
        )
        assert findings == []


# ----------------------------------------------------------------------
# scoped-config
# ----------------------------------------------------------------------
class TestScopedConfig:
    def check(self, source, tmp_path, relpath="src/repro/sim/fix.py"):
        return lint_source(ScopedConfigRule(), source, relpath, tmp_path)

    def test_env_read_outside_resolvers_flagged(self, tmp_path):
        findings = self.check(
            """
            import os

            def frames():
                return os.environ.get("REPRO_FRAMES", "16")
            """,
            tmp_path,
        )
        assert any("REPRO_FRAMES" in f.message for f in findings)

    def test_env_subscript_read_flagged(self, tmp_path):
        findings = self.check(
            """
            import os

            def cache():
                return os.environ["REPRO_CACHE_DIR"]
            """,
            tmp_path,
        )
        assert any("REPRO_CACHE_DIR" in f.message for f in findings)

    def test_env_write_flagged_everywhere(self, tmp_path):
        findings = self.check(
            """
            import os

            def poison():
                os.environ["REPRO_FRAMES"] = "8"
            """,
            tmp_path,
            relpath="src/repro/api.py",  # writes have no sanctuary
        )
        assert any("monkeypatch.setenv" in f.message for f in findings)

    def test_read_in_sanctioned_resolver_passes(self, tmp_path):
        findings = self.check(
            """
            import os

            def default_parallelism():
                return os.environ.get("REPRO_PARALLELISM")
            """,
            tmp_path,
            relpath="src/repro/optimizer/engine.py",
        )
        assert findings == []

    def test_non_repro_env_read_passes(self, tmp_path):
        findings = self.check(
            """
            import os

            def home():
                return os.environ.get("HOME", "/")
            """,
            tmp_path,
        )
        assert findings == []

    def test_lowercase_module_registry_flagged(self, tmp_path):
        findings = self.check(
            """
            records = {}
            """,
            tmp_path,
        )
        assert any("sanctioned-registry" in f.message for f in findings)

    def test_all_caps_registry_passes(self, tmp_path):
        findings = self.check(
            """
            _LAYER_MEMO = {}
            OBJECTIVES = {"energy": None}
            __all__ = ["OBJECTIVES"]
            """,
            tmp_path,
        )
        assert findings == []

    def test_serve_env_read_in_serve_resolver_passes(self, tmp_path):
        findings = self.check(
            """
            import os

            def from_env():
                return os.environ.get("REPRO_SERVE_WORKERS")
            """,
            tmp_path,
            relpath="src/repro/serve/config.py",
        )
        assert findings == []

    def test_serve_env_read_in_api_flagged(self, tmp_path):
        """repro/api.py may read generic $REPRO_* but NOT the serving
        namespace — $REPRO_SERVE_* is scoped by key to the serve
        resolver."""
        findings = self.check(
            """
            import os

            def from_env():
                return os.environ.get("REPRO_SERVE_WORKERS")
            """,
            tmp_path,
            relpath="src/repro/api.py",
        )
        assert any("REPRO_SERVE_WORKERS" in f.message for f in findings)
        assert any("serve resolver" in f.message for f in findings)

    def test_serve_env_read_elsewhere_flagged(self, tmp_path):
        findings = self.check(
            """
            import os

            def workers():
                return os.environ["REPRO_SERVE_QUEUE_DEPTH"]
            """,
            tmp_path,
            relpath="src/repro/serve/engine.py",
        )
        assert any("REPRO_SERVE_QUEUE_DEPTH" in f.message for f in findings)

    def test_session_env_read_in_serve_resolver_flagged(self, tmp_path):
        """The serve resolver reads only its own namespace: session
        config reaches it as a SessionConfig value, never via env."""
        findings = self.check(
            """
            import os

            def from_env():
                return os.environ.get("REPRO_CACHE_DIR")
            """,
            tmp_path,
            relpath="src/repro/serve/config.py",
        )
        assert any("REPRO_CACHE_DIR" in f.message for f in findings)


# ----------------------------------------------------------------------
# signature-completeness
# ----------------------------------------------------------------------
SIGNATURE_FIXTURE = """
import dataclasses


@dataclasses.dataclass(frozen=True)
class ConvLayer:
    name: str
    h: int
    w: int
    dilation_h: int = 1


def layer_signature(layer, *, include_name=True):
    sig = {{"h": layer.h, "w": layer.w{extra}}}
    if include_name:
        sig["name"] = layer.name
    return sig
{tail}
"""


class TestSignatureCompleteness:
    def check(self, source, tmp_path):
        return lint_source(
            SignatureCompletenessRule(),
            source,
            "src/repro/optimizer/config_store.py",
            tmp_path,
        )

    def test_unconsumed_field_flagged(self, tmp_path):
        findings = self.check(
            SIGNATURE_FIXTURE.format(extra="", tail=""), tmp_path
        )
        assert any("'dilation_h'" in f.message for f in findings)

    def test_consumed_field_passes(self, tmp_path):
        findings = self.check(
            SIGNATURE_FIXTURE.format(
                extra=', "dh": layer.dilation_h', tail=""
            ),
            tmp_path,
        )
        assert findings == []

    def test_explicit_exclusion_passes(self, tmp_path):
        findings = self.check(
            SIGNATURE_FIXTURE.format(
                extra="",
                tail='\nLAYER_SIGNATURE_EXCLUDED = frozenset({"dilation_h"})\n',
            ),
            tmp_path,
        )
        assert findings == []

    def test_stale_exclusion_flagged(self, tmp_path):
        findings = self.check(
            SIGNATURE_FIXTURE.format(
                extra=', "dh": layer.dilation_h',
                tail='\nLAYER_SIGNATURE_EXCLUDED = frozenset({"gone"})\n',
            ),
            tmp_path,
        )
        assert any("stale exclusion" in f.message for f in findings)

    def test_repr_compare_disagreement_flagged(self, tmp_path):
        findings = lint_source(
            SignatureCompletenessRule(),
            """
            import dataclasses


            @dataclasses.dataclass(frozen=True)
            class OptimizerOptions:
                objective: str = "energy"
                vectorize: bool | None = dataclasses.field(
                    default=None, repr=False
                )
            """,
            "src/repro/optimizer/search.py",
            tmp_path,
        )
        assert any("compare" in f.message for f in findings)

    def test_env_unmapped_session_field_flagged(self, tmp_path):
        findings = lint_source(
            SignatureCompletenessRule(),
            """
            import dataclasses

            _ENV_FIELDS = {
                "REPRO_FRAMES": ("frames", int),
            }


            @dataclasses.dataclass(frozen=True)
            class SessionConfig:
                frames: int | None = None
                secret_knob: bool | None = None
            """,
            "src/repro/api.py",
            tmp_path,
        )
        assert any("'secret_knob'" in f.message for f in findings)

    def test_active_value_typo_flagged(self, tmp_path):
        findings = lint_source(
            SignatureCompletenessRule(),
            """
            import dataclasses

            _ENV_FIELDS = {"REPRO_FRAMES": ("frames", int)}


            @dataclasses.dataclass(frozen=True)
            class SessionConfig:
                frames: int | None = None
            """,
            "src/repro/api.py",
            tmp_path,
            extra={
                "src/repro/optimizer/engine.py": """
                from repro._scope import active_value


                def default_frames():
                    return active_value("framez")
                """
            },
        )
        assert any("framez" in f.message for f in findings)

    def test_real_tree_shape_passes(self, tmp_path):
        findings = lint_source(
            SignatureCompletenessRule(),
            SIGNATURE_FIXTURE.format(
                extra=', "dh": layer.dilation_h', tail=""
            ),
            tmp_path=tmp_path,
            relpath="src/repro/optimizer/config_store.py",
            extra={
                "src/repro/optimizer/search.py": """
                import dataclasses


                @dataclasses.dataclass(frozen=True)
                class OptimizerOptions:
                    objective: str = "energy"
                    vectorize: bool | None = dataclasses.field(
                        default=None, repr=False, compare=False
                    )
                """
            },
        )
        assert findings == []


# ----------------------------------------------------------------------
# atomic-write
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def check(self, source, tmp_path, relpath="src/repro/optimizer/config_store.py"):
        return lint_source(AtomicWriteRule(), source, relpath, tmp_path)

    def test_bare_open_write_flagged(self, tmp_path):
        findings = self.check(
            """
            def save(path, text):
                with open(path, "w") as fh:
                    fh.write(text)
            """,
            tmp_path,
        )
        assert any("torn file" in f.message for f in findings)

    def test_bare_write_text_flagged(self, tmp_path):
        findings = self.check(
            """
            def save(path, text):
                path.write_text(text)
            """,
            tmp_path,
        )
        assert any("torn file" in f.message for f in findings)

    def test_temp_replace_idiom_passes(self, tmp_path):
        findings = self.check(
            """
            import os


            def save(path, text):
                tmp = path.with_suffix(".tmp.1")
                tmp.write_text(text)
                os.replace(tmp, path)
            """,
            tmp_path,
        )
        assert findings == []

    def test_reads_and_appends_pass(self, tmp_path):
        findings = self.check(
            """
            def load(path, line):
                text = path.read_text()
                with open(path) as fh:
                    fh.read()
                with open(path, "a") as fh:  # journal append is sanctioned
                    fh.write(line)
                return text
            """,
            tmp_path,
        )
        assert findings == []

    def test_non_store_modules_out_of_scope(self, tmp_path):
        findings = self.check(
            """
            def save(path, text):
                path.write_text(text)
            """,
            tmp_path,
            relpath="src/repro/reporting.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def check(self, source, tmp_path, relpath="src/repro/optimizer/fix.py"):
        return lint_source(DeterminismRule(), source, relpath, tmp_path)

    def test_clock_read_flagged(self, tmp_path):
        findings = self.check(
            """
            import time


            def stamp():
                return time.time()
            """,
            tmp_path,
        )
        assert any("time.time" in f.message for f in findings)

    def test_random_flagged(self, tmp_path):
        findings = self.check(
            """
            import random


            def jitter(x):
                return x + random.random()
            """,
            tmp_path,
        )
        assert any("random" in f.message for f in findings)

    def test_set_iteration_flagged(self, tmp_path):
        findings = self.check(
            """
            def orders(candidates):
                out = []
                for item in set(candidates):
                    out.append(item)
                return out
            """,
            tmp_path,
        )
        assert any("iteration order" in f.message or "iterates a set" in f.message
                   for f in findings)

    def test_sorted_set_passes(self, tmp_path):
        findings = self.check(
            """
            def orders(candidates):
                return [item for item in sorted(set(candidates))]
            """,
            tmp_path,
        )
        assert findings == []

    def test_membership_tests_pass(self, tmp_path):
        findings = self.check(
            """
            VALID = {"energy", "edp"}


            def check(name):
                return name in VALID and name in {"energy"}
            """,
            tmp_path,
        )
        assert findings == []

    def test_out_of_scope_module_passes(self, tmp_path):
        findings = self.check(
            """
            import time


            def stamp():
                return time.time()
            """,
            tmp_path,
            relpath="benchmarks/bench_fix.py",
        )
        assert findings == []

    def test_serve_module_in_scope(self, tmp_path):
        """The serving layer is result-producing (served results must be
        bit-identical to direct calls), so it is inside the rule's scope."""
        findings = self.check(
            """
            import time


            def deadline():
                return time.monotonic()
            """,
            tmp_path,
            relpath="src/repro/serve/engine.py",
        )
        assert any("time.monotonic" in f.message for f in findings)

    @pytest.mark.parametrize(
        "relpath",
        ("src/repro/optimizer/clock.py", "src/repro/serve/clock.py"),
    )
    def test_sanctioned_clock_modules_pass(self, tmp_path, relpath):
        findings = self.check(
            """
            import time


            def monotonic_ms():
                return time.monotonic() * 1000.0
            """,
            tmp_path,
            relpath=relpath,
        )
        assert findings == []

    def test_unrelated_clock_module_still_flagged(self, tmp_path):
        """The exemption is the (package, filename) pair, not any file
        that happens to be named clock.py."""
        findings = self.check(
            """
            import time


            def monotonic_ms():
                return time.monotonic() * 1000.0
            """,
            tmp_path,
            relpath="src/repro/sim/clock.py",
        )
        assert any("time.monotonic" in f.message for f in findings)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_trailing_comment_suppresses_its_line(self, tmp_path):
        findings = lint_source(
            ScopedConfigRule(),
            """
            records = {}  # repro-lint: disable=scoped-config  # fixture registry
            """,
            "src/repro/sim/fix.py",
            tmp_path,
        )
        assert findings == []

    def test_standalone_comment_covers_next_line(self, tmp_path):
        findings = lint_source(
            ScopedConfigRule(),
            """
            # repro-lint: disable=scoped-config  # fixture registry
            records = {}
            """,
            "src/repro/sim/fix.py",
            tmp_path,
        )
        assert findings == []

    def test_multiline_justification_covers_code(self, tmp_path):
        findings = lint_source(
            ScopedConfigRule(),
            """
            # repro-lint: disable=scoped-config  # a justification long
            # enough to continue across two comment lines before the code
            records = {}
            """,
            "src/repro/sim/fix.py",
            tmp_path,
        )
        assert findings == []

    def test_other_rule_name_does_not_suppress(self, tmp_path):
        findings = lint_source(
            ScopedConfigRule(),
            """
            records = {}  # repro-lint: disable=kernel-purity
            """,
            "src/repro/sim/fix.py",
            tmp_path,
        )
        assert len(findings) == 1

    def test_disable_all_wildcard(self, tmp_path):
        findings = lint_source(
            ScopedConfigRule(),
            """
            records = {}  # repro-lint: disable=all
            """,
            "src/repro/sim/fix.py",
            tmp_path,
        )
        assert findings == []

    def test_parse_suppressions_maps_lines(self):
        parsed = parse_suppressions(
            "x = 1  # repro-lint: disable=a, b\n"
            "# repro-lint: disable=c\n"
            "y = 2\n"
        )
        assert parsed[1] == frozenset({"a", "b"})
        assert parsed[3] == frozenset({"c"})


# ----------------------------------------------------------------------
# Engine / CLI / clean tree
# ----------------------------------------------------------------------
class TestEngineAndCli:
    def test_all_rules_registered_with_unique_names(self):
        linter = default_linter()
        names = [rule.name for rule in linter.rules]
        assert len(names) == len(ALL_RULES) == len(set(names)) == 5

    def test_walk_paths_skips_hidden_and_pycache(self, tmp_path):
        (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("")
        (tmp_path / "pkg" / "ok.py").write_text("")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "b.py").write_text("")
        walked = walk_paths([tmp_path])
        assert [p.name for p in walked] == ["ok.py"]

    def test_syntax_error_becomes_diagnostic(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        findings = default_linter().lint_paths([bad])
        assert [f.rule for f in findings] == ["syntax"]

    def _run_cli(self, *args, cwd):
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_cli_clean_tree_exits_zero(self):
        proc = self._run_cli("src", cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout

    def test_whole_repo_is_clean(self):
        """The pinned acceptance gate: src, tests, benchmarks and
        examples all pass the full rule set with zero findings."""
        proc = self._run_cli(
            "src", "tests", "benchmarks", "examples", cwd=REPO_ROOT
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_cli_reports_findings_with_exit_one(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "fix.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def bad_kernel(x):\n    return np.abs(x)\n")
        proc = self._run_cli(str(bad), cwd=REPO_ROOT)
        assert proc.returncode == 1
        assert "kernel-purity" in proc.stdout

    def test_cli_json_format(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "fix.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def bad_kernel(x):\n    return np.abs(x)\n")
        proc = self._run_cli("--format", "json", str(bad), cwd=REPO_ROOT)
        payload = json.loads(proc.stdout)
        assert payload["tool"] == "repro-lint"
        assert payload["count"] == len(payload["findings"]) >= 1
        assert payload["findings"][0]["rule"] == "kernel-purity"

    def test_cli_list_rules(self):
        proc = self._run_cli("--list-rules", cwd=REPO_ROOT)
        assert proc.returncode == 0
        for rule_cls in ALL_RULES:
            assert rule_cls.name in proc.stdout

    def test_cli_missing_path_exits_two(self, tmp_path):
        proc = self._run_cli(str(tmp_path / "nope"), cwd=REPO_ROOT)
        assert proc.returncode == 2
