"""Reduced-scope test of the flexibility ablation experiment."""

import pytest

from repro.experiments.ablation_flexibility import VARIANTS, run_ablation


@pytest.fixture(scope="module")
def result():
    return run_ablation(fast=True, layers=("layer2", "layer5a"))


class TestAblation:
    def test_all_variants_present(self, result):
        assert set(result.variants) == {name for name, _ in VARIANTS}

    def test_each_mechanism_helps_or_is_neutral(self, result):
        for name in ("+orders", "+partitions", "+parallelism"):
            assert result.gain_over_base(name) >= 0.999, name

    def test_full_morph_composes(self, result):
        assert result.mechanisms_compose()

    def test_full_morph_beats_base(self, result):
        assert result.gain_over_base("morph") > 1.1

    def test_cycles_tracked(self, result):
        for energy, cycles in result.variants.values():
            assert energy > 0 and cycles > 0
