"""Tests for the 32 nm technology constants."""

import pytest

from repro.arch.technology import DEFAULT_TECHNOLOGY, SCALE_45_TO_32, Technology


class TestTechnology:
    def test_dram_energy_is_20_pj_per_bit(self):
        """Section VI-A: DRAM energy counted at 20 pJ/bit."""
        assert DEFAULT_TECHNOLOGY.dram_pj_per_bit == 20.0
        assert DEFAULT_TECHNOLOGY.dram_pj_per_byte == 160.0

    def test_dram_energy_linear(self):
        assert DEFAULT_TECHNOLOGY.dram_energy_pj(100) == pytest.approx(16000)

    def test_macc_energy_scaled_from_45nm(self):
        """Horowitz 45 nm 8-bit MACC (~0.3 pJ) scaled to 32 nm."""
        assert DEFAULT_TECHNOLOGY.macc_pj == pytest.approx(0.3 * SCALE_45_TO_32)

    def test_macc_energy_linear(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.macc_energy_pj(1000) == pytest.approx(1000 * tech.macc_pj)

    def test_dram_dominates_macc(self):
        """A DRAM byte costs orders of magnitude more than a MACC — the
        reuse economics underlying the whole paper."""
        tech = DEFAULT_TECHNOLOGY
        assert tech.dram_pj_per_byte > 100 * tech.macc_pj

    def test_clock_1ghz(self):
        assert DEFAULT_TECHNOLOGY.clock_hz == 1e9

    def test_custom_technology(self):
        tech = Technology(name="test", dram_pj_per_bit=10.0)
        assert tech.dram_pj_per_byte == 80.0

    def test_leakage_constants_positive(self):
        assert DEFAULT_TECHNOLOGY.sram_leakage_mw_per_kb > 0
        assert DEFAULT_TECHNOLOGY.lane_leakage_mw > 0
