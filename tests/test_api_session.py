"""Tests for :mod:`repro.api`: config precedence, session scoping,
legacy-shim compatibility, and the concurrent-session bit-identity
guarantee the API redesign is built around.
"""

from __future__ import annotations

import json
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import Session, SessionConfig, current_session, default_session
from repro.arch.accelerator import morph
from repro.core.layer import ConvLayer
from repro.optimizer import engine as engine_mod
from repro.optimizer.config_store import (
    LocalDirectoryStore,
    MemoryStore,
    clear_memory_stores,
)
from repro.optimizer.engine import (
    optimize_layer,
    reset_cache_statistics,
    reset_engine_defaults,
    set_engine_defaults,
)
from repro.optimizer.search import (
    OptimizerOptions,
    clear_cache,
    optimize_network,
)

LAYER_A = ConvLayer(
    "a", h=10, w=10, c=8, f=4, k=8, r=3, s=3, t=3,
    pad_h=1, pad_w=1, pad_f=1,
)
LAYER_B = ConvLayer("b", h=8, w=8, c=8, f=1, k=16, r=3, s=3, t=1,
                    pad_h=1, pad_w=1)
#: Same shape as LAYER_A under another name: dedup fodder.
LAYER_A2 = ConvLayer(
    "a2", h=10, w=10, c=8, f=4, k=8, r=3, s=3, t=3,
    pad_h=1, pad_w=1, pad_f=1,
)
NETWORK = (LAYER_A, LAYER_B, LAYER_A2)

TINY = OptimizerOptions.fast(
    max_l2_candidates=3,
    keep_per_level=2,
    keep_allocations=1,
    max_parallelism_candidates=2,
)


@pytest.fixture(autouse=True)
def _clean_state():
    reset_engine_defaults()
    clear_cache()
    clear_memory_stores()
    reset_cache_statistics()
    yield
    reset_engine_defaults()
    clear_cache()
    clear_memory_stores()
    reset_cache_statistics()


def _fingerprint(result):
    """Bit-comparable identity of a NetworkResult's chosen configs."""
    return tuple(
        (r.layer.name, repr(r.best.dataflow), r.score) for r in result.layers
    )


# ----------------------------------------------------------------------
# SessionConfig: construction, serialization, precedence
# ----------------------------------------------------------------------
class TestSessionConfig:
    def test_defaults_all_unset(self):
        config = SessionConfig()
        assert all(
            getattr(config, name) is None for name in config.field_names()
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="parallelism"):
            SessionConfig(parallelism=0)
        with pytest.raises(ValueError, match="parallelism_mode"):
            SessionConfig(parallelism_mode="fibers")
        with pytest.raises(ValueError, match="cache_backend"):
            SessionConfig(cache_backend="bogus")
        with pytest.raises(ValueError, match="search_order"):
            SessionConfig(search_order="random")
        with pytest.raises(ValueError, match="frames"):
            SessionConfig(frames=0)
        with pytest.raises(ValueError, match="manifest_compact_ratio"):
            SessionConfig(manifest_compact_ratio=-1.0)

    def test_path_coercion(self, tmp_path):
        config = SessionConfig(cache_dir=str(tmp_path))
        assert config.cache_dir == tmp_path

    def test_numeric_coercion_at_construction(self):
        config = SessionConfig(
            parallelism="4", frames="8", manifest_compact_ratio="2.5"
        )
        assert config.parallelism == 4
        assert config.frames == 8
        assert config.manifest_compact_ratio == 2.5
        with pytest.raises(ValueError, match="parallelism"):
            SessionConfig(parallelism="many")

    def test_boolean_coercion_at_construction(self):
        config = SessionConfig.from_dict(
            {"vectorize": "false", "use_cache": "no", "persist_statistics": 0}
        )
        assert config.vectorize is False
        assert config.use_cache is False
        assert config.persist_statistics is False
        assert SessionConfig(vectorize="true").vectorize is True
        with pytest.raises(ValueError, match="vectorize"):
            SessionConfig(vectorize="maybe")
        # The scoped resolvers see real booleans, not truthy strings.
        with Session(SessionConfig(vectorize="false", use_cache="off")):
            assert engine_mod.default_vectorize() is False
            assert engine_mod.default_use_cache() is False

    def test_env_zero_clamps_consistently(self):
        config = SessionConfig.from_env(
            {"REPRO_FRAMES": "0", "REPRO_PARALLELISM": "0"}
        )
        assert config.frames == 1  # same clamp as build_network's env path
        assert config.parallelism == 1

    def test_dict_round_trip(self, tmp_path):
        config = SessionConfig(
            parallelism=4,
            parallelism_mode="thread",
            cache_dir=tmp_path,
            cache_backend="sharded",
            vectorize=False,
            search_order="legacy",
            frames=32,
            manifest_compact_ratio=8.0,
        )
        assert SessionConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="paralelism"):
            SessionConfig.from_dict({"paralelism": 4})

    def test_store_instance_not_serializable(self):
        config = SessionConfig(cache_backend=MemoryStore())
        with pytest.raises(ValueError, match="not.*serializable|serializable"):
            config.to_dict()

    def test_json_file_round_trip(self, tmp_path):
        config = SessionConfig(parallelism=2, vectorize=True)
        path = tmp_path / "config.json"
        config.save(path)
        assert SessionConfig.from_file(path) == config

    def test_toml_file_with_table(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(
            "[repro]\nparallelism = 3\ncache_backend = 'sharded'\n"
        )
        config = SessionConfig.from_file(path)
        assert config.parallelism == 3
        assert config.cache_backend == "sharded"

    def test_from_env(self):
        environ = {
            "REPRO_PARALLELISM": "5",
            "REPRO_PARALLELISM_MODE": "thread",
            "REPRO_VECTORIZE": "0",
            "REPRO_FRAMES": "8",
            "REPRO_MANIFEST_COMPACT_RATIO": "6.5",
            "UNRELATED": "ignored",
        }
        config = SessionConfig.from_env(environ)
        assert config.parallelism == 5
        assert config.parallelism_mode == "thread"
        assert config.vectorize is False
        assert config.frames == 8
        assert config.manifest_compact_ratio == 6.5
        assert config.cache_dir is None

    def test_from_env_parse_error_names_variable(self):
        with pytest.raises(ValueError, match="REPRO_PARALLELISM"):
            SessionConfig.from_env({"REPRO_PARALLELISM": "many"})

    def test_precedence_explicit_beats_dict_beats_file_beats_env(
        self, tmp_path
    ):
        path = tmp_path / "config.toml"
        path.write_text("parallelism = 3\nframes = 3\nvectorize = false\n")
        environ = {
            "REPRO_PARALLELISM": "2",
            "REPRO_FRAMES": "2",
            "REPRO_VECTORIZE": "1",
            "REPRO_CACHE_BACKEND": "sharded",
        }
        config = SessionConfig.resolve(
            file=path,
            data={"frames": 4},
            env=environ,
            parallelism=5,
        )
        assert config.parallelism == 5  # explicit kwarg wins
        assert config.frames == 4  # dict beats file beats env
        assert config.vectorize is False  # file beats env
        assert config.cache_backend == "sharded"  # env fills the rest

    def test_resolve_skips_env_when_disabled(self):
        config = SessionConfig.resolve(
            env={"REPRO_PARALLELISM": "7"}, parallelism=None
        )
        assert config.parallelism == 7
        config = SessionConfig.resolve(env=False)
        assert config.parallelism is None

    def test_merged_overlay_wins_fieldwise(self):
        base = SessionConfig(parallelism=2, frames=8)
        overlay = SessionConfig(frames=16, vectorize=False)
        merged = base.merged(overlay)
        assert merged.parallelism == 2
        assert merged.frames == 16
        assert merged.vectorize is False


# ----------------------------------------------------------------------
# Scoping
# ----------------------------------------------------------------------
class TestScoping:
    def test_nested_sessions_restore_outer(self):
        assert engine_mod.default_parallelism() == 1
        with Session(SessionConfig(parallelism=3)):
            assert engine_mod.default_parallelism() == 3
            with Session(SessionConfig(parallelism=5, vectorize=False)):
                assert engine_mod.default_parallelism() == 5
                assert engine_mod.default_vectorize() is False
            assert engine_mod.default_parallelism() == 3
        assert engine_mod.default_parallelism() == 1

    def test_session_beats_global_defaults_and_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM", "2")
        with pytest.deprecated_call():
            set_engine_defaults(parallelism=4)
        with Session(SessionConfig(parallelism=6)):
            assert engine_mod.default_parallelism() == 6
        assert engine_mod.default_parallelism() == 4
        reset_engine_defaults()
        assert engine_mod.default_parallelism() == 2

    def test_unset_fields_fall_through_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM", "9")
        with Session(SessionConfig(vectorize=False)):
            assert engine_mod.default_parallelism() == 9

    def test_env_only_workflows_reach_every_knob(self, monkeypatch):
        """$REPRO_*-only workflows work through the fallback chain even
        without a runner: use_cache and frames included."""
        from repro.workloads import build_network

        monkeypatch.setenv("REPRO_USE_CACHE", "0")
        assert engine_mod.default_use_cache() is False
        monkeypatch.setenv("REPRO_USE_CACHE", "1")
        assert engine_mod.default_use_cache() is True
        monkeypatch.setenv("REPRO_FRAMES", "8")
        assert build_network("c3d").input_frames == 8
        # The session layer still wins over the environment.
        with Session(SessionConfig(frames=4, use_cache=False)):
            assert build_network("c3d").input_frames == 4
            assert engine_mod.default_use_cache() is False

    def test_scoping_is_thread_local(self):
        """Two sessions active in two threads never see each other."""
        barrier = threading.Barrier(2, timeout=30)
        seen = {}

        def probe(name, parallelism):
            with Session(SessionConfig(parallelism=parallelism)):
                barrier.wait()  # both sessions active simultaneously
                seen[name] = engine_mod.default_parallelism()
                barrier.wait()

        threads = [
            threading.Thread(target=probe, args=("one", 3)),
            threading.Thread(target=probe, args=("two", 7)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {"one": 3, "two": 7}

    def test_build_network_frames_scoped(self):
        from repro.workloads import build_network

        with Session(SessionConfig(frames=8)) as session:
            assert session.build_network("c3d").input_frames == 8
            assert build_network("c3d").input_frames == 8  # legacy path
            assert build_network("c3d", frames=4).input_frames == 4  # kwarg
        assert build_network("c3d").input_frames == 16

    def test_sim_vectorize_scoped(self):
        from repro.sim.trace import _resolve_vectorize

        with Session(SessionConfig(vectorize=False)):
            assert _resolve_vectorize(None) is False
        with Session(SessionConfig(vectorize=True)):
            assert _resolve_vectorize(None) is True

    def test_search_order_scoped(self):
        from repro.optimizer.search import LayerOptimizer

        with Session(SessionConfig(search_order="legacy")):
            assert engine_mod.default_search_order() == "legacy"
            assert LayerOptimizer(morph(), TINY).search_order == "legacy"
        assert engine_mod.default_search_order() == "best_first"

    def test_current_session_honours_scope(self):
        outer = default_session()
        assert current_session() is outer
        config = SessionConfig(parallelism=2)
        with Session(config):
            assert current_session().config == config


# ----------------------------------------------------------------------
# The session surface
# ----------------------------------------------------------------------
class TestSessionSurface:
    def test_optimize_layer_matches_engine(self, morph_arch):
        session = Session(SessionConfig(vectorize=True))
        direct = session.optimize_layer(LAYER_A, morph_arch, TINY)
        legacy = optimize_layer(LAYER_A, morph_arch, TINY)
        assert repr(direct.best.dataflow) == repr(legacy.best.dataflow)
        assert direct.score == legacy.score

    def test_optimize_network_accepts_network_object(self, morph_arch):
        session = Session()
        network = session.build_network("alexnet")
        result = session.optimize_network(network, morph_arch, TINY)
        assert result.network_name == network.name
        assert len(result.layers) == len(network.layers)

    def test_session_accumulates_engine_stats(self, morph_arch):
        session = Session()
        session.optimize_network(NETWORK, morph_arch, TINY)
        assert session.stats.requested == 3
        assert session.stats.unique == 2
        assert session.stats.dedup_hits == 1

    def test_sweep_structured_results(self, morph_arch, tmp_path):
        config = SessionConfig(cache_dir=tmp_path, parallelism=1)
        with Session(config) as session:
            sweep = session.sweep(
                ["alexnet"], arch=morph_arch, options=TINY
            )
        assert [e.network_name for e in sweep.entries] == ["AlexNet"]
        entry = sweep.entry("AlexNet")
        assert entry.result.total_energy_pj > 0
        assert entry.stats.searched > 0
        identity = LocalDirectoryStore(tmp_path).identity()
        assert identity in sweep.cache_statistics
        assert sweep.cache_statistics[identity].writes > 0
        assert "AlexNet" in sweep.describe()

    def test_trace_and_simulate(self, morph_arch):
        session = Session(SessionConfig(vectorize=False))
        result = session.optimize_layer(LAYER_A, morph_arch, TINY)
        trace = session.trace(result.best.dataflow)
        assert trace.layer == LAYER_A
        assert trace.boundaries
        pipeline = session.simulate(result.best.dataflow, morph_arch)
        assert pipeline.cycles > 0

    def test_session_kwargs_override_config(self, morph_arch, tmp_path):
        session = Session(
            SessionConfig(cache_dir=tmp_path / "configured"),
        )
        engine = session.engine(morph_arch, TINY, cache_dir=tmp_path / "override")
        assert engine.disk is not None
        assert "override" in engine.disk.backend.describe()


# ----------------------------------------------------------------------
# Legacy shims
# ----------------------------------------------------------------------
class TestLegacyShims:
    def test_set_engine_defaults_warns(self):
        with pytest.deprecated_call():
            set_engine_defaults(parallelism=2)
        reset_engine_defaults()

    def test_shim_results_bit_identical_to_session(self, morph_arch):
        clear_cache()
        via_session = Session(SessionConfig(parallelism=1)).optimize_network(
            NETWORK, morph_arch, TINY, network_name="net"
        )
        clear_cache()
        with pytest.deprecated_call():
            set_engine_defaults(parallelism=1)
        try:
            via_shim = optimize_network(
                NETWORK, morph_arch, TINY, network_name="net"
            )
        finally:
            reset_engine_defaults()
        assert _fingerprint(via_shim) == _fingerprint(via_session)

    def test_shims_follow_active_session(self, morph_arch, tmp_path):
        """Inside ``with session:`` the legacy entry points resolve
        through the session's store configuration."""
        with Session(SessionConfig(cache_dir=tmp_path)) as session:
            optimize_layer(LAYER_B, morph_arch, TINY)
            assert session.store() is not None
        assert list(tmp_path.glob("*.json"))

    def test_repo_entry_points_emit_no_deprecation_warning(self):
        """The repo's own code no longer calls the deprecated mutator:
        the cheap experiments run clean under error-on-DeprecationWarning
        (CI additionally runs the full runner this way)."""
        from repro.experiments import EXPERIMENTS

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            EXPERIMENTS["fig1"](fast=True)
            EXPERIMENTS["table4"](fast=True)

    def test_experiment_registry_uniform_signature(self):
        import inspect

        from repro.experiments import EXPERIMENTS

        for name, entry in EXPERIMENTS.items():
            parameters = inspect.signature(entry).parameters
            assert list(parameters) == ["fast", "session"], name
            assert parameters["fast"].default is True, name
            assert parameters["session"].default is None, name


# ----------------------------------------------------------------------
# Concurrent sessions (the acceptance pin)
# ----------------------------------------------------------------------
class TestConcurrentSessions:
    def test_concurrent_sessions_bit_identical_to_serial(
        self, morph_arch, tmp_path
    ):
        """Two sessions with different cache backends and vectorize
        settings run ``optimize_network`` concurrently (threads) in one
        process; each result is bit-identical to a serial run with the
        same settings."""
        config_a = SessionConfig(
            cache_dir=tmp_path / "a", cache_backend="local", vectorize=True
        )
        config_b = SessionConfig(
            cache_dir=tmp_path / "b", cache_backend="sharded", vectorize=False
        )

        def run(config):
            with Session(config) as session:
                return session.optimize_network(
                    NETWORK, morph_arch, TINY, network_name="net"
                )

        # Serial references, fully isolated searches.
        clear_cache()
        serial_a = _fingerprint(run(config_a))
        clear_cache()
        serial_b = _fingerprint(run(config_b))
        for directory in (tmp_path / "a", tmp_path / "b"):
            for record in directory.rglob("*.json"):
                record.unlink()
        clear_cache()

        with ThreadPoolExecutor(max_workers=2) as pool:
            future_a = pool.submit(run, config_a)
            future_b = pool.submit(run, config_b)
            result_a, result_b = future_a.result(), future_b.result()

        assert _fingerprint(result_a) == serial_a
        assert _fingerprint(result_b) == serial_b
        # Each session persisted into its own store layout.
        assert list((tmp_path / "a").glob("[0-9a-f]*.json"))
        assert list(
            (tmp_path / "b").glob("[0-9a-f]*/[0-9a-f]*/[0-9a-f]*.json")
        )

    def test_thread_mode_parallel_search_inside_session(self, morph_arch):
        """The engine's worker pools run under a session without losing
        its configuration (knobs are baked in before fan-out)."""
        config = SessionConfig(
            parallelism=2, parallelism_mode="thread", vectorize=False
        )
        clear_cache()
        with Session(config) as session:
            parallel = session.optimize_network(
                NETWORK, morph_arch, TINY, network_name="net"
            )
        clear_cache()
        with Session(SessionConfig(parallelism=1, vectorize=False)) as session:
            serial = session.optimize_network(
                NETWORK, morph_arch, TINY, network_name="net"
            )
        assert _fingerprint(parallel) == _fingerprint(serial)


# ----------------------------------------------------------------------
# Persistent cache statistics
# ----------------------------------------------------------------------
class TestStatisticsSidecar:
    def test_close_writes_sidecar(self, morph_arch, tmp_path):
        with Session(SessionConfig(cache_dir=tmp_path)) as session:
            session.optimize_layer(LAYER_A, morph_arch, TINY)
        sidecar = tmp_path / LocalDirectoryStore.STATS_SIDECAR
        assert sidecar.exists()
        payload = json.loads(sidecar.read_text())
        identity = LocalDirectoryStore(tmp_path).identity()
        assert payload["statistics"][identity]["writes"] >= 1

    def test_sidecar_merges_across_sessions(self, morph_arch, tmp_path):
        config = SessionConfig(cache_dir=tmp_path)
        with Session(config) as session:
            session.optimize_layer(LAYER_A, morph_arch, TINY)
        clear_cache()
        with Session(config) as session:
            session.optimize_layer(LAYER_A, morph_arch, TINY)
        stats = json.loads(
            (tmp_path / LocalDirectoryStore.STATS_SIDECAR).read_text()
        )["statistics"][LocalDirectoryStore(tmp_path).identity()]
        assert stats["writes"] >= 1
        assert stats["hits"] >= 1  # the second session recalled

    def test_sweep_reports_merged_totals(self, morph_arch, tmp_path):
        config = SessionConfig(cache_dir=tmp_path, parallelism=1)
        with Session(config) as session:
            first = session.sweep(["alexnet"], arch=morph_arch, options=TINY)
        clear_cache()
        with Session(config) as session:
            second = session.sweep(["alexnet"], arch=morph_arch, options=TINY)
        identity = LocalDirectoryStore(tmp_path).identity()
        merged = second.cache_statistics[identity]
        # Totals fold the first session's persisted counters in.
        assert merged.writes >= first.cache_statistics[identity].writes
        assert merged.hits >= 1

    def test_flush_is_idempotent(self, morph_arch, tmp_path):
        config = SessionConfig(cache_dir=tmp_path)
        session = Session(config)
        session.optimize_layer(LAYER_A, morph_arch, TINY)
        session.flush_statistics()
        before = session.store().load_statistics()
        session.flush_statistics()  # no new deltas -> no double count
        session.close()
        assert session.store().load_statistics() == before

    def test_persist_statistics_opt_out(self, morph_arch, tmp_path):
        config = SessionConfig(cache_dir=tmp_path, persist_statistics=False)
        with Session(config) as session:
            session.optimize_layer(LAYER_A, morph_arch, TINY)
        assert not (tmp_path / LocalDirectoryStore.STATS_SIDECAR).exists()

    def test_overlapping_sessions_do_not_double_count(
        self, morph_arch, tmp_path
    ):
        """Two open sessions on one store flush from a shared baseline:
        the sidecar totals match the actual counter movement once, not
        once per session."""
        config = SessionConfig(cache_dir=tmp_path)
        first = Session(config)
        second = Session(config)
        first.optimize_layer(LAYER_A, morph_arch, TINY)
        first.close()
        second.close()
        stats = first.store().load_statistics()[
            first.store().identity()
        ]
        assert stats["writes"] == 1
        assert stats["misses"] == 1

    def test_same_kind_stores_keep_separate_counters(
        self, morph_arch, tmp_path
    ):
        """Statistics are keyed by store *identity*, not backend kind:
        two ``local`` directories used in one process must not pool
        their hit/miss counters (the old kind-keyed registry attributed
        the second store's cold misses to the first's warm cache)."""
        reset_cache_statistics()  # drop other tests' unflushed movement
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        with Session(SessionConfig(cache_dir=dir_a)) as session:
            session.optimize_layer(LAYER_A, morph_arch, TINY)
        clear_cache()
        with Session(SessionConfig(cache_dir=dir_b)) as session:
            session.optimize_layer(LAYER_A, morph_arch, TINY)
        stats = engine_mod.cache_statistics()
        id_a = LocalDirectoryStore(dir_a).identity()
        id_b = LocalDirectoryStore(dir_b).identity()
        assert id_a != id_b
        assert stats[id_a].writes == 1 and stats[id_a].hits == 0
        assert stats[id_b].writes == 1 and stats[id_b].hits == 0
        # Each sidecar carries only its own store's counters.
        side_a = LocalDirectoryStore(dir_a).load_statistics()
        side_b = LocalDirectoryStore(dir_b).load_statistics()
        assert set(side_a) == {id_a}
        assert set(side_b) == {id_b}

    def test_sidecar_never_shadows_records_in_keys(self, morph_arch, tmp_path):
        with Session(SessionConfig(cache_dir=tmp_path)) as session:
            session.optimize_layer(LAYER_A, morph_arch, TINY)
        store = LocalDirectoryStore(tmp_path)
        assert (tmp_path / LocalDirectoryStore.STATS_SIDECAR).exists()
        keys = list(store.keys())
        assert keys  # the real record is listed...
        assert "CACHE_STATS" not in keys  # ...the telemetry sidecar is not

    def test_memory_store_statistics(self, morph_arch):
        store = MemoryStore()
        config = SessionConfig(cache_backend=store)
        with Session(config) as session:
            session.optimize_layer(LAYER_A, morph_arch, TINY)
        assert store.load_statistics()[store.identity()]["writes"] >= 1

    def test_bench_dir_session_summary(self, morph_arch, tmp_path):
        config = SessionConfig(
            cache_dir=tmp_path / "cache", bench_dir=tmp_path / "bench"
        )
        with Session(config) as session:
            session.optimize_layer(LAYER_A, morph_arch, TINY)
        summary = json.loads(
            (tmp_path / "bench" / "SESSION_STATS.json").read_text()
        )
        assert summary["engine_stats"]["searched"] >= 1
        identity = LocalDirectoryStore(tmp_path / "cache").identity()
        assert identity in summary["cache_statistics"]


# ----------------------------------------------------------------------
# Runner config materialisation
# ----------------------------------------------------------------------
class TestRunnerConfig:
    def test_flags_beat_config_file_beat_env(self, tmp_path, monkeypatch):
        import argparse

        from repro.experiments.runner import build_config

        path = tmp_path / "sweep.toml"
        path.write_text("parallelism = 3\nframes = 4\n")
        monkeypatch.setenv("REPRO_PARALLELISM", "2")
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        args = argparse.Namespace(
            config=path,
            parallelism=8,
            parallelism_mode=None,
            cache_dir=None,
            cache_backend=None,
            no_cache=False,
            vectorize=None,
            budget_ms=None,
            kernel_backend=None,
            max_table_bytes=None,
            frames=None,
            manifest_compact_ratio=None,
        )
        config = build_config(args)
        assert config.parallelism == 8  # flag beats file beats env
        assert config.frames == 4  # file fills unset flags
        assert config.vectorize is False  # env fills the rest
