"""Tests for the performance model: utilisation, splits, cycle bounds."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.access_model import compute_traffic
from repro.core.dataflow import Dataflow, Parallelism, single_tile_dataflow
from repro.core.dims import Dim
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.performance_model import (
    compute_performance,
    compute_utilization,
    split_parallelism,
)
from repro.core.tiling import TileHierarchy, TileShape


class TestSplitParallelism:
    def test_product_is_preserved(self):
        par = Parallelism(k=8, f=12)
        cluster, pe = split_parallelism(par, clusters=6, pes_per_cluster=16)
        for dim in (Dim.W, Dim.H, Dim.K, Dim.F):
            assert cluster.of(dim) * pe.of(dim) == par.of(dim)

    def test_respects_cluster_budget(self):
        cluster, pe = split_parallelism(
            Parallelism(k=8, f=12), clusters=6, pes_per_cluster=16
        )
        assert cluster.degree <= 6
        assert pe.degree <= 16

    def test_prefers_k_at_cluster_level(self):
        """Morph-base's arrangement: Kp across clusters (Section IV-A3)."""
        cluster, pe = split_parallelism(
            Parallelism(k=6, h=16), clusters=6, pes_per_cluster=16
        )
        assert cluster.k == 6
        assert pe.h == 16

    def test_serial_case(self):
        cluster, pe = split_parallelism(Parallelism(), 6, 16)
        assert cluster.degree == 1
        assert pe.degree == 1

    def test_rejects_impossible(self):
        with pytest.raises(ValueError, match="does not fit"):
            split_parallelism(Parallelism(h=7, k=5), clusters=2, pes_per_cluster=4)

    @given(
        k=st.sampled_from([1, 2, 3, 4, 6, 8, 12]),
        h=st.sampled_from([1, 2, 4, 8]),
        w=st.sampled_from([1, 2, 4]),
    )
    def test_property_valid_split_whenever_possible(self, k, h, w):
        par = Parallelism(k=k, h=h, w=w)
        if par.degree > 96:
            return
        try:
            cluster, pe = split_parallelism(par, 6, 16)
        except ValueError:
            return  # genuinely unsplittable factorisation
        assert cluster.degree <= 6 and pe.degree <= 16
        assert cluster.degree * pe.degree == par.degree


class TestParallelism:
    def test_c_cannot_be_parallelised(self):
        with pytest.raises(ValueError, match="C cannot"):
            Parallelism.from_mapping({Dim.C: 2})

    def test_replication_factors(self):
        """Weights are replicated across spatial/temporal PEs; inputs
        across filter PEs; psums never (Section IV-A4 multicast)."""
        from repro.core.dims import DataType

        par = Parallelism(h=4, w=2, k=3)
        assert par.replication(DataType.WEIGHTS) == 8  # h * w
        assert par.replication(DataType.INPUTS) == 3  # k
        assert par.replication(DataType.PSUMS) == 1

    def test_degree(self):
        assert Parallelism(h=4, w=2, k=3, f=2).degree == 48

    def test_describe(self):
        assert Parallelism().describe() == "serial"
        assert "Kp=6" in Parallelism(k=6, h=16).describe()


def hierarchy_for(layer, l2, l1, l0):
    return TileHierarchy(layer, (l2, l1, l0))


class TestUtilization:
    LAYER = ConvLayer("t", h=34, w=34, c=16, f=10, k=48, r=3, s=3, t=3)

    def test_full_when_everything_divides(self, morph_arch):
        """Kp=6 across clusters (6 K-subtiles in the L2 tile), Hp=16 across
        PEs (16 H-subtiles in the L1 tile): no idling anywhere."""
        hierarchy = hierarchy_for(
            self.LAYER,
            TileShape(w=32, h=32, c=16, k=48, f=8),
            TileShape(w=32, h=32, c=16, k=8, f=8),  # 6 K-tiles for 6 clusters
            TileShape(w=32, h=2, c=16, k=8, f=8),  # 16 H-tiles for 16 PEs
        )
        par = Parallelism(h=16, k=6)
        util = compute_utilization(hierarchy, morph_arch, par)
        assert util == pytest.approx(1.0)

    def test_idle_pes_penalise(self, morph_arch):
        hierarchy = hierarchy_for(
            self.LAYER,
            TileShape(w=32, h=32, c=16, k=48, f=8),
            TileShape(w=8, h=8, c=16, k=8, f=2),
            TileShape(w=2, h=2, c=16, k=8, f=1),
        )
        low = compute_utilization(hierarchy, morph_arch, Parallelism(h=4))
        assert low <= 4 / 96

    def test_imbalance_penalty(self, morph_arch):
        """Hp=2 lands at the cluster level, but the L2 tile holds a single
        L1-granularity H-tile: one of the two clusters always idles."""
        hierarchy = hierarchy_for(
            self.LAYER,
            TileShape(w=32, h=32, c=16, k=48, f=8),
            TileShape(w=8, h=32, c=16, k=48, f=8),
            TileShape(w=8, h=11, c=16, k=48, f=8),
        )
        par = Parallelism(h=2, k=1)
        util = compute_utilization(hierarchy, morph_arch, par)
        assert util == pytest.approx((2 / 96) * (1 / 2))

    def test_vector_lane_slack(self, morph_arch):
        """K tile of 4 on 8 lanes: half the lanes idle."""
        hierarchy = hierarchy_for(
            self.LAYER,
            TileShape(w=32, h=32, c=16, k=4, f=8),
            TileShape(w=32, h=32, c=16, k=4, f=8),
            TileShape(w=32, h=32, c=16, k=4, f=8),
        )
        util = compute_utilization(hierarchy, morph_arch, Parallelism())
        assert util == pytest.approx((1 / 96) * (4 / 8))

    @given(
        h=st.sampled_from([1, 2, 4, 8, 16]),
        k=st.sampled_from([1, 2, 3, 6]),
    )
    def test_property_bounded(self, h, k, morph_arch):
        hierarchy = hierarchy_for(
            self.LAYER,
            TileShape(w=16, h=16, c=16, k=32, f=4),
            TileShape(w=8, h=8, c=16, k=16, f=2),
            TileShape(w=4, h=2, c=8, k=8, f=1),
        )
        util = compute_utilization(hierarchy, morph_arch, Parallelism(h=h, k=k))
        assert 0 < util <= 1


class TestComputePerformance:
    def test_cycles_at_least_ideal(self, morph_arch):
        layer = ConvLayer("t", h=16, w=16, c=8, f=4, k=16, r=3, s=3, t=3)
        df = single_tile_dataflow(layer)
        traffic = compute_traffic(df)
        perf = compute_performance(traffic, morph_arch, df)
        ideal = layer.maccs / morph_arch.peak_maccs_per_cycle
        assert perf.cycles >= ideal

    def test_bandwidth_bound_detection(self, morph_arch):
        """1x1 conv with one MACC per weight byte: well-parallelised
        compute finishes long before the DRAM stream does."""
        layer = ConvLayer("wide", h=1, w=1, c=512, f=1, k=4096, r=1, s=1, t=1)
        df = Dataflow(
            LoopOrder.parse("WHCKF"),
            LoopOrder.parse("CFWHK"),
            TileHierarchy(layer, (TileShape.full(layer),) * 3),
            Parallelism(k=96),
        )
        traffic = compute_traffic(df)
        perf = compute_performance(traffic, morph_arch, df)
        assert perf.bound_by != "compute"
        assert perf.cycles == max(perf.bandwidth_cycles.values())

    def test_rejects_excess_parallelism(self, morph_arch):
        layer = ConvLayer("t", h=16, w=16, c=8, f=4, k=16, r=3, s=3, t=3)
        df = Dataflow(
            LoopOrder.parse("WHCKF"),
            LoopOrder.parse("CFWHK"),
            TileHierarchy(layer, (TileShape.full(layer),) * 3),
            Parallelism(h=200),
        )
        traffic = compute_traffic(df)
        with pytest.raises(ValueError, match="exceeds"):
            compute_performance(traffic, morph_arch, df)

    def test_runtime_uses_clock(self, morph_arch):
        layer = ConvLayer("t", h=16, w=16, c=8, f=4, k=16, r=3, s=3, t=3)
        df = single_tile_dataflow(layer)
        traffic = compute_traffic(df)
        perf = compute_performance(traffic, morph_arch, df)
        assert perf.runtime_s(1e9) == pytest.approx(perf.cycles / 1e9)

    def test_higher_parallelism_never_slower(self, morph_arch):
        layer = ConvLayer("t", h=34, w=34, c=16, f=10, k=48, r=3, s=3, t=3)
        hierarchy = hierarchy_for(
            layer,
            TileShape(w=32, h=32, c=16, k=48, f=8),
            TileShape(w=8, h=8, c=16, k=8, f=4),
            TileShape(w=4, h=2, c=16, k=8, f=2),
        )
        cycles = []
        for par in (Parallelism(), Parallelism(h=4, k=6), Parallelism(h=4, w=4, k=6)):
            df = Dataflow(
                LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"), hierarchy, par
            )
            traffic = compute_traffic(df)
            cycles.append(compute_performance(traffic, morph_arch, df).cycles)
        assert cycles[0] >= cycles[1] >= cycles[2]
