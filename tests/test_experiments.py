"""Tests for the experiment harness: structure and paper-shape assertions.

Full-scale runs live in ``benchmarks/``; here each experiment is exercised
on a reduced scope, asserting the qualitative shapes the paper reports.
"""

import pytest

from repro.experiments.common import SeriesResult, default_options, format_table
from repro.experiments.fig1_footprint import FIG1_BUILDS, run_figure1
from repro.experiments.fig4_loop_orders import run_figure4
from repro.experiments.fig5_hierarchy import LAYER_2D, LAYER_3D, run_figure5
from repro.experiments.fig9_energy import run_figure9
from repro.experiments.fig10_perf_watt import run_figure10
from repro.experiments.table3_configs import run_table3
from repro.experiments.table4_area import PAPER_TABLE4, run_table4


class TestCommon:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("xyz", 0.001)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "xyz" in lines[3]

    def test_series_result(self):
        series = SeriesResult("s", ("a", "b"), (1.0, 2.0))
        assert series.value_for("b") == 2.0
        with pytest.raises(KeyError):
            series.value_for("c")

    def test_default_options_fast_flag(self):
        assert default_options(True).max_l2_candidates < (
            default_options(False).max_l2_candidates
        )


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure1()

    def test_covers_six_networks(self, result):
        assert {fp.network for fp in result.footprints} == set(FIG1_BUILDS)

    def test_observation1_footprints_exceed_onchip(self, result):
        """3D working sets far exceed a 1 MB buffer at 224^2 x 16f."""
        for network in ("C3D", "ResNet3D-50", "I3D"):
            assert result.max_footprint(network) > 1024 * 1024

    def test_observation2_footprints_vary(self, result):
        layers = result.network_layers("C3D")
        totals = [fp.input_bytes + fp.weight_bytes for fp in layers]
        assert max(totals) / min(totals) > 3

    def test_observation3_reuse_gap(self, result):
        """Figure 1b: 3D nets average several times the 2D reuse."""
        assert result.reuse_ratio_3d_over_2d() > 2.0

    def test_input_dominates_early_weights_late(self, result):
        layers = result.network_layers("C3D")
        assert layers[0].input_bytes > layers[0].weight_bytes
        assert layers[-1].weight_bytes > layers[-1].input_bytes


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure4(fast=True, layers=("layer1", "layer3b", "layer5b"))

    def test_rows_per_layer(self, result):
        assert result.layer_names == ("layer1", "layer3b", "layer5b")
        for series in result.dram_energy.values():
            assert len(series) == 3

    def test_opt_never_worse_dram(self, result):
        assert result.opt_never_worse("dram")

    def test_opt_never_worse_onchip(self, result):
        assert result.opt_never_worse("onchip")

    def test_extreme_orders_diverge_somewhere(self, result):
        """[KWHCF] and [WFHCK] are extremes; they cannot tie everywhere."""
        a = result.dram_energy["KWHCF"]
        b = result.dram_energy["WFHCK"]
        assert any(abs(x - y) / max(x, y, 1) > 0.01 for x, y in zip(a, b))

    def test_l2_allocation_fractions_valid(self, result):
        for fractions in result.l2_allocation:
            assert all(0 <= f <= 1.0 for f in fractions)
            assert sum(fractions) <= 1.0 + 1e-9

    def test_allocation_shifts_towards_weights(self, result):
        """Figure 4b: inputs dominate the L2 early, weights late."""
        first, last = result.l2_allocation[0], result.l2_allocation[-1]
        assert first[0] > first[2]  # layer1: inputs > weights
        assert last[2] > last[0]  # layer5b: weights > inputs


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure5(max_levels=4)

    def test_paper_shapes(self, result):
        """Hierarchy helps both nets, helps 3D more, and saturates: the
        best depth is 2-3 levels and a fourth level only adds traffic.
        (Our model's compulsory-DRAM floor caps the advantage earlier than
        the paper's 7.8x — see EXPERIMENTS.md.)"""
        assert result.best_depth(is_3d=True) in (2, 3)
        assert result.best_depth(is_3d=False) in (2, 3)
        adv3 = result.advantage(True)
        adv2 = result.advantage(False)
        assert max(adv3) > max(adv2)  # hierarchy pays off more for 3D
        assert adv3[3] <= adv3[2] * 1.01  # no gain from a fourth level
        assert adv3[2] >= 0.9 * max(adv3)  # three levels near-optimal

    def test_multi_level_always_helps(self, result):
        assert all(a >= 0.99 for a in result.advantage(True))

    def test_caption_layers(self):
        assert LAYER_3D.f == 16 and LAYER_3D.t == 3
        assert LAYER_2D.f == 1 and LAYER_2D.t == 1


class TestFigure9Reduced:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure9(fast=True, networks=("c3d", "alexnet"))

    def test_3d_ranking(self, result):
        """Morph < Morph_base < Eyeriss on C3D."""
        c3d = result.by_name("C3D")
        assert c3d.total("Morph") < c3d.total("Morph_base") < c3d.total("Eyeriss")

    def test_2d_crossover(self, result):
        """Section VI-D: Eyeriss beats Morph_base on AlexNet; Morph still
        beats Eyeriss."""
        alex = result.by_name("AlexNet")
        assert alex.total("Eyeriss") < alex.total("Morph_base")
        assert alex.total("Morph") < alex.total("Eyeriss")

    def test_normalisation(self, result):
        for entry in result.networks:
            assert entry.normalised_total("Eyeriss") == pytest.approx(1.0)

    def test_components_positive(self, result):
        for entry in result.networks:
            for accel, comps in entry.components.items():
                assert comps["DRAM"] > 0
                assert comps["Compute"] > 0


class TestFigure10Reduced:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure10(fast=True, networks=("c3d", "alexnet"))

    def test_morph_improves_perf_per_watt(self, result):
        for entry in result.entries:
            assert entry.improvement > 1.0

    def test_utilisation_gain_on_3d(self, result):
        """The improvement's stated cause: better PE utilisation.  On 2D
        nets the fixed Hp=16/Kp=6 happens to fit large spatial maps, so
        Morph's win there comes from energy instead."""
        for entry in result.entries:
            if entry.is_3d:
                assert entry.morph_utilization > entry.base_utilization

    def test_average(self, result):
        assert result.average_improvement > 1.0


class TestTable3Reduced:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3(fast=True, layers=("layer1", "layer5b"))

    def test_row_fields(self, result):
        row = result.row("layer1")
        assert row.kt >= 1
        assert row.kp_vw % 8 == 0  # multiples of the vector width

    def test_layer1_ht_in_input_space(self, result):
        """Paper Table III: layer1 Ht counts input rows incl. padding, so
        it can reach 114 (= 112 + 2)."""
        assert result.row("layer1").ht <= 114

    def test_ft_bounded_by_frames(self, result):
        assert result.row("layer1").ft <= 18  # 16 frames + 2 padding
        assert result.row("layer5b").ft <= 4  # 2 frames + 2 padding

    def test_missing_layer_raises(self, result):
        with pytest.raises(KeyError):
            result.row("layer9")


class TestTable4:
    def test_every_component_close_to_paper(self):
        result = run_table4()
        for name, (p_base, p_flex, _) in PAPER_TABLE4.items():
            base, flex, _ = result.component(name)
            assert base == pytest.approx(p_base, rel=0.15), name
            assert flex == pytest.approx(p_flex, rel=0.15), name

    def test_headline_five_percent(self):
        result = run_table4()
        assert result.overheads["total"] == pytest.approx(0.0498, abs=0.015)
