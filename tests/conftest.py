"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.arch.accelerator import eyeriss_like, morph, morph_base
from repro.core.layer import ConvLayer

# Model evaluations inside property tests are CPU-bound, not flaky: disable
# the deadline and the too-slow health check, and keep example counts modest.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        # Immutable layer/arch fixtures are safe to share across examples.
        HealthCheck.function_scoped_fixture,
    ],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def morph_arch():
    return morph()


@pytest.fixture(scope="session")
def morph_base_arch():
    return morph_base()


@pytest.fixture(scope="session")
def eyeriss_arch():
    return eyeriss_like()


@pytest.fixture
def small_layer() -> ConvLayer:
    """A small 3D layer whose dims divide evenly for exact-match tests."""
    return ConvLayer("small", h=12, w=12, c=8, f=6, k=8, r=3, s=3, t=3)


@pytest.fixture
def c3d_layer1() -> ConvLayer:
    return ConvLayer(
        "layer1", h=112, w=112, c=3, f=16, k=64, r=3, s=3, t=3,
        pad_h=1, pad_w=1, pad_f=1,
    )


@pytest.fixture
def layer_2d() -> ConvLayer:
    """2D convolution as the F = T = 1 special case."""
    return ConvLayer("conv2d", h=28, w=28, c=16, f=1, k=32, r=3, s=3, t=1)
