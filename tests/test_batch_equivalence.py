"""Scalar-vs-batch equivalence harness for the columnar model core.

The batch pipeline (:mod:`repro.core.batch`) must be a semantic-preserving
rewrite of the scalar analytic models: same equations, same chosen
configurations, bit-identical scores.  These tests pin that contract:

* a property test over random layers (shapes, strides, dilations),
  random tile hierarchies, loop orders and parallelisms compares
  ``CandidateBatch.scores`` against per-candidate scalar evaluations;
* a property test over random layers and all four objectives compares
  the full vectorized search against the scalar reference search;
* a per-registered-network sweep (slow tier) asserts every layer of every
  workload chooses the identical configuration either way.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.accelerator import eyeriss_like, morph, morph_base
from repro.core.batch import CandidateBatch
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.evaluate import CapacityError, evaluate
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder, all_loop_orders
from repro.core.tiling import TileHierarchy, TileShape
from repro.optimizer.search import (
    OBJECTIVES,
    LayerOptimizer,
    OptimizerOptions,
    optimize_network,
)
from repro.workloads import build_network, network_names

ARCHES = {"morph": morph, "morph_base": morph_base, "eyeriss": eyeriss_like}

SMALL_OPTIONS = OptimizerOptions(
    max_l2_candidates=4,
    keep_allocations=2,
    keep_per_level=2,
    max_parallelism_candidates=2,
)


@st.composite
def layers(draw) -> ConvLayer:
    """Random (possibly strided/dilated) 3D conv layers."""
    r = draw(st.integers(1, 3))
    s = draw(st.integers(1, 3))
    t = draw(st.integers(1, 3))
    dil_h = draw(st.integers(1, 3))
    dil_w = draw(st.integers(1, 3))
    dil_f = draw(st.integers(1, 2))
    span_h = (r - 1) * dil_h + 1
    span_w = (s - 1) * dil_w + 1
    span_f = (t - 1) * dil_f + 1
    h = draw(st.integers(span_h, 24))
    w = draw(st.integers(span_w, 24))
    f = draw(st.integers(span_f, 8))
    return ConvLayer(
        "prop",
        h=h,
        w=w,
        c=draw(st.integers(1, 48)),
        f=f,
        k=draw(st.integers(1, 64)),
        r=r,
        s=s,
        t=t,
        stride_h=draw(st.integers(1, 2)),
        stride_w=draw(st.integers(1, 2)),
        stride_f=draw(st.integers(1, 2)),
        pad_h=draw(st.integers(0, 2)),
        pad_w=draw(st.integers(0, 2)),
        pad_f=draw(st.integers(0, 1)),
        dilation_h=dil_h,
        dilation_w=dil_w,
        dilation_f=dil_f,
    )


def _random_tile(draw, full: TileShape) -> TileShape:
    return TileShape(
        w=draw(st.integers(1, full.w)),
        h=draw(st.integers(1, full.h)),
        c=draw(st.integers(1, full.c)),
        k=draw(st.integers(1, full.k)),
        f=draw(st.integers(1, full.f)),
    )


@st.composite
def evaluation_cases(draw):
    """(layer, arch, hierarchies, orders, parallelisms) for score checks."""
    layer = draw(layers())
    arch_name = draw(st.sampled_from(sorted(ARCHES)))
    arch = ARCHES[arch_name]()
    full = TileShape.full(layer)
    hierarchies = [
        tuple(_random_tile(draw, full) for _ in range(arch.num_levels))
        for _ in range(draw(st.integers(1, 3)))
    ]
    order_pool = list(all_loop_orders())
    orders = tuple(
        draw(st.sampled_from(order_pool)) for _ in range(draw(st.integers(1, 3)))
    )
    par_pool = [
        Parallelism(),
        Parallelism(k=arch.clusters, h=arch.pes_per_cluster),
        Parallelism(h=min(4, arch.total_pes)),
    ]
    parallelisms = tuple(par_pool[: draw(st.integers(1, 3))])
    return layer, arch, hierarchies, orders, parallelisms


class TestBatchScoresMatchScalar:
    """CandidateBatch.scores == per-candidate scalar evaluation, bitwise."""

    @given(case=evaluation_cases(), objective=st.sampled_from(sorted(OBJECTIVES)))
    @settings(max_examples=40)
    def test_scores_bitwise_equal(self, case, objective):
        layer, arch, hierarchies, orders, parallelisms = case
        rows = [
            (hi, oi, ii, pi)
            for hi in range(len(hierarchies))
            for oi in range(len(orders))
            for ii in range(len(orders))
            for pi in range(len(parallelisms))
        ]
        n = len(rows)
        tiles = np.empty((arch.num_levels, 5, n), dtype=np.int64)
        outer = np.empty(n, dtype=np.int64)
        inner = np.empty(n, dtype=np.int64)
        par = np.empty(n, dtype=np.int64)
        for i, (hi, oi, ii, pi) in enumerate(rows):
            for lvl, tile in enumerate(hierarchies[hi]):
                tiles[lvl, :, i] = (tile.w, tile.h, tile.c, tile.k, tile.f)
            outer[i], inner[i], par[i] = oi, ii, pi
        batch = CandidateBatch(
            layer, arch, orders, parallelisms, tiles, outer, inner, par
        )
        scores = batch.scores(objective)

        for i, (hi, oi, ii, pi) in enumerate(rows):
            dataflow = Dataflow(
                orders[oi],
                orders[ii],
                TileHierarchy(layer, hierarchies[hi]),
                parallelisms[pi],
            )
            try:
                expected = OBJECTIVES[objective](evaluate(dataflow, arch))
            except CapacityError:
                assert math.isinf(scores[i]), (i, rows[i])
                continue
            assert scores[i] == expected, (i, rows[i], scores[i], expected)

    @given(case=evaluation_cases())
    @settings(max_examples=20)
    def test_materialized_row_matches_scalar(self, case):
        layer, arch, hierarchies, orders, parallelisms = case
        tiles = np.empty((arch.num_levels, 5, 1), dtype=np.int64)
        for lvl, tile in enumerate(hierarchies[0]):
            tiles[lvl, :, 0] = (tile.w, tile.h, tile.c, tile.k, tile.f)
        batch = CandidateBatch(
            layer, arch, orders, parallelisms, tiles,
            np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
        )
        dataflow = batch.dataflow(0)
        assert dataflow.hierarchy == TileHierarchy(layer, hierarchies[0])
        assert dataflow.outer_order == orders[0]
        assert dataflow.parallelism == parallelisms[0]


class TestSearchEquivalence:
    """Vectorized LayerOptimizer == scalar LayerOptimizer, end to end."""

    @given(
        layer=layers(),
        objective=st.sampled_from(sorted(OBJECTIVES)),
        arch_name=st.sampled_from(sorted(ARCHES)),
    )
    @settings(max_examples=10, deadline=None)
    def test_same_choice_and_score(self, layer, objective, arch_name):
        arch = ARCHES[arch_name]()
        options = SMALL_OPTIONS.with_(objective=objective)
        try:
            scalar = LayerOptimizer(
                arch, options.with_(vectorize=False)
            ).optimize(layer)
        except CapacityError:
            with pytest.raises(CapacityError):
                LayerOptimizer(arch, options.with_(vectorize=True)).optimize(layer)
            return
        batch = LayerOptimizer(arch, options.with_(vectorize=True)).optimize(layer)
        assert batch.best.dataflow == scalar.best.dataflow
        assert batch.score == scalar.score  # bit-identical, stronger than 1e-9
        assert batch.score == pytest.approx(scalar.score, rel=1e-9)

    def test_dilated_layer_equivalence(self):
        layer = ConvLayer(
            "dil", h=14, w=14, c=64, f=4, k=96, r=3, s=3, t=3,
            pad_h=2, pad_w=2, pad_f=2,
            dilation_h=2, dilation_w=2, dilation_f=2,
        )
        for arch_factory in ARCHES.values():
            arch = arch_factory()
            options = OptimizerOptions.fast()
            scalar = LayerOptimizer(
                arch, options.with_(vectorize=False)
            ).optimize(layer)
            batch = LayerOptimizer(
                arch, options.with_(vectorize=True)
            ).optimize(layer)
            assert batch.best.dataflow == scalar.best.dataflow
            assert batch.score == scalar.score


class TestEngineKnob:
    """The vectorize knob changes speed only — never results or keys."""

    def test_signature_excludes_vectorize(self):
        from repro.optimizer.engine import search_signature

        layer = ConvLayer("sig", h=8, w=8, c=4, f=2, k=8, r=3, s=3, t=1,
                          pad_h=1, pad_w=1)
        arch = morph()
        on = search_signature(layer, arch, OptimizerOptions(vectorize=True))
        off = search_signature(layer, arch, OptimizerOptions(vectorize=False))
        assert on == off

    def test_env_escape_hatch(self, monkeypatch):
        from repro.optimizer import engine

        engine.reset_engine_defaults()
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        assert engine.default_vectorize() is False
        monkeypatch.setenv("REPRO_VECTORIZE", "1")
        assert engine.default_vectorize() is True
        monkeypatch.delenv("REPRO_VECTORIZE")
        assert engine.default_vectorize() is True  # numpy is available

    def test_set_engine_defaults_round_trip(self):
        from repro.optimizer import engine

        try:
            with pytest.deprecated_call():
                engine.set_engine_defaults(vectorize=False)
            assert engine.default_vectorize() is False
            opt = LayerOptimizer(morph(), OptimizerOptions())
            assert opt.vectorize is False
        finally:
            engine.reset_engine_defaults()

    def test_optimize_network_knob_identical(self):
        layer = ConvLayer(
            "net", h=12, w=12, c=16, f=4, k=24, r=3, s=3, t=3,
            pad_h=1, pad_w=1, pad_f=1,
        )
        options = SMALL_OPTIONS
        scalar = optimize_network(
            (layer,), morph(), options, use_cache=False, parallelism=1,
            vectorize=False,
        )
        batch = optimize_network(
            (layer,), morph(), options, use_cache=False, parallelism=1,
            vectorize=True,
        )
        assert scalar.layers[0].best.dataflow == batch.layers[0].best.dataflow
        assert scalar.total_energy_pj == batch.total_energy_pj


@pytest.mark.slow
class TestRegisteredNetworkEquivalence:
    """Acceptance gate: identical choices on every registered network."""

    @pytest.mark.parametrize("name", network_names())
    def test_network_identical(self, name):
        network = build_network(name)
        options = OptimizerOptions.fast()
        arch = morph()
        scalar = optimize_network(
            network.layers, arch, options, network_name=network.name,
            use_cache=False, parallelism=1, vectorize=False,
        )
        batch = optimize_network(
            network.layers, arch, options, network_name=network.name,
            use_cache=False, parallelism=1, vectorize=True,
        )
        for a, b in zip(scalar.layers, batch.layers):
            assert a.best.dataflow == b.best.dataflow, a.layer.name
            assert a.score == b.score, a.layer.name
        assert scalar.total_energy_pj == batch.total_energy_pj
        assert scalar.total_cycles == batch.total_cycles
