"""Cross-cutting model properties: conservation, determinism, scaling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access_model import compute_traffic
from repro.core.dataflow import Dataflow
from repro.core.dims import ALL_DIMS, DataType
from repro.core.evaluate import evaluate
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import Precision, TileHierarchy, TileShape

ORDERS = ["WHCKF", "KWHCF", "WFKHC", "CKWHF", "FKCWH"]


@st.composite
def any_config(draw):
    layer = ConvLayer(
        "prop",
        h=draw(st.integers(4, 20)),
        w=draw(st.integers(4, 20)),
        c=draw(st.integers(1, 16)),
        f=draw(st.integers(1, 8)),
        k=draw(st.integers(1, 16)),
        r=draw(st.sampled_from([1, 3])),
        s=draw(st.sampled_from([1, 3])),
        t=1,
    )
    tiles = []
    parent = TileShape.full(layer)
    for _ in range(draw(st.integers(1, 3))):
        tile = TileShape.from_mapping(
            {d: draw(st.integers(1, parent.extent(d))) for d in ALL_DIMS}
        )
        tiles.append(tile)
        parent = tile.clipped(parent)
    return Dataflow(
        LoopOrder.parse(draw(st.sampled_from(ORDERS))),
        LoopOrder.parse(draw(st.sampled_from(ORDERS))),
        TileHierarchy(layer, tuple(tiles)),
    )


class TestConservation:
    @given(dataflow=any_config())
    @settings(max_examples=40)
    def test_dram_traffic_at_least_compulsory(self, dataflow):
        """DRAM reads can never drop below each tensor's (padded) footprint
        and writes never below the final output."""
        layer = dataflow.layer
        report = compute_traffic(dataflow)
        dram = report.dram_boundary
        full = TileShape.full(layer)
        assert dram.of(DataType.INPUTS).fill_bytes >= full.bytes_of(
            DataType.INPUTS, layer
        )
        assert dram.of(DataType.WEIGHTS).fill_bytes >= layer.weight_bytes()
        assert report.dram_write_bytes >= layer.output_elements

    @given(dataflow=any_config())
    @settings(max_examples=40)
    def test_traffic_nonincreasing_with_depth(self, dataflow):
        """Each deeper boundary moves at least as many bytes as the one
        above it for inputs/weights: inner buffers are smaller, so reuse
        can only get worse going down."""
        report = compute_traffic(dataflow)
        for shallow, deep in zip(report.boundaries, report.boundaries[1:]):
            for dt in (DataType.INPUTS, DataType.WEIGHTS):
                assert deep.of(dt).fill_bytes >= shallow.of(dt).fill_bytes

    @given(dataflow=any_config())
    @settings(max_examples=40)
    def test_psum_writeback_covers_loads_plus_output(self, dataflow):
        """Every loaded psum byte is written back, plus the initial pass."""
        report = compute_traffic(dataflow)
        layer = dataflow.layer
        out_psum = layer.output_elements * 4
        for i, boundary in enumerate(report.boundaries):
            t = boundary.of(DataType.PSUMS)
            if i == 0:
                continue  # DRAM writeback is width-adjusted
            assert t.writeback_bytes == t.load_bytes + min(t.fill_bytes, out_psum)


class TestPrecisionScaling:
    def test_psum_bytes_scale_linearly(self, small_layer):
        tiles = (TileShape(w=5, h=5, c=2, k=4, f=2),) * 2
        df = Dataflow(
            LoopOrder.parse("CKWHF"), LoopOrder.parse("WHCKF"),
            TileHierarchy(small_layer, tiles),
        )
        narrow = compute_traffic(df, Precision(psum_bytes=4))
        wide = compute_traffic(df, Precision(psum_bytes=8))
        for b4, b8 in zip(narrow.boundaries, wide.boundaries):
            assert b8.of(DataType.PSUMS).fill_bytes == 2 * b4.of(
                DataType.PSUMS
            ).fill_bytes

    def test_activation_bytes_scale_inputs_only(self, small_layer):
        tiles = (TileShape(w=5, h=5, c=2, k=4, f=2),) * 2
        df = Dataflow(
            LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"),
            TileHierarchy(small_layer, tiles),
        )
        one = compute_traffic(df, Precision(activation_bytes=1))
        two = compute_traffic(df, Precision(activation_bytes=2))
        assert two.dram_boundary.of(DataType.INPUTS).fill_bytes == (
            2 * one.dram_boundary.of(DataType.INPUTS).fill_bytes
        )
        assert two.dram_boundary.of(DataType.WEIGHTS).fill_bytes == (
            one.dram_boundary.of(DataType.WEIGHTS).fill_bytes
        )


class TestSlideReuseInvariant:
    def test_f_tiling_free_under_f_slide(self, small_layer):
        """With F as the innermost (sliding) loop and nothing else tiled,
        halving the F tile does not change DRAM input bytes: the slide
        telescopes to the union either way."""
        def df(f_tile):
            tiles = (TileShape(w=10, h=10, c=8, k=8, f=f_tile),) * 2
            return Dataflow(
                LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"),
                TileHierarchy(small_layer, tiles),
            )

        full = compute_traffic(df(4)).dram_boundary.of(DataType.INPUTS)
        halved = compute_traffic(df(2)).dram_boundary.of(DataType.INPUTS)
        assert full.fill_bytes == halved.fill_bytes


class TestDeterminism:
    def test_evaluation_is_pure(self, morph_arch, small_layer):
        tiles = (TileShape(w=5, h=5, c=4, k=4, f=2),) * 3
        df = Dataflow(
            LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"),
            TileHierarchy(small_layer, tiles),
        )
        a = evaluate(df, morph_arch, check_capacity=False)
        b = evaluate(df, morph_arch, check_capacity=False)
        assert a.total_energy_pj == b.total_energy_pj
        assert a.cycles == b.cycles

    def test_optimizer_is_deterministic(self, morph_arch):
        from repro.optimizer.search import LayerOptimizer, OptimizerOptions

        layer = ConvLayer(
            "det", h=14, w=14, c=32, f=4, k=64, r=3, s=3, t=3,
            pad_h=1, pad_w=1, pad_f=1,
        )
        opts = OptimizerOptions.fast()
        first = LayerOptimizer(morph_arch, opts).optimize(layer)
        second = LayerOptimizer(morph_arch, opts).optimize(layer)
        assert first.best.total_energy_pj == second.best.total_energy_pj
        assert first.best.dataflow.describe() == second.best.dataflow.describe()


class TestFlexibilityDominance:
    @pytest.mark.parametrize("outer", ["KWHCF", "WFHCK", "CKWHF"])
    def test_free_search_never_loses_to_pinned(self, morph_arch, outer):
        """The free search space contains every pinned-order space."""
        from repro.optimizer.search import LayerOptimizer, OptimizerOptions

        layer = ConvLayer(
            "dom", h=14, w=14, c=64, f=4, k=64, r=3, s=3, t=3,
            pad_h=1, pad_w=1, pad_f=1,
        )
        opts = OptimizerOptions.fast()
        free = LayerOptimizer(morph_arch, opts).optimize(layer)
        pinned = LayerOptimizer(
            morph_arch, opts.with_(fixed_outer_order=LoopOrder.parse(outer))
        ).optimize(layer)
        assert free.best.total_energy_pj <= pinned.best.total_energy_pj * 1.001
