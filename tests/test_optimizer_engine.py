"""Tests for the parallel, deduplicated, persistent optimizer engine."""

import json

import pytest

from repro.core.layer import ConvLayer
from repro.optimizer.engine import (
    DiskConfigCache,
    OptimizerEngine,
    clear_memory_caches,
    default_parallelism,
    optimize_layer,
    reset_engine_defaults,
    search_signature,
    set_engine_defaults,
    signature_key,
)
from repro.optimizer.search import (
    OBJECTIVES,
    LayerOptimizer,
    OptimizerOptions,
    clear_cache,
    objective_lower_bound,
    optimize_network,
)

FAST = OptimizerOptions.fast()

#: Small layers; "a" and "a-again" share a shape under different names.
LAYER_A = ConvLayer("a", h=14, w=14, c=32, f=4, k=64, r=3, s=3, t=3,
                    pad_h=1, pad_w=1, pad_f=1)
LAYER_A2 = ConvLayer("a-again", h=14, w=14, c=32, f=4, k=64, r=3, s=3, t=3,
                     pad_h=1, pad_w=1, pad_f=1)
LAYER_B = ConvLayer("b", h=7, w=7, c=64, f=2, k=64, r=3, s=3, t=3,
                    pad_h=1, pad_w=1, pad_f=1)
NETWORK = (LAYER_A, LAYER_B, LAYER_A2)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_cache()
    reset_engine_defaults()
    yield
    clear_cache()
    reset_engine_defaults()


class TestObjectiveScoring:
    """LayerResult.score must report the configured objective, not energy."""

    @pytest.mark.parametrize("objective", sorted(OBJECTIVES))
    def test_score_matches_objective(self, morph_arch, objective):
        options = FAST.with_(objective=objective)
        result = LayerOptimizer(morph_arch, options).optimize(LAYER_B)
        assert result.objective == objective
        assert result.score == OBJECTIVES[objective](result.best)

    def test_score_survives_engine_paths(self, morph_arch, tmp_path):
        options = FAST.with_(objective="latency")
        cold = optimize_layer(LAYER_B, morph_arch, options, cache_dir=tmp_path)
        clear_cache()
        warm = optimize_layer(LAYER_B, morph_arch, options, cache_dir=tmp_path)
        assert cold.objective == warm.objective == "latency"
        assert warm.score == pytest.approx(cold.best.cycles)


class TestLowerBound:
    """The early-prune bound must never exceed a real evaluation's score."""

    @pytest.mark.parametrize("objective", sorted(OBJECTIVES))
    def test_bound_is_sound(self, morph_arch, objective):
        options = FAST.with_(objective=objective)
        result = LayerOptimizer(morph_arch, options).optimize(LAYER_B)
        ev = result.best
        bound = objective_lower_bound(
            LAYER_B, morph_arch, ev.dataflow.hierarchy.outermost,
            ev.dataflow.outer_order, objective,
        )
        assert bound <= OBJECTIVES[objective](ev) * (1 + 1e-12)

    def test_pruning_preserves_the_optimum(self, morph_arch, monkeypatch):
        pruned = LayerOptimizer(morph_arch, FAST).optimize(LAYER_A)
        import repro.optimizer.search as search_module

        monkeypatch.setattr(
            search_module, "bound_from_terms",
            lambda *args, **kwargs: float("-inf"),
        )
        unpruned = LayerOptimizer(morph_arch, FAST).optimize(LAYER_A)
        assert pruned.best.dataflow == unpruned.best.dataflow
        assert pruned.best.total_energy_pj == unpruned.best.total_energy_pj
        # Pruning may only remove work, never results.
        assert pruned.evaluated <= unpruned.evaluated
        assert unpruned.pruned == 0


class TestParallelismCandidates:
    def test_candidate_count_respects_the_knob(self, morph_arch):
        """The canonical default must not push the list past the budget."""
        for budget in (1, 2, 4):
            options = FAST.with_(max_parallelism_candidates=budget)
            chosen, _ = LayerOptimizer(morph_arch, options)._parallelisms(
                LAYER_A
            )
            assert len(chosen) <= budget
            from repro.core.dataflow import Parallelism

            default = Parallelism(
                k=morph_arch.clusters, h=morph_arch.pes_per_cluster
            )
            assert default in chosen

    def test_zero_budget_keeps_the_canonical_default(self, morph_arch):
        from repro.core.dataflow import Parallelism

        options = FAST.with_(max_parallelism_candidates=0)
        chosen, displaced = LayerOptimizer(morph_arch, options)._parallelisms(
            LAYER_A
        )
        assert chosen == [
            Parallelism(k=morph_arch.clusters, h=morph_arch.pes_per_cluster)
        ]
        assert displaced == 0


class TestDeduplication:
    def test_duplicate_shapes_searched_once(self, morph_arch):
        engine = OptimizerEngine(morph_arch, FAST, use_cache=False)
        results = engine.optimize_layers(NETWORK)
        assert engine.stats.requested == 3
        assert engine.stats.unique == 2
        assert engine.stats.dedup_hits == 1
        assert engine.stats.searched == 2

    def test_fanned_out_results_keep_their_names(self, morph_arch):
        engine = OptimizerEngine(morph_arch, FAST, use_cache=False)
        results = engine.optimize_layers(NETWORK)
        assert [r.layer.name for r in results] == ["a", "b", "a-again"]
        # The rebound evaluation names the occurrence all the way down.
        assert results[2].best.layer.name == "a-again"
        assert results[2].best.dataflow.hierarchy.layer.name == "a-again"

    def test_fanned_out_results_are_identical(self, morph_arch):
        engine = OptimizerEngine(morph_arch, FAST, use_cache=False)
        results = engine.optimize_layers(NETWORK)
        direct = LayerOptimizer(morph_arch, FAST).optimize(LAYER_A2)
        assert results[2].best.total_energy_pj == pytest.approx(
            direct.best.total_energy_pj
        )
        assert results[2].best.dataflow.hierarchy.tiles == (
            direct.best.dataflow.hierarchy.tiles
        )


class TestParallelEngine:
    def test_parallel_equals_serial_layer_by_layer(self, morph_arch):
        serial = OptimizerEngine(
            morph_arch, FAST, parallelism=1, use_cache=False
        ).optimize_layers(NETWORK)
        parallel = OptimizerEngine(
            morph_arch, FAST, parallelism=2, use_cache=False
        ).optimize_layers(NETWORK)
        assert len(serial) == len(parallel)
        for s, p in zip(serial, parallel):
            assert s.layer == p.layer
            assert s.best.dataflow == p.best.dataflow
            assert s.best.total_energy_pj == p.best.total_energy_pj
            assert s.evaluated == p.evaluated

    def test_network_aggregates_match_serial_path(self, morph_arch):
        serial = optimize_network(
            NETWORK, morph_arch, FAST, network_name="net", use_cache=False,
            parallelism=1,
        )
        parallel = optimize_network(
            NETWORK, morph_arch, FAST, network_name="net", use_cache=False,
            parallelism=2,
        )
        assert parallel.total_energy_pj == pytest.approx(serial.total_energy_pj)
        assert parallel.total_cycles == pytest.approx(serial.total_cycles)
        assert parallel.total_maccs == serial.total_maccs


class TestDiskCache:
    def test_round_trip_hit(self, morph_arch, tmp_path):
        cold_engine = OptimizerEngine(morph_arch, FAST, cache_dir=tmp_path)
        cold = cold_engine.optimize_layers((LAYER_B,))
        assert cold_engine.stats.disk_misses == 1
        assert list(tmp_path.glob("*.json"))

        clear_cache()  # drop the in-process memo: force the disk path
        warm_engine = OptimizerEngine(morph_arch, FAST, cache_dir=tmp_path)
        warm = warm_engine.optimize_layers((LAYER_B,))
        assert warm_engine.stats.disk_hits == 1
        assert warm_engine.stats.searched == 0
        assert warm[0].best.total_energy_pj == pytest.approx(
            cold[0].best.total_energy_pj
        )
        assert warm[0].best.dataflow == cold[0].best.dataflow

    def test_miss_on_different_options(self, morph_arch, tmp_path):
        OptimizerEngine(morph_arch, FAST, cache_dir=tmp_path).optimize_layers(
            (LAYER_B,)
        )
        clear_cache()
        other = OptimizerEngine(
            morph_arch, FAST.with_(objective="latency"), cache_dir=tmp_path
        )
        other.optimize_layers((LAYER_B,))
        assert other.stats.disk_hits == 0
        assert other.stats.searched == 1

    def test_stale_signature_invalidates(self, morph_arch, tmp_path):
        engine = OptimizerEngine(morph_arch, FAST, cache_dir=tmp_path)
        engine.optimize_layers((LAYER_B,))
        (record_path,) = tmp_path.glob("*.json")
        payload = json.loads(record_path.read_text())
        payload["signature"]["arch"] = "a different machine"
        record_path.write_text(json.dumps(payload))

        clear_cache()
        rerun = OptimizerEngine(morph_arch, FAST, cache_dir=tmp_path)
        rerun.optimize_layers((LAYER_B,))
        assert rerun.stats.disk_hits == 0
        assert rerun.stats.searched == 1
        # The stale record was rewritten with the current signature.
        restored = json.loads(record_path.read_text())
        assert restored["signature"] == search_signature(
            LAYER_B, morph_arch, FAST
        )

    def test_corrupt_record_is_a_miss(self, morph_arch, tmp_path):
        engine = OptimizerEngine(morph_arch, FAST, cache_dir=tmp_path)
        engine.optimize_layers((LAYER_B,))
        (record_path,) = tmp_path.glob("*.json")
        record_path.write_text("{ not json")
        clear_cache()
        rerun = OptimizerEngine(morph_arch, FAST, cache_dir=tmp_path)
        rerun.optimize_layers((LAYER_B,))
        assert rerun.stats.searched == 1

    def test_use_cache_false_skips_disk(self, morph_arch, tmp_path):
        engine = OptimizerEngine(
            morph_arch, FAST, cache_dir=tmp_path, use_cache=False
        )
        engine.optimize_layers((LAYER_B,))
        assert not list(tmp_path.glob("*.json"))

    def test_cache_dir_false_overrides_env_default(
        self, morph_arch, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        engine = OptimizerEngine(morph_arch, FAST, cache_dir=False)
        engine.optimize_layers((LAYER_B,))
        assert engine.disk is None
        assert not list(tmp_path.glob("*.json"))

    def test_cache_dir_must_not_be_a_file(self, morph_arch, tmp_path):
        target = tmp_path / "record.json"
        target.write_text("{}")
        with pytest.raises(ValueError, match="not a directory"):
            OptimizerEngine(morph_arch, FAST, cache_dir=target)

    def test_malformed_dataflow_record_is_a_miss(self, morph_arch, tmp_path):
        engine = OptimizerEngine(morph_arch, FAST, cache_dir=tmp_path)
        engine.optimize_layers((LAYER_B,))
        (record_path,) = tmp_path.glob("*.json")
        payload = json.loads(record_path.read_text())
        payload["dataflow"]["tiles"][0]["bogus_field"] = 1  # TypeError on load
        record_path.write_text(json.dumps(payload))
        clear_cache()
        rerun = OptimizerEngine(morph_arch, FAST, cache_dir=tmp_path)
        rerun.optimize_layers((LAYER_B,))
        assert rerun.stats.disk_hits == 0
        assert rerun.stats.searched == 1


class TestSignatures:
    def test_name_excluded_from_search_signature(self, morph_arch):
        assert search_signature(LAYER_A, morph_arch, FAST) == search_signature(
            LAYER_A2, morph_arch, FAST
        )

    def test_shape_and_knobs_change_the_key(self, morph_arch, morph_base_arch):
        base = signature_key(search_signature(LAYER_A, morph_arch, FAST))
        assert base != signature_key(
            search_signature(LAYER_B, morph_arch, FAST)
        )
        assert base != signature_key(
            search_signature(LAYER_A, morph_base_arch, FAST)
        )
        assert base != signature_key(
            search_signature(LAYER_A, morph_arch, FAST.with_(objective="edp"))
        )


class TestNetworkMemo:
    def test_same_layers_under_two_names_share_one_search(self, morph_arch):
        first = optimize_network(
            NETWORK, morph_arch, FAST, network_name="stream-one"
        )
        engine = OptimizerEngine(morph_arch, FAST)
        second = engine.optimize_network(NETWORK, network_name="stream-two")
        assert engine.stats.searched == 0
        assert engine.stats.network_hits == 1
        assert engine.stats.memo_hits == 0  # layer-level stats stay layer-level
        assert second.network_name == "stream-two"
        assert second.total_energy_pj == pytest.approx(first.total_energy_pj)

    def test_same_name_returns_cached_object(self, morph_arch):
        first = optimize_network(NETWORK, morph_arch, FAST, network_name="n")
        second = optimize_network(NETWORK, morph_arch, FAST, network_name="n")
        assert first is second

    def test_network_memo_hit_backfills_disk_cache(self, morph_arch, tmp_path):
        optimize_network(NETWORK, morph_arch, FAST, network_name="n")
        assert not list(tmp_path.glob("*.json"))
        # The whole-network memo serves the rerun, yet the newly
        # configured cache directory must still end up populated.
        optimize_network(
            NETWORK, morph_arch, FAST, network_name="n", cache_dir=tmp_path
        )
        assert len(list(tmp_path.glob("*.json"))) == 2  # 2 unique shapes

    def test_clear_cache_is_public(self):
        import repro

        assert repro.clear_cache is clear_cache


class TestClearCacheMemos:
    """clear_cache() must also reset the model-constant memos, so tests
    that mutate accelerator/technology descriptions in place can never
    observe stale split-parallelism or cost-table entries."""

    def test_model_constant_memos_are_reset(self, morph_arch):
        from repro.core import batch, energy_model, performance_model

        # A search primes every memo under test.
        LayerOptimizer(morph_arch, FAST).optimize(LAYER_B)
        energy_model.energy_cost_tables(morph_arch)
        stale_tables = energy_model.energy_cost_tables(morph_arch)
        assert performance_model._split_parallelism_cached.cache_info().currsize
        assert energy_model.energy_cost_tables.cache_info().currsize
        if batch.available:
            assert batch.full_extents.cache_info().currsize

        clear_cache()
        assert (
            performance_model._split_parallelism_cached.cache_info().currsize
            == 0
        )
        assert energy_model.energy_cost_tables.cache_info().currsize == 0
        assert batch.full_extents.cache_info().currsize == 0
        assert batch.parallelism_tables.cache_info().currsize == 0
        assert batch._order_tables.cache_info().currsize == 0
        # A fresh call recomputes rather than returning the stale object.
        assert energy_model.energy_cost_tables(morph_arch) is not stale_tables


class TestEngineDefaults:
    def test_set_and_reset(self):
        with pytest.deprecated_call():
            set_engine_defaults(parallelism=7)
        assert default_parallelism() == 7
        reset_engine_defaults()
        assert default_parallelism() == 1

    def test_env_parallelism(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM", "3")
        assert default_parallelism() == 3

    def test_env_cache_dir(self, morph_arch, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        optimize_layer(LAYER_B, morph_arch, FAST)
        assert list(tmp_path.glob("*.json"))


class TestDiskCacheUnit:
    def test_load_missing_returns_none(self, morph_arch, tmp_path):
        cache = DiskConfigCache(tmp_path)
        signature = search_signature(LAYER_B, morph_arch, FAST)
        assert cache.load(signature, LAYER_B, morph_arch, FAST) is None

    def test_old_format_payload_round_trips_absent_telemetry(
        self, morph_arch, tmp_path
    ):
        """A record written before the telemetry fields existed recalls
        with ``first_block_won=None`` preserved (tri-state, never coerced
        to False) and a zero displacement count."""
        cache = DiskConfigCache(tmp_path)
        signature = search_signature(LAYER_B, morph_arch, FAST)
        fresh = LayerOptimizer(morph_arch, FAST).optimize(LAYER_B)
        assert cache.store(signature, fresh)
        key = signature_key(signature)
        payload = cache.backend.get(key)
        assert payload["first_block_won"] is not None
        # Strip the fields a v2 record from an older build would lack.
        del payload["first_block_won"]
        del payload["parallelism_displaced"]
        assert cache.backend.put(key, payload)
        recalled = cache.load(signature, LAYER_B, morph_arch, FAST)
        assert recalled is not None
        assert recalled.first_block_won is None
        assert recalled.parallelism_displaced == 0
        assert recalled.score == fresh.score

    def test_modern_payload_round_trips_telemetry(self, morph_arch, tmp_path):
        cache = DiskConfigCache(tmp_path)
        signature = search_signature(LAYER_B, morph_arch, FAST)
        fresh = LayerOptimizer(morph_arch, FAST).optimize(LAYER_B)
        assert fresh.first_block_won is not None
        assert cache.store(signature, fresh)
        recalled = cache.load(signature, LAYER_B, morph_arch, FAST)
        assert recalled.first_block_won is fresh.first_block_won
        assert recalled.parallelism_displaced == fresh.parallelism_displaced


class TestEnvResolverErrors:
    """Every ``$REPRO_*`` knob rejects a malformed value with an error
    naming the variable and the offending text — a typo must never
    silently fall back to a default (the old resolvers treated any
    non-empty ``REPRO_USE_CACHE`` as truthy, so ``=false`` meant True)."""

    @pytest.mark.parametrize(
        ("variable", "value", "resolver"),
        [
            ("REPRO_PARALLELISM", "many", "default_parallelism"),
            ("REPRO_BUDGET_MS", "soon", "default_budget_ms"),
            ("REPRO_BUDGET_MS", "-5", "default_budget_ms"),
            (
                "REPRO_MANIFEST_COMPACT_RATIO",
                "tight",
                "default_manifest_compact_ratio",
            ),
            ("REPRO_USE_CACHE", "flase", "default_use_cache"),
            ("REPRO_USE_CACHE", "2", "default_use_cache"),
            ("REPRO_VECTORIZE", "si", "default_vectorize"),
            ("REPRO_SEARCH_ORDER", "bestest", "default_search_order"),
        ],
    )
    def test_bad_value_raises_naming_the_variable(
        self, monkeypatch, variable, value, resolver
    ):
        from repro.optimizer import engine as engine_module

        monkeypatch.setenv(variable, value)
        with pytest.raises(ValueError) as excinfo:
            getattr(engine_module, resolver)()
        assert variable in str(excinfo.value)
        assert repr(value) in str(excinfo.value)

    def test_bad_frames_raises_naming_the_variable(self, monkeypatch):
        from repro.workloads.networks import build_network

        monkeypatch.setenv("REPRO_FRAMES", "sixteen")
        with pytest.raises(ValueError, match="REPRO_FRAMES.*'sixteen'"):
            build_network("c3d")

    @pytest.mark.parametrize(
        ("variable", "value", "resolver", "expected"),
        [
            ("REPRO_PARALLELISM", "3", "default_parallelism", 3),
            ("REPRO_BUDGET_MS", "250", "default_budget_ms", 250.0),
            (
                "REPRO_MANIFEST_COMPACT_RATIO",
                "4.5",
                "default_manifest_compact_ratio",
                4.5,
            ),
            ("REPRO_USE_CACHE", "off", "default_use_cache", False),
            ("REPRO_VECTORIZE", "Yes", "default_vectorize", True),
            ("REPRO_SEARCH_ORDER", "legacy", "default_search_order", "legacy"),
        ],
    )
    def test_good_value_parses(
        self, monkeypatch, variable, value, resolver, expected
    ):
        from repro.optimizer import engine as engine_module

        monkeypatch.setenv(variable, value)
        assert getattr(engine_module, resolver)() == expected
