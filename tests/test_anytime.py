"""Budgeted anytime search (ROADMAP item 5).

The contract under test (docs/INVARIANTS.md): the budget clock is polled
only at (parallelism, L2-tile) block boundaries and never stops the
search before a feasible block has completed, so a budgeted result is an
exact *prefix* of the unbudgeted search — bit-identical whenever the
budget is not hit, and carrying ``bound_gap`` / ``budget_exhausted``
telemetry when it is.  Budget-exhausted results never enter any cache
layer.  The clock itself is the sanctioned injectable resolver of
:mod:`repro.optimizer.clock`, so every exhaustion path here is driven by
a fake clock — deterministic, no sleeping, no flakes.
"""

from __future__ import annotations

import pytest

from repro.core.layer import ConvLayer
from repro.optimizer.clock import current_clock, monotonic_ms, use_clock
from repro.optimizer.search import (
    LayerOptimizer,
    OptimizerOptions,
    clear_cache,
)

FAST = OptimizerOptions.fast()

LAYER = ConvLayer(
    "mid", h=14, w=14, c=32, f=4, k=64, r=3, s=3, t=3,
    pad_h=1, pad_w=1, pad_f=1,
)
LAYER_B = ConvLayer(
    "deep", h=7, w=7, c=128, f=2, k=128, r=3, s=3, t=3,
    pad_h=1, pad_w=1, pad_f=1,
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_cache()
    yield
    clear_cache()


def frozen_clock(value: float = 0.0):
    """A clock that never advances: any budget > 0 is never exhausted."""
    return lambda: value


def step_clock(*readings: float):
    """A clock replaying ``readings`` then repeating the last one."""
    sequence = iter(readings)
    last = readings[-1]

    def clock() -> float:
        nonlocal last
        try:
            last = next(sequence)
        except StopIteration:
            pass
        return last

    return clock


# ----------------------------------------------------------------------
# The injectable clock resolver
# ----------------------------------------------------------------------
class TestClockResolver:
    def test_real_clock_is_default_and_monotonic(self):
        assert current_clock() is monotonic_ms
        first = monotonic_ms()
        assert monotonic_ms() >= first

    def test_use_clock_installs_and_restores(self):
        fake = frozen_clock(42.0)
        with use_clock(fake) as installed:
            assert installed is fake
            assert current_clock() is fake
            assert current_clock()() == 42.0
        assert current_clock() is monotonic_ms

    def test_overrides_nest_lifo(self):
        outer, inner = frozen_clock(1.0), frozen_clock(2.0)
        with use_clock(outer):
            with use_clock(inner):
                assert current_clock() is inner
            assert current_clock() is outer
        assert current_clock() is monotonic_ms

    def test_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_clock(frozen_clock()):
                raise RuntimeError("boom")
        assert current_clock() is monotonic_ms


# ----------------------------------------------------------------------
# Options and config validation
# ----------------------------------------------------------------------
class TestBudgetKnob:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget_ms"):
            OptimizerOptions(budget_ms=-1.0)

    def test_budget_excluded_from_signatures(self, morph_arch):
        """Sound because exhausted results are never cached: a cached
        unbudgeted result recalled for a budgeted request is the anytime
        contract's best case."""
        from repro.optimizer.engine import search_signature

        budgeted = FAST.with_(budget_ms=5.0)
        assert search_signature(LAYER, morph_arch, FAST) == search_signature(
            LAYER, morph_arch, budgeted
        )

    def test_session_config_validates(self):
        from repro.api import SessionConfig

        assert SessionConfig(budget_ms="2.5").budget_ms == 2.5
        with pytest.raises(ValueError, match="budget_ms"):
            SessionConfig(budget_ms=-3)

    def test_env_variable_parses(self, monkeypatch):
        from repro.api import SessionConfig
        from repro.optimizer.engine import default_budget_ms

        monkeypatch.setenv("REPRO_BUDGET_MS", "12.5")
        assert SessionConfig.from_env().budget_ms == 12.5
        assert default_budget_ms() == 12.5
        monkeypatch.delenv("REPRO_BUDGET_MS")
        assert SessionConfig.from_env().budget_ms is None
        assert default_budget_ms() is None

    def test_env_variable_bad_value_raises_naming_it(self, monkeypatch):
        from repro.api import SessionConfig
        from repro.optimizer.engine import default_budget_ms

        monkeypatch.setenv("REPRO_BUDGET_MS", "soon")
        with pytest.raises(ValueError, match="REPRO_BUDGET_MS.*'soon'"):
            default_budget_ms()
        with pytest.raises(ValueError, match="REPRO_BUDGET_MS"):
            SessionConfig.from_env()
        monkeypatch.setenv("REPRO_BUDGET_MS", "-4")
        with pytest.raises(ValueError, match="REPRO_BUDGET_MS"):
            default_budget_ms()

    def test_session_scopes_the_budget(self, morph_arch):
        """An active session's budget_ms reaches the optimizer through
        the default-resolution chain."""
        from repro.api import Session, SessionConfig

        with Session(SessionConfig(budget_ms=0.0)):
            with use_clock(frozen_clock()):
                result = LayerOptimizer(morph_arch, FAST).optimize(LAYER)
        assert result.budget_exhausted
        assert result.bound_gap is not None


# ----------------------------------------------------------------------
# Budget boundaries (satellite: budget_ms=0 / huge / mid-block / thread)
# ----------------------------------------------------------------------
class TestBudgetBoundaries:
    @pytest.mark.parametrize("vectorize", (False, True))
    def test_zero_budget_runs_first_block_only(self, morph_arch, vectorize):
        """budget_ms=0 exhausts at the first boundary after a feasible
        block: a valid configuration comes back, with a reported gap."""
        options = FAST.with_(budget_ms=0.0, vectorize=vectorize)
        with use_clock(frozen_clock()):
            result = LayerOptimizer(morph_arch, options).optimize(LAYER)
        full = LayerOptimizer(
            morph_arch, FAST.with_(vectorize=vectorize)
        ).optimize(LAYER)
        assert result.budget_exhausted
        assert result.evaluated > 0  # a feasible block completed
        assert result.evaluated < full.evaluated
        assert result.bound_gap is not None and result.bound_gap >= 0.0
        # Anytime scores only improve with budget; the gap certifies how
        # far the prefix can sit above the true optimum.
        assert result.score >= full.score
        assert result.score - result.bound_gap <= full.score + 1e-9

    @pytest.mark.parametrize("vectorize", (False, True))
    def test_huge_budget_bit_identical_to_unbudgeted(
        self, morph_arch, vectorize
    ):
        """Pinned: when the budget is not hit, the result is bit-identical
        to the unbudgeted search — same configuration, score, counters."""
        for layer in (LAYER, LAYER_B):
            budgeted = LayerOptimizer(
                morph_arch, FAST.with_(budget_ms=1e12, vectorize=vectorize)
            ).optimize(layer)
            full = LayerOptimizer(
                morph_arch, FAST.with_(vectorize=vectorize)
            ).optimize(layer)
            assert not budgeted.budget_exhausted
            assert budgeted.bound_gap == 0.0  # completed budgeted search
            assert full.bound_gap is None  # unbudgeted: no gap claimed
            assert budgeted.best.dataflow == full.best.dataflow, layer.name
            assert budgeted.score == full.score, layer.name
            assert budgeted.evaluated == full.evaluated, layer.name
            assert budgeted.pruned == full.pruned, layer.name

    @pytest.mark.parametrize("vectorize", (False, True))
    def test_mid_block_exhaustion_stops_at_next_boundary(
        self, morph_arch, vectorize
    ):
        """A budget that expires while a block is being evaluated stops
        the search at the *next* boundary — the in-flight block finishes
        (the clock is polled only between blocks)."""
        # Reading 1 arms the start; reading 2 (first boundary) is within
        # budget; reading 3 jumps far past it "mid-block".
        clock = step_clock(0.0, 1.0, 1e9)
        options = FAST.with_(budget_ms=100.0, vectorize=vectorize)
        with use_clock(clock):
            result = LayerOptimizer(morph_arch, options).optimize(LAYER)
        full = LayerOptimizer(
            morph_arch, FAST.with_(vectorize=vectorize)
        ).optimize(LAYER)
        assert result.budget_exhausted
        # Two blocks completed (the boundary-2 check passed), not one.
        zero_budget = FAST.with_(budget_ms=0.0, vectorize=vectorize)
        with use_clock(frozen_clock()):
            first_only = LayerOptimizer(morph_arch, zero_budget).optimize(LAYER)
        assert result.evaluated >= first_only.evaluated
        assert result.evaluated < full.evaluated
        assert result.score - result.bound_gap <= full.score + 1e-9

    def test_prefix_scores_improve_with_budget(self, morph_arch):
        """More budget (in completed blocks) never worsens the anytime
        score, and the reported gap shrinks to zero at completion."""
        full = LayerOptimizer(morph_arch, FAST).optimize(LAYER)
        previous_score = float("inf")
        for boundaries in (1, 2, 4, 64):
            readings = [0.0] * boundaries + [1e9]
            with use_clock(step_clock(*readings)):
                result = LayerOptimizer(
                    morph_arch, FAST.with_(budget_ms=1.0)
                ).optimize(LAYER)
            assert result.score <= previous_score
            previous_score = result.score
            if not result.budget_exhausted:
                assert result.score == full.score
                assert result.bound_gap == 0.0

    def test_thread_mode_budgeted_determinism(self, morph_arch):
        """Under parallelism_mode=thread the workers share the installed
        override; an unexhausted budget stays bit-identical to the
        unbudgeted serial sweep."""
        from repro.optimizer.engine import OptimizerEngine

        layers = (LAYER, LAYER_B)
        serial = OptimizerEngine(
            morph_arch, FAST, use_cache=False
        ).optimize_network(layers, network_name="pair")
        clear_cache()
        with use_clock(frozen_clock()):
            threaded = OptimizerEngine(
                morph_arch,
                FAST.with_(budget_ms=60_000.0),
                parallelism=2,
                parallelism_mode="thread",
                use_cache=False,
            ).optimize_network(layers, network_name="pair")
        for ours, reference in zip(threaded.layers, serial.layers):
            assert not ours.budget_exhausted
            assert ours.best.dataflow == reference.best.dataflow
            assert ours.score == reference.score


# ----------------------------------------------------------------------
# Exhausted results never enter a cache
# ----------------------------------------------------------------------
class TestExhaustedNeverCached:
    def test_layer_memo_and_disk_skip_exhausted(self, morph_arch, tmp_path):
        from repro.optimizer.engine import OptimizerEngine

        options = FAST.with_(budget_ms=0.0)
        with use_clock(frozen_clock()):
            first = OptimizerEngine(morph_arch, options, cache_dir=tmp_path)
            first.optimize_layers((LAYER,))
            assert first.stats.searched == 1
            assert first.stats.budget_exhausted == 1
            # Nothing was persisted and nothing memoised: the same request
            # searches again instead of recalling a truncated optimum.
            second = OptimizerEngine(morph_arch, options, cache_dir=tmp_path)
            second.optimize_layers((LAYER,))
            assert second.stats.searched == 1
            assert second.stats.memo_hits == 0
            assert second.stats.disk_hits == 0
        assert not any(tmp_path.glob("*.json"))

    def test_completed_budgeted_result_is_cached(self, morph_arch, tmp_path):
        from repro.optimizer.engine import OptimizerEngine

        options = FAST.with_(budget_ms=60_000.0)
        with use_clock(frozen_clock()):
            first = OptimizerEngine(morph_arch, options, cache_dir=tmp_path)
            first.optimize_layers((LAYER,))
            assert first.stats.budget_exhausted == 0
            second = OptimizerEngine(morph_arch, options, cache_dir=tmp_path)
            second.optimize_layers((LAYER,))
            assert second.stats.memo_hits == 1

    def test_network_memo_skips_exhausted(self, morph_arch):
        from repro.optimizer.engine import OptimizerEngine

        options = FAST.with_(budget_ms=0.0)
        with use_clock(frozen_clock()):
            engine = OptimizerEngine(morph_arch, options, use_cache=True)
            engine.optimize_network((LAYER,), network_name="solo")
            again = OptimizerEngine(morph_arch, options, use_cache=True)
            again.optimize_network((LAYER,), network_name="solo")
            assert again.stats.network_hits == 0
            assert again.stats.searched == 1

    def test_disk_store_refuses_exhausted_results(self, morph_arch, tmp_path):
        from repro.optimizer.engine import (
            DiskConfigCache,
            search_signature,
        )

        options = FAST.with_(budget_ms=0.0)
        with use_clock(frozen_clock()):
            result = LayerOptimizer(morph_arch, options).optimize(LAYER)
        assert result.budget_exhausted
        cache = DiskConfigCache(tmp_path)
        with pytest.raises(ValueError, match="budget-exhausted"):
            cache.store(search_signature(LAYER, morph_arch, options), result)
