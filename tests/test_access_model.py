"""Unit tests for the analytic access model (the reproduction's core)."""

import pytest

from repro.core.access_model import (
    boundary_fill_profile,
    compute_alu_traffic,
    compute_traffic,
    loop_order_signature,
)
from repro.core.dataflow import Dataflow, single_tile_dataflow
from repro.core.dims import DataType, Dim
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder, all_loop_orders
from repro.core.tiling import TileHierarchy, TileShape


def make_dataflow(layer, tiles, outer="WHCKF", inner="CFWHK"):
    return Dataflow(
        LoopOrder.parse(outer),
        LoopOrder.parse(inner),
        TileHierarchy(layer, tiles),
    )


class TestSingleTilePassThrough:
    """With everything resident everywhere, each byte moves exactly once."""

    def test_each_boundary_moves_region_once(self, small_layer):
        report = compute_traffic(single_tile_dataflow(small_layer))
        full = TileShape.full(small_layer)
        for boundary in report.boundaries:
            assert boundary.of(DataType.INPUTS).fills == 1
            assert boundary.of(DataType.INPUTS).fill_bytes == full.bytes_of(
                DataType.INPUTS, small_layer
            )
            assert boundary.of(DataType.WEIGHTS).fill_bytes == full.bytes_of(
                DataType.WEIGHTS, small_layer
            )

    def test_no_psum_spills(self, small_layer):
        report = compute_traffic(single_tile_dataflow(small_layer))
        for boundary in report.boundaries:
            assert boundary.of(DataType.PSUMS).load_bytes == 0

    def test_final_output_written_once_as_activations(self, small_layer):
        report = compute_traffic(single_tile_dataflow(small_layer))
        assert report.dram_write_bytes == small_layer.output_elements

    def test_dram_reads_are_compulsory_traffic(self, small_layer):
        report = compute_traffic(single_tile_dataflow(small_layer))
        full = TileShape.full(small_layer)
        expected = full.bytes_of(DataType.INPUTS, small_layer) + full.bytes_of(
            DataType.WEIGHTS, small_layer
        )
        assert report.dram_read_bytes == expected

    def test_independent_of_loop_order(self, small_layer):
        """Everything resident => loop order cannot matter."""
        totals = set()
        for outer in ("WHCKF", "KWHCF", "FCKHW"):
            df = single_tile_dataflow(small_layer, outer=outer)
            totals.add(compute_traffic(df).dram_total_bytes)
        assert len(totals) == 1


class TestFullResidencyRemark:
    """Figure 4a remark: when one data type fits entirely in the L2, its
    DRAM traffic is loop-order independent (fetched exactly once)."""

    def test_weights_fetched_once_when_resident(self, small_layer):
        tiles = (
            TileShape(w=3, h=3, c=8, k=8, f=2),  # full C, K: weights resident
            TileShape(w=3, h=3, c=4, k=4, f=2),
            TileShape(w=3, h=3, c=2, k=2, f=1),
        )
        for outer in ("WHCKF", "KWHCF", "WFHCK"):
            report = compute_traffic(make_dataflow(small_layer, tiles, outer=outer))
            weights = report.dram_boundary.of(DataType.WEIGHTS)
            assert weights.fills == 1
            assert weights.fill_bytes == small_layer.weight_bytes()

    def test_weights_refetched_when_tiled(self, small_layer):
        tiles = (
            TileShape(w=3, h=3, c=8, k=4, f=2),  # half of K per tile
            TileShape(w=3, h=3, c=4, k=4, f=2),
            TileShape(w=3, h=3, c=2, k=2, f=1),
        )
        report = compute_traffic(make_dataflow(small_layer, tiles, outer="WHCKF"))
        weights = report.dram_boundary.of(DataType.WEIGHTS)
        assert weights.fill_bytes > small_layer.weight_bytes()


class TestSlideReuse:
    def test_slide_telescopes_along_innermost_relevant(self, small_layer):
        """With W innermost and no other input-relevant loops active, input
        bytes equal the union (full extent fetched once)."""
        tiles = (
            TileShape(w=5, h=10, c=8, k=8, f=4),  # only W tiled
            TileShape(w=5, h=10, c=8, k=8, f=4),
            TileShape(w=5, h=10, c=8, k=8, f=4),
        )
        report = compute_traffic(
            make_dataflow(small_layer, tiles, outer="HCKFW")
        )
        inputs = report.dram_boundary.of(DataType.INPUTS)
        full = TileShape.full(small_layer)
        assert inputs.fill_bytes == full.bytes_of(DataType.INPUTS, small_layer)

    def test_halo_refetched_without_slide(self, small_layer):
        """W tiled but outside the innermost relevant loop: halos cost."""
        tiles = (
            TileShape(w=5, h=10, c=4, k=8, f=4),  # W and C tiled
            TileShape(w=5, h=10, c=4, k=8, f=4),
            TileShape(w=5, h=10, c=4, k=8, f=4),
        )
        report = compute_traffic(make_dataflow(small_layer, tiles, outer="WHKFC"))
        inputs = report.dram_boundary.of(DataType.INPUTS)
        full_bytes = TileShape.full(small_layer).bytes_of(
            DataType.INPUTS, small_layer
        )
        assert inputs.fill_bytes > full_bytes


class TestPsumAccounting:
    def test_zero_init_skips_first_visit(self, small_layer):
        report = compute_traffic(single_tile_dataflow(small_layer))
        psums = report.dram_boundary.of(DataType.PSUMS)
        assert psums.load_bytes == 0  # single visit per tile

    def test_fully_fitting_psums_never_spill(self, small_layer):
        """C tiled but psum tiles cover the whole output: accumulation
        happens in place, no DRAM psum traffic regardless of C revisits."""
        tiles = (TileShape(w=10, h=10, c=2, k=8, f=4),) * 3
        report = compute_traffic(make_dataflow(small_layer, tiles, outer="CWHKF"))
        psums = report.dram_boundary.of(DataType.PSUMS)
        assert psums.fills == 1
        assert psums.load_bytes == 0

    def test_revisits_cause_loads(self, small_layer):
        """W and C tiled with C outermost: every psum tile is revisited
        once per C tile, re-loading it from DRAM after the first pass."""
        tiles = (TileShape(w=5, h=10, c=2, k=8, f=4),) * 3
        report = compute_traffic(make_dataflow(small_layer, tiles, outer="CWHKF"))
        psums = report.dram_boundary.of(DataType.PSUMS)
        out_psum_bytes = small_layer.output_elements * 4
        assert psums.load_bytes == out_psum_bytes * 3  # 4 visits, 3 re-loads

    def test_writeback_bytes_at_least_final_output(self, small_layer):
        for outer in ("WHCKF", "CKWHF"):
            report = compute_traffic(
                make_dataflow(
                    small_layer,
                    (TileShape(w=5, h=5, c=2, k=4, f=2),) * 3,
                    outer=outer,
                )
            )
            assert (
                report.dram_write_bytes >= small_layer.output_elements
            )

    def test_load_store_balance(self, small_layer):
        """Loads = stores - first visits, in psum-width bytes."""
        tiles = (TileShape(w=5, h=5, c=2, k=4, f=2),) * 3
        report = compute_traffic(make_dataflow(small_layer, tiles, outer="CKWHF"))
        psums = report.boundaries[1].of(DataType.PSUMS)
        out_bytes = small_layer.output_elements * 4
        assert psums.load_bytes == psums.fill_bytes - out_bytes


class TestAluTraffic:
    def test_weight_bytes_equal_maccs(self, small_layer):
        report = compute_traffic(single_tile_dataflow(small_layer))
        alu = compute_alu_traffic(report, vector_width=8)
        assert alu.weight_read_bytes == small_layer.maccs

    def test_input_reads_amortised_by_lanes(self, small_layer):
        report = compute_traffic(single_tile_dataflow(small_layer))
        alu = compute_alu_traffic(report, vector_width=8)
        assert alu.input_read_bytes == -(-small_layer.maccs // 8)

    def test_vector_width_one(self, small_layer):
        report = compute_traffic(single_tile_dataflow(small_layer))
        alu = compute_alu_traffic(report, vector_width=1)
        assert alu.input_read_bytes == small_layer.maccs

    def test_rejects_bad_vector_width(self, small_layer):
        report = compute_traffic(single_tile_dataflow(small_layer))
        with pytest.raises(ValueError):
            compute_alu_traffic(report, vector_width=0)

    def test_psum_traffic_mirrors_innermost_boundary(self, small_layer):
        tiles = (TileShape(w=5, h=5, c=2, k=4, f=2),) * 3
        report = compute_traffic(make_dataflow(small_layer, tiles))
        alu = compute_alu_traffic(report, vector_width=8)
        innermost = report.boundaries[-1].of(DataType.PSUMS)
        assert alu.psum_write_bytes == innermost.fill_bytes
        assert alu.psum_read_bytes == innermost.load_bytes


class TestSignatureDedup:
    def test_equal_signature_implies_equal_traffic(self, small_layer):
        """The optimizer's dedup must be cost-preserving."""
        parent = TileShape.full(small_layer)
        child = TileShape(w=5, h=5, c=4, k=4, f=2)
        groups = {}
        for order in all_loop_orders():
            sig = loop_order_signature(parent, child, order)
            groups.setdefault(sig, []).append(order)
        assert len(groups) < 120  # dedup actually collapses classes
        tiles = (child, TileShape(w=5, h=5, c=2, k=2, f=2),
                 TileShape(w=5, h=5, c=1, k=2, f=1))
        for sig, orders in groups.items():
            if len(orders) < 2:
                continue
            reference = None
            for order in orders[:3]:
                report = compute_traffic(
                    Dataflow(order, LoopOrder.parse("CFWHK"),
                             TileHierarchy(small_layer, tiles))
                )
                key = tuple(
                    (b.of(dt).fill_bytes, b.of(dt).load_bytes)
                    for b in (report.dram_boundary,)
                    for dt in DataType
                )
                if reference is None:
                    reference = key
                else:
                    assert key == reference

    def test_profile_matches_compute_traffic_first_boundary(self, small_layer):
        tiles = (TileShape(w=5, h=5, c=4, k=4, f=2),) * 3
        df = make_dataflow(small_layer, tiles, outer="KWHCF")
        report = compute_traffic(df)
        profile = boundary_fill_profile(
            small_layer, TileShape.full(small_layer), tiles[0],
            LoopOrder.parse("KWHCF"),
        )
        for dt in DataType:
            fills, bytes_ = profile[dt]
            assert report.dram_boundary.of(dt).fills == fills
            assert report.dram_boundary.of(dt).fill_bytes == bytes_


class TestMaccsInvariance:
    def test_maccs_independent_of_tiling(self, small_layer):
        reports = [
            compute_traffic(single_tile_dataflow(small_layer)),
            compute_traffic(
                make_dataflow(small_layer, (TileShape(w=3, h=4, c=2, k=4, f=2),) * 3)
            ),
        ]
        assert reports[0].maccs == reports[1].maccs == small_layer.maccs
