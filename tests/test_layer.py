"""Unit tests for the 3D convolution layer model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dims import Dim
from repro.core.layer import ConvLayer, conv_output_extent, total_maccs


class TestOutputGeometry:
    def test_paper_formula_no_padding(self):
        """Paper Section II-B: output (H-R+1) x (W-S+1), F-T+1 frames."""
        layer = ConvLayer("t", h=112, w=100, c=3, f=16, k=64, r=3, s=5, t=3)
        assert layer.out_h == 110
        assert layer.out_w == 96
        assert layer.out_f == 14

    def test_same_padding_preserves_dims(self):
        layer = ConvLayer(
            "t", h=56, w=56, c=64, f=16, k=128, r=3, s=3, t=3,
            pad_h=1, pad_w=1, pad_f=1,
        )
        assert (layer.out_h, layer.out_w, layer.out_f) == (56, 56, 16)

    def test_stride_halves_output(self):
        layer = ConvLayer(
            "t", h=224, w=224, c=3, f=1, k=64, r=7, s=7, t=1,
            stride_h=2, stride_w=2, pad_h=3, pad_w=3,
        )
        assert layer.out_h == 112
        assert layer.out_w == 112

    def test_alexnet_conv1_geometry(self):
        layer = ConvLayer(
            "conv1", h=227, w=227, c=3, f=1, k=96, r=11, s=11, t=1,
            stride_h=4, stride_w=4,
        )
        assert layer.out_h == 55

    def test_conv_output_extent_exact(self):
        assert conv_output_extent(10, 3, 1, 0) == 8
        assert conv_output_extent(10, 3, 2, 1) == 5

    def test_conv_output_extent_rejects_oversized_kernel(self):
        with pytest.raises(ValueError):
            conv_output_extent(4, 7, 1, 0)

    def test_output_dim_lookup(self):
        layer = ConvLayer("t", h=12, w=10, c=8, f=6, k=16, r=3, s=3, t=3)
        assert layer.output_dim(Dim.W) == layer.out_w
        assert layer.output_dim(Dim.H) == layer.out_h
        assert layer.output_dim(Dim.F) == layer.out_f
        assert layer.output_dim(Dim.C) == 8
        assert layer.output_dim(Dim.K) == 16


class TestWorkMetrics:
    def test_maccs_formula(self):
        layer = ConvLayer("t", h=4, w=4, c=2, f=3, k=5, r=3, s=3, t=3)
        expected = 5 * layer.out_h * layer.out_w * layer.out_f * 2 * 27
        assert layer.maccs == expected

    def test_c3d_layer1_maccs(self, c3d_layer1):
        """C3D layer1 is ~1.04 GMACs at 112x112x16."""
        assert c3d_layer1.maccs == 64 * 112 * 112 * 16 * 3 * 27

    def test_footprint_is_input_plus_weights(self, c3d_layer1):
        assert (
            c3d_layer1.footprint_bytes()
            == c3d_layer1.input_bytes() + c3d_layer1.weight_bytes()
        )

    def test_weight_bytes(self, c3d_layer1):
        assert c3d_layer1.weight_bytes() == 64 * 3 * 27  # K*C*R*S*T at 1B

    def test_reuse_higher_for_3d(self, c3d_layer1, layer_2d):
        """Figure 1b: 3D CNNs have far higher MACs/byte."""
        layer3d = c3d_layer1.scaled(name="3d")
        assert layer3d.reuse_maccs_per_byte > layer_2d.reuse_maccs_per_byte

    def test_slide_reuse_factor(self, c3d_layer1):
        """Each input reused R*S*T times (Section IV-A)."""
        assert c3d_layer1.input_slide_reuse == 27

    def test_total_maccs_sums(self, c3d_layer1, layer_2d):
        assert total_maccs(iter([c3d_layer1, layer_2d])) == (
            c3d_layer1.maccs + layer_2d.maccs
        )

    def test_psum_wider_than_activations(self):
        from repro.core.layer import ACTIVATION_BYTES, PSUM_BYTES

        assert PSUM_BYTES > ACTIVATION_BYTES


class Test2DSpecialCase:
    """Section II-B remark: 2D convolution is 3D with F = T = 1."""

    def test_is_2d_flag(self, layer_2d, c3d_layer1):
        assert layer_2d.is_2d
        assert not c3d_layer1.is_2d

    def test_as_2d_frame(self, c3d_layer1):
        frame = c3d_layer1.as_2d_frame()
        assert frame.is_2d
        assert frame.f == 1 and frame.t == 1
        assert frame.h == c3d_layer1.h
        assert frame.c == c3d_layer1.c

    def test_2d_maccs_scale(self, c3d_layer1):
        """Per-frame 2D conv does 1/(out_f * T) of the 3D layer's work."""
        frame = c3d_layer1.as_2d_frame()
        assert frame.maccs * 3 * c3d_layer1.out_f == pytest.approx(
            c3d_layer1.maccs, rel=0.05
        )


class TestValidation:
    def test_rejects_zero_dims(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            ConvLayer("bad", h=0, w=4, c=1, f=1, k=1, r=1, s=1, t=1)

    def test_rejects_negative_padding(self):
        with pytest.raises(ValueError, match="pad"):
            ConvLayer("bad", h=4, w=4, c=1, f=1, k=1, r=1, s=1, t=1, pad_h=-1)

    def test_rejects_zero_stride(self):
        with pytest.raises(ValueError, match="stride"):
            ConvLayer("bad", h=4, w=4, c=1, f=1, k=1, r=1, s=1, t=1, stride_h=0)

    def test_rejects_kernel_bigger_than_input(self):
        with pytest.raises(ValueError, match="exceeds input"):
            ConvLayer("bad", h=4, w=4, c=1, f=1, k=1, r=7, s=1, t=1)

    def test_padding_can_make_kernel_fit(self):
        layer = ConvLayer("ok", h=4, w=4, c=1, f=1, k=1, r=6, s=1, t=1, pad_h=1)
        assert layer.out_h == 1

    def test_scaled_override(self, c3d_layer1):
        bigger = c3d_layer1.scaled(name="big", h=224, w=224)
        assert bigger.h == 224
        assert bigger.name == "big"
        assert bigger.c == c3d_layer1.c


@given(
    h=st.integers(3, 40),
    w=st.integers(3, 40),
    f=st.integers(3, 12),
    stride=st.integers(1, 3),
    pad=st.integers(0, 2),
)
def test_output_extent_counts_valid_positions(h, w, f, stride, pad):
    """Property: every output index maps to an in-bounds padded window."""
    layer = ConvLayer(
        "prop", h=h, w=w, c=1, f=f, k=1, r=3, s=3, t=3,
        stride_h=stride, stride_w=stride, stride_f=stride,
        pad_h=pad, pad_w=pad, pad_f=pad,
    )
    last_window_start = (layer.out_h - 1) * stride
    assert last_window_start + 3 <= h + 2 * pad
    # And one more output would not fit:
    assert layer.out_h * stride + 3 > h + 2 * pad
