"""Concurrency guarantees of the config store and the engine.

Two engines — processes, or threads in thread mode — racing to write the
same signature into one cache directory must both succeed, and a later
recall must return one complete, valid record (the atomic temp-file +
rename contract).  The engine-level tests run the whole search flow
through the race; the store-level tests pin the rename behaviour.

CI runs this module under both ``REPRO_PARALLELISM_MODE=process`` and
``=thread``, so the engine-default tests here cover whichever executor
the environment selects plus the explicitly pinned one.
"""

from __future__ import annotations

import json
import multiprocessing
import threading

import pytest

from repro.arch.accelerator import morph
from repro.core.layer import ConvLayer
from repro.optimizer.config_store import create_store
from repro.optimizer.engine import (
    OptimizerEngine,
    default_parallelism_mode,
    optimize_layer,
    reset_engine_defaults,
    search_signature,
    signature_key,
)
from repro.optimizer.search import OptimizerOptions, clear_cache

TINY = OptimizerOptions.fast(
    max_l2_candidates=2,
    keep_allocations=1,
    keep_per_level=2,
    max_parallelism_candidates=1,
)

LAYER = ConvLayer("race", h=14, w=14, c=16, f=4, k=32, r=3, s=3, t=3,
                  pad_h=1, pad_w=1, pad_f=1)
LAYER_B = ConvLayer("race-b", h=7, w=7, c=32, f=4, k=32, r=3, s=3, t=3,
                    pad_h=1, pad_w=1, pad_f=1)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_cache()
    reset_engine_defaults()
    yield
    clear_cache()
    reset_engine_defaults()


# ----------------------------------------------------------------------
# Store-level put races (module-level workers: picklable for processes)
# ----------------------------------------------------------------------
def _race_put(barrier, backend, directory, key, payload):
    store = create_store(backend, directory)
    barrier.wait(timeout=60)
    assert store.put(key, payload)
    assert store.get(key) == payload


def _race_search(barrier, backend, directory):
    barrier.wait(timeout=60)
    result = optimize_layer(
        LAYER, morph(), TINY, cache_dir=directory, cache_backend=backend
    )
    assert result.best.total_energy_pj > 0


PAYLOAD = {"format_version": 99, "value": list(range(32))}


class TestProcessRaces:
    @pytest.mark.parametrize("backend", ("local", "sharded"))
    def test_racing_puts_both_succeed(self, tmp_path, backend):
        key = "ab" * 32
        barrier = multiprocessing.Barrier(2)
        workers = [
            multiprocessing.Process(
                target=_race_put, args=(barrier, backend, tmp_path, key, PAYLOAD)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        # One complete record, readable, equal to what both writers wrote;
        # no temp files left behind.
        store = create_store(backend, tmp_path)
        assert store.get(key) == PAYLOAD
        assert not list(tmp_path.rglob("*.tmp.*"))

    @pytest.mark.parametrize("backend", ("local", "sharded"))
    def test_racing_searches_share_one_cache(self, tmp_path, backend):
        """Two processes race the whole search->store flow on one
        signature; a later recall returns the identical configuration."""
        barrier = multiprocessing.Barrier(2)
        workers = [
            multiprocessing.Process(
                target=_race_search, args=(barrier, backend, tmp_path)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0

        clear_cache()  # this process never searched: force a store recall
        engine = OptimizerEngine(
            morph(), TINY, cache_dir=tmp_path, cache_backend=backend
        )
        recalled = engine.optimize_layers((LAYER,))[0]
        assert engine.stats.disk_hits == 1
        assert engine.stats.searched == 0
        direct = optimize_layer(LAYER, morph(), TINY, cache_dir=False)
        assert recalled.best.dataflow == direct.best.dataflow
        assert recalled.score == direct.score


class TestThreadRaces:
    @pytest.mark.parametrize("backend", ("local", "sharded"))
    def test_racing_thread_puts_both_succeed(self, tmp_path, backend):
        store = create_store(backend, tmp_path)
        key = "cd" * 32
        barrier = threading.Barrier(2)
        outcomes = []

        def put():
            barrier.wait(timeout=60)
            outcomes.append(store.put(key, PAYLOAD))

        threads = [threading.Thread(target=put) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert outcomes == [True, True]
        assert store.get(key) == PAYLOAD
        assert not list(tmp_path.rglob("*.tmp.*"))

    def test_racing_thread_engines_recall_identical_configs(self, tmp_path):
        """Two thread-mode engines racing the same signature into one
        directory both succeed and later recalls are identical."""
        barrier = threading.Barrier(2)
        failures = []

        def sweep():
            try:
                barrier.wait(timeout=60)
                engine = OptimizerEngine(
                    morph(), TINY, cache_dir=tmp_path,
                    parallelism=2, parallelism_mode="thread",
                )
                engine.optimize_layers((LAYER, LAYER_B))
            except Exception as exc:  # surfaced below: threads swallow raises
                failures.append(exc)

        threads = [threading.Thread(target=sweep) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures
        records = list(tmp_path.glob("*.json"))
        assert len(records) == 2  # one per unique signature, both valid
        for record in records:
            assert json.loads(record.read_text())["format_version"]


class TestManifestCompactionRaces:
    def test_compaction_races_with_writers(self, tmp_path):
        """Writers appending while another thread compacts repeatedly:
        every record stays retrievable (the shard tree is truth), the
        manifest never tears, and a final compaction deduplicates it."""
        from repro.optimizer.config_store import ShardedStore

        store = ShardedStore(tmp_path)
        keys = [f"{i:02x}{i:02x}" + "0" * 60 for i in range(24)]
        barrier = threading.Barrier(3)
        failures = []

        def write(chunk):
            try:
                barrier.wait(timeout=60)
                for key in chunk:
                    assert store.put(key, {"v": key})
                    assert store.put(key, {"v": key, "rev": 2})
            except Exception as exc:
                failures.append(exc)

        def compact():
            try:
                barrier.wait(timeout=60)
                for _ in range(20):
                    store.compact_manifest()
            except Exception as exc:
                failures.append(exc)

        threads = [
            threading.Thread(target=write, args=(keys[:12],)),
            threading.Thread(target=write, args=(keys[12:],)),
            threading.Thread(target=compact),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures
        # Records are never touched by compaction.
        for key in keys:
            assert store.get(key) == {"v": key, "rev": 2}
        assert sorted(store.keys()) == sorted(keys)
        # After the dust settles one compaction yields a duplicate-free,
        # fully parseable manifest whose keys all exist in the tree.
        kept = store.compact_manifest()
        manifest_keys = list(store.manifest_keys())
        assert kept == len(manifest_keys) == len(set(manifest_keys))
        assert set(manifest_keys) <= set(keys)
        assert not list(tmp_path.glob("*.tmp.*"))


class TestServeRaces:
    def test_serve_vs_serve_on_one_sharded_store(self, tmp_path):
        """Two serving engines (two sessions) racing overlapping requests
        into one sharded store: every served result is identical, the
        store ends with exactly one record per unique signature, and the
        atomic-write contract leaves no debris."""
        import asyncio

        from repro.api import Session, SessionConfig
        from repro.serve import ServeRequest

        arch = morph()
        config = SessionConfig(
            cache_dir=tmp_path, cache_backend="sharded", use_cache=True
        )
        session_a = Session(config)
        session_b = Session(config)
        network = (LAYER, LAYER_B)

        async def drive():
            serve_a = session_a.serve(max_workers=2)
            serve_b = session_b.serve(max_workers=2)
            results = await asyncio.gather(
                *[
                    engine.submit(
                        ServeRequest(
                            network=network, tenant=tenant, arch=arch,
                            options=TINY,
                        )
                    )
                    for engine, tenant in (
                        (serve_a, "a1"), (serve_a, "a2"),
                        (serve_b, "b1"), (serve_b, "b2"),
                    )
                ]
            )
            stats = (serve_a.metrics().engine, serve_b.metrics().engine)
            await serve_a.aclose()
            await serve_b.aclose()
            return results, stats

        try:
            results, (stats_a, stats_b) = asyncio.run(drive())
        finally:
            session_a.close()
            session_b.close()
        first = results[0].result
        for served in results[1:]:
            assert served.result == first
        # One record per unique signature, all valid, no torn temp files.
        store = create_store("sharded", tmp_path)
        assert len(list(store.keys())) == 2
        assert not list(tmp_path.rglob("*.tmp.*"))
        # The two engines combined searched each signature at most once
        # per process-wide claim (shared memo/in-flight table).
        assert stats_a.searched + stats_b.searched == 2


class TestThreadMode:
    def test_thread_pool_matches_serial(self, morph_arch):
        serial = OptimizerEngine(
            morph_arch, TINY, parallelism=1, use_cache=False
        ).optimize_layers((LAYER, LAYER_B))
        threaded = OptimizerEngine(
            morph_arch, TINY, parallelism=2, parallelism_mode="thread",
            use_cache=False,
        ).optimize_layers((LAYER, LAYER_B))
        for s, t in zip(serial, threaded):
            assert s.best.dataflow == t.best.dataflow
            assert s.score == t.score
            assert s.evaluated == t.evaluated

    def test_default_mode_matches_serial(self, morph_arch):
        """Whatever $REPRO_PARALLELISM_MODE selects (the CI matrix runs
        this under both), parallel results equal serial ones."""
        serial = OptimizerEngine(
            morph_arch, TINY, parallelism=1, use_cache=False
        ).optimize_layers((LAYER, LAYER_B))
        parallel = OptimizerEngine(
            morph_arch, TINY, parallelism=2, use_cache=False
        ).optimize_layers((LAYER, LAYER_B))
        assert parallel[0].best.dataflow == serial[0].best.dataflow
        assert [r.score for r in parallel] == [r.score for r in serial]

    def test_env_selects_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM_MODE", "thread")
        assert default_parallelism_mode() == "thread"
        monkeypatch.setenv("REPRO_PARALLELISM_MODE", "bogus")
        with pytest.raises(ValueError, match="parallelism_mode"):
            default_parallelism_mode()

    def test_engine_rejects_unknown_mode(self, morph_arch):
        with pytest.raises(ValueError, match="parallelism_mode"):
            OptimizerEngine(morph_arch, TINY, parallelism_mode="fiber")
