"""Property tests for the pluggable config-store backends.

All three backends (local directory, sharded, in-memory) run the same
suite: records round-trip byte-faithfully, a full search survives
save -> load -> re-evaluate with bit-identical configurations, and a
truncated or corrupted record is quarantined and re-searched rather than
crashing the sweep.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.layer import ConvLayer
from repro.optimizer.config_store import (
    CACHE_BACKENDS,
    ConfigStore,
    LocalDirectoryStore,
    MemoryStore,
    ShardedStore,
    clear_memory_stores,
    create_store,
    memory_store,
)
from repro.optimizer.engine import (
    OptimizerEngine,
    reset_engine_defaults,
    search_signature,
    set_engine_defaults,
    signature_key,
)
from repro.optimizer.search import OptimizerOptions, clear_cache

#: Tiny search effort: the round-trip property runs full searches per
#: hypothesis example, so keep each one to a handful of candidates.
TINY = OptimizerOptions.fast(
    max_l2_candidates=2,
    keep_allocations=1,
    keep_per_level=2,
    max_parallelism_candidates=1,
)

LAYER = ConvLayer("fixed", h=14, w=14, c=16, f=4, k=32, r=3, s=3, t=3,
                  pad_h=1, pad_w=1, pad_f=1)


def make_store(backend: str, tmp_path) -> ConfigStore:
    """A fresh, isolated store instance of the requested backend."""
    if backend == "memory":
        return MemoryStore()
    return create_store(backend, tmp_path / backend)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_cache()
    reset_engine_defaults()
    clear_memory_stores()
    yield
    clear_cache()
    reset_engine_defaults()
    clear_memory_stores()


#: JSON-able payloads (no NaN: equality must survive dumps/loads).
json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**53), max_value=2**53),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=10,
)
payloads = st.dictionaries(st.text(max_size=16), json_values, max_size=5)
keys = st.text(alphabet="0123456789abcdef", min_size=6, max_size=64)

small_layers = st.builds(
    ConvLayer,
    st.just("prop"),
    h=st.integers(min_value=6, max_value=20),
    w=st.integers(min_value=6, max_value=20),
    c=st.sampled_from([3, 8, 16]),
    f=st.sampled_from([4, 8]),
    k=st.sampled_from([8, 16]),
    r=st.sampled_from([1, 3]),
    s=st.sampled_from([1, 3]),
    t=st.sampled_from([1, 3]),
    stride_h=st.sampled_from([1, 2]),
    pad_h=st.sampled_from([0, 1]),
    pad_f=st.sampled_from([0, 1]),
)


class TestStoreContract:
    """The raw get/put/contains/keys contract, identical per backend."""

    @pytest.mark.parametrize("backend", CACHE_BACKENDS)
    @given(key=keys, payload=payloads)
    @settings(max_examples=20)
    def test_put_get_roundtrip(self, backend, tmp_path, key, payload):
        store = make_store(backend, tmp_path)
        # tmp_path persists across hypothesis examples, so only probe the
        # miss behaviour while the key is genuinely absent.
        if not store.contains(key):
            assert store.get(key) is None
        assert store.put(key, payload)
        assert store.contains(key)
        assert store.get(key) == json.loads(json.dumps(payload))

    @pytest.mark.parametrize("backend", CACHE_BACKENDS)
    def test_overwrite_wins(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.put("aabbccdd", {"v": 1})
        store.put("aabbccdd", {"v": 2})
        assert store.get("aabbccdd") == {"v": 2}
        assert list(store.keys()) == ["aabbccdd"]

    @pytest.mark.parametrize("backend", CACHE_BACKENDS)
    def test_keys_enumerates_all_records(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        wanted = {f"{i:02x}{'0' * 6}": {"i": i} for i in range(5)}
        for key, payload in wanted.items():
            store.put(key, payload)
        assert sorted(store.keys()) == sorted(wanted)

    @pytest.mark.parametrize("backend", CACHE_BACKENDS)
    def test_describe_is_informative(self, backend, tmp_path):
        assert make_store(backend, tmp_path).describe()


class TestSearchRoundTrip:
    """Save -> load -> re-evaluate lands on bit-identical configurations."""

    @pytest.mark.parametrize("backend", CACHE_BACKENDS)
    @given(layer=small_layers)
    @settings(max_examples=5, deadline=None)
    def test_random_layers_survive_recall(
        self, backend, tmp_path, morph_arch, layer
    ):
        clear_cache()
        store = make_store(backend, tmp_path)
        cold = OptimizerEngine(
            morph_arch, TINY, cache_backend=store
        ).optimize_layers((layer,))[0]

        clear_cache()  # drop the in-process memo: force the store path
        warm_engine = OptimizerEngine(morph_arch, TINY, cache_backend=store)
        warm = warm_engine.optimize_layers((layer,))[0]
        assert warm_engine.stats.disk_hits == 1
        assert warm_engine.stats.searched == 0
        assert warm.best.dataflow == cold.best.dataflow
        assert warm.score == cold.score


class TestCorruptRecords:
    """Unparseable records are quarantined and re-searched, never fatal."""

    @pytest.mark.parametrize("backend", ("local", "sharded"))
    @given(cut=st.integers(min_value=0, max_value=64))
    @settings(max_examples=10, deadline=None)
    def test_truncated_record_is_quarantined_and_re_searched(
        self, backend, tmp_path, morph_arch, cut
    ):
        store = make_store(backend, tmp_path)
        clear_cache()
        OptimizerEngine(morph_arch, TINY, cache_backend=store).optimize_layers(
            (LAYER,)
        )
        key = signature_key(search_signature(LAYER, morph_arch, TINY))
        path = store.path_for(key)
        truncated = path.read_text()[:cut]
        try:
            json.loads(truncated)
        except ValueError:
            pass
        else:  # a cut that still parses is not a corruption case
            assume(False)
        path.write_text(truncated)

        clear_cache()
        rerun = OptimizerEngine(morph_arch, TINY, cache_backend=store)
        rerun.optimize_layers((LAYER,))
        assert rerun.stats.disk_hits == 0
        assert rerun.stats.searched == 1
        # The corrupt record was moved aside, not destroyed, and the
        # re-search rewrote a valid one in place.
        quarantined = list((store.directory / "quarantine").iterdir())
        assert any(entry.name.startswith(path.name) for entry in quarantined)
        assert json.loads(path.read_text())["signature"] == search_signature(
            LAYER, morph_arch, TINY
        )

    @pytest.mark.parametrize("backend", ("local", "sharded"))
    def test_non_dict_record_is_quarantined(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.put("deadbeef", {"v": 1})
        path = store.path_for("deadbeef")
        path.write_text(json.dumps([1, 2, 3]))
        assert store.get("deadbeef") is None
        assert not path.exists()  # moved to quarantine


class TestShardedLayout:
    def test_two_level_fanout(self, tmp_path):
        store = ShardedStore(tmp_path)
        key = "abcdef" + "0" * 58
        store.put(key, {"v": 1})
        assert store.path_for(key) == tmp_path / "ab" / "cd" / f"{key}.json"
        assert store.path_for(key).exists()

    def test_manifest_lists_written_keys(self, tmp_path):
        store = ShardedStore(tmp_path)
        written = [f"{i:02x}{i:02x}{'0' * 60}" for i in range(4)]
        for key in written:
            store.put(key, {"v": key})
        assert list(store.manifest_keys()) == written

    def test_manifest_tolerates_torn_lines(self, tmp_path):
        store = ShardedStore(tmp_path)
        store.put("aabb" + "0" * 60, {"v": 1})
        with open(tmp_path / ShardedStore.MANIFEST, "a") as manifest:
            manifest.write('{"key": "cc')  # torn mid-record append
        assert list(store.manifest_keys()) == ["aabb" + "0" * 60]

    def test_short_keys_still_store(self, tmp_path):
        store = ShardedStore(tmp_path)
        assert store.put("abc", {"v": 1})
        assert store.get("abc") == {"v": 1}
        # Fallback "__" shards still enumerate (keys() contract), and a
        # quarantined record drops out of the listing.
        assert list(store.keys()) == ["abc"]
        store.path_for("abc").write_text("{ torn")
        assert store.get("abc") is None
        assert list(store.keys()) == []


class TestManifestCompaction:
    """compact_manifest(): latest record per key, atomic replace."""

    def test_duplicates_collapse_to_latest(self, tmp_path):
        store = ShardedStore(tmp_path)
        key_a, key_b = "aabb" + "0" * 60, "ccdd" + "0" * 60
        store.put(key_a, {"v": 1})
        store.put(key_b, {"v": 2})
        store.put(key_a, {"v": 3})  # re-write appends a second line
        manifest = tmp_path / ShardedStore.MANIFEST
        assert len(manifest.read_text().splitlines()) == 3
        assert store.compact_manifest() == 2
        lines = [json.loads(line) for line in manifest.read_text().splitlines()]
        assert [entry["key"] for entry in lines] == [key_a, key_b]
        # Records themselves are untouched; enumeration still agrees.
        assert store.get(key_a) == {"v": 3}
        assert sorted(store.manifest_keys()) == sorted(store.keys())

    def test_torn_lines_are_dropped(self, tmp_path):
        store = ShardedStore(tmp_path)
        key = "eeff" + "0" * 60
        store.put(key, {"v": 1})
        manifest = tmp_path / ShardedStore.MANIFEST
        with open(manifest, "a") as handle:
            handle.write('{"key": "torn')  # torn append, no newline
        assert store.compact_manifest() == 1
        assert list(store.manifest_keys()) == [key]
        # The rewritten manifest is fully valid JSON lines again.
        for line in manifest.read_text().splitlines():
            json.loads(line)

    def test_no_manifest_is_a_noop(self, tmp_path):
        store = ShardedStore(tmp_path)
        assert store.compact_manifest() == 0
        assert not (tmp_path / ShardedStore.MANIFEST).exists()

    def test_no_temp_files_left(self, tmp_path):
        store = ShardedStore(tmp_path)
        store.put("aa" * 32, {"v": 1})
        store.compact_manifest()
        assert not list(tmp_path.glob("*.tmp.*"))


class TestCacheStatistics:
    """Per-backend hit/miss/re-eval counters behind cache_statistics()."""

    @pytest.fixture(autouse=True)
    def _fresh_stats(self):
        from repro.optimizer.engine import reset_cache_statistics

        reset_cache_statistics()
        yield
        reset_cache_statistics()

    @pytest.mark.parametrize("backend", CACHE_BACKENDS)
    def test_cold_then_warm_counts(self, backend, tmp_path, morph_arch):
        from repro.optimizer.engine import cache_statistics

        store = make_store(backend, tmp_path)
        OptimizerEngine(morph_arch, TINY, cache_backend=store).optimize_layers(
            (LAYER,)
        )
        stats = cache_statistics()[store.identity()]
        assert (stats.misses, stats.writes, stats.hits) == (1, 1, 0)

        clear_cache()  # force the store path on the warm run
        OptimizerEngine(morph_arch, TINY, cache_backend=store).optimize_layers(
            (LAYER,)
        )
        stats = cache_statistics()[store.identity()]
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
        assert stats.recall_reevals == 1
        assert stats.stale == 0

    def test_stale_record_counts_as_stale_miss(self, tmp_path, morph_arch):
        from repro.optimizer.engine import cache_statistics

        store = make_store("local", tmp_path)
        OptimizerEngine(morph_arch, TINY, cache_backend=store).optimize_layers(
            (LAYER,)
        )
        key = signature_key(search_signature(LAYER, morph_arch, TINY))
        payload = store.get(key)
        payload["format_version"] = -1  # e.g. a record from older models
        store.put(key, payload)

        clear_cache()
        OptimizerEngine(morph_arch, TINY, cache_backend=store).optimize_layers(
            (LAYER,)
        )
        stats = cache_statistics()[store.identity()]
        assert stats.stale == 1
        assert stats.misses == 2  # the cold miss plus the stale one
        assert stats.hits == 0

    def test_describe_lists_backends(self, tmp_path, morph_arch):
        from repro.optimizer.engine import describe_cache_statistics

        assert "no persistent-store activity" in describe_cache_statistics()
        store = make_store("sharded", tmp_path)
        OptimizerEngine(morph_arch, TINY, cache_backend=store).optimize_layers(
            (LAYER,)
        )
        summary = describe_cache_statistics()
        assert f"[{store.identity()}]" in summary and "writes" in summary
        assert "sharded:" in summary  # identity keys carry the kind


class TestBackendSelection:
    def test_create_store_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(ValueError, match="unknown cache backend"):
            create_store("s3", tmp_path)

    def test_file_backends_need_a_directory(self):
        for backend in ("local", "sharded"):
            with pytest.raises(ValueError, match="needs a cache directory"):
                create_store(backend)

    def test_memory_backend_is_process_shared(self):
        assert memory_store() is memory_store()
        assert create_store("memory") is memory_store()

    def test_instance_passes_through(self, tmp_path):
        store = LocalDirectoryStore(tmp_path)
        assert create_store(store) is store

    def test_engine_backend_string_selects_layout(self, morph_arch, tmp_path):
        engine = OptimizerEngine(
            morph_arch, TINY, cache_dir=tmp_path, cache_backend="sharded"
        )
        engine.optimize_layers((LAYER,))
        assert list(tmp_path.glob("[0-9a-f]*/[0-9a-f]*/*.json"))
        assert (tmp_path / ShardedStore.MANIFEST).exists()

    def test_engine_memory_backend_needs_no_directory(self, morph_arch):
        engine = OptimizerEngine(morph_arch, TINY, cache_backend="memory")
        engine.optimize_layers((LAYER,))
        assert len(memory_store()) == 1
        clear_cache()
        warm = OptimizerEngine(morph_arch, TINY, cache_backend="memory")
        warm.optimize_layers((LAYER,))
        assert warm.stats.disk_hits == 1
        assert warm.stats.searched == 0

    def test_cache_dir_false_disables_every_backend(self, morph_arch):
        engine = OptimizerEngine(
            morph_arch, TINY, cache_backend="memory", cache_dir=False
        )
        engine.optimize_layers((LAYER,))
        assert engine.disk is None
        assert len(memory_store()) == 0

    def test_env_backend_selection(self, morph_arch, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sharded")
        engine = OptimizerEngine(morph_arch, TINY, cache_dir=tmp_path)
        engine.optimize_layers((LAYER,))
        assert list(tmp_path.glob("[0-9a-f]*/[0-9a-f]*/*.json"))

    def test_engine_defaults_validate_backend(self):
        with pytest.raises(ValueError, match="cache_backend"), \
                pytest.deprecated_call():
            set_engine_defaults(cache_backend="bogus")

    def test_sharded_and_local_recall_each_others_misses(
        self, morph_arch, tmp_path
    ):
        """Backends share record *format*: a record written by one layout
        recalls through another store pointed at the same file."""
        local = LocalDirectoryStore(tmp_path / "flat")
        clear_cache()
        cold = OptimizerEngine(
            morph_arch, TINY, cache_backend=local
        ).optimize_layers((LAYER,))[0]
        key = signature_key(search_signature(LAYER, morph_arch, TINY))
        payload = local.get(key)

        sharded = ShardedStore(tmp_path / "sharded")
        sharded.put(key, payload)
        clear_cache()
        warm_engine = OptimizerEngine(morph_arch, TINY, cache_backend=sharded)
        warm = warm_engine.optimize_layers((LAYER,))[0]
        assert warm_engine.stats.disk_hits == 1
        assert warm.best.dataflow == cold.best.dataflow


class TestManifestAutoCompaction:
    """ShardedStore compacts its append-only manifest automatically once
    it exceeds ``compact_ratio`` lines per live key (PR 5 satellite)."""

    def test_duplicate_writes_trigger_compaction(self, tmp_path):
        store = ShardedStore(
            tmp_path, compact_ratio=2.0, compact_check_interval=1
        )
        for index in range(12):
            assert store.put("aabbccdd", {"round": index})
        manifest = (tmp_path / ShardedStore.MANIFEST).read_text().splitlines()
        # Without auto-compaction this would be 12 lines.
        assert len(manifest) <= 2
        # The latest payload survives and the tree is untouched.
        assert store.get("aabbccdd") == {"round": 11}
        assert list(store.manifest_keys()) == ["aabbccdd"]

    def test_fresh_instances_share_the_append_counter(self, tmp_path):
        """The engine builds a fresh store per optimize call; the
        append counter is keyed by directory, so auto-compaction still
        fires across short-lived instances."""
        for index in range(12):
            store = ShardedStore(
                tmp_path, compact_ratio=2.0, compact_check_interval=4
            )
            store.put("aabbccdd", {"round": index})
        manifest = (tmp_path / ShardedStore.MANIFEST).read_text().splitlines()
        assert len(manifest) < 12
        assert store.get("aabbccdd") == {"round": 11}

    def test_distinct_keys_do_not_compact(self, tmp_path):
        store = ShardedStore(
            tmp_path, compact_ratio=2.0, compact_check_interval=1
        )
        keys = [f"{i:08x}" for i in range(8)]
        for key in keys:
            store.put(key, {"key": key})
        manifest = (tmp_path / ShardedStore.MANIFEST).read_text().splitlines()
        assert len(manifest) == len(keys)  # all live, nothing to compact

    def test_ratio_zero_disables(self, tmp_path):
        store = ShardedStore(
            tmp_path, compact_ratio=0, compact_check_interval=1
        )
        for index in range(6):
            store.put("aabbccdd", {"round": index})
        manifest = (tmp_path / ShardedStore.MANIFEST).read_text().splitlines()
        assert len(manifest) == 6

    def test_default_ratio_from_engine_resolution(self, tmp_path, monkeypatch):
        from repro.optimizer.engine import resolve_store

        monkeypatch.setenv("REPRO_MANIFEST_COMPACT_RATIO", "7.5")
        store = resolve_store(tmp_path, "sharded")
        assert isinstance(store, ShardedStore)
        assert store.compact_ratio == 7.5
        monkeypatch.delenv("REPRO_MANIFEST_COMPACT_RATIO")
        assert resolve_store(
            tmp_path, "sharded"
        ).compact_ratio == ShardedStore.DEFAULT_COMPACT_RATIO

    def test_session_config_threads_ratio_through(self, tmp_path):
        from repro.api import Session, SessionConfig

        config = SessionConfig(
            cache_dir=tmp_path,
            cache_backend="sharded",
            manifest_compact_ratio=3.5,
        )
        with Session(config) as session:
            store = session.store()
        assert isinstance(store, ShardedStore)
        assert store.compact_ratio == 3.5


class TestStatisticsSidecarStores:
    """Store-level behaviour of the CACHE_STATS.json sidecar."""

    @pytest.mark.parametrize("backend", CACHE_BACKENDS)
    def test_merge_and_load_round_trip(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        assert store.load_statistics() == {}
        assert store.merge_statistics({"local": {"hits": 2, "writes": 1}})
        assert store.merge_statistics({"local": {"hits": 3}})
        stats = store.load_statistics()
        assert stats["local"]["hits"] == 5
        assert stats["local"]["writes"] == 1

    def test_corrupt_sidecar_treated_as_empty(self, tmp_path):
        store = LocalDirectoryStore(tmp_path)
        (tmp_path / LocalDirectoryStore.STATS_SIDECAR).write_text("not json")
        assert store.load_statistics() == {}
        assert store.merge_statistics({"local": {"hits": 1}})
        assert store.load_statistics()["local"]["hits"] == 1

    def test_base_class_default_is_noop(self):
        class Bespoke(ConfigStore):
            def get(self, key):
                return None

            def put(self, key, payload):
                return False

            def contains(self, key):
                return False

            def keys(self):
                return iter(())

        store = Bespoke()
        assert store.load_statistics() == {}
        assert store.merge_statistics({"x": {"hits": 1}}) is False
