"""Tests for configuration-space enumeration (paper Section V-A)."""

import pytest

from repro.core.dims import DataType, Dim
from repro.core.layer import ConvLayer
from repro.core.loopnest import all_loop_orders
from repro.core.tiling import TileShape
from repro.optimizer.space import (
    REPRESENTATIVE_INNER_ORDERS,
    REPRESENTATIVE_OUTER_ORDERS,
    dedupe_orders_by_signature,
    halving_ladder,
    last_level_tile_candidates,
    loop_order_candidates,
    parallelism_candidates,
)

LAYER = ConvLayer(
    "c3d2", h=56, w=56, c=64, f=16, k=128, r=3, s=3, t=3,
    pad_h=1, pad_w=1, pad_f=1,
)


class TestHalvingLadder:
    def test_descends_to_one(self):
        assert halving_ladder(16) == [16, 8, 4, 2, 1]

    def test_ceil_halving(self):
        assert halving_ladder(7) == [7, 4, 2, 1]

    def test_one(self):
        assert halving_ladder(1) == [1]

    def test_always_includes_extremes(self):
        for n in (3, 100, 250):
            ladder = halving_ladder(n)
            assert ladder[0] == n
            assert ladder[-1] == 1


class TestTileCandidates:
    def test_all_candidates_fit(self, morph_arch):
        for tile in last_level_tile_candidates(LAYER, morph_arch):
            assert morph_arch.tile_fits(0, LAYER, tile)

    def test_candidate_count_bounded(self, morph_arch):
        tiles = last_level_tile_candidates(LAYER, morph_arch, max_candidates=10)
        assert 0 < len(tiles) <= 10

    def test_includes_data_type_pinning(self, morph_arch):
        """Figure 4b: the best configs pin one data type entirely."""
        tiles = last_level_tile_candidates(LAYER, morph_arch, max_candidates=24)
        full = TileShape.full(LAYER)
        assert any(
            t.c == full.c and t.k == full.k for t in tiles
        ), "no candidate keeps all weights resident"

    def test_static_partitions_change_candidates(self, morph_base_arch, morph_arch):
        base = last_level_tile_candidates(LAYER, morph_base_arch)
        for tile in base:
            assert morph_base_arch.tile_fits(0, LAYER, tile)

    def test_raises_when_nothing_fits(self, morph_arch):
        """R/S/T are never tiled (Section II-D), so a kernel bigger than
        the whole buffer makes even the minimum tile infeasible."""
        monster = ConvLayer("m", h=1200, w=1200, c=1, f=1, k=1, r=1100, s=1100, t=1)
        with pytest.raises(ValueError, match="no feasible"):
            last_level_tile_candidates(monster, morph_arch)


class TestLoopOrderCandidates:
    def test_exhaustive_is_120(self):
        orders = loop_order_candidates(
            exhaustive=True, representative=REPRESENTATIVE_OUTER_ORDERS
        )
        assert len(orders) == 120

    def test_representative_sets_parse(self):
        for spec in REPRESENTATIVE_OUTER_ORDERS + REPRESENTATIVE_INNER_ORDERS:
            orders = loop_order_candidates(exhaustive=False, representative=[spec])
            assert len(orders) == 1

    def test_representative_covers_paper_orders(self):
        """Figure 4's orders must be in the fast search space."""
        for spec in ("KWHCF", "WFHCK", "WHCKF"):
            assert spec in REPRESENTATIVE_OUTER_ORDERS
        for spec in ("KFWHC", "WHKFC", "CFWHK"):
            assert spec in REPRESENTATIVE_INNER_ORDERS

    def test_dedupe_collapses_classes(self):
        parent = TileShape.full(LAYER)
        child = TileShape(w=28, h=14, c=64, k=16, f=8)
        deduped = dedupe_orders_by_signature(all_loop_orders(), parent, child)
        assert 1 < len(deduped) < 120

    def test_dedupe_keeps_everything_distinct_signatures(self):
        """With all trips > 1 the classes are more numerous."""
        parent = TileShape.full(LAYER)
        child = TileShape(w=7, h=7, c=8, k=8, f=2)
        few = dedupe_orders_by_signature(all_loop_orders(), parent, child)
        degenerate_child = TileShape.full(LAYER)
        one = dedupe_orders_by_signature(
            all_loop_orders(), parent, degenerate_child
        )
        assert len(one) == 1  # everything degenerate: single class
        assert len(few) > len(one)


class TestParallelismCandidates:
    def test_full_machine_factorisations(self, morph_arch):
        for par in parallelism_candidates(morph_arch, LAYER):
            assert par.degree == morph_arch.total_pes

    def test_candidates_prefer_low_slack(self, morph_arch):
        """Degrees exceeding the layer extent rank late."""
        small = ConvLayer("small", h=9, w=9, c=256, f=3, k=512, r=3, s=3, t=3,
                          pad_h=1, pad_w=1, pad_f=1)
        best = parallelism_candidates(morph_arch, small)[0]
        assert best.of(Dim.W) <= small.out_w
        assert best.of(Dim.H) <= small.out_h

    def test_count_bounded(self, morph_arch):
        assert len(parallelism_candidates(morph_arch, LAYER, max_candidates=5)) <= 5

    def test_replication_tie_break(self, morph_arch):
        """Among zero-slack candidates, low replication ranks first."""
        candidates = parallelism_candidates(morph_arch, LAYER, max_candidates=12)
        reps = [
            c.replication(DataType.INPUTS) + c.replication(DataType.WEIGHTS)
            for c in candidates
        ]
        assert reps[0] <= max(reps)
