"""Tests for the CACTI-lite SRAM model and the Table IV area model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.area import (
    arithmetic_area_mm2,
    control_area_mm2,
    l0_area_mm2,
    morph_base_pe_area,
    morph_pe_area,
)
from repro.arch.sram import (
    banking_area_overhead,
    sram_area_mm2,
    sram_leakage_mw,
    sram_read_pj_per_byte,
    sram_write_pj_per_byte,
)


class TestSramEnergy:
    def test_monotone_in_capacity(self):
        assert sram_read_pj_per_byte(64) > sram_read_pj_per_byte(1)

    def test_write_above_read(self):
        assert sram_write_pj_per_byte(16) > sram_read_pj_per_byte(16)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sram_read_pj_per_byte(0)

    @given(kb=st.floats(0.25, 2048))
    def test_energy_positive_and_sane(self, kb):
        pj = sram_read_pj_per_byte(kb)
        assert 0 < pj < 20  # sane pJ/byte range for on-chip SRAM

    def test_sublinear_scaling(self):
        """E ~ sqrt(capacity): quadrupling capacity ~doubles the slope."""
        e1, e4 = sram_read_pj_per_byte(16), sram_read_pj_per_byte(64)
        assert e4 < 4 * e1


class TestBankingOverhead:
    def test_paper_calibration_16kb(self):
        """Table IV: banked 16 kB L0 costs +2.19%."""
        assert banking_area_overhead(16, 16) == pytest.approx(0.0219, rel=0.01)

    def test_paper_calibration_1mb(self):
        """Section IV-B1: 1 MB L2 into 16 banks adds 4.9%."""
        assert banking_area_overhead(1024, 16) == pytest.approx(0.049, rel=0.01)

    def test_monolithic_is_free(self):
        assert banking_area_overhead(1024, 1) == 0.0

    def test_rejects_zero_banks(self):
        with pytest.raises(ValueError):
            banking_area_overhead(16, 0)

    def test_more_banks_more_overhead(self):
        assert banking_area_overhead(64, 32) > banking_area_overhead(64, 8)


class TestSramArea:
    def test_calibrated_to_paper_l0(self):
        """Table IV: monolithic 16 kB L0 = 0.041132 mm^2."""
        assert sram_area_mm2(16, banks=1) == pytest.approx(0.041132, rel=1e-6)

    def test_area_linear_in_capacity(self):
        assert sram_area_mm2(32, 1) == pytest.approx(2 * sram_area_mm2(16, 1))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sram_area_mm2(0)

    def test_leakage_scales_with_capacity(self):
        assert sram_leakage_mw(100, 0.006) == pytest.approx(0.6)


class TestTable4Components:
    """Each Table IV row must come out of the structural model within a
    modest tolerance of the paper's synthesis numbers."""

    def test_l0_row(self):
        base, flex = morph_base_pe_area(), morph_pe_area()
        assert base.l0_buffer == pytest.approx(0.041132, rel=0.01)
        assert flex.l0_buffer == pytest.approx(0.042036, rel=0.01)

    def test_arithmetic_row(self):
        base, flex = morph_base_pe_area(), morph_pe_area()
        assert base.arithmetic == pytest.approx(0.00306, rel=0.05)
        assert flex.arithmetic == pytest.approx(0.00366, rel=0.05)

    def test_control_row(self):
        base, flex = morph_base_pe_area(), morph_pe_area()
        assert base.control == pytest.approx(0.00107, rel=0.15)
        assert flex.control == pytest.approx(0.00182, rel=0.15)

    def test_total_overhead_is_about_five_percent(self):
        """The headline: flexibility costs ~5% PE area (paper: 4.98%)."""
        overhead = morph_pe_area().overhead_vs(morph_base_pe_area())["total"]
        assert 0.035 <= overhead <= 0.065

    def test_control_dominates_relative_increase(self):
        """Control logic grows the most (paper: +70.6%), but it is tiny."""
        overheads = morph_pe_area().overhead_vs(morph_base_pe_area())
        assert overheads["control"] > overheads["arithmetic"] > overheads["l0_buffer"]

    def test_buffer_dominates_absolute_area(self):
        flex = morph_pe_area()
        assert flex.l0_buffer > 0.8 * flex.total

    def test_flexible_arithmetic_costs_extra(self):
        assert arithmetic_area_mm2(8, flexible=True) > arithmetic_area_mm2(
            8, flexible=False
        )

    def test_programmable_control_costs_extra(self):
        assert control_area_mm2(flexible=True) > control_area_mm2(flexible=False)

    def test_banked_l0_costs_extra(self):
        assert l0_area_mm2(16, banks=16) > l0_area_mm2(16, banks=1)
