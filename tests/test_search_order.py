"""Best-first block ordering: bit-identical results, fewer evaluations.

The search visits (parallelism, L2-tile) candidate blocks best-first —
ascending by objective lower bound — so the incumbent-based prune bites
as early as possible.  The ordering guarantee under test: the chosen
configuration and score are *bit-identical* to the legacy enumeration
order (equal-score ties resolve by candidate identity, never visit
order), while the number of full model evaluations only ever shrinks.
"""

from __future__ import annotations

import pytest

from repro.core.layer import ConvLayer
from repro.optimizer.engine import search_signature, signature_key
from repro.optimizer.search import (
    OBJECTIVES,
    LayerOptimizer,
    OptimizerOptions,
    clear_cache,
    optimize_network,
)
from repro.optimizer.space import candidate_blocks
from repro.workloads import build_network, network_names

FAST = OptimizerOptions.fast()

LAYERS = (
    ConvLayer("mid", h=14, w=14, c=32, f=4, k=64, r=3, s=3, t=3,
              pad_h=1, pad_w=1, pad_f=1),
    ConvLayer("deep", h=7, w=7, c=128, f=2, k=128, r=3, s=3, t=3,
              pad_h=1, pad_w=1, pad_f=1),
    #: AlexNet conv3-like: verified to prune strictly more best-first.
    ConvLayer("alex3", h=13, w=13, c=256, f=1, k=384, r=3, s=3, t=1,
              pad_h=1, pad_w=1),
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_cache()
    yield
    clear_cache()


class TestBlockOrder:
    def test_legacy_order_is_parallelism_major(self):
        blocks = candidate_blocks(["p0", "p1"], ["t0", "t1", "t2"])
        assert blocks == [
            (0, 0, 0), (1, 0, 1), (2, 0, 2),
            (3, 1, 0), (4, 1, 1), (5, 1, 2),
        ]

    def test_best_first_sorts_by_bound_then_legacy_rank(self):
        bounds = {0: 5.0, 1: 1.0, 2: 5.0}
        blocks = candidate_blocks(
            ["p0", "p1"], ["t0", "t1", "t2"],
            best_first=True,
            block_bound=lambda p_idx, t_idx: bounds[t_idx],
        )
        # t1's blocks first (lowest bound); bound ties keep legacy order.
        assert blocks == [
            (1, 0, 1), (4, 1, 1),
            (0, 0, 0), (2, 0, 2), (3, 1, 0), (5, 1, 2),
        ]

    def test_best_first_differentiates_parallelisms(self):
        """The bound now sees the parallelism index, so two blocks of one
        L2 tile can rank apart (parallelism-aware floors)."""
        bounds = {(0, 0): 5.0, (0, 1): 2.0, (1, 0): 1.0, (1, 1): 9.0}
        blocks = candidate_blocks(
            ["p0", "p1"], ["t0", "t1"],
            best_first=True,
            block_bound=lambda p_idx, t_idx: bounds[(p_idx, t_idx)],
        )
        assert blocks == [(2, 1, 0), (1, 0, 1), (0, 0, 0), (3, 1, 1)]


class TestIdenticalResults:
    @pytest.mark.parametrize("vectorize", (False, True))
    @pytest.mark.parametrize("objective", sorted(OBJECTIVES))
    def test_bit_identical_choice_and_score(
        self, morph_arch, vectorize, objective
    ):
        options = FAST.with_(objective=objective, vectorize=vectorize)
        # The scalar reference path is an order of magnitude slower, and
        # per-layer coverage beyond two shapes adds nothing it checks.
        layers = LAYERS if vectorize else LAYERS[:2]
        for layer in layers:
            best_first = LayerOptimizer(
                morph_arch, options.with_(search_order="best_first")
            ).optimize(layer)
            legacy = LayerOptimizer(
                morph_arch, options.with_(search_order="legacy")
            ).optimize(layer)
            assert best_first.best.dataflow == legacy.best.dataflow, layer.name
            assert best_first.score == legacy.score, layer.name

    @pytest.mark.parametrize("vectorize", (False, True))
    def test_prune_counter_monotonically_better(self, morph_arch, vectorize):
        """Best-first never evaluates more candidates, and on layers whose
        heuristic L2 ranking is imperfect it evaluates strictly fewer."""
        strict_gain = False
        for layer in LAYERS:
            best_first = LayerOptimizer(
                morph_arch, FAST.with_(search_order="best_first",
                                       vectorize=vectorize)
            ).optimize(layer)
            legacy = LayerOptimizer(
                morph_arch, FAST.with_(search_order="legacy",
                                       vectorize=vectorize)
            ).optimize(layer)
            assert best_first.evaluated <= legacy.evaluated, layer.name
            strict_gain |= best_first.evaluated < legacy.evaluated
        assert strict_gain  # the alex3 layer pins a strict improvement

    def test_order_excluded_from_signatures(self, morph_arch):
        """A pure speed knob: records cached under one order must recall
        under the other, so the order cannot enter the signature."""
        base = FAST.with_(search_order="best_first")
        legacy = FAST.with_(search_order="legacy")
        layer = LAYERS[0]
        assert search_signature(layer, morph_arch, base) == search_signature(
            layer, morph_arch, legacy
        )
        assert signature_key(
            search_signature(layer, morph_arch, base)
        ) == signature_key(search_signature(layer, morph_arch, legacy))

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError, match="search_order"):
            OptimizerOptions(search_order="random")


class TestBoundQualityTelemetry:
    """first_block_won: does the bound's top-ranked block hold the winner?"""

    @pytest.mark.parametrize("vectorize", (False, True))
    def test_fresh_search_records_outcome(self, morph_arch, vectorize):
        for layer in LAYERS[:2]:
            result = LayerOptimizer(
                morph_arch, FAST.with_(vectorize=vectorize)
            ).optimize(layer)
            assert result.first_block_won in (True, False), layer.name

    @pytest.mark.parametrize("vectorize", (False, True))
    def test_consistent_between_paths(self, morph_arch, vectorize):
        """Both paths rank blocks identically, so the telemetry agrees."""
        layer = LAYERS[0]
        scalar = LayerOptimizer(
            morph_arch, FAST.with_(vectorize=False)
        ).optimize(layer)
        batch = LayerOptimizer(
            morph_arch, FAST.with_(vectorize=True)
        ).optimize(layer)
        assert scalar.first_block_won == batch.first_block_won

    def test_recalled_results_round_trip_telemetry(self, morph_arch, tmp_path):
        """A disk recall restores the original search's telemetry — the
        tri-state field round-trips losslessly instead of collapsing."""
        from repro.optimizer.engine import OptimizerEngine

        options = FAST
        engine = OptimizerEngine(morph_arch, options, cache_dir=tmp_path)
        fresh = engine.optimize_layers((LAYERS[0],))[0]
        assert fresh.first_block_won is not None
        clear_cache()
        recalled = OptimizerEngine(
            morph_arch, options, cache_dir=tmp_path
        ).optimize_layers((LAYERS[0],))[0]
        assert recalled.first_block_won is fresh.first_block_won
        assert recalled.parallelism_displaced == fresh.parallelism_displaced
        # Recalls run no search, so the anytime telemetry stays unset.
        assert recalled.bound_gap is None
        assert recalled.budget_exhausted is False


class TestParallelismAwareFloors:
    """parallel_floors: tighter bounds, bit-identical configurations."""

    @pytest.mark.parametrize("vectorize", (False, True))
    @pytest.mark.parametrize("objective", sorted(OBJECTIVES))
    def test_identical_results_per_layer(
        self, morph_arch, vectorize, objective
    ):
        """The floors are provable lower bounds, so switching them off
        (the PR 4 parallelism-blind bound) changes nothing but work."""
        options = FAST.with_(objective=objective, vectorize=vectorize)
        layers = LAYERS if vectorize else LAYERS[:2]
        for layer in layers:
            with_floors = LayerOptimizer(
                morph_arch, options.with_(parallel_floors=True)
            ).optimize(layer)
            without = LayerOptimizer(
                morph_arch, options.with_(parallel_floors=False)
            ).optimize(layer)
            assert with_floors.best.dataflow == without.best.dataflow, (
                layer.name
            )
            assert with_floors.score == without.score, layer.name

    @pytest.mark.parametrize("objective", sorted(OBJECTIVES))
    def test_parallelism_aware_bound_is_sound(self, morph_arch, objective):
        """The winner's own block bound never exceeds its real score."""
        from repro.optimizer.search import objective_lower_bound

        options = FAST.with_(objective=objective)
        for layer in LAYERS[:2]:
            result = LayerOptimizer(morph_arch, options).optimize(layer)
            ev = result.best
            bound = objective_lower_bound(
                layer, morph_arch, ev.dataflow.hierarchy.outermost,
                ev.dataflow.outer_order, objective,
                parallelism=ev.dataflow.parallelism,
            )
            assert bound <= OBJECTIVES[objective](ev) * (1 + 1e-12), (
                layer.name
            )

    def test_floors_only_tighten(self, morph_arch):
        """The parallelism-aware bound dominates the blind one (it adds a
        utilization ceiling <= 1 and a replication floor >= 0)."""
        from repro.optimizer.search import objective_lower_bound

        layer = LAYERS[0]
        result = LayerOptimizer(morph_arch, FAST).optimize(layer)
        ev = result.best
        for objective in sorted(OBJECTIVES):
            blind = objective_lower_bound(
                layer, morph_arch, ev.dataflow.hierarchy.outermost,
                ev.dataflow.outer_order, objective,
            )
            aware = objective_lower_bound(
                layer, morph_arch, ev.dataflow.hierarchy.outermost,
                ev.dataflow.outer_order, objective,
                parallelism=ev.dataflow.parallelism,
            )
            assert aware >= blind, objective


@pytest.mark.slow
def test_parallel_floors_identical_and_cheaper_across_networks(morph_arch):
    """Acceptance sweep: with the parallelism-aware floors on, every
    registered network chooses bit-identical per-layer configurations and
    scores, and at least half the networks run strictly fewer full model
    evaluations than the parallelism-blind bound."""
    strict = 0
    names = sorted(network_names())
    for network_name in names:
        network = build_network(network_name)
        sweeps = {}
        for floors in (True, False):
            clear_cache()
            sweeps[floors] = optimize_network(
                network.layers, morph_arch,
                FAST.with_(parallel_floors=floors),
                network_name=network.name, use_cache=False, parallelism=1,
            )
        on, off = sweeps[True], sweeps[False]
        for chosen, reference in zip(on.layers, off.layers):
            assert chosen.best.dataflow == reference.best.dataflow, (
                f"{network_name}:{chosen.layer.name}"
            )
            assert chosen.score == reference.score, (
                f"{network_name}:{chosen.layer.name}"
            )
        assert on.total_energy_pj == off.total_energy_pj, network_name
        evaluated_on = sum(r.evaluated for r in on.layers)
        evaluated_off = sum(r.evaluated for r in off.layers)
        strict += evaluated_on < evaluated_off
    assert strict * 2 >= len(names), (
        f"floors strictly reduced evaluations on only {strict}/{len(names)} "
        "networks"
    )


@pytest.mark.slow
@pytest.mark.parametrize("network_name", sorted(network_names()))
def test_best_first_identical_and_cheaper_on_every_network(
    network_name, morph_arch
):
    """Whole-network invariance sweep: every registered network chooses
    bit-identical configurations and scores under best-first visiting,
    while evaluating strictly fewer full candidates in total.

    Pinned with the shape-only bounds (``parallel_floors=False``): the
    parallelism-aware floors can prune a network (e.g. two_stream) down
    to the same evaluation count under either visit order, which tests
    the bound, not the ordering.  The floors' own identity-and-reduction
    guarantee is the sweep above."""
    network = build_network(network_name)
    sweeps = {}
    for order in ("best_first", "legacy"):
        clear_cache()
        sweeps[order] = optimize_network(
            network.layers, morph_arch,
            FAST.with_(search_order=order, parallel_floors=False),
            network_name=network.name, use_cache=False, parallelism=1,
        )
    best_first, legacy = sweeps["best_first"], sweeps["legacy"]
    for chosen, reference in zip(best_first.layers, legacy.layers):
        assert chosen.best.dataflow == reference.best.dataflow, (
            chosen.layer.name
        )
        assert chosen.score == reference.score, chosen.layer.name
    assert best_first.total_energy_pj == legacy.total_energy_pj
    evaluated_best_first = sum(r.evaluated for r in best_first.layers)
    evaluated_legacy = sum(r.evaluated for r in legacy.layers)
    assert evaluated_best_first < evaluated_legacy, (
        f"{network_name}: best-first evaluated {evaluated_best_first}, "
        f"legacy {evaluated_legacy}"
    )
