"""Backend and chunking equivalence harness for the compiled kernel layer.

The ``repro.core.backend`` contract (``docs/INVARIANTS.md``): backends
*lower* the shared ``*_kernel`` functions, they never fork the math, so
every backend — and every ``max_table_bytes`` chunking of a columnar
pass — must be **bit-identical** to the scalar oracle.  These tests pin
that contract:

* hypothesis properties compare scalar vs ``"numpy"`` vs ``"compiled"``
  backends on random strided/dilated layers: candidate scores, chosen
  winners, and the trace/pipeline simulator counters;
* chunked-vs-unchunked identity, including a forced multi-chunk
  tie-break (the first-min rule must survive chunk boundaries) and a
  ``max_table_bytes`` smaller than one table row (clean ``ValueError``);
* an allocation-tracking test that the streamed slices actually respect
  the cap on a batch whose full table exceeds it;
* ``repro.clear_cache()`` resets the backend dispatch memos and chunk
  plans;
* strict ``$REPRO_KERNEL_BACKEND`` / ``$REPRO_MAX_TABLE_BYTES`` parsing
  (errors name the variable and the offending value) and the session >
  environment > built-in resolution chain.

When numba is absent the ``compiled`` backend silently resolves to the
pure-Python kernels — by design — so this whole suite passes either way;
the identity assertions are exactly as strong in fallback mode.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.arch.accelerator import eyeriss_like, morph, morph_base
from repro.core import backend as kb
from repro.core.batch import CandidateBatch
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.dims import ALL_DIMS
from repro.core.evaluate import CapacityError, evaluate
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder, all_loop_orders
from repro.core.tiling import TileHierarchy, TileShape
from repro.optimizer.search import (
    OBJECTIVES,
    LayerOptimizer,
    OptimizerOptions,
)
from repro.sim.pipeline_sim import simulate_pipeline
from repro.sim.trace import trace_dataflow

ARCHES = {"morph": morph, "morph_base": morph_base, "eyeriss": eyeriss_like}

SMALL_OPTIONS = OptimizerOptions(
    max_l2_candidates=4,
    keep_allocations=2,
    keep_per_level=2,
    max_parallelism_candidates=2,
)

ORDERS = [LoopOrder.parse(s) for s in
          ("WHCKF", "KWHCF", "WFKHC", "FWHCK", "CKWHF", "KCFWH")]


@st.composite
def layers(draw) -> ConvLayer:
    """Random (possibly strided/dilated) 3D conv layers."""
    r = draw(st.integers(1, 3))
    s = draw(st.integers(1, 3))
    t = draw(st.integers(1, 2))
    dil_h = draw(st.integers(1, 3))
    dil_w = draw(st.integers(1, 2))
    span_h = (r - 1) * dil_h + 1
    span_w = (s - 1) * dil_w + 1
    return ConvLayer(
        "prop",
        h=draw(st.integers(span_h, 20)),
        w=draw(st.integers(span_w, 20)),
        c=draw(st.integers(1, 32)),
        f=draw(st.integers(t, 8)),
        k=draw(st.integers(1, 48)),
        r=r, s=s, t=t,
        stride_h=draw(st.integers(1, 2)),
        stride_w=draw(st.integers(1, 2)),
        stride_f=draw(st.integers(1, 2)),
        pad_h=draw(st.integers(0, 2)),
        pad_w=draw(st.integers(0, 1)),
        pad_f=draw(st.integers(0, 1)),
        dilation_h=dil_h,
        dilation_w=dil_w,
    )


def _random_tile(draw, full: TileShape) -> TileShape:
    return TileShape(
        w=draw(st.integers(1, full.w)),
        h=draw(st.integers(1, full.h)),
        c=draw(st.integers(1, full.c)),
        k=draw(st.integers(1, full.k)),
        f=draw(st.integers(1, full.f)),
    )


@st.composite
def batch_cases(draw):
    """A populated :class:`CandidateBatch` (plus its row meanings)."""
    layer = draw(layers())
    arch = ARCHES[draw(st.sampled_from(sorted(ARCHES)))]()
    full = TileShape.full(layer)
    hierarchies = [
        tuple(_random_tile(draw, full) for _ in range(arch.num_levels))
        for _ in range(draw(st.integers(1, 3)))
    ]
    order_pool = list(all_loop_orders())
    orders = tuple(
        draw(st.sampled_from(order_pool)) for _ in range(draw(st.integers(1, 2)))
    )
    parallelisms = (Parallelism(), Parallelism(k=arch.clusters))[
        : draw(st.integers(1, 2))
    ]
    rows = [
        (hi, oi, ii, pi)
        for hi in range(len(hierarchies))
        for oi in range(len(orders))
        for ii in range(len(orders))
        for pi in range(len(parallelisms))
    ]
    n = len(rows)
    tiles = np.empty((arch.num_levels, 5, n), dtype=np.int64)
    outer = np.empty(n, dtype=np.int64)
    inner = np.empty(n, dtype=np.int64)
    par = np.empty(n, dtype=np.int64)
    for i, (hi, oi, ii, pi) in enumerate(rows):
        for lvl, tile in enumerate(hierarchies[hi]):
            tiles[lvl, :, i] = (tile.w, tile.h, tile.c, tile.k, tile.f)
        outer[i], inner[i], par[i] = oi, ii, pi
    batch = CandidateBatch(
        layer, arch, orders, parallelisms, tiles, outer, inner, par
    )
    return batch, rows, hierarchies


@st.composite
def sim_dataflows(draw) -> Dataflow:
    """Small random dataflows for the simulator counter checks."""
    r = draw(st.sampled_from([1, 3]))
    s = draw(st.sampled_from([1, 3]))
    t = draw(st.sampled_from([1, 2]))
    dil_h = draw(st.integers(1, 2))
    span_h = (r - 1) * dil_h + 1
    layer = ConvLayer(
        "sim",
        h=draw(st.integers(max(4, span_h), 12)),
        w=draw(st.integers(max(4, s), 12)),
        c=draw(st.integers(1, 6)),
        f=draw(st.integers(t, 6)),
        k=draw(st.integers(1, 8)),
        r=r, s=s, t=t,
        stride_h=draw(st.integers(1, 2)),
        stride_w=draw(st.integers(1, 2)),
        pad_h=draw(st.integers(0, 1)),
        pad_w=draw(st.integers(0, 1)),
        dilation_h=dil_h,
    )
    parent = TileShape.full(layer)
    tiles = []
    for _ in range(draw(st.integers(1, 3))):
        tile = TileShape.from_mapping(
            {d: draw(st.integers(1, parent.extent(d))) for d in ALL_DIMS}
        ).clipped(parent)
        tiles.append(tile)
        parent = tile
    return Dataflow(
        draw(st.sampled_from(ORDERS)),
        draw(st.sampled_from(ORDERS)),
        TileHierarchy(layer, tuple(tiles)),
        draw(st.sampled_from([Parallelism(), Parallelism(k=6, h=4, w=4)])),
    )


def assert_trace_reports_identical(a, b) -> None:
    from repro.core.dims import ALL_DATA_TYPES

    assert len(a.boundaries) == len(b.boundaries)
    for i, (ba, bb) in enumerate(zip(a.boundaries, b.boundaries)):
        for dt in ALL_DATA_TYPES:
            assert ba.fills[dt] == bb.fills[dt], (i, dt)
            assert ba.fill_bytes[dt] == bb.fill_bytes[dt], (i, dt)
        assert ba.psum_load_bytes == bb.psum_load_bytes, i
        assert ba.psum_writeback_bytes == bb.psum_writeback_bytes, i
    assert a.dram_psum_writeback_bytes() == b.dram_psum_writeback_bytes()


# ----------------------------------------------------------------------
# Backend bit-identity: scalar vs numpy vs compiled
# ----------------------------------------------------------------------
class TestBackendScoreIdentity:
    """Same scores and winners through every registered backend."""

    @given(case=batch_cases(), objective=st.sampled_from(sorted(OBJECTIVES)))
    @settings(max_examples=25, deadline=None)
    def test_scores_bitwise_equal_across_backends(self, case, objective):
        batch, rows, hierarchies = case
        via_numpy = batch.scores(objective, kernel_backend="numpy")
        via_compiled = batch.scores(objective, kernel_backend="compiled")
        # Bit-identity between backends (inf compares equal to inf).
        assert np.array_equal(via_numpy, via_compiled)
        # And both match the scalar oracle row by row.
        for i in range(len(batch)):
            try:
                expected = OBJECTIVES[objective](
                    evaluate(batch.dataflow(i), batch.arch)
                )
            except CapacityError:
                assert math.isinf(via_compiled[i]), (i, rows[i])
                continue
            assert via_compiled[i] == expected, (i, rows[i])

    @given(case=batch_cases(), objective=st.sampled_from(sorted(OBJECTIVES)))
    @settings(max_examples=25, deadline=None)
    def test_best_identical_across_backends(self, case, objective):
        batch, _, _ = case
        base = batch.best(objective, kernel_backend="numpy")
        compiled = batch.best(objective, kernel_backend="compiled")
        assert base == compiled
        scores = batch.scores(objective)
        assert base[0] == int(np.argmin(scores))
        assert base[1] == float(scores[base[0]])
        assert base[2] == int(np.isfinite(scores).sum())

    @given(
        layer=layers(),
        objective=st.sampled_from(sorted(OBJECTIVES)),
        arch_name=st.sampled_from(sorted(ARCHES)),
    )
    @settings(max_examples=6, deadline=None)
    def test_search_winner_identical(self, layer, objective, arch_name):
        """Full LayerOptimizer run: compiled backend changes nothing."""
        arch = ARCHES[arch_name]()
        options = SMALL_OPTIONS.with_(objective=objective, vectorize=True)
        try:
            base = LayerOptimizer(arch, options).optimize(layer)
        except CapacityError:
            with pytest.raises(CapacityError):
                LayerOptimizer(
                    arch, options.with_(kernel_backend="compiled")
                ).optimize(layer)
            return
        compiled = LayerOptimizer(
            arch, options.with_(kernel_backend="compiled")
        ).optimize(layer)
        assert compiled.best.dataflow == base.best.dataflow
        assert compiled.score == base.score
        assert compiled.evaluated == base.evaluated


class TestSimulatorBackendIdentity:
    """Trace/pipeline counters identical through every backend + chunking."""

    @given(dataflow=sim_dataflows())
    @settings(max_examples=20, deadline=None)
    def test_trace_counters_identical(self, dataflow):
        scalar = trace_dataflow(dataflow, vectorize=False)
        for kwargs in (
            {"kernel_backend": "numpy"},
            {"kernel_backend": "compiled"},
            {"kernel_backend": "compiled", "max_table_bytes": 40_000},
        ):
            columnar = trace_dataflow(dataflow, vectorize=True, **kwargs)
            assert_trace_reports_identical(scalar, columnar)

    @given(dataflow=sim_dataflows())
    @settings(max_examples=20, deadline=None)
    def test_pipeline_report_identical(self, dataflow):
        arch = morph()
        scalar = simulate_pipeline(dataflow, arch, vectorize=False)
        for kwargs in (
            {"kernel_backend": "numpy"},
            {"kernel_backend": "compiled"},
            {"kernel_backend": "compiled", "max_table_bytes": 60_000},
        ):
            columnar = simulate_pipeline(
                dataflow, arch, vectorize=True, **kwargs
            )
            # Frozen dataclass ==: every field, float cycles included.
            assert scalar == columnar

    def test_dilated_case_tiny_chunks(self):
        """Deterministic dilated/strided case streamed in many chunks."""
        layer = ConvLayer(
            "dil", h=13, w=11, c=5, f=6, k=7, r=3, s=3, t=2,
            stride_h=2, stride_w=2, pad_h=2, pad_w=2,
            dilation_h=2, dilation_w=2,
        )
        dataflow = Dataflow(
            LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"),
            TileHierarchy(
                layer,
                (TileShape(w=3, h=4, c=3, k=4, f=3),
                 TileShape(w=3, h=2, c=2, k=2, f=2)),
            ),
        )
        arch = morph()
        assert_trace_reports_identical(
            trace_dataflow(dataflow, vectorize=False),
            trace_dataflow(dataflow, vectorize=True, max_table_bytes=2_000),
        )
        assert simulate_pipeline(dataflow, arch, vectorize=False) == (
            simulate_pipeline(
                dataflow, arch, vectorize=True, max_table_bytes=2_000
            )
        )


# ----------------------------------------------------------------------
# Chunked streaming: identity, tie-breaks, caps
# ----------------------------------------------------------------------
class TestChunkedEvaluation:
    @given(case=batch_cases(), objective=st.sampled_from(sorted(OBJECTIVES)))
    @settings(max_examples=20, deadline=None)
    def test_chunked_scores_and_best_identical(self, case, objective):
        batch, _, _ = case
        full_scores = batch.scores(objective)
        full_best = batch.best(objective)
        # A cap of two rows' worth forces ceil(n/2) chunks.
        cap = 2 * batch._row_bytes()
        assert np.array_equal(
            full_scores, batch.scores(objective, max_table_bytes=cap)
        )
        assert full_best == batch.best(objective, max_table_bytes=cap)

    def _uniform_batch(self, copies: int) -> CandidateBatch:
        """``copies`` identical candidate rows — every score ties."""
        layer = ConvLayer("tie", h=8, w=8, c=4, f=2, k=8, r=3, s=3, t=1,
                          pad_h=1, pad_w=1)
        arch = morph()
        tile = TileShape(w=4, h=4, c=4, k=4, f=1)
        tiles = np.empty((arch.num_levels, 5, copies), dtype=np.int64)
        for lvl in range(arch.num_levels):
            tiles[lvl, :, :] = np.array(
                [tile.w, tile.h, tile.c, tile.k, tile.f]
            )[:, None]
        zeros = np.zeros(copies, dtype=np.int64)
        return CandidateBatch(
            layer, arch, (LoopOrder.parse("WHCKF"),), (Parallelism(),),
            tiles, zeros, zeros.copy(), zeros.copy(),
        )

    def test_multi_chunk_tie_break_keeps_first_min(self):
        """Equal scores across a chunk boundary: the lowest row index
        (the lowest legacy candidate rank) must win, exactly as a global
        ``np.argmin`` would pick it."""
        batch = self._uniform_batch(7)
        cap = 2 * batch._row_bytes()  # rows land in chunks of 2
        scores = batch.scores("energy")
        assert np.all(scores == scores[0]) and np.isfinite(scores[0])
        for max_table_bytes in (None, cap):
            index, score, finite = batch.best(
                "energy", max_table_bytes=max_table_bytes
            )
            assert index == 0
            assert score == float(scores[0])
            assert finite == len(batch)

    def test_cap_smaller_than_one_row_raises(self):
        batch = self._uniform_batch(3)
        with pytest.raises(ValueError, match="smaller than a single table row"):
            batch.scores("energy", max_table_bytes=1)
        with pytest.raises(ValueError, match="smaller than a single table row"):
            kb.plan_chunk_rows(row_bytes=64, max_table_bytes=63)
        with pytest.raises(ValueError, match="row_bytes must be positive"):
            kb.plan_chunk_rows(row_bytes=0, max_table_bytes=1024)

    def test_chunks_respect_the_byte_cap(self, monkeypatch):
        """Allocation tracking: every streamed slice stays under the cap
        while the full table would blow past it."""
        batch = self._uniform_batch(64)
        row_bytes = batch._row_bytes()
        cap = 8 * row_bytes
        assert len(batch) * row_bytes > cap  # the full table exceeds the cap

        slices: list[int] = []
        original = CandidateBatch._scores_slice

        def tracking(self, objective, sl, backend):
            slices.append(sl.stop - sl.start)
            return original(self, objective, sl, backend)

        monkeypatch.setattr(CandidateBatch, "_scores_slice", tracking)
        chunked = batch.scores("energy", max_table_bytes=cap)
        assert sum(slices) == len(batch)
        assert all(rows * row_bytes <= cap for rows in slices)
        assert len(slices) == math.ceil(len(batch) / 8)

        slices.clear()
        full = batch.scores("energy")
        assert slices == [len(batch)]
        assert np.array_equal(full, chunked)

    def test_plan_chunk_rows_memoized(self):
        rows = kb.plan_chunk_rows(100, 1000)
        assert rows == 10
        assert kb._CHUNK_PLANS[(100, 1000)] == 10
        assert kb.plan_chunk_rows(100, 1000) == 10


# ----------------------------------------------------------------------
# Backend registry and fallback mechanics
# ----------------------------------------------------------------------
class TestBackendRegistry:
    def test_registry_names(self):
        assert kb.backend_names() == ("compiled", "numpy")
        assert kb.check_backend_name("numpy") == "numpy"
        with pytest.raises(ValueError, match="unknown kernel backend 'cuda'"):
            kb.check_backend_name("cuda")

    def test_numpy_backend_is_identity(self):
        def toy_kernel(x):
            return x + 1

        backend = kb.KERNEL_BACKENDS["numpy"]
        assert backend.kernel_impl(toy_kernel) is toy_kernel

    def test_unavailable_backend_serves_the_original(self):
        """An unavailable substrate silently degrades to the pure kernel
        — the contract that makes ``compiled`` safe without numba."""

        def toy_kernel(x):
            return x * 2

        backend = kb.KernelBackend(
            name="phantom",
            available=lambda: False,
            lower=lambda fn: pytest.fail("lower must not run"),
        )
        assert backend.kernel_impl(toy_kernel) is toy_kernel

    def test_compiled_backend_never_raises_without_numba(self):
        if kb.compiled_available():
            pytest.skip("numba installed: fallback path not reachable")

        def toy_kernel(x):
            return x + 3

        backend = kb.KERNEL_BACKENDS["compiled"]
        impl = backend.kernel_impl(toy_kernel)
        assert impl is toy_kernel  # identity fallback, no wrapper overhead

    def test_guarded_kernel_falls_back_on_failure(self):
        calls = {"jitted": 0}

        def kernel(x):
            return x + 10

        def exploding(x):
            calls["jitted"] += 1
            raise RuntimeError("typing failed at first call")

        guarded = kb._GuardedKernel(kernel, exploding)
        assert guarded(1) == 11  # falls back, result from the oracle
        assert guarded.failed
        assert guarded(2) == 12
        assert calls["jitted"] == 1  # never retried after the failure

    def test_resolve_defaults_to_numpy(self):
        assert kb.resolve_kernel_backend(None).name == "numpy"
        assert kb.resolve_kernel_backend("compiled").name == "compiled"
        assert kb.resolve_max_table_bytes(None) is None
        assert kb.resolve_max_table_bytes(4096) == 4096
        with pytest.raises(ValueError, match="positive byte count"):
            kb.resolve_max_table_bytes(0)


class TestClearCache:
    def test_clear_cache_resets_backend_memos(self):
        """``repro.clear_cache()`` empties the dispatch memos and chunk
        plans, so a reconfigured process re-lowers from scratch."""

        def probe_kernel(x):
            return x - 1

        kb.compiled_available()          # populates the import memo
        kb._lower_compiled(probe_kernel)  # populates the dispatch memo
        kb.plan_chunk_rows(128, 4096)     # populates the chunk plans
        assert kb._NUMBA_MODULE
        assert kb._COMPILED_MEMO
        assert kb._CHUNK_PLANS

        repro.clear_cache()
        assert not kb._NUMBA_MODULE
        assert not kb._COMPILED_MEMO
        assert not kb._JIT_SUPPORT
        assert not kb._CHUNK_PLANS

    def test_lowering_is_memoized_per_kernel(self):
        def probe_kernel(x):
            return x * 3

        kb.clear_backend_caches()
        first = kb._lower_compiled(probe_kernel)
        second = kb._lower_compiled(probe_kernel)
        assert first is second
        assert len(kb._COMPILED_MEMO) == 1


# ----------------------------------------------------------------------
# Knob plumbing: options, signatures, env, session scoping
# ----------------------------------------------------------------------
class TestKnobPlumbing:
    def test_options_validate(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            OptimizerOptions(kernel_backend="cuda")
        with pytest.raises(ValueError, match="max_table_bytes"):
            OptimizerOptions(max_table_bytes=0)
        options = OptimizerOptions(
            kernel_backend="compiled", max_table_bytes=1 << 20
        )
        assert options.kernel_backend == "compiled"
        assert options.max_table_bytes == 1 << 20

    def test_signature_excludes_speed_knobs(self):
        """Backend and cap are pure speed knobs: bit-identical results,
        so cached configurations stay valid across them."""
        from repro.optimizer.engine import search_signature

        layer = ConvLayer("sig", h=8, w=8, c=4, f=2, k=8, r=3, s=3, t=1,
                          pad_h=1, pad_w=1)
        arch = morph()
        plain = search_signature(layer, arch, OptimizerOptions())
        knobbed = search_signature(
            layer, arch,
            OptimizerOptions(kernel_backend="compiled", max_table_bytes=1 << 16),
        )
        assert plain == knobbed

    def test_session_config_validates(self):
        from repro.api import SessionConfig

        assert SessionConfig(max_table_bytes="65536").max_table_bytes == 65536
        assert SessionConfig(kernel_backend="compiled").kernel_backend == (
            "compiled"
        )
        with pytest.raises(ValueError, match="unknown kernel backend"):
            SessionConfig(kernel_backend="cuda")
        with pytest.raises(ValueError, match="max_table_bytes"):
            SessionConfig(max_table_bytes=0)

    @pytest.mark.parametrize(
        ("variable", "value", "match"),
        [
            ("REPRO_KERNEL_BACKEND", "cuda",
             r"REPRO_KERNEL_BACKEND must be one of compiled, numpy, got 'cuda'"),
            ("REPRO_MAX_TABLE_BYTES", "lots",
             r"REPRO_MAX_TABLE_BYTES must be an integer byte count, got 'lots'"),
            ("REPRO_MAX_TABLE_BYTES", "0",
             r"REPRO_MAX_TABLE_BYTES must be >= 1 \(bytes\), got '0'"),
            ("REPRO_MAX_TABLE_BYTES", "-2048",
             r"REPRO_MAX_TABLE_BYTES must be >= 1 \(bytes\), got '-2048'"),
        ],
    )
    def test_env_bad_value_raises_naming_it(
        self, monkeypatch, variable, value, match
    ):
        from repro.optimizer.engine import (
            default_kernel_backend,
            default_max_table_bytes,
        )

        resolver = (
            default_kernel_backend
            if variable == "REPRO_KERNEL_BACKEND"
            else default_max_table_bytes
        )
        monkeypatch.setenv(variable, value)
        with pytest.raises(ValueError, match=match):
            resolver()

    def test_env_bad_value_fails_session_materialisation(self, monkeypatch):
        from repro.api import SessionConfig

        monkeypatch.setenv("REPRO_MAX_TABLE_BYTES", "lots")
        with pytest.raises(
            ValueError, match=r"REPRO_MAX_TABLE_BYTES could not be parsed"
        ):
            SessionConfig.from_env()
        monkeypatch.delenv("REPRO_MAX_TABLE_BYTES")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "cuda")
        with pytest.raises(ValueError, match="unknown kernel backend 'cuda'"):
            SessionConfig.from_env()

    def test_env_good_values_parse(self, monkeypatch):
        from repro.api import SessionConfig
        from repro.optimizer.engine import (
            default_kernel_backend,
            default_max_table_bytes,
        )

        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "Compiled")
        monkeypatch.setenv("REPRO_MAX_TABLE_BYTES", "65536")
        assert default_kernel_backend() == "compiled"
        assert default_max_table_bytes() == 65536
        config = SessionConfig.from_env()
        assert config.kernel_backend == "compiled"
        assert config.max_table_bytes == 65536

        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "")
        monkeypatch.setenv("REPRO_MAX_TABLE_BYTES", " ")
        assert default_kernel_backend() == "numpy"  # empty means unset
        assert default_max_table_bytes() is None
        config = SessionConfig.from_env()
        assert config.kernel_backend is None
        assert config.max_table_bytes is None

    def test_session_scopes_the_knobs(self):
        """An active session's knobs reach the resolvers — and
        evaporate when the session closes."""
        from repro.api import Session, SessionConfig
        from repro.optimizer.engine import (
            default_kernel_backend,
            default_max_table_bytes,
        )

        config = SessionConfig(kernel_backend="compiled", max_table_bytes=8192)
        with Session(config):
            assert default_kernel_backend() == "compiled"
            assert default_max_table_bytes() == 8192
            assert kb.resolve_kernel_backend(None).name == "compiled"
            assert kb.resolve_max_table_bytes(None) == 8192
        assert default_kernel_backend() == "numpy"
        assert default_max_table_bytes() is None

    def test_engine_end_to_end_identical(self):
        """optimize_layer with both knobs == the plain run, bit for bit."""
        from repro.optimizer.engine import optimize_layer

        layer = ConvLayer(
            "net", h=12, w=12, c=16, f=4, k=24, r=3, s=3, t=3,
            pad_h=1, pad_w=1, pad_f=1,
        )
        arch = morph()
        base = optimize_layer(
            layer, arch, SMALL_OPTIONS, use_cache=False, vectorize=True
        )
        knobbed = optimize_layer(
            layer, arch, SMALL_OPTIONS, use_cache=False, vectorize=True,
            kernel_backend="compiled", max_table_bytes=100_000,
        )
        assert knobbed.best.dataflow == base.best.dataflow
        assert knobbed.score == base.score
        assert knobbed.evaluated == base.evaluated
