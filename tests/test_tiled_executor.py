"""Functional correctness: the tiled executor against reference conv.

The paper's Section II-E claim — "the result of 3D convolution remains the
same irrespective of the loop order" — as a machine-checked property, plus
validation of the halo arithmetic that tiled execution depends on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataflow import Dataflow
from repro.core.dims import ALL_DIMS, Dim
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import TileHierarchy, TileShape
from repro.sim.conv3d_ref import (
    conv2d_reference,
    conv3d_naive,
    conv3d_reference,
    make_inputs,
    make_weights,
)
from repro.sim.tiled_executor import execute_tiled, iter_tiles

RNG = np.random.default_rng(1234)


def random_tensors(layer):
    return make_inputs(layer, RNG), make_weights(layer, RNG)


class TestReferenceConv:
    def test_vectorised_matches_naive(self):
        layer = ConvLayer("tiny", h=5, w=5, c=2, f=4, k=3, r=3, s=3, t=2)
        inputs, weights = random_tensors(layer)
        np.testing.assert_array_equal(
            conv3d_reference(layer, inputs, weights),
            conv3d_naive(layer, inputs, weights),
        )

    def test_vectorised_matches_naive_with_stride_and_pad(self):
        layer = ConvLayer(
            "tiny", h=7, w=6, c=2, f=5, k=2, r=3, s=3, t=3,
            stride_h=2, stride_w=1, stride_f=2, pad_h=1, pad_w=1, pad_f=1,
        )
        inputs, weights = random_tensors(layer)
        np.testing.assert_array_equal(
            conv3d_reference(layer, inputs, weights),
            conv3d_naive(layer, inputs, weights),
        )

    def test_output_shape(self):
        layer = ConvLayer("t", h=8, w=9, c=2, f=6, k=4, r=3, s=2, t=3)
        inputs, weights = random_tensors(layer)
        out = conv3d_reference(layer, inputs, weights)
        assert out.shape == (4, layer.out_f, layer.out_h, layer.out_w)

    def test_identity_kernel(self):
        """A 1x1x1 all-ones single-channel kernel copies the input."""
        layer = ConvLayer("id", h=4, w=4, c=1, f=3, k=1, r=1, s=1, t=1)
        inputs, _ = random_tensors(layer)
        weights = np.ones((1, 1, 1, 1, 1), dtype=np.int64)
        np.testing.assert_array_equal(
            conv3d_reference(layer, inputs, weights)[0], inputs[0]
        )

    def test_conv2d_through_3d_path(self):
        """Section II-B remark: 2D is the F = T = 1 special case."""
        layer = ConvLayer("t2", h=6, w=6, c=3, f=1, k=2, r=3, s=3, t=1)
        inputs, weights = random_tensors(layer)
        np.testing.assert_array_equal(
            conv2d_reference(layer, inputs, weights),
            conv3d_naive(layer, inputs, weights),
        )

    def test_conv2d_rejects_3d_layer(self):
        layer = ConvLayer("t3", h=6, w=6, c=1, f=4, k=1, r=3, s=3, t=3)
        inputs, weights = random_tensors(layer)
        with pytest.raises(ValueError, match="not a 2D layer"):
            conv2d_reference(layer, inputs, weights)

    def test_shape_validation(self):
        layer = ConvLayer("t", h=6, w=6, c=2, f=4, k=2, r=3, s=3, t=3)
        inputs, weights = random_tensors(layer)
        with pytest.raises(ValueError, match="inputs shape"):
            conv3d_reference(layer, inputs[:1], weights)
        with pytest.raises(ValueError, match="weights shape"):
            conv3d_reference(layer, inputs, weights[:1])


class TestIterTiles:
    def test_covers_region_once(self):
        origin = {d: 0 for d in Dim}
        extent = {Dim.W: 7, Dim.H: 5, Dim.C: 3, Dim.K: 2, Dim.F: 4}
        tile = TileShape(w=3, h=2, c=3, k=1, f=3)
        seen = set()
        for coord in iter_tiles(origin, extent, tile, LoopOrder.parse("WHCKF")):
            for w in range(coord.origin[Dim.W], coord.origin[Dim.W] + coord.extent[Dim.W]):
                for k in range(coord.origin[Dim.K], coord.origin[Dim.K] + coord.extent[Dim.K]):
                    for f in range(coord.origin[Dim.F], coord.origin[Dim.F] + coord.extent[Dim.F]):
                        point = (w, coord.origin[Dim.H], coord.origin[Dim.C], k, f)
                        assert point not in seen
                        seen.add(point)
        # Full W x K x F coverage for each (H, C) tile origin pair.
        assert len(seen) == 7 * 2 * 4 * 3 * 1

    def test_innermost_dim_varies_fastest(self):
        origin = {d: 0 for d in Dim}
        extent = {Dim.W: 4, Dim.H: 1, Dim.C: 1, Dim.K: 1, Dim.F: 4}
        tile = TileShape(w=2, h=1, c=1, k=1, f=2)
        coords = list(iter_tiles(origin, extent, tile, LoopOrder.parse("WHCKF")))
        # F (innermost) changes first.
        assert coords[0].origin[Dim.F] == 0
        assert coords[1].origin[Dim.F] == 2
        assert coords[1].origin[Dim.W] == 0
        assert coords[2].origin[Dim.W] == 2


class TestTiledExecution:
    ORDERS = ["WHCKF", "KWHCF", "CFWHK", "FKCWH"]

    @pytest.mark.parametrize("outer", ORDERS)
    def test_matches_reference_all_orders(self, outer):
        layer = ConvLayer("t", h=10, w=9, c=4, f=6, k=4, r=3, s=3, t=3)
        hierarchy = TileHierarchy(
            layer,
            (TileShape(w=3, h=4, c=2, k=2, f=2), TileShape(w=3, h=2, c=1, k=2, f=1)),
        )
        inputs, weights = random_tensors(layer)
        dataflow = Dataflow(
            LoopOrder.parse(outer), LoopOrder.parse("CFWHK"), hierarchy
        )
        np.testing.assert_array_equal(
            execute_tiled(dataflow, inputs, weights),
            conv3d_reference(layer, inputs, weights),
        )

    def test_matches_with_padding(self):
        layer = ConvLayer(
            "t", h=8, w=8, c=3, f=5, k=2, r=3, s=3, t=3,
            pad_h=1, pad_w=1, pad_f=1,
        )
        hierarchy = TileHierarchy(layer, (TileShape(w=4, h=3, c=2, k=1, f=2),))
        inputs, weights = random_tensors(layer)
        dataflow = Dataflow(
            LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"), hierarchy
        )
        np.testing.assert_array_equal(
            execute_tiled(dataflow, inputs, weights),
            conv3d_reference(layer, inputs, weights),
        )

    def test_matches_with_stride(self):
        layer = ConvLayer(
            "t", h=11, w=11, c=2, f=7, k=2, r=3, s=3, t=3,
            stride_h=2, stride_w=2, stride_f=2,
        )
        hierarchy = TileHierarchy(layer, (TileShape(w=2, h=3, c=1, k=1, f=2),))
        inputs, weights = random_tensors(layer)
        dataflow = Dataflow(
            LoopOrder.parse("KWHCF"), LoopOrder.parse("CFWHK"), hierarchy
        )
        np.testing.assert_array_equal(
            execute_tiled(dataflow, inputs, weights),
            conv3d_reference(layer, inputs, weights),
        )

    def test_partial_depth_execution(self):
        """Executing only the outer level still covers everything."""
        layer = ConvLayer("t", h=8, w=8, c=2, f=4, k=2, r=3, s=3, t=1)
        hierarchy = TileHierarchy(
            layer,
            (TileShape(w=4, h=4, c=2, k=2, f=2), TileShape(w=2, h=2, c=1, k=1, f=1)),
        )
        inputs, weights = random_tensors(layer)
        dataflow = Dataflow(
            LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"), hierarchy
        )
        np.testing.assert_array_equal(
            execute_tiled(dataflow, inputs, weights, level=1),
            conv3d_reference(layer, inputs, weights),
        )


@st.composite
def executor_case(draw):
    layer = ConvLayer(
        "prop",
        h=draw(st.integers(4, 10)),
        w=draw(st.integers(4, 10)),
        c=draw(st.integers(1, 4)),
        f=draw(st.integers(1, 6)),
        k=draw(st.integers(1, 4)),
        r=draw(st.sampled_from([1, 3])),
        s=draw(st.sampled_from([1, 3])),
        t=1,
        pad_h=draw(st.integers(0, 1)),
        pad_w=draw(st.integers(0, 1)),
    )
    tiles = []
    parent = TileShape.full(layer)
    for _ in range(draw(st.integers(1, 2))):
        tile = TileShape.from_mapping(
            {d: draw(st.integers(1, parent.extent(d))) for d in ALL_DIMS}
        )
        tiles.append(tile)
        parent = tile.clipped(parent)
    outer = draw(st.permutations(list(ALL_DIMS)))
    inner = draw(st.permutations(list(ALL_DIMS)))
    return Dataflow(
        LoopOrder(tuple(outer)),
        LoopOrder(tuple(inner)),
        TileHierarchy(layer, tuple(tiles)),
    )


@given(dataflow=executor_case())
@settings(max_examples=30)
def test_tiled_execution_is_loop_order_invariant(dataflow):
    """Property: any tiling x any orders == the reference convolution."""
    layer = dataflow.layer
    inputs, weights = random_tensors(layer)
    np.testing.assert_array_equal(
        execute_tiled(dataflow, inputs, weights),
        conv3d_reference(layer, inputs, weights),
    )
