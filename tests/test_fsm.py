"""Unit and property tests for the programmable FSM (paper Figure 8)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.fsm import (
    EventTrigger,
    LoopSpec,
    ProgrammableFsm,
    fsm_for_loop_nest,
    reference_addresses,
    steps_for_strides,
)


class TestStepsForStrides:
    def test_single_loop(self):
        assert steps_for_strides([5], [1]) == [1]

    def test_two_loops(self):
        """Inner bound 3 stride 1, outer stride 10: wrap step = 10 - 2."""
        assert steps_for_strides([3, 4], [1, 10]) == [1, 8]

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            steps_for_strides([2, 3], [1])


class TestAddressGeneration:
    def test_matches_reference_simple(self):
        bounds, strides = [4, 3], [1, 16]
        fsm = fsm_for_loop_nest(bounds, strides)
        assert fsm.addresses() == reference_addresses(bounds, strides)

    def test_matches_reference_with_base(self):
        bounds, strides = [2, 2, 2], [1, 4, 32]
        fsm = fsm_for_loop_nest(bounds, strides, base_address=100)
        assert fsm.addresses() == reference_addresses(bounds, strides, 100)

    def test_total_states(self):
        fsm = fsm_for_loop_nest([3, 4, 5], [1, 10, 100])
        assert fsm.total_states == 60
        assert len(fsm.addresses()) == 60

    def test_single_state(self):
        fsm = fsm_for_loop_nest([1], [7])
        assert fsm.addresses() == [0]

    def test_requires_loops(self):
        with pytest.raises(ValueError):
            ProgrammableFsm([])

    def test_rejects_zero_bound(self):
        with pytest.raises(ValueError):
            LoopSpec(bound=0, step=1)

    def test_indices_behave_like_software_counters(self):
        fsm = fsm_for_loop_nest([2, 3], [1, 2])
        indices = [s.indices for s in fsm.states()]
        assert indices == [
            (0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2),
        ]

    def test_is_last_flag(self):
        fsm = fsm_for_loop_nest([2, 2], [1, 2])
        flags = [s.is_last for s in fsm.states()]
        assert flags == [False, False, False, True]

    @given(
        bounds=st.lists(st.integers(1, 5), min_size=1, max_size=4),
        strides=st.lists(st.integers(-8, 64), min_size=1, max_size=4),
    )
    def test_property_fsm_equals_loop_nest(self, bounds, strides):
        """The core Figure 8 claim: bounds+steps registers reproduce any
        affine loop-nest address stream."""
        n = min(len(bounds), len(strides))
        bounds, strides = bounds[:n], strides[:n]
        fsm = fsm_for_loop_nest(bounds, strides)
        assert fsm.addresses() == reference_addresses(bounds, strides)


class TestEventTriggers:
    def test_tile_done_fires_once_at_the_end(self):
        trigger = EventTrigger("tile_done", (True, True))
        fsm = fsm_for_loop_nest([2, 3], [1, 2], triggers=[trigger])
        fired = [s.events for s in fsm.states()]
        assert fired.count(("tile_done",)) == 1
        assert fired[-1] == ("tile_done",)

    def test_inner_wrap_fires_per_outer_iteration(self):
        """Masking only the inner loop: fires once per inner completion."""
        trigger = EventTrigger("row_done", (True, False))
        fsm = fsm_for_loop_nest([3, 4], [1, 3], triggers=[trigger])
        count = sum("row_done" in s.events for s in fsm.states())
        assert count == 4

    def test_empty_mask_never_fires(self):
        trigger = EventTrigger("never", (False, False))
        fsm = fsm_for_loop_nest([2, 2], [1, 2], triggers=[trigger])
        assert all("never" not in s.events for s in fsm.states())

    def test_mask_length_validated(self):
        with pytest.raises(ValueError, match="mask"):
            fsm_for_loop_nest([2, 2], [1, 2], triggers=[EventTrigger("bad", (True,))])

    def test_trigger_fires_validates_length(self):
        trigger = EventTrigger("t", (True, True))
        with pytest.raises(ValueError):
            trigger.fires([True])


class TestDepthScaling:
    """Flexibility cost grows with loop depth — the FSM must support the
    seven-ish loops of a real boundary program."""

    def test_deep_nest(self):
        bounds = [2, 2, 2, 2, 2, 2, 2]
        strides = [1, 2, 4, 8, 16, 32, 64]
        fsm = fsm_for_loop_nest(bounds, strides)
        assert fsm.addresses() == list(range(128))

    def test_depth_property(self):
        assert fsm_for_loop_nest([2, 3, 4], [1, 2, 6]).depth == 3
