"""Direct tests for the Dataflow bundle and its helpers."""

import pytest

from repro.core.dataflow import Dataflow, Parallelism, single_tile_dataflow
from repro.core.dims import Dim
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import TileHierarchy, TileShape

LAYER = ConvLayer("t", h=12, w=12, c=8, f=6, k=8, r=3, s=3, t=3)


class TestDataflow:
    def test_order_for_boundary(self):
        df = single_tile_dataflow(LAYER, outer="KWHCF", inner="CFWHK")
        assert df.order_for_boundary(0).format() == "[KWHCF]"
        assert df.order_for_boundary(1).format() == "[CFWHK]"
        assert df.order_for_boundary(2).format() == "[CFWHK]"

    def test_shared_inner_order(self):
        """Section III: the same inner order schedules L2-L1 and L1-L0."""
        df = single_tile_dataflow(LAYER)
        assert df.order_for_boundary(1) is df.order_for_boundary(2)

    def test_layer_accessor(self):
        df = single_tile_dataflow(LAYER)
        assert df.layer is LAYER

    def test_describe_includes_everything(self):
        hierarchy = TileHierarchy(LAYER, (TileShape(w=5, h=5, c=4, k=4, f=2),))
        df = Dataflow(
            LoopOrder.parse("WHCKF"),
            LoopOrder.parse("CFWHK"),
            hierarchy,
            Parallelism(k=6, h=16),
        )
        text = df.describe()
        assert "[WHCKF]" in text
        assert "[cfwhk]" in text
        assert "Kp=6" in text

    def test_single_tile_levels(self):
        assert single_tile_dataflow(LAYER, levels=2).hierarchy.levels == 2


class TestParallelismValidation:
    def test_rejects_zero_degree(self):
        with pytest.raises(ValueError):
            Parallelism(h=0)

    def test_none_factory(self):
        assert Parallelism.none().degree == 1

    def test_from_mapping_defaults(self):
        par = Parallelism.from_mapping({Dim.K: 4})
        assert par.k == 4 and par.h == 1

    def test_of_channel_dim_is_one(self):
        assert Parallelism(k=4).of(Dim.C) == 1

    def test_equality(self):
        assert Parallelism(k=6, h=16) == Parallelism(h=16, k=6)
