"""Tests for the broadcast NoC model (paper Section IV-A4)."""

import pytest

from repro.arch.noc import BusSpec, MulticastMask, NocConfig, rate_match_width_bits


class TestBusSpec:
    def test_bytes_per_cycle(self):
        assert BusSpec("b", 64, 1.0).bytes_per_cycle == 8.0

    def test_transfer_cycles_ceil(self):
        bus = BusSpec("b", 64, 1.0)
        assert bus.transfer_cycles(17) == 3

    def test_dynamic_energy_scales_with_length(self):
        short = BusSpec("s", 64, 1.0)
        long = BusSpec("l", 64, 4.0)
        assert long.dynamic_pj(100, 0.1) == pytest.approx(4 * short.dynamic_pj(100, 0.1))

    def test_static_energy_burns_every_cycle(self):
        """Low-swing differential signalling (Section VI-A)."""
        bus = BusSpec("b", 32, 1.0)
        assert bus.static_pj(1000, 0.02) == pytest.approx(32 * 1000 * 0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            BusSpec("b", 0, 1.0)
        with pytest.raises(ValueError):
            BusSpec("b", 8, 0.0)


class TestRateMatching:
    def test_paper_example_l2_bus(self):
        """Section IV-A4: 216 MACCs/cycle with R=S=T=3 reuse needs only a
        64-bit L2->L1 bus."""
        assert rate_match_width_bits(216, reuse_factor=27) == 64

    def test_paper_example_l1_bus(self):
        """36 PEs per cluster with 27x reuse: 32-bit local bus suffices."""
        assert rate_match_width_bits(36, reuse_factor=27) == 16  # <= 32

    def test_3d_needs_less_than_2d(self):
        """The extra T-fold reuse makes rate matching strictly easier."""
        width_3d = rate_match_width_bits(96, reuse_factor=27)
        width_2d = rate_match_width_bits(96, reuse_factor=9)
        assert width_3d <= width_2d

    def test_power_of_two(self):
        width = rate_match_width_bits(100, reuse_factor=7)
        assert width & (width - 1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            rate_match_width_bits(0, 1)


class TestMulticastMask:
    def test_broadcast(self):
        mask = MulticastMask.broadcast(8)
        assert mask.is_broadcast
        assert mask.fanout == 8

    def test_unicast(self):
        mask = MulticastMask.unicast(8, 3)
        assert mask.is_unicast
        assert mask.destinations[3]
        assert mask.fanout == 1

    def test_first_k_partial_round(self):
        """Section IV-B3: the last round of tiles may occupy fewer PEs."""
        mask = MulticastMask.first_k(16, 5)
        assert mask.fanout == 5
        assert not mask.is_broadcast

    def test_unicast_bounds(self):
        with pytest.raises(ValueError):
            MulticastMask.unicast(4, 4)

    def test_first_k_bounds(self):
        with pytest.raises(ValueError):
            MulticastMask.first_k(4, 0)

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            MulticastMask(())


class TestNocConfig:
    def make(self):
        return NocConfig(
            dram_bus=BusSpec("DRAM", 64, 5.0),
            l2_l1=BusSpec("L2-L1", 64, 3.0),
            l1_l0=BusSpec("L1-L0", 32, 0.5),
            clusters=6,
        )

    def test_boundary_bus_selection(self):
        noc = self.make()
        assert noc.boundary_bus(0).name == "DRAM"
        assert noc.boundary_bus(1).name == "L2-L1"
        assert noc.boundary_bus(2).name == "L1-L0"

    def test_cluster_buses_parallel(self):
        """Each cluster has its own local bus set."""
        noc = self.make()
        assert noc.boundary_parallel_buses(2) == 6
        assert noc.boundary_bandwidth_bytes_per_cycle(2) == 4.0 * 6

    def test_shared_l2_bus(self):
        noc = self.make()
        assert noc.boundary_parallel_buses(1) == 1

    def test_total_wire_bits(self):
        noc = self.make()
        assert noc.total_wire_bits() == 64 + 32 * 6
