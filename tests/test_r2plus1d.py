"""Tests for the R(2+1)D extension workload."""

import pytest

from repro.workloads import build_network, r2plus1d
from repro.workloads.r2plus1d import _mid_channels


class TestFactorisation:
    def test_mid_channels_match_3d_parameter_count(self):
        """M is chosen so (1x3x3 + 3x1x1) ~ one 3x3x3 in parameters."""
        c_in, k = 64, 64
        mid = _mid_channels(c_in, k)
        factorised = 9 * c_in * mid + 3 * mid * k
        full_3d = 27 * c_in * k
        assert factorised == pytest.approx(full_3d, rel=0.02)

    def test_spatial_layers_are_2d_kernels(self):
        net = r2plus1d()
        spatial = [l for l in net if "spatial" in l.name]
        assert spatial
        assert all(l.t == 1 and l.r == l.s and l.r > 1 for l in spatial)

    def test_temporal_layers_are_1d_kernels(self):
        net = r2plus1d()
        temporal = [l for l in net if "temporal" in l.name]
        assert temporal
        assert all(l.r == 1 and l.s == 1 and l.t == 3 for l in temporal)

    def test_alternating_structure(self):
        """Every spatial conv is immediately followed by its temporal."""
        layers = list(r2plus1d())
        for a, b in zip(layers[::2], layers[1::2]):
            assert "spatial" in a.name and "temporal" in b.name
            assert b.c == a.k


class TestNetworkShape:
    def test_registered(self):
        assert build_network("r2plus1d").name == "R(2+1)D-18"

    def test_layer_count(self):
        # Stem pair + 8 blocks x 2 factorised pairs = 2 + 32.
        assert len(r2plus1d()) == 34

    def test_frames_halve_down_the_stages(self):
        net = r2plus1d()
        assert net.layer_named("res2aa_spatial").f == 16
        assert net.layer_named("res3ba_spatial").f == 8
        assert net.layer_named("res5ba_spatial").f == 2

    def test_spatial_dims_halve_down_the_stages(self):
        net = r2plus1d()
        assert net.layer_named("res2aa_spatial").h == 56
        assert net.layer_named("res5ba_spatial").h == 7

    def test_compute_scale(self):
        """R(2+1)D-18 at 16x112x112 is ~40 GMACs."""
        assert 20e9 < r2plus1d().total_maccs < 60e9


class TestOnMorph:
    def test_temporal_layers_schedule_well(self, morph_arch):
        """The flexible optimizer handles the T-only reuse pattern."""
        from repro.optimizer.search import LayerOptimizer, OptimizerOptions

        layer = r2plus1d().layer_named("res4aa_temporal")
        result = LayerOptimizer(morph_arch, OptimizerOptions.fast()).optimize(layer)
        assert result.best.total_energy_pj > 0
        assert result.best.performance.utilization > 0.05
