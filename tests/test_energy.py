"""Tests for the linear energy model (paper Section V-D)."""

import pytest

from repro.core.access_model import compute_traffic
from repro.core.dataflow import Dataflow, Parallelism, single_tile_dataflow
from repro.core.energy_model import compute_energy
from repro.core.evaluate import evaluate
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.performance_model import compute_performance
from repro.core.tiling import TileHierarchy, TileShape

LAYER = ConvLayer("t", h=16, w=16, c=8, f=6, k=16, r=3, s=3, t=3)


def full_eval(arch, dataflow):
    traffic = compute_traffic(dataflow, arch.precision)
    perf = compute_performance(traffic, arch, dataflow)
    return compute_energy(traffic, arch, dataflow, perf), traffic, perf


class TestBreakdownStructure:
    def test_total_is_sum_of_parts(self, morph_arch):
        energy, _, _ = full_eval(morph_arch, single_tile_dataflow(LAYER))
        parts = (
            energy.dram_pj
            + sum(level.energy_pj for level in energy.levels)
            + energy.noc_pj
            + energy.compute_pj
            + energy.static_pj
        )
        assert energy.total_pj == pytest.approx(parts)

    def test_one_level_entry_per_buffer(self, morph_arch, eyeriss_arch):
        e_m, _, _ = full_eval(morph_arch, single_tile_dataflow(LAYER))
        assert [lv.name for lv in e_m.levels] == ["L2", "L1", "L0"]
        e_e, _, _ = full_eval(eyeriss_arch, single_tile_dataflow(LAYER, levels=2))
        assert [lv.name for lv in e_e.levels] == ["L2", "L0"]

    def test_figure9_components_complete(self, morph_arch):
        energy, _, _ = full_eval(morph_arch, single_tile_dataflow(LAYER))
        components = energy.figure9_components()
        assert set(components) == {"DRAM", "L2", "L1", "L0", "Compute"}
        assert sum(components.values()) == pytest.approx(energy.total_pj)

    def test_on_chip_excludes_dram(self, morph_arch):
        energy, _, _ = full_eval(morph_arch, single_tile_dataflow(LAYER))
        assert energy.on_chip_pj == pytest.approx(energy.total_pj - energy.dram_pj)

    def test_level_pj_lookup(self, morph_arch):
        energy, _, _ = full_eval(morph_arch, single_tile_dataflow(LAYER))
        assert energy.level_pj("L1") == energy.levels[1].energy_pj
        assert energy.level_pj("missing") == 0.0


class TestPhysicalConsistency:
    def test_dram_energy_matches_bytes(self, morph_arch):
        dataflow = single_tile_dataflow(LAYER)
        energy, traffic, _ = full_eval(morph_arch, dataflow)
        expected = morph_arch.technology.dram_energy_pj(
            traffic.dram_read_bytes + traffic.dram_write_bytes
        )
        assert energy.dram_pj == pytest.approx(expected)

    def test_compute_energy_matches_maccs(self, morph_arch):
        energy, traffic, _ = full_eval(morph_arch, single_tile_dataflow(LAYER))
        assert energy.compute_pj == pytest.approx(
            traffic.maccs * morph_arch.technology.macc_pj
        )

    def test_static_scales_with_cycles(self, morph_arch):
        """Static power x runtime: the perf/watt lever of Figure 10."""
        dataflow = single_tile_dataflow(LAYER)
        traffic = compute_traffic(dataflow, morph_arch.precision)
        perf = compute_performance(traffic, morph_arch, dataflow)
        e1 = compute_energy(traffic, morph_arch, dataflow, perf)
        slow = type(perf)(
            cycles=perf.cycles * 2,
            compute_cycles=perf.compute_cycles,
            bandwidth_cycles=perf.bandwidth_cycles,
            utilization=perf.utilization / 2,
            active_pes=perf.active_pes,
            bound_by=perf.bound_by,
        )
        e2 = compute_energy(traffic, morph_arch, dataflow, slow)
        assert e2.static_pj == pytest.approx(2 * e1.static_pj)

    def test_worse_tiling_never_cheaper_on_dram(self, morph_arch):
        """More DRAM traffic => more DRAM energy (linearity)."""
        good = single_tile_dataflow(LAYER)
        tiles = (TileShape(w=4, h=4, c=2, k=4, f=2),) * 3
        bad = Dataflow(
            LoopOrder.parse("CKWHF"),
            LoopOrder.parse("CFWHK"),
            TileHierarchy(LAYER, tiles),
        )
        e_good, _, _ = full_eval(morph_arch, good)
        e_bad, _, _ = full_eval(morph_arch, bad)
        assert e_bad.dram_pj > e_good.dram_pj


class TestReplication:
    def make(self, par):
        tiles = (
            TileShape(w=14, h=14, c=8, k=16, f=4),
            TileShape(w=14, h=14, c=8, k=16, f=4),
            TileShape(w=2, h=2, c=8, k=8, f=1),
        )
        return Dataflow(
            LoopOrder.parse("WHCKF"),
            LoopOrder.parse("CFWHK"),
            TileHierarchy(LAYER, tiles),
            par,
        )

    def test_spatial_parallelism_replicates_weights(self, morph_arch):
        """Hp*Wp PEs hold copies of the same weights: L0 writes go up."""
        serial, _, _ = full_eval(morph_arch, self.make(Parallelism()))
        from repro.core.dims import DataType

        spatial, _, _ = full_eval(morph_arch, self.make(Parallelism(h=7, w=2)))
        assert (
            spatial.levels[2].write_bytes_by_type[DataType.WEIGHTS]
            > serial.levels[2].write_bytes_by_type[DataType.WEIGHTS]
        )

    def test_k_parallelism_replicates_inputs(self, morph_arch):
        from repro.core.dims import DataType

        serial, _, _ = full_eval(morph_arch, self.make(Parallelism()))
        kpar, _, _ = full_eval(morph_arch, self.make(Parallelism(k=2)))
        assert (
            kpar.levels[2].write_bytes_by_type[DataType.INPUTS]
            > serial.levels[2].write_bytes_by_type[DataType.INPUTS]
        )

    def test_psums_never_replicated(self, morph_arch):
        from repro.core.dims import DataType

        serial, _, _ = full_eval(morph_arch, self.make(Parallelism()))
        par, _, _ = full_eval(morph_arch, self.make(Parallelism(h=7, k=2)))
        assert (
            par.levels[2].write_bytes_by_type[DataType.PSUMS]
            == serial.levels[2].write_bytes_by_type[DataType.PSUMS]
        )


class TestEvaluateFacade:
    def test_capacity_error(self, morph_arch):
        big = ConvLayer("big", h=112, w=112, c=64, f=16, k=64, r=3, s=3, t=3)
        with pytest.raises(Exception, match="does not fit"):
            evaluate(single_tile_dataflow(big), morph_arch)

    def test_perf_per_watt_definition(self, morph_arch):
        tiles = (TileShape(w=4, h=4, c=4, k=8, f=2),) * 3
        df = Dataflow(
            LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"),
            TileHierarchy(LAYER, tiles),
        )
        ev = evaluate(df, morph_arch)
        assert ev.perf_per_watt == pytest.approx(
            ev.traffic.maccs / (ev.total_energy_pj * 1e-12)
        )

    def test_power_times_runtime_is_energy(self, morph_arch):
        tiles = (TileShape(w=4, h=4, c=4, k=8, f=2),) * 3
        df = Dataflow(
            LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"),
            TileHierarchy(LAYER, tiles),
        )
        ev = evaluate(df, morph_arch)
        assert ev.power_w * ev.runtime_s == pytest.approx(
            ev.total_energy_pj * 1e-12
        )

    def test_describe_smoke(self, morph_arch):
        tiles = (TileShape(w=4, h=4, c=4, k=8, f=2),) * 3
        df = Dataflow(
            LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"),
            TileHierarchy(LAYER, tiles),
        )
        text = evaluate(df, morph_arch).describe()
        assert "Morph" in text and "uJ" in text
