"""Unit and property tests for the tiling model (halos, extents, bytes)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dims import DataType, Dim
from repro.core.layer import ConvLayer
from repro.core.tiling import (
    Precision,
    TileHierarchy,
    TileShape,
    halo_overlap,
    input_extent,
    kernel_and_stride,
    sum_input_extents,
    tile_positions,
    union_input_extent,
)


class TestInputExtents:
    def test_input_extent_stride1(self, small_layer):
        """5 output columns with a 3-wide kernel need 7 input columns."""
        assert input_extent(small_layer, Dim.W, 5) == 7

    def test_input_extent_strided(self):
        layer = ConvLayer("s", h=20, w=20, c=1, f=1, k=1, r=3, s=3, t=1,
                          stride_h=2, stride_w=2)
        assert input_extent(layer, Dim.W, 4) == 9  # 3*2 + 3

    def test_input_extent_channels_identity(self, small_layer):
        assert input_extent(small_layer, Dim.C, 5) == 5

    def test_kernel_and_stride_mapping(self, small_layer):
        assert kernel_and_stride(small_layer, Dim.W) == (3, 1)
        assert kernel_and_stride(small_layer, Dim.H) == (3, 1)
        assert kernel_and_stride(small_layer, Dim.F) == (3, 1)

    def test_kernel_and_stride_rejects_channels(self, small_layer):
        with pytest.raises(ValueError, match="not a sliding"):
            kernel_and_stride(small_layer, Dim.C)

    def test_halo_overlap(self, small_layer):
        """Stride-1 3-tap kernels overlap by 2 (Figure 3: halo = R-1)."""
        assert halo_overlap(small_layer, Dim.H) == 2

    def test_halo_vanishes_at_large_stride(self):
        layer = ConvLayer("s", h=20, w=20, c=1, f=1, k=1, r=3, s=3, t=1,
                          stride_h=4, stride_w=4)
        assert halo_overlap(layer, Dim.H) == 0


class TestTilePositions:
    def test_even_split(self):
        assert tile_positions(10, 5) == [5, 5]

    def test_ragged_tail(self):
        assert tile_positions(10, 4) == [4, 4, 2]

    def test_single_tile(self):
        assert tile_positions(7, 100) == [7]

    def test_rejects_bad_tile(self):
        with pytest.raises(ValueError):
            tile_positions(10, 0)

    @given(total=st.integers(1, 300), tile=st.integers(1, 64))
    def test_positions_partition_exactly(self, total, tile):
        """Property: tiles cover the extent exactly once."""
        positions = tile_positions(total, tile)
        assert sum(positions) == total
        assert all(0 < p <= tile for p in positions)
        assert len(positions) == math.ceil(total / tile)


class TestSumInputExtents:
    @given(total=st.integers(1, 100), tile=st.integers(1, 32))
    def test_closed_form_matches_explicit_sum(self, total, tile, small_layer):
        explicit = sum(
            input_extent(small_layer, Dim.H, e) for e in tile_positions(total, tile)
        )
        assert sum_input_extents(small_layer, Dim.H, total, tile) == explicit

    def test_union_is_single_tile_extent(self, small_layer):
        assert union_input_extent(small_layer, Dim.H, 10) == input_extent(
            small_layer, Dim.H, 10
        )

    def test_slide_reuse_saves_halo(self, small_layer):
        """Union < sum when there is more than one tile: the halo saving."""
        total, tile = 10, 5
        assert union_input_extent(small_layer, Dim.H, total) < sum_input_extents(
            small_layer, Dim.H, total, tile
        )

    def test_channel_sum_is_total(self, small_layer):
        assert sum_input_extents(small_layer, Dim.C, 8, 3) == 8


class TestTileShape:
    def test_rejects_zero_extent(self):
        with pytest.raises(ValueError):
            TileShape(w=0, h=1, c=1, k=1, f=1)

    def test_full_covers_layer(self, small_layer):
        full = TileShape.full(small_layer)
        assert full.w == small_layer.out_w
        assert full.c == small_layer.c
        assert full.k == small_layer.k

    def test_minimum_is_all_ones(self):
        tile = TileShape.minimum()
        assert (tile.w, tile.h, tile.c, tile.k, tile.f) == (1, 1, 1, 1, 1)

    def test_mapping_roundtrip(self):
        tile = TileShape(w=3, h=4, c=5, k=6, f=7)
        assert TileShape.from_mapping(tile.as_mapping()) == tile

    def test_clipped_elementwise_min(self):
        a = TileShape(w=10, h=2, c=9, k=1, f=5)
        b = TileShape(w=3, h=8, c=9, k=4, f=2)
        clipped = a.clipped(b)
        assert (clipped.w, clipped.h, clipped.c, clipped.k, clipped.f) == (
            3, 2, 9, 1, 2,
        )

    def test_fits_within(self):
        small = TileShape(w=1, h=1, c=1, k=1, f=1)
        big = TileShape(w=2, h=2, c=2, k=2, f=2)
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_trip_counts_ceil(self):
        parent = TileShape(w=10, h=9, c=8, k=7, f=6)
        child = TileShape(w=4, h=3, c=8, k=2, f=5)
        trips = parent.trip_counts(child)
        assert trips[Dim.W] == 3
        assert trips[Dim.H] == 3
        assert trips[Dim.C] == 1
        assert trips[Dim.K] == 4
        assert trips[Dim.F] == 2

    def test_input_elements_include_halo(self, small_layer):
        tile = TileShape(w=5, h=5, c=8, k=1, f=2)
        assert tile.input_elements(small_layer) == 7 * 7 * 4 * 8

    def test_weight_elements(self, small_layer):
        tile = TileShape(w=1, h=1, c=4, k=2, f=1)
        assert tile.weight_elements(small_layer) == 2 * 4 * 27

    def test_psum_elements(self):
        tile = TileShape(w=3, h=4, c=99, k=2, f=5)
        assert tile.psum_elements() == 3 * 4 * 5 * 2  # C-independent

    def test_bytes_use_precision(self, small_layer):
        tile = TileShape(w=2, h=2, c=2, k=2, f=2)
        p = Precision(activation_bytes=2, weight_bytes=1, psum_bytes=4)
        assert tile.bytes_of(DataType.INPUTS, small_layer, p) == (
            tile.input_elements(small_layer) * 2
        )
        assert tile.bytes_of(DataType.PSUMS, small_layer, p) == (
            tile.psum_elements() * 4
        )

    def test_total_bytes_sums_types(self, small_layer):
        tile = TileShape(w=2, h=2, c=2, k=2, f=2)
        assert tile.total_bytes(small_layer) == sum(
            tile.bytes_of(dt, small_layer) for dt in DataType
        )

    def test_maccs_of_full_tile_is_layer_maccs(self, small_layer):
        assert TileShape.full(small_layer).maccs(small_layer) == small_layer.maccs

    def test_describe_mentions_input_space(self, small_layer):
        text = TileShape(w=5, h=5, c=8, k=2, f=2).describe(small_layer)
        assert "input 7x7" in text


class TestTileHierarchy:
    def test_normalises_to_monotone(self, small_layer):
        """Sub-tiles must nest (Section V-C: Tn <= Tn+1)."""
        hierarchy = TileHierarchy(
            small_layer,
            (
                TileShape(w=4, h=4, c=4, k=4, f=2),
                TileShape(w=8, h=2, c=8, k=2, f=4),  # w, c, f exceed parent
            ),
        )
        inner = hierarchy.innermost
        assert inner.fits_within(hierarchy.outermost)
        assert (inner.w, inner.h, inner.c, inner.k, inner.f) == (4, 2, 4, 2, 2)

    def test_clips_to_layer(self, small_layer):
        hierarchy = TileHierarchy(
            small_layer, (TileShape(w=999, h=999, c=999, k=999, f=999),)
        )
        assert hierarchy.outermost == TileShape.full(small_layer)

    def test_parent_of_level0_is_layer(self, small_layer):
        hierarchy = TileHierarchy(small_layer, (TileShape(w=2, h=2, c=2, k=2, f=2),))
        assert hierarchy.parent_of(0) == TileShape.full(small_layer)

    def test_requires_at_least_one_level(self, small_layer):
        with pytest.raises(ValueError):
            TileHierarchy(small_layer, ())

    def test_levels_count(self, small_layer):
        tile = TileShape(w=2, h=2, c=2, k=2, f=2)
        assert TileHierarchy(small_layer, (tile, tile, tile)).levels == 3


@given(
    w=st.integers(1, 16), h=st.integers(1, 16), c=st.integers(1, 16),
    k=st.integers(1, 16), f=st.integers(1, 8),
)
def test_tile_bytes_monotone_in_every_dim(w, h, c, k, f, small_layer):
    """Capacity pruning in the optimizer relies on footprint monotonicity."""
    tile = TileShape(w=w, h=h, c=c, k=k, f=f)
    for dim in Dim:
        grown = TileShape.from_mapping(
            {d: tile.extent(d) + (1 if d is dim else 0) for d in Dim}
        )
        assert grown.total_bytes(small_layer) >= tile.total_bytes(small_layer)
