"""Tests for the Morph-base and Eyeriss baseline evaluations."""

import pytest

from repro.baselines.eyeriss import (
    evaluate_layer_on_eyeriss,
    evaluate_network_on_eyeriss,
    tap_convolutions,
)
from repro.baselines.morph_base import evaluate_network_on_morph_base
from repro.core.layer import ConvLayer
from repro.optimizer.search import OptimizerOptions
from repro.workloads.networks import Network

FAST = OptimizerOptions.fast()

LAYER_3D = ConvLayer(
    "l3d", h=14, w=14, c=64, f=8, k=128, r=3, s=3, t=3,
    pad_h=1, pad_w=1, pad_f=1,
)
LAYER_2D = ConvLayer("l2d", h=14, w=14, c=64, f=1, k=128, r=3, s=3, t=1,
                     pad_h=1, pad_w=1)
MINI_3D = Network("mini3d", (LAYER_3D,), is_3d=True, input_frames=8)
MINI_2D = Network("mini2d", (LAYER_2D,), is_3d=False)


class TestTapConvolutions:
    def test_no_padding(self):
        """(F - T + 1) output frames x T taps each."""
        layer = ConvLayer("t", h=8, w=8, c=4, f=10, k=4, r=3, s=3, t=3)
        assert tap_convolutions(layer) == 8 * 3

    def test_with_temporal_padding(self):
        """Edge frames lose their out-of-range taps."""
        layer = ConvLayer("t", h=8, w=8, c=4, f=8, k=4, r=3, s=3, t=3, pad_f=1)
        assert tap_convolutions(layer) == 8 * 3 - 2

    def test_2d_layer_is_one_tap_per_frame(self):
        assert tap_convolutions(LAYER_2D) == 1

    def test_temporal_stride(self):
        layer = ConvLayer("t", h=8, w=8, c=4, f=9, k=4, r=3, s=3, t=3,
                          stride_f=2)
        assert tap_convolutions(layer) == 4 * 3


class TestEyerissLayer:
    def test_3d_layer_pays_merge_traffic(self):
        result = evaluate_layer_on_eyeriss(LAYER_3D, FAST)
        assert result.taps == tap_convolutions(LAYER_3D)
        assert result.merge_buffer_bytes > 0

    def test_2d_layer_has_no_merges(self):
        """Section VI-D: Eyeriss is competitive on 2D because there is no
        frame-by-frame overhead."""
        result = evaluate_layer_on_eyeriss(LAYER_2D, FAST)
        assert result.merge_buffer_bytes == 0
        assert result.taps == 1

    def test_energy_scales_superlinearly_with_frames(self):
        """More frames => more taps AND more merge traffic per output."""
        short = evaluate_layer_on_eyeriss(LAYER_3D.scaled(f=4), FAST)
        long = evaluate_layer_on_eyeriss(LAYER_3D.scaled(f=16), FAST)
        assert long.energy_pj > 3.5 * short.energy_pj

    def test_figure9_components_shape(self):
        components = evaluate_layer_on_eyeriss(LAYER_3D, FAST).figure9_components()
        assert {"DRAM", "L2", "L1", "L0", "Compute"} <= set(components)
        assert components["L1"] == 0.0  # Eyeriss has no cluster level

    def test_maccs_preserved(self):
        result = evaluate_layer_on_eyeriss(LAYER_3D, FAST)
        assert result.maccs == LAYER_3D.maccs


class TestNetworkEvaluations:
    def test_eyeriss_network_aggregate(self):
        result = evaluate_network_on_eyeriss(MINI_3D, FAST)
        assert result.total_energy_pj == pytest.approx(
            sum(r.energy_pj for r in result.layers)
        )
        assert result.total_maccs == LAYER_3D.maccs
        assert result.perf_per_watt > 0

    def test_eyeriss_result_cached(self):
        a = evaluate_network_on_eyeriss(MINI_3D, FAST)
        b = evaluate_network_on_eyeriss(MINI_3D, FAST)
        assert a is b

    def test_morph_base_network(self):
        result = evaluate_network_on_morph_base(MINI_3D, FAST)
        assert result.arch_name == "Morph_base"
        assert len(result.layers) == 1

    def test_paper_shape_3d_ranking(self):
        """On a 3D layer Morph beats both comparison points by a clear
        margin.  (Morph-base <= Eyeriss holds network-wide — asserted in
        the Figure 9 tests — but not necessarily for every single layer.)"""
        from repro.arch.accelerator import morph
        from repro.optimizer.search import optimize_network

        eye = evaluate_network_on_eyeriss(MINI_3D, FAST).total_energy_pj
        base = evaluate_network_on_morph_base(MINI_3D, FAST).total_energy_pj
        flex = optimize_network(
            MINI_3D.layers, morph(), FAST, network_name="mini3d"
        ).total_energy_pj
        assert flex < 0.8 * base
        assert flex < 0.8 * eye

    def test_paper_shape_2d_gap_narrows(self):
        """Eyeriss' disadvantage shrinks dramatically on the 2D layer."""
        eye3 = evaluate_network_on_eyeriss(MINI_3D, FAST).total_energy_pj
        base3 = evaluate_network_on_morph_base(MINI_3D, FAST).total_energy_pj
        eye2 = evaluate_network_on_eyeriss(MINI_2D, FAST).total_energy_pj
        base2 = evaluate_network_on_morph_base(MINI_2D, FAST).total_energy_pj
        assert eye2 / base2 < eye3 / base3


class TestMergeDestination:
    def test_small_frame_maps_merge_on_chip(self):
        """A layer whose per-frame psum map fits the GLB's leftover psum
        space merges on-chip: DRAM only carries inputs/weights/outputs."""
        small = ConvLayer("tinymap", h=14, w=14, c=32, f=6, k=8, r=3, s=3, t=3,
                          pad_h=1, pad_w=1, pad_f=1)
        result = evaluate_layer_on_eyeriss(small, FAST)
        assert result.merge_buffer_bytes > 0
        merge_only_dram = result.merge_dram_bytes
        # Final outputs still leave through DRAM at activation width.
        assert merge_only_dram == small.output_elements

    def test_large_frame_maps_spill_to_dram(self):
        """C3D-layer2-sized maps cannot stay on-chip: psum-width round
        trips hit DRAM, the paper's frame-by-frame overhead."""
        big = ConvLayer("bigmap", h=56, w=56, c=64, f=8, k=128, r=3, s=3, t=3,
                        pad_h=1, pad_w=1, pad_f=1)
        result = evaluate_layer_on_eyeriss(big, FAST)
        frame_psums = big.k * big.out_h * big.out_w * 4
        assert result.merge_dram_bytes > frame_psums  # spills, not just outputs
