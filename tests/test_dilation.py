"""Dilated 3D convolution (the D2Conv3D scenario) through every model layer.

Dilation spreads a filter's taps ``dilation`` positions apart, so the
input-space span grows to ``(taps - 1) * dilation + 1`` while the tap count
— and therefore MACs and weight footprint — is unchanged.  These tests pin
the geometry, the halo/footprint math, the trace-simulator agreement and
the registered dilated workload.
"""

from __future__ import annotations

import pytest

from repro.core.dataflow import Dataflow
from repro.core.dims import DataType, Dim
from repro.core.layer import ConvLayer, conv_output_extent, dilated_extent
from repro.core.loopnest import LoopOrder
from repro.core.tiling import (
    TileHierarchy,
    TileShape,
    input_extent,
    kernel_and_stride,
    sum_input_extents,
    tile_positions,
)
from repro.core.access_model import compute_traffic
from repro.optimizer.config_store import layer_signature
from repro.sim.trace import trace_dataflow
from repro.workloads import build_network


def dilated(name="dil", **overrides) -> ConvLayer:
    fields = dict(
        h=14, w=14, c=8, f=6, k=16, r=3, s=3, t=3,
        pad_h=2, pad_w=2, pad_f=2,
        dilation_h=2, dilation_w=2, dilation_f=2,
    )
    fields.update(overrides)
    return ConvLayer(name, **fields)


class TestGeometry:
    def test_dilated_extent(self):
        assert dilated_extent(3, 1) == 3
        assert dilated_extent(3, 2) == 5
        assert dilated_extent(5, 3) == 13
        assert dilated_extent(1, 4) == 1  # single tap never dilates

    def test_output_extent_matches_torch_convention(self):
        # floor((in + 2p - d*(k-1) - 1) / stride) + 1
        assert conv_output_extent(14, 3, 1, 2, dilation=2) == 14
        assert conv_output_extent(14, 3, 2, 0, dilation=2) == 5
        assert conv_output_extent(7, 3, 1, 0, dilation=3) == 1

    def test_same_padding_preserves_shape(self):
        layer = dilated()
        assert (layer.out_h, layer.out_w, layer.out_f) == (14, 14, 6)

    def test_oversized_span_rejected(self):
        with pytest.raises(ValueError, match="filter height"):
            dilated(h=3, pad_h=0, dilation_h=3)

    def test_dilation_must_be_positive(self):
        with pytest.raises(ValueError, match="dilation_w"):
            dilated(dilation_w=0)

    def test_maccs_unchanged_by_dilation(self):
        dense = dilated(dilation_h=1, dilation_w=1, dilation_f=1, pad_h=1,
                        pad_w=1, pad_f=1)
        assert dilated().maccs == dense.maccs
        assert dilated().weight_elements == dense.weight_elements

    def test_as_2d_frame_resets_temporal_dilation(self):
        frame = dilated().as_2d_frame()
        assert frame.t == 1 and frame.dilation_f == 1
        assert frame.dilation_h == 2  # spatial dilation survives


class TestHaloMath:
    def test_kernel_and_stride_returns_span(self):
        layer = dilated()
        assert kernel_and_stride(layer, Dim.H) == (5, 1)
        assert kernel_and_stride(layer, Dim.F) == (5, 1)

    def test_input_extent_includes_dilated_halo(self):
        layer = dilated()
        # e output positions at stride 1 need (e - 1) + span input positions.
        assert input_extent(layer, Dim.W, 7) == 6 + 5

    def test_sum_input_extents_closed_form(self):
        layer = dilated(h=16, pad_h=0)
        total, tile = layer.out_h, 5
        brute = sum(
            input_extent(layer, Dim.H, e) for e in tile_positions(total, tile)
        )
        assert sum_input_extents(layer, Dim.H, total, tile) == brute

    def test_tile_footprint_uses_span(self):
        layer = dilated()
        tile = TileShape(w=4, h=4, c=8, k=16, f=2)
        # (4-1)*1+5 = 8 along W and H, (2-1)*1+5 = 6 along F.
        assert tile.input_elements(layer) == 8 * 8 * 6 * 8


class TestTraceAgreement:
    def test_analytic_matches_trace_on_dilated_layer(self):
        layer = dilated(h=6, w=6, c=4, f=6, k=4, pad_h=0, pad_w=0, pad_f=0,
                        dilation_h=2, dilation_w=2, dilation_f=2)
        hierarchy = TileHierarchy(
            layer,
            (
                TileShape(w=2, h=2, c=4, k=4, f=2),
                TileShape(w=1, h=2, c=2, k=2, f=1),
            ),
        )
        dataflow = Dataflow(
            LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"), hierarchy
        )
        analytic = compute_traffic(dataflow)
        traced = trace_dataflow(dataflow)
        for level in range(2):
            for dt in DataType:
                assert (
                    analytic.boundaries[level].of(dt).fill_bytes
                    == traced.boundaries[level].fill_bytes[dt]
                ), (level, dt)


class TestWorkloadAndSignature:
    def test_c3d_dilated_registered(self):
        network = build_network("c3d_dilated")
        assert network.name == "C3D-dilated"
        deep = network.layer_named("layer5b")
        assert (deep.dilation_h, deep.dilation_w) == (2, 2)
        assert deep.dilation_f >= 1
        # Same-padded dilated blocks keep their resolution (no pool 4/5).
        assert (deep.out_h, deep.out_w) == (deep.h, deep.w)
        # Early blocks stay dense C3D.
        assert build_network("c3d_dilated").layers[0].dilation_h == 1

    def test_dilated_network_bigger_halo_than_dense(self):
        dense = build_network("c3d")
        dil = build_network("c3d_dilated")
        dense5b = dense.layer_named("layer5b")
        dil5b = dil.layer_named("layer5b")
        assert dil5b.dilated_r > dense5b.dilated_r

    def test_layer_signature_carries_dilation(self):
        sig = layer_signature(dilated())
        assert sig["dilation"] == [2, 2, 2]
        dense_sig = layer_signature(
            dilated(dilation_h=1, dilation_w=1, dilation_f=1)
        )
        assert sig != dense_sig
