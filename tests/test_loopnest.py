"""Unit tests for loop orders and Section II-E's data-transfer rules."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dims import DataType, Dim
from repro.core.loopnest import (
    LoopOrder,
    all_loop_orders,
    distinct_tiles,
    fetch_multiplicity,
)


class TestLoopOrder:
    def test_parse_paper_notation(self):
        order = LoopOrder.parse("[WHCKF]")
        assert order.outermost is Dim.W
        assert order.innermost is Dim.F

    def test_rejects_missing_dim(self):
        with pytest.raises(ValueError, match="permutation"):
            LoopOrder.parse("WHCK")  # F missing

    def test_rejects_duplicate_dim(self):
        with pytest.raises(ValueError, match="permutation"):
            LoopOrder.parse("WWHCK")

    def test_position(self):
        order = LoopOrder.parse("KWHCF")
        assert order.position(Dim.K) == 0
        assert order.position(Dim.F) == 4

    def test_format_roundtrip(self):
        assert LoopOrder.parse("CFWHK").format(lower=True) == "[cfwhk]"
        assert LoopOrder.parse("cfwhk").format() == "[CFWHK]"

    def test_all_loop_orders_count(self):
        assert len(list(all_loop_orders())) == 120

    def test_all_loop_orders_unique(self):
        orders = [o.dims for o in all_loop_orders()]
        assert len(set(orders)) == 120

    def test_loops_outside(self):
        order = LoopOrder.parse("WHCKF")
        assert order.loops_outside(Dim.C) == (Dim.W, Dim.H, Dim.C)
        assert order.loops_outside(Dim.C, inclusive=False) == (Dim.W, Dim.H)

    def test_restricted_preserves_order(self):
        order = LoopOrder.parse("WHCKF")
        assert order.restricted({Dim.K, Dim.W}) == (Dim.W, Dim.K)


class TestInnermostRelevant:
    """The paper's data-transfer rules for loop order [WHCKF]:
    'filter tiles are loaded in the second-to-innermost loop (K), inputs in
    the innermost loop (F), and partial sums in the innermost loop (F)'."""

    def test_paper_example_filters(self):
        order = LoopOrder.parse("WHCKF")
        assert order.innermost_relevant(DataType.WEIGHTS) is Dim.K

    def test_paper_example_inputs(self):
        order = LoopOrder.parse("WHCKF")
        assert order.innermost_relevant(DataType.INPUTS) is Dim.F

    def test_paper_example_psums(self):
        order = LoopOrder.parse("WHCKF")
        assert order.innermost_relevant(DataType.PSUMS) is Dim.F

    def test_weight_stationary_extreme(self):
        """[KWHCF] iterates K outermost: weights reload only when C moves."""
        order = LoopOrder.parse("KWHCF")
        assert order.innermost_relevant(DataType.WEIGHTS) is Dim.C

    def test_input_stationary_extreme(self):
        order = LoopOrder.parse("WFHCK")
        assert order.innermost_relevant(DataType.INPUTS) is Dim.C


class TestFetchMultiplicity:
    TRIPS = {Dim.W: 4, Dim.H: 3, Dim.C: 2, Dim.K: 5, Dim.F: 2}

    def test_whckf_weights(self):
        """Loops outside-and-including K: W*H*C*K = 4*3*2*5."""
        order = LoopOrder.parse("WHCKF").dims
        assert fetch_multiplicity(order, self.TRIPS, DataType.WEIGHTS) == 120

    def test_whckf_inputs(self):
        """Inputs relevant down to F (innermost): full product."""
        order = LoopOrder.parse("WHCKF").dims
        assert fetch_multiplicity(order, self.TRIPS, DataType.INPUTS) == 240

    def test_kwhcf_weights(self):
        """[KWHCF]: weights' innermost relevant loop is C (position 3)."""
        order = LoopOrder.parse("KWHCF").dims
        assert fetch_multiplicity(order, self.TRIPS, DataType.WEIGHTS) == 5 * 4 * 3 * 2

    def test_no_relevant_loops_means_single_fetch(self):
        """Degenerate case: region fully resident."""
        order = (Dim.K,)  # only K varies; inputs are K-insensitive
        assert fetch_multiplicity(order, self.TRIPS, DataType.INPUTS) == 1

    def test_distinct_tiles_weights(self):
        order = LoopOrder.parse("WHCKF").dims
        assert distinct_tiles(order, self.TRIPS, DataType.WEIGHTS) == 2 * 5

    def test_refetch_ratio_is_irrelevant_outer_product(self):
        """fetches / distinct = product of irrelevant loops outside."""
        order = LoopOrder.parse("CWHKF").dims  # C outermost
        fetches = fetch_multiplicity(order, self.TRIPS, DataType.PSUMS)
        distinct = distinct_tiles(order, self.TRIPS, DataType.PSUMS)
        assert fetches // distinct == self.TRIPS[Dim.C]


@given(
    perm=st.permutations([Dim.W, Dim.H, Dim.C, Dim.K, Dim.F]),
    trips=st.fixed_dictionaries(
        {d: st.integers(1, 6) for d in [Dim.W, Dim.H, Dim.C, Dim.K, Dim.F]}
    ),
    data_type=st.sampled_from(list(DataType)),
)
def test_fetch_multiplicity_bounds(perm, trips, data_type):
    """Property: distinct <= fetches <= full product, and distinct divides
    fetches (each tile reloaded a whole number of times)."""
    order = tuple(perm)
    fetches = fetch_multiplicity(order, trips, data_type)
    distinct = distinct_tiles(order, trips, data_type)
    full = 1
    for d in order:
        full *= trips[d]
    assert distinct <= fetches <= full
    assert fetches % distinct == 0
