"""End-to-end tests for the per-layer configuration search (Section V)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.evaluate import CapacityError
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.optimizer.search import (
    OBJECTIVES,
    LayerOptimizer,
    OptimizerOptions,
    optimize_network,
)

#: A mid-sized layer keeps these tests fast but non-trivial.
LAYER = ConvLayer(
    "c3d4a", h=14, w=14, c=256, f=4, k=512, r=3, s=3, t=3,
    pad_h=1, pad_w=1, pad_f=1,
)
FAST = OptimizerOptions.fast()


@pytest.fixture(scope="module")
def morph_best():
    from repro.arch.accelerator import morph

    return LayerOptimizer(morph(), FAST).optimize(LAYER)


@pytest.fixture(scope="module")
def base_best():
    from repro.arch.accelerator import morph_base

    return LayerOptimizer(morph_base(), FAST).optimize(LAYER)


class TestOptions:
    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError, match="objective"):
            OptimizerOptions(objective="speed!")

    def test_fast_is_coarser_than_default(self):
        assert OptimizerOptions.fast().max_l2_candidates < (
            OptimizerOptions().max_l2_candidates
        )

    def test_thorough_is_exhaustive(self):
        assert OptimizerOptions.thorough().exhaustive_orders

    def test_with_overrides(self):
        opts = FAST.with_(objective="latency")
        assert opts.objective == "latency"
        assert opts.max_l2_candidates == FAST.max_l2_candidates

    def test_all_objectives_callable(self, morph_best):
        for scorer in OBJECTIVES.values():
            assert scorer(morph_best.best) != 0


class TestSearchResults:
    def test_best_configuration_is_feasible(self, morph_best):
        ev = morph_best.best
        assert ev.arch.hierarchy_fits(LAYER, ev.dataflow.hierarchy.tiles)

    def test_search_evaluates_many_configs(self, morph_best):
        assert morph_best.evaluated > 50

    def test_flexibility_never_loses(self, morph_best, base_best):
        """Morph's search space strictly contains Morph-base's dataflow on
        the same silicon, modulo buffer policy: the flexible result must
        not be worse."""
        assert morph_best.best.total_energy_pj <= base_best.best.total_energy_pj

    def test_fixed_orders_respected(self):
        from repro.arch.accelerator import morph

        options = FAST.with_(
            fixed_outer_order=LoopOrder.parse("KWHCF"),
            fixed_inner_order=LoopOrder.parse("KCFWH"),
        )
        result = LayerOptimizer(morph(), options).optimize(LAYER)
        assert result.best.dataflow.outer_order.format() == "[KWHCF]"
        assert result.best.dataflow.inner_order.format() == "[KCFWH]"

    def test_opt_beats_or_matches_fixed_orders(self, morph_best):
        """Figure 4a's construction: Opt <= every fixed outer order."""
        from repro.arch.accelerator import morph

        options = FAST.with_(fixed_outer_order=LoopOrder.parse("KWHCF"))
        fixed = LayerOptimizer(morph(), options).optimize(LAYER)
        assert morph_best.best.total_energy_pj <= fixed.best.total_energy_pj * 1.001

    def test_base_arch_pins_dataflow(self, base_best):
        from repro.arch.accelerator import MORPH_BASE_OUTER, MORPH_BASE_PARALLELISM

        assert base_best.best.dataflow.outer_order == MORPH_BASE_OUTER
        assert base_best.best.dataflow.parallelism == MORPH_BASE_PARALLELISM

    def test_infeasible_layer_raises(self):
        from repro.arch.accelerator import morph

        monster = ConvLayer("m", h=1200, w=1200, c=1, f=1, k=1, r=1100, s=1100, t=1)
        with pytest.raises((CapacityError, ValueError)):
            LayerOptimizer(morph(), FAST).optimize(monster)


class TestObjectives:
    def test_latency_objective_not_slower(self):
        from repro.arch.accelerator import morph

        energy_best = LayerOptimizer(morph(), FAST).optimize(LAYER).best
        latency_best = (
            LayerOptimizer(morph(), FAST.with_(objective="latency"))
            .optimize(LAYER)
            .best
        )
        assert latency_best.cycles <= energy_best.cycles * 1.001

    def test_perf_per_watt_objective(self):
        from repro.arch.accelerator import morph

        ppw_best = (
            LayerOptimizer(morph(), FAST.with_(objective="perf_per_watt"))
            .optimize(LAYER)
            .best
        )
        energy_best = LayerOptimizer(morph(), FAST).optimize(LAYER).best
        assert ppw_best.perf_per_watt >= energy_best.perf_per_watt * 0.999


class TestNetworkOptimization:
    LAYERS = (
        ConvLayer("a", h=14, w=14, c=64, f=4, k=64, r=3, s=3, t=3,
                  pad_h=1, pad_w=1, pad_f=1),
        ConvLayer("b", h=7, w=7, c=64, f=2, k=128, r=3, s=3, t=3,
                  pad_h=1, pad_w=1, pad_f=1),
    )

    def test_aggregates(self):
        from repro.arch.accelerator import morph

        result = optimize_network(
            self.LAYERS, morph(), FAST, network_name="mini", use_cache=False
        )
        assert result.total_energy_pj == pytest.approx(
            sum(r.best.total_energy_pj for r in result.layers)
        )
        assert result.total_maccs == sum(l.maccs for l in self.LAYERS)
        assert result.layer_result("b").layer.name == "b"
        with pytest.raises(KeyError):
            result.layer_result("zzz")

    def test_cache_returns_identical_object(self):
        from repro.arch.accelerator import morph

        first = optimize_network(self.LAYERS, morph(), FAST, network_name="mini")
        second = optimize_network(self.LAYERS, morph(), FAST, network_name="mini")
        assert first is second

    def test_energy_components_cover_figure9(self):
        from repro.arch.accelerator import morph

        result = optimize_network(self.LAYERS, morph(), FAST, network_name="mini")
        components = result.energy_components_pj()
        assert {"DRAM", "L2", "L1", "L0", "Compute"} <= set(components)


class TestParallelismDisplacement:
    """_parallelisms keeps the canonical default without silent loss:
    the displacement is counted, and the list never contains duplicates."""

    @given(
        k=st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128]),
        h=st.integers(min_value=1, max_value=56),
        w=st.integers(min_value=1, max_value=56),
        f=st.integers(min_value=1, max_value=16),
        cap=st.integers(min_value=0, max_value=8),
    )
    def test_dup_free_and_displacement_counted(self, k, h, w, f, cap):
        from repro.arch.accelerator import morph
        from repro.core.dataflow import Parallelism
        from repro.optimizer.space import parallelism_candidates

        arch = morph()
        layer = ConvLayer(
            "prop", h=h, w=w, c=8, f=f, k=k, r=3, s=3, t=3,
            pad_h=1, pad_w=1, pad_f=1,
        )
        options = FAST.with_(max_parallelism_candidates=cap)
        chosen, displaced = LayerOptimizer(arch, options)._parallelisms(layer)
        default = Parallelism(k=arch.clusters, h=arch.pes_per_cluster)
        # The default always survives, the cap always holds, and nothing
        # is duplicated.
        assert default in chosen
        assert len(chosen) <= max(cap, 1)
        assert len(set(chosen)) == len(chosen)
        # Displacement is exactly "the ranked tail candidate lost its slot
        # to the default": it happens iff the default was not already
        # ranked into the kept prefix.
        ranked = parallelism_candidates(arch, layer)
        if default not in ranked:
            ranked = [*ranked, default]
        kept = ranked[:cap]
        if not kept:
            assert displaced == 0
        else:
            assert displaced == (0 if default in kept else 1)
            if displaced:
                # The displaced candidate is the one the cap would have
                # kept last — it must be gone, everything above it intact.
                assert kept[-1] not in chosen
                assert chosen[:-1] == kept[:-1]
                assert chosen[-1] == default

    def test_displacement_reaches_engine_stats(self):
        """A layer whose ranked list crowds out the default rolls its
        displacement count up into EngineStats."""
        from repro.arch.accelerator import morph
        from repro.optimizer.engine import OptimizerEngine

        arch = morph()
        options = FAST.with_(max_parallelism_candidates=1)
        chosen, displaced = LayerOptimizer(arch, options)._parallelisms(LAYER)
        assert displaced == 1  # the top-ranked candidate lost its slot
        engine = OptimizerEngine(arch, options, use_cache=False)
        engine.optimize_layers((LAYER,))
        assert engine.stats.parallelism_displaced == 1
