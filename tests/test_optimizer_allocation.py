"""Tests for the allocate/f_reuse sub-tile heuristic (paper Section V-C)."""

import pytest

from repro.core.dims import ALL_DIMS, Dim
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import TileShape
from repro.optimizer.allocation import (
    allocate_hierarchy,
    allocate_level,
    candidate_sub_tiles,
    f_reuse,
    parallel_caps,
)

LAYER = ConvLayer(
    "c3d3a", h=28, w=28, c=128, f=8, k=256, r=3, s=3, t=3,
    pad_h=1, pad_w=1, pad_f=1,
)
INNER = LoopOrder.parse("CFWHK")


class TestCandidates:
    def test_all_fit_capacity(self, morph_arch):
        parent = TileShape(w=28, h=14, c=64, k=16, f=8)
        for tile in candidate_sub_tiles(LAYER, morph_arch, 1, parent):
            assert morph_arch.tile_fits(1, LAYER, tile)
            assert tile.fits_within(parent) or True  # corners clip later

    def test_includes_minimum_corner(self, morph_arch):
        parent = TileShape(w=8, h=8, c=16, k=8, f=4)
        tiles = candidate_sub_tiles(LAYER, morph_arch, 2, parent)
        assert TileShape.minimum() in tiles

    def test_cap_respected(self, morph_arch):
        parent = TileShape(w=28, h=14, c=64, k=16, f=8)
        cap = TileShape(w=7, h=14, c=64, k=4, f=8)
        for tile in candidate_sub_tiles(LAYER, morph_arch, 1, parent, cap=cap):
            assert tile.w <= 7 and tile.k <= 4

    def test_nonempty_even_under_tight_cap(self, morph_arch):
        parent = TileShape(w=28, h=14, c=64, k=16, f=8)
        cap = TileShape(w=1, h=1, c=1, k=1, f=1)
        tiles = candidate_sub_tiles(LAYER, morph_arch, 2, parent, cap=cap)
        assert tiles == [TileShape.minimum()]


class TestFReuse:
    def test_bigger_tiles_reuse_more(self, morph_arch):
        """More of the parent resident per fill => fewer refills per MACC."""
        parent = TileShape(w=28, h=14, c=64, k=16, f=8)
        small = TileShape(w=2, h=2, c=2, k=2, f=1)
        big = TileShape(w=14, h=14, c=32, k=16, f=4)
        assert f_reuse(LAYER, parent, big, INNER, morph_arch) > f_reuse(
            LAYER, parent, small, INNER, morph_arch
        )

    def test_positive(self, morph_arch):
        parent = TileShape(w=28, h=14, c=64, k=16, f=8)
        assert f_reuse(LAYER, parent, TileShape.minimum(), INNER, morph_arch) > 0


class TestAllocateLevel:
    def test_returns_requested_count(self, morph_arch):
        parent = TileShape(w=28, h=14, c=64, k=16, f=8)
        tiles = allocate_level(LAYER, morph_arch, 1, parent, INNER, keep=4)
        assert 0 < len(tiles) <= 4

    def test_sorted_by_reuse(self, morph_arch):
        parent = TileShape(w=28, h=14, c=64, k=16, f=8)
        tiles = allocate_level(LAYER, morph_arch, 1, parent, INNER, keep=6)
        scores = [f_reuse(LAYER, parent, t, INNER, morph_arch) for t in tiles]
        assert scores == sorted(scores, reverse=True)


class TestParallelCaps:
    def test_caps_divide_parent(self):
        parent = TileShape(w=28, h=14, c=64, k=16, f=8)
        caps = parallel_caps(parent, {Dim.K: 4, Dim.H: 2})
        assert caps.k == 4 and caps.h == 7
        assert caps.w == 28  # unconstrained dims untouched

    def test_caps_never_below_one(self):
        parent = TileShape(w=2, h=2, c=2, k=2, f=2)
        caps = parallel_caps(parent, {Dim.K: 16})
        assert caps.k == 1


class TestAllocateHierarchy:
    def test_nesting_and_capacity(self, morph_arch):
        l2 = TileShape(w=28, h=14, c=64, k=8, f=8)
        for beam in allocate_hierarchy(LAYER, morph_arch, l2, INNER):
            assert len(beam) == morph_arch.num_levels
            for parent, child in zip(beam, beam[1:]):
                assert child.fits_within(parent)
            for level, tile in enumerate(beam):
                assert morph_arch.tile_fits(level, LAYER, tile)

    def test_caps_guarantee_enough_subtiles(self, morph_arch):
        """The cap makes trip counts >= min(degree, parent extent): every
        worker gets a sub-tile whenever the parent has enough extent."""
        l2 = TileShape(w=28, h=7, c=64, k=48, f=4)
        degrees = ({}, {Dim.K: 6}, {Dim.H: 8})
        for beam in allocate_hierarchy(
            LAYER, morph_arch, l2, INNER, level_degrees=degrees
        ):
            # 6 clusters each need a K-subtile of the L2 tile.
            assert -(-beam[0].k // beam[1].k) >= min(6, beam[0].k)
            # 8 PEs need H-subtiles of the L1 tile.
            assert -(-beam[1].h // beam[2].h) >= min(8, beam[1].h)

    def test_two_level_machine(self, eyeriss_arch):
        frame = LAYER.as_2d_frame()
        l2 = TileShape(w=26, h=26, c=128, k=8, f=1)
        beams = allocate_hierarchy(frame, eyeriss_arch, l2, INNER)
        assert all(len(beam) == 2 for beam in beams)

    def test_impossible_allocation_raises(self, morph_arch):
        """A kernel bigger than the L0 cannot be tiled down (R/S untiled)."""
        wide = ConvLayer("wide", h=200, w=200, c=1, f=1, k=1, r=150, s=150, t=1)
        l2 = TileShape(w=1, h=1, c=1, k=1, f=1)
        with pytest.raises(ValueError):
            allocate_hierarchy(wide, morph_arch, l2, INNER)
