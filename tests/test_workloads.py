"""Tests for the workload library against published network parameters."""

import pytest

from repro.workloads import (
    EVALUATED_NETWORKS,
    FIGURE1_NETWORKS,
    alexnet,
    build_network,
    c3d,
    i3d,
    inception,
    network_names,
    resnet3d50,
    resnet50,
    two_stream,
)


class TestRegistry:
    def test_all_networks_registered(self):
        assert set(network_names()) == {
            "alexnet", "c3d", "c3d_dilated", "i3d", "inception", "r2plus1d",
            "resnet50", "resnet3d50", "two_stream",
        }

    def test_build_by_name(self):
        assert build_network("c3d").name == "C3D"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown network"):
            build_network("vgg")

    def test_evaluated_set_matches_paper(self):
        """Section VI-C: C3D, I3D, 3D ResNet-50, 2-Stream, AlexNet."""
        assert len(EVALUATED_NETWORKS) == 5

    def test_figure1_set(self):
        assert len(FIGURE1_NETWORKS) == 6


class TestC3D:
    def test_eight_conv_layers(self):
        """Table III lists layer1 .. layer5b: 8 conv layers."""
        net = c3d()
        assert len(net) == 8
        assert [l.name for l in net] == [
            "layer1", "layer2", "layer3a", "layer3b",
            "layer4a", "layer4b", "layer5a", "layer5b",
        ]

    def test_published_gmacs(self):
        """C3D is ~38.5 GFLOPs (MACs) on 16x112x112 clips."""
        assert c3d().total_maccs == pytest.approx(38.5e9, rel=0.02)

    def test_filter_counts(self):
        ks = [l.k for l in c3d()]
        assert ks == [64, 128, 256, 256, 512, 512, 512, 512]

    def test_all_3x3x3(self):
        assert all((l.r, l.s, l.t) == (3, 3, 3) for l in c3d())

    def test_temporal_pooling_schedule(self):
        """pool1 keeps 16 frames; pools 2-4 halve them (Table III's Ft)."""
        fs = [l.f for l in c3d()]
        assert fs == [16, 16, 8, 8, 4, 4, 2, 2]

    def test_spatial_shapes(self):
        hs = [l.h for l in c3d()]
        assert hs == [112, 56, 28, 28, 14, 14, 7, 7]

    def test_weight_bytes_sum(self):
        """C3D conv weights: ~27.7M parameters at 1 byte each."""
        assert c3d().total_weight_bytes == pytest.approx(27.7e6, rel=0.02)

    def test_fig1_variant(self):
        big = c3d(input_hw=224)
        assert big.layers[0].h == 224


class TestAlexNet:
    def test_five_conv_layers(self):
        assert len(alexnet()) == 5

    def test_published_gmacs(self):
        """AlexNet convs are ~1.07 GMACs (dense, ungrouped)."""
        assert alexnet().total_maccs == pytest.approx(1.08e9, rel=0.05)

    def test_conv1_stride4(self):
        conv1 = alexnet().layer_named("conv1")
        assert conv1.stride_h == 4 and conv1.out_h == 55

    def test_is_2d(self):
        net = alexnet()
        assert not net.is_3d
        assert all(layer.is_2d for layer in net)


class TestI3D:
    def test_64_frames(self):
        """Section VI-D: I3D uses 64 frames vs C3D's 16."""
        assert i3d().input_frames == 64

    def test_published_gmacs(self):
        """I3D is ~108 GFLOPs on 64-frame 224^2 clips."""
        assert i3d().total_maccs == pytest.approx(108e9, rel=0.05)

    def test_nine_inception_modules(self):
        names = {l.name.split("_")[1] for l in i3d() if l.name.startswith("mixed")}
        assert names == {"3a", "3b", "4a", "4b", "4c", "4d", "4e", "5a", "5b"}

    def test_stem_is_7x7x7_stride2(self):
        stem = i3d().layers[0]
        assert (stem.r, stem.t, stem.stride_h, stem.stride_f) == (7, 7, 2, 2)

    def test_temporal_dims_preserved_through_stem_pools(self):
        """I3D's first two max-pools keep the temporal dimension."""
        conv2c = i3d().layer_named("conv2c_3x3")
        assert conv2c.f == 32  # 64 / stem stride 2, untouched by pools


class TestResNets:
    def test_resnet50_conv_count(self):
        """1 stem + 16 blocks x 3 convs + 4 projections = 53."""
        assert len(resnet50()) == 53

    def test_resnet50_gmacs(self):
        assert resnet50().total_maccs == pytest.approx(4.1e9, rel=0.05)

    def test_resnet3d_mirrors_2d_structure(self):
        assert len(resnet3d50()) == len(resnet50())

    def test_resnet3d_bottleneck_is_inflated(self):
        layer = resnet3d50().layer_named("res2a_3x3")
        assert layer.t == 3

    def test_resnet3d_1x1_stay_2d_kernels(self):
        layer = resnet3d50().layer_named("res2a_1x1a")
        assert (layer.r, layer.t) == (1, 1)

    def test_resnet3d_frames(self):
        assert resnet3d50().input_frames == 16

    def test_stage_output_channels(self):
        net = resnet50()
        assert net.layer_named("res2a_1x1b").k == 256
        assert net.layer_named("res5a_1x1b").k == 2048


class TestInceptionAndTwoStream:
    def test_inception_module_arithmetic(self):
        """Module output channels = 1x1 + 3x3 + 5x5 + pool_proj."""
        net = inception()
        layer_3a_next = net.layer_named("inception_3b_1x1")
        assert layer_3a_next.c == 64 + 128 + 32 + 32  # 3a's outputs

    def test_inception_layer_count(self):
        # 3 stem convs + 9 modules x 6 convs = 57
        assert len(inception()) == 57

    def test_two_stream_has_two_towers(self):
        net = two_stream()
        spatial = [l for l in net if l.name.startswith("spatial")]
        temporal = [l for l in net if l.name.startswith("temporal")]
        assert len(spatial) == len(temporal) == 5

    def test_temporal_stream_flow_stack(self):
        """Temporal tower reads 2L = 20 stacked optical-flow channels."""
        conv1 = two_stream().layer_named("temporal_conv1")
        assert conv1.c == 20

    def test_two_stream_is_2d(self):
        assert not two_stream().is_3d


class TestFigure1Claims:
    def test_3d_reuse_exceeds_2d(self):
        """Observation 3: data reuse is higher for 3D CNNs."""
        reuse_3d = min(c3d().average_reuse, i3d().average_reuse)
        reuse_2d = max(
            alexnet().average_reuse,
            inception().average_reuse,
            resnet50().average_reuse,
        )
        assert reuse_3d > reuse_2d

    def test_3d_footprints_exceed_onchip(self):
        """Observation 1: early 3D layer working sets >> 1 MB."""
        net = c3d(input_hw=224, frames=16)
        assert net.layers[0].input_bytes() > 1024 * 1024

    def test_footprints_vary_across_layers(self):
        """Observation 2: min/max footprint ratio is large for 3D CNNs."""
        footprints = [l.footprint_bytes() for l in c3d()]
        assert max(footprints) / min(footprints) > 3

    def test_shape_chaining(self):
        """Every layer's input channel count equals the producer's K."""
        for net in (c3d(), resnet3d50()):
            for prev, cur in zip(net.layers, net.layers[1:]):
                if "proj" in cur.name or "proj" in prev.name:
                    continue  # shortcut branches fork the chain
                if "1x1a" in cur.name and "1x1b" in prev.name:
                    continue  # residual add rejoins the trunk
                assert cur.c == prev.k, (prev.name, cur.name)

    def test_describe_smoke(self):
        text = c3d().describe()
        assert "C3D" in text and "layer5b" in text
