"""Unit tests for dimension names and data-type relevance sets."""

import pytest

from repro.core.dims import (
    ALL_DATA_TYPES,
    ALL_DIMS,
    PSUM_REDUCTION_DIMS,
    RELEVANT_DIMS,
    SLIDING_DIMS,
    DataType,
    Dim,
    format_dims,
    parse_dims,
    relevant_dims,
)


class TestDim:
    def test_five_dims(self):
        assert len(ALL_DIMS) == 5
        assert set(ALL_DIMS) == {Dim.W, Dim.H, Dim.C, Dim.K, Dim.F}

    def test_from_letter_upper(self):
        assert Dim.from_letter("W") is Dim.W
        assert Dim.from_letter("K") is Dim.K

    def test_from_letter_lower(self):
        """Paper writes inner orders lower-case ([cfwhk])."""
        assert Dim.from_letter("c") is Dim.C
        assert Dim.from_letter("f") is Dim.F

    def test_from_letter_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown dimension"):
            Dim.from_letter("X")

    def test_sliding_dims_are_spatial_and_temporal(self):
        assert SLIDING_DIMS == {Dim.W, Dim.H, Dim.F}

    def test_channel_dims_do_not_slide(self):
        assert Dim.C not in SLIDING_DIMS
        assert Dim.K not in SLIDING_DIMS


class TestRelevance:
    """Section II-E: which loops move which data type's tiles."""

    def test_inputs_relevant_dims(self):
        assert relevant_dims(DataType.INPUTS) == {Dim.W, Dim.H, Dim.C, Dim.F}

    def test_weights_relevant_dims(self):
        assert relevant_dims(DataType.WEIGHTS) == {Dim.C, Dim.K}

    def test_psums_relevant_dims(self):
        assert relevant_dims(DataType.PSUMS) == {Dim.W, Dim.H, Dim.K, Dim.F}

    def test_inputs_insensitive_to_k(self):
        """Every filter reads the same input (filter reuse, Section IV-A)."""
        assert Dim.K not in relevant_dims(DataType.INPUTS)

    def test_psums_insensitive_to_c(self):
        """C iterations accumulate into the same psums."""
        assert Dim.C not in relevant_dims(DataType.PSUMS)

    def test_reduction_dims(self):
        assert PSUM_REDUCTION_DIMS == {Dim.C}

    def test_every_data_type_has_relevance(self):
        for data_type in ALL_DATA_TYPES:
            assert RELEVANT_DIMS[data_type]

    def test_union_of_relevance_covers_all_dims(self):
        union = set()
        for data_type in ALL_DATA_TYPES:
            union |= relevant_dims(data_type)
        assert union == set(ALL_DIMS)


class TestParseFormat:
    def test_parse_plain_string(self):
        assert parse_dims("WHCKF") == (Dim.W, Dim.H, Dim.C, Dim.K, Dim.F)

    def test_parse_bracketed_string(self):
        """The paper prints orders as [WHCKF]."""
        assert parse_dims("[KWHCF]")[0] is Dim.K

    def test_parse_lowercase(self):
        assert parse_dims("cfwhk") == (Dim.C, Dim.F, Dim.W, Dim.H, Dim.K)

    def test_parse_iterable_passthrough(self):
        dims = (Dim.K, Dim.C)
        assert parse_dims(dims) == dims

    def test_format_upper(self):
        assert format_dims((Dim.W, Dim.H)) == "[WH]"

    def test_format_lower(self):
        assert format_dims((Dim.C, Dim.F), lower=True) == "[cf]"

    def test_roundtrip(self):
        spec = "WHCKF"
        assert format_dims(parse_dims(spec)) == f"[{spec}]"
