"""Scalar-vs-columnar equivalence harness for the simulation engine.

The columnar trace and pipeline passes must be semantic-preserving
rewrites of the scalar walks: same shared kernels, **bit-identical**
per-level fill/writeback/slide counters and cycle totals.  Mirroring
``test_batch_equivalence.py``, a hypothesis property suite drives random
layers (strides, dilations, ragged tile edges), hierarchies, loop orders
and parallelisms through both paths and asserts exact equality — plus
unit tests pinning the coordinate-table lowering to the scalar
enumeration and the ``vectorize`` knob plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.accelerator import morph
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.dims import ALL_DATA_TYPES, ALL_DIMS, Dim
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder, all_loop_orders
from repro.core.tiling import TileHierarchy, TileShape, tile_positions, tile_positions_array
from repro.sim.pipeline_sim import simulate_pipeline
from repro.sim.tiled_executor import TileCoord, iter_tiles, schedule_tables, tile_table
from repro.sim.trace import trace_dataflow

ORDERS = [LoopOrder.parse(s) for s in
          ("WHCKF", "KWHCF", "WFKHC", "FWHCK", "CKWHF", "KCFWH", "CFWHK")]


@st.composite
def sim_layers(draw) -> ConvLayer:
    """Random small layers: strides, dilations and non-dividing shapes.

    Small enough that the scalar reference walk stays fast — the columnar
    path is exercised on full-size layers by the slow-tier network sweep.
    """
    r = draw(st.sampled_from([1, 3]))
    s = draw(st.sampled_from([1, 3]))
    t = draw(st.sampled_from([1, 2, 3]))
    dil_h = draw(st.integers(1, 2))
    dil_w = draw(st.integers(1, 2))
    span_h = (r - 1) * dil_h + 1
    span_w = (s - 1) * dil_w + 1
    return ConvLayer(
        "prop",
        h=draw(st.integers(max(4, span_h), 14)),
        w=draw(st.integers(max(4, span_w), 14)),
        c=draw(st.integers(1, 8)),
        f=draw(st.integers(t, 7)),
        k=draw(st.integers(1, 8)),
        r=r, s=s, t=t,
        stride_h=draw(st.integers(1, 2)),
        stride_w=draw(st.integers(1, 2)),
        stride_f=draw(st.integers(1, 2)),
        pad_h=draw(st.integers(0, 1)),
        pad_w=draw(st.integers(0, 1)),
        pad_f=draw(st.integers(0, 1)),
        dilation_h=dil_h,
        dilation_w=dil_w,
    )


@st.composite
def sim_dataflows(draw) -> Dataflow:
    layer = draw(sim_layers())
    parent = TileShape.full(layer)
    tiles = []
    for _ in range(draw(st.integers(1, 3))):
        tile = TileShape.from_mapping(
            {d: draw(st.integers(1, parent.extent(d))) for d in ALL_DIMS}
        ).clipped(parent)
        tiles.append(tile)
        parent = tile
    return Dataflow(
        draw(st.sampled_from(ORDERS)),
        draw(st.sampled_from(ORDERS)),
        TileHierarchy(layer, tuple(tiles)),
        draw(st.sampled_from([Parallelism(), Parallelism(k=6, h=4, w=4)])),
    )


def assert_trace_reports_identical(a, b) -> None:
    assert len(a.boundaries) == len(b.boundaries)
    for i, (ba, bb) in enumerate(zip(a.boundaries, b.boundaries)):
        for dt in ALL_DATA_TYPES:
            assert ba.fills[dt] == bb.fills[dt], (i, dt)
            assert ba.fill_bytes[dt] == bb.fill_bytes[dt], (i, dt)
        assert ba.psum_load_bytes == bb.psum_load_bytes, i
        assert ba.psum_writeback_bytes == bb.psum_writeback_bytes, i
    assert a.dram_psum_writeback_bytes() == b.dram_psum_writeback_bytes()


class TestTraceEquivalence:
    """Columnar trace pass == scalar residency walk, counter for counter."""

    @given(dataflow=sim_dataflows())
    @settings(max_examples=40)
    def test_counters_bitwise_equal(self, dataflow):
        scalar = trace_dataflow(dataflow, vectorize=False)
        columnar = trace_dataflow(dataflow, vectorize=True)
        assert_trace_reports_identical(scalar, columnar)

    def test_dilated_strided_case(self):
        layer = ConvLayer(
            "dil", h=13, w=11, c=5, f=6, k=7, r=3, s=3, t=2,
            stride_h=2, stride_w=2, pad_h=2, pad_w=2,
            dilation_h=2, dilation_w=2,
        )
        dataflow = Dataflow(
            LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"),
            TileHierarchy(
                layer,
                (TileShape(w=3, h=4, c=3, k=4, f=3),
                 TileShape(w=3, h=2, c=2, k=2, f=2)),
            ),
        )
        assert_trace_reports_identical(
            trace_dataflow(dataflow, vectorize=False),
            trace_dataflow(dataflow, vectorize=True),
        )


class TestPipelineEquivalence:
    """Columnar pipeline pass == scalar walk, cycles bit for bit."""

    @given(dataflow=sim_dataflows())
    @settings(max_examples=40)
    def test_reports_bitwise_equal(self, dataflow):
        arch = morph()
        scalar = simulate_pipeline(dataflow, arch, vectorize=False)
        columnar = simulate_pipeline(dataflow, arch, vectorize=True)
        # PipelineReport is a frozen dataclass: == compares every field,
        # the float cycle totals included — bit-identity, not tolerance.
        assert scalar == columnar

    def test_classification_fields(self, morph_arch):
        layer = ConvLayer("p", h=12, w=12, c=8, f=6, k=8, r=3, s=3, t=3)
        dataflow = Dataflow(
            LoopOrder.parse("KWHCF"), LoopOrder.parse("CFWHK"),
            TileHierarchy(
                layer,
                (TileShape(w=5, h=5, c=4, k=4, f=2),
                 TileShape(w=5, h=5, c=2, k=2, f=2)),
            ),
        )
        scalar = simulate_pipeline(dataflow, morph_arch, vectorize=False)
        columnar = simulate_pipeline(dataflow, morph_arch, vectorize=True)
        assert scalar.bound_by == columnar.bound_by
        assert scalar.tiles == columnar.tiles
        assert (
            scalar.load_bound_tiles + scalar.compute_bound_tiles
            == scalar.tiles
        )


class TestTileTableLowering:
    """The coordinate tables reproduce the scalar enumeration exactly."""

    @given(dataflow=sim_dataflows())
    @settings(max_examples=25)
    def test_tables_match_scalar_recursion(self, dataflow):
        layer = dataflow.layer
        levels = dataflow.hierarchy.levels
        visits: list[list[tuple[TileCoord, bool]]] = [[] for _ in range(levels)]

        def recurse(level: int, region: TileCoord) -> None:
            tile = dataflow.hierarchy.tiles[level]
            order = dataflow.order_for_boundary(level)
            for index, coord in enumerate(
                iter_tiles(region.origin, region.extent, tile, order)
            ):
                visits[level].append((coord, index == 0))
                if level + 1 < levels:
                    recurse(level + 1, coord)

        full = TileShape.full(layer)
        recurse(
            0,
            TileCoord(
                origin={d: 0 for d in Dim},
                extent={d: full.extent(d) for d in ALL_DIMS},
            ),
        )
        for level, table in enumerate(schedule_tables(dataflow)):
            assert len(table) == len(visits[level]), level
            for row, (coord, first) in enumerate(visits[level]):
                got = table.coord(row)
                assert got.origin == coord.origin, (level, row)
                assert got.extent == coord.extent, (level, row)
                assert bool(table.first_child[row]) == first, (level, row)

    def test_single_parent_matches_iter_tiles(self):
        origin = np.zeros((5, 1), dtype=np.int64)
        extent = np.array([[7], [5], [3], [2], [4]], dtype=np.int64)
        tile = TileShape(w=3, h=2, c=3, k=1, f=3)
        order = LoopOrder.parse("WHCKF")
        table = tile_table(origin, extent, tile, order)
        scalar = list(
            iter_tiles(
                {d: 0 for d in Dim},
                {Dim.W: 7, Dim.H: 5, Dim.C: 3, Dim.K: 2, Dim.F: 4},
                tile, order,
            )
        )
        assert len(table) == len(scalar)
        for row, coord in enumerate(scalar):
            assert table.coord(row).origin == coord.origin
            assert table.coord(row).extent == coord.extent
        assert int(table.parent.max()) == 0

    def test_tile_positions_array_matches_list(self):
        for total in (1, 5, 7, 12, 56):
            for tile in (1, 2, 3, 5, 7, 56):
                assert tile_positions_array(total, tile).tolist() == (
                    tile_positions(total, tile)
                )
        with pytest.raises(ValueError):
            tile_positions_array(8, 0)


class TestVectorizeKnob:
    """The sim knob follows the engine default and REPRO_VECTORIZE."""

    def test_env_escape_hatch(self, monkeypatch):
        from repro.optimizer import engine
        from repro.sim.trace import _resolve_vectorize

        engine.reset_engine_defaults()
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        assert _resolve_vectorize(None) is False
        monkeypatch.setenv("REPRO_VECTORIZE", "1")
        assert _resolve_vectorize(None) is True
        # Explicit argument wins over the environment.
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        assert _resolve_vectorize(True) is True
        assert _resolve_vectorize(False) is False

    def test_engine_defaults_respected(self):
        from repro.optimizer import engine
        from repro.sim.trace import _resolve_vectorize

        try:
            with pytest.deprecated_call():
                engine.set_engine_defaults(vectorize=False)
            assert _resolve_vectorize(None) is False
        finally:
            engine.reset_engine_defaults()

    def test_default_runs_columnar_identically(self, small_layer):
        dataflow = Dataflow(
            LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"),
            TileHierarchy(
                small_layer,
                (TileShape(w=5, h=10, c=4, k=4, f=2),
                 TileShape(w=5, h=5, c=2, k=2, f=2)),
            ),
        )
        assert_trace_reports_identical(
            trace_dataflow(dataflow),
            trace_dataflow(dataflow, vectorize=False),
        )
