"""Tests for the three machine configurations (paper Table II)."""

import pytest

from repro.arch.accelerator import (
    MORPH_BASE_INNER,
    MORPH_BASE_OUTER,
    MORPH_BASE_PARALLELISM,
    eyeriss_like,
    morph,
    morph_base,
)
from repro.core.dims import DataType
from repro.core.layer import ConvLayer
from repro.core.tiling import TileShape


class TestTable2Parameters:
    def test_morph_compute(self, morph_arch):
        """6 clusters x 16 PEs x Vw=8 = 768 MACCs/cycle."""
        assert morph_arch.clusters == 6
        assert morph_arch.pes_per_cluster == 16
        assert morph_arch.vector_width == 8
        assert morph_arch.peak_maccs_per_cycle == 768

    def test_eyeriss_compute_normalised(self, eyeriss_arch, morph_arch):
        """24 x 32 scalar PEs: same peak as Morph (fair comparison)."""
        assert eyeriss_arch.total_pes == 768
        assert eyeriss_arch.vector_width == 1
        assert eyeriss_arch.peak_maccs_per_cycle == morph_arch.peak_maccs_per_cycle

    def test_morph_buffer_sizes(self, morph_arch):
        assert morph_arch.levels[0].capacity_kb == 1024
        assert morph_arch.levels[1].capacity_kb == 64
        assert morph_arch.levels[2].capacity_kb == 16

    def test_eyeriss_buffer_sizes(self, eyeriss_arch):
        assert eyeriss_arch.levels[0].capacity_kb == 1408
        assert eyeriss_arch.levels[1].capacity_kb == 2

    def test_instance_counts(self, morph_arch, eyeriss_arch):
        assert morph_arch.levels[1].instances == 6  # one L1 per cluster
        assert morph_arch.levels[2].instances == 96  # one L0 per PE
        assert eyeriss_arch.levels[1].instances == 768

    def test_total_sram_comparable(self, morph_arch, eyeriss_arch):
        """On-chip SRAM normalised within ~5%."""
        ratio = morph_arch.on_chip_sram_kb() / eyeriss_arch.on_chip_sram_kb()
        assert 0.95 <= ratio <= 1.05

    def test_sixteen_banks(self, morph_arch):
        """Section VI-B: L2, L1, L0 divided into 16 banks each."""
        assert all(level.banks == 16 for level in morph_arch.levels)


class TestFlexibilityFlags:
    def test_morph_is_flexible(self, morph_arch):
        assert morph_arch.is_flexible
        assert morph_arch.fixed_outer_order is None

    def test_base_dataflow_pinned(self, morph_base_arch):
        assert not morph_base_arch.is_flexible
        assert morph_base_arch.fixed_outer_order == MORPH_BASE_OUTER
        assert morph_base_arch.fixed_inner_order == MORPH_BASE_INNER
        assert morph_base_arch.fixed_parallelism == MORPH_BASE_PARALLELISM

    def test_base_orders_match_paper(self):
        """Section IV-A3: outer [WHCKF], inner [cfwhk]."""
        assert MORPH_BASE_OUTER.format() == "[WHCKF]"
        assert MORPH_BASE_INNER.format(lower=True) == "[cfwhk]"

    def test_base_parallelism_uses_all_pes(self, morph_base_arch):
        assert MORPH_BASE_PARALLELISM.degree == morph_base_arch.total_pes

    def test_eyeriss_orders_frame_by_frame(self, eyeriss_arch):
        """F outermost: one frame at a time."""
        assert eyeriss_arch.fixed_outer_order.outermost.value == "F"


class TestCapacityChecks:
    LAYER = ConvLayer("t", h=28, w=28, c=64, f=8, k=64, r=3, s=3, t=3,
                      pad_h=1, pad_w=1, pad_f=1)

    def test_fitting_tile(self, morph_arch):
        tile = TileShape(w=14, h=14, c=32, k=8, f=4)
        assert morph_arch.tile_fits(0, self.LAYER, tile)

    def test_oversized_tile(self, morph_arch):
        tile = TileShape(w=28, h=28, c=64, k=64, f=8)
        assert not morph_arch.tile_fits(0, self.LAYER, tile)

    def test_hierarchy_fits_validates_length(self, morph_arch):
        with pytest.raises(ValueError, match="levels"):
            morph_arch.hierarchy_fits(self.LAYER, (TileShape(w=1, h=1, c=1, k=1, f=1),))

    def test_access_energy_asymmetry(self, morph_arch, morph_base_arch):
        """The paper's Morph-base L0 penalty: its monolithic weight
        partition costs more per byte than Morph's single bank."""
        morph_pj = morph_arch.read_pj_per_byte(2, DataType.WEIGHTS)
        base_pj = morph_base_arch.read_pj_per_byte(2, DataType.WEIGHTS)
        assert base_pj > 1.5 * morph_pj

    def test_eyeriss_rf_cheaper_than_base_l0(self, eyeriss_arch, morph_base_arch):
        """Section VI-D: Eyeriss' small RF wins per access on 2D CNNs."""
        rf_pj = eyeriss_arch.read_pj_per_byte(1, DataType.WEIGHTS)
        base_pj = morph_base_arch.read_pj_per_byte(2, DataType.WEIGHTS)
        assert rf_pj < base_pj

    def test_describe_mentions_resources(self, morph_arch):
        text = morph_arch.describe()
        assert "768 MACC/cycle" in text
        assert "L2" in text


class TestConstruction:
    def test_partition_count_must_match_levels(self):
        from repro.arch.buffers import BufferLevel, FlexiblePartition
        from repro.arch.accelerator import AcceleratorConfig
        from repro.arch.noc import BusSpec, NocConfig

        with pytest.raises(ValueError, match="partition"):
            AcceleratorConfig(
                name="bad",
                clusters=1,
                pes_per_cluster=1,
                vector_width=1,
                levels=(BufferLevel("L0", 1024, banks=1),),
                partitions=(),
                noc=NocConfig(
                    dram_bus=BusSpec("d", 8, 1.0),
                    l2_l1=BusSpec("a", 8, 1.0),
                    l1_l0=BusSpec("b", 8, 1.0),
                ),
            )

    def test_custom_morph_sizes(self):
        small = morph(l2_kb=512, l1_kb=32, l0_kb=8)
        assert small.levels[0].capacity_kb == 512
        assert small.on_chip_sram_kb() < morph().on_chip_sram_kb()
