"""Full-network simulator validation sweeps (slow tier).

Before the columnar simulation engine, the trace and pipeline simulators
walked every tile in pure Python, so cross-checking the analytic models
was confined to tiny hand-picked shapes.  The columnar passes make the
full loop feasible: optimize every layer of a registered network, then
drive each chosen configuration through the residency trace and the
double-buffered pipeline simulator and hold the analytic models to the
observed traffic and timing — including the frame-flexible C3D and the
dilated D2Conv3D variant.
"""

from __future__ import annotations

import pytest

from repro.arch.accelerator import morph
from repro.core.access_model import compute_traffic
from repro.core.dims import ALL_DATA_TYPES, DataType
from repro.core.performance_model import compute_performance
from repro.optimizer.search import OptimizerOptions, optimize_network
from repro.sim.pipeline_sim import simulate_pipeline
from repro.sim.trace import trace_dataflow
from repro.workloads import build_network


def _unique_configs(result):
    """Deduplicate layer results by (shape, chosen configuration)."""
    seen = set()
    for layer_result in result.layers:
        layer = layer_result.layer
        dataflow = layer_result.best.dataflow
        key = (
            layer.h, layer.w, layer.c, layer.f, layer.k,
            layer.r, layer.s, layer.t,
            layer.stride_h, layer.stride_w, layer.stride_f,
            layer.dilation_h, layer.dilation_w, layer.dilation_f,
            repr(dataflow.hierarchy.tiles), repr(dataflow.outer_order),
            repr(dataflow.inner_order), repr(dataflow.parallelism),
        )
        if key not in seen:
            seen.add(key)
            yield layer_result


@pytest.mark.slow
@pytest.mark.parametrize("name", ["c3d", "c3d_dilated"])
def test_full_network_trace_and_pipeline_validation(name):
    """Every optimized layer of a registered network passes both
    simulators, with the analytic models inside tolerance throughout."""
    arch = morph()
    network = build_network(name)
    result = optimize_network(
        network.layers, arch, OptimizerOptions.fast(),
        network_name=network.name, use_cache=False, parallelism=1,
    )
    unique = list(_unique_configs(result))
    assert unique

    for layer_result in unique:
        dataflow = layer_result.best.dataflow
        trace = trace_dataflow(dataflow)  # columnar: feasible at full size
        traffic = compute_traffic(dataflow, arch.precision)
        for boundary_index, (analytic, observed) in enumerate(
            zip(traffic.boundaries, trace.boundaries)
        ):
            for data_type in (DataType.INPUTS, DataType.WEIGHTS):
                a_bytes = analytic.of(data_type).fill_bytes
                t_bytes = observed.fill_bytes[data_type]
                # The analytic model assumes full-sized parent tiles, so it
                # can only overcount at ragged edges — never undercount —
                # and the fast-preset configurations stay well inside 3x.
                assert a_bytes >= t_bytes, (
                    layer_result.layer.name, boundary_index, data_type,
                )
                assert a_bytes <= t_bytes * 3.0 + 512, (
                    layer_result.layer.name, boundary_index, data_type,
                )

        analytic_perf = compute_performance(traffic, arch, dataflow)
        pipeline = simulate_pipeline(dataflow, arch)
        ratio = pipeline.cycles / analytic_perf.cycles
        assert 0.5 <= ratio <= 2.0, (layer_result.layer.name, ratio)
        assert (
            pipeline.load_bound_tiles + pipeline.compute_bound_tiles
            == pipeline.tiles
        )

    # Tie the sweep back to the reference simulator: the cheapest unique
    # configuration must be bit-identical through the scalar walk.
    smallest = min(unique, key=lambda r: r.layer.maccs)
    dataflow = smallest.best.dataflow
    scalar = trace_dataflow(dataflow, vectorize=False)
    columnar = trace_dataflow(dataflow, vectorize=True)
    for scalar_boundary, columnar_boundary in zip(
        scalar.boundaries, columnar.boundaries
    ):
        for data_type in ALL_DATA_TYPES:
            assert scalar_boundary.fills[data_type] == (
                columnar_boundary.fills[data_type]
            )
            assert scalar_boundary.fill_bytes[data_type] == (
                columnar_boundary.fill_bytes[data_type]
            )
        assert scalar_boundary.psum_load_bytes == (
            columnar_boundary.psum_load_bytes
        )
        assert scalar_boundary.psum_writeback_bytes == (
            columnar_boundary.psum_writeback_bytes
        )
    assert simulate_pipeline(dataflow, arch, vectorize=False) == (
        simulate_pipeline(dataflow, arch, vectorize=True)
    )
