"""Tests: the pipeline timing simulator against the analytic cycle model."""

import pytest

from repro.core.access_model import compute_traffic
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.performance_model import compute_performance
from repro.core.tiling import TileHierarchy, TileShape
from repro.sim.pipeline_sim import simulate_pipeline

LAYER = ConvLayer(
    "pipe", h=28, w=28, c=64, f=8, k=64, r=3, s=3, t=3,
    pad_h=1, pad_w=1, pad_f=1,
)


def make_dataflow(l2, l1, l0, par=Parallelism(), outer="WHCKF"):
    return Dataflow(
        LoopOrder.parse(outer),
        LoopOrder.parse("CFWHK"),
        TileHierarchy(LAYER, (l2, l1, l0)),
        par,
    )


@pytest.fixture(scope="module")
def bus_bound_dataflow():
    """Full utilisation but tiny L0 tiles: the L1->L0 weight stream is the
    bottleneck — a case where both models must agree on non-compute
    limits."""
    return make_dataflow(
        TileShape(w=28, h=7, c=64, k=48, f=4),
        TileShape(w=7, h=7, c=32, k=8, f=2),
        TileShape(w=2, h=2, c=8, k=8, f=1),
        Parallelism(k=6, h=4, w=4),
    )


@pytest.fixture(scope="module")
def balanced_dataflow():
    """Tiles sized so the (Kp=6, Hp=2, Wp=2, Fp=2) split has a sub-tile
    for every cluster and PE and the L0 tiles are big enough to keep the
    inner buses rate-matched: compute bound at utilisation ~1."""
    return make_dataflow(
        TileShape(w=28, h=7, c=64, k=48, f=4),
        TileShape(w=7, h=7, c=32, k=8, f=2),
        TileShape(w=4, h=4, c=16, k=8, f=1),
        Parallelism(k=6, h=2, w=2, f=2),
    )


class TestAgainstAnalyticModel:
    @pytest.mark.parametrize("vectorize", [False, True])
    @pytest.mark.parametrize("fixture", ["balanced_dataflow", "bus_bound_dataflow"])
    def test_cycles_within_tolerance(self, morph_arch, fixture, vectorize, request):
        """Simulated and analytic cycles agree within 2x: same first-order
        physics, different granularity of overlap accounting — through
        either execution path."""
        dataflow = request.getfixturevalue(fixture)
        traffic = compute_traffic(dataflow, morph_arch.precision)
        analytic = compute_performance(traffic, morph_arch, dataflow)
        simulated = simulate_pipeline(dataflow, morph_arch, vectorize=vectorize)
        ratio = simulated.cycles / analytic.cycles
        assert 0.5 <= ratio <= 2.0, ratio

    def test_simulated_at_least_ideal(self, morph_arch, balanced_dataflow):
        simulated = simulate_pipeline(balanced_dataflow, morph_arch)
        ideal = LAYER.maccs / morph_arch.peak_maccs_per_cycle
        assert simulated.cycles >= ideal * 0.99

    def test_bound_classification_compute(self, morph_arch, balanced_dataflow):
        """A well-parallelised reuse-heavy layer is compute bound in both
        models."""
        simulated = simulate_pipeline(balanced_dataflow, morph_arch)
        assert simulated.bound_by == "compute"

    def test_streaming_weights_shifts_towards_load_bound(self, morph_arch):
        """K-innermost outer order re-streams weights from DRAM every
        tile; the pipeline must spend relatively more steps load-bound
        than a weight-resident schedule of the same layer."""
        resident = make_dataflow(
            TileShape(w=28, h=7, c=64, k=48, f=4),
            TileShape(w=7, h=7, c=32, k=8, f=2),
            TileShape(w=2, h=2, c=8, k=8, f=1),
            Parallelism(k=6, h=4, w=4),
        )
        streaming = make_dataflow(
            TileShape(w=7, h=7, c=64, k=16, f=2),
            TileShape(w=7, h=7, c=32, k=8, f=2),
            TileShape(w=2, h=2, c=8, k=8, f=1),
            Parallelism(k=6, h=4, w=4),
            outer="WHFCK",
        )
        r = simulate_pipeline(resident, morph_arch)
        s = simulate_pipeline(streaming, morph_arch)
        assert (s.load_bound_tiles / s.tiles) >= (r.load_bound_tiles / r.tiles)


class TestPipelineMechanics:
    def test_tile_count_matches_schedule(self, morph_arch, balanced_dataflow):
        simulated = simulate_pipeline(balanced_dataflow, morph_arch)
        l2 = balanced_dataflow.hierarchy.outermost
        trips = TileShape.full(LAYER).trip_counts(l2)
        expected = 1
        for count in trips.values():
            expected *= count
        assert simulated.tiles == expected

    def test_prologue_is_first_fill(self, morph_arch, balanced_dataflow):
        simulated = simulate_pipeline(balanced_dataflow, morph_arch)
        assert simulated.prologue_cycles > 0

    def test_double_buffering_beats_serial(self, morph_arch, balanced_dataflow):
        """Overlapped pipeline must come close to max(load, compute)
        rather than their sum (Section IV-A2's double buffering)."""
        from repro.core.performance_model import compute_utilization

        simulated = simulate_pipeline(balanced_dataflow, morph_arch)
        traffic = compute_traffic(balanced_dataflow, morph_arch.precision)
        util = compute_utilization(
            balanced_dataflow.hierarchy, morph_arch, balanced_dataflow.parallelism
        )
        serial_floor = (
            traffic.dram_total_bytes
            / morph_arch.noc.boundary_bandwidth_bytes_per_cycle(0)
            + LAYER.maccs / (morph_arch.peak_maccs_per_cycle * util)
        )
        assert simulated.cycles < serial_floor * 1.5

    def test_stationary_weights_fewer_tiles(self, morph_arch):
        """With K and C fully resident in the L2 tile the schedule has
        fewer outer tiles than a K-split schedule."""
        df_resident = make_dataflow(
            TileShape(w=14, h=7, c=64, k=64, f=4),
            TileShape(w=7, h=7, c=32, k=8, f=2),
            TileShape(w=2, h=2, c=8, k=8, f=1),
        )
        df_split = make_dataflow(
            TileShape(w=14, h=7, c=64, k=16, f=4),
            TileShape(w=7, h=7, c=32, k=8, f=2),
            TileShape(w=2, h=2, c=8, k=8, f=1),
            outer="WHFCK",
        )
        resident = simulate_pipeline(df_resident, morph_arch)
        split = simulate_pipeline(df_split, morph_arch)
        assert resident.tiles < split.tiles

    def test_worse_utilisation_longer_runtime(self, morph_arch):
        fast = make_dataflow(
            TileShape(w=28, h=7, c=64, k=48, f=4),
            TileShape(w=7, h=7, c=32, k=8, f=2),
            TileShape(w=2, h=2, c=8, k=8, f=1),
            Parallelism(k=6, h=4, w=4),
        )
        slow = make_dataflow(
            TileShape(w=28, h=7, c=64, k=48, f=4),
            TileShape(w=7, h=7, c=32, k=8, f=2),
            TileShape(w=2, h=2, c=8, k=8, f=1),
            Parallelism(k=6),  # 90 idle PEs
        )
        assert (
            simulate_pipeline(slow, morph_arch).cycles
            > simulate_pipeline(fast, morph_arch).cycles
        )
