"""Tests for saving/recalling optimizer configurations (Section V)."""

import json

import pytest

from repro.core.layer import ConvLayer
from repro.optimizer.config_store import (
    ConfigMismatchError,
    dataflow_from_json,
    dataflow_to_json,
    load_network_configs,
    save_network_configs,
)
from repro.optimizer.search import OptimizerOptions, optimize_network

LAYERS = (
    ConvLayer("a", h=14, w=14, c=32, f=4, k=64, r=3, s=3, t=3,
              pad_h=1, pad_w=1, pad_f=1),
    ConvLayer("b", h=7, w=7, c=64, f=2, k=64, r=3, s=3, t=3,
              pad_h=1, pad_w=1, pad_f=1),
)


@pytest.fixture(scope="module")
def optimized():
    from repro.arch.accelerator import morph

    return optimize_network(
        LAYERS, morph(), OptimizerOptions.fast(), network_name="store-test"
    )


class TestRoundTrip:
    def test_dataflow_json_roundtrip(self, optimized):
        ev = optimized.layers[0].best
        restored = dataflow_from_json(ev.layer, dataflow_to_json(ev.dataflow))
        assert restored.outer_order == ev.dataflow.outer_order
        assert restored.hierarchy.tiles == ev.dataflow.hierarchy.tiles
        assert restored.parallelism == ev.dataflow.parallelism

    def test_save_and_recall_reproduces_energy(self, optimized, tmp_path, morph_arch):
        """Recall skips the search but must land on identical numbers —
        the whole point of the paper's configuration file."""
        path = tmp_path / "c3d.morph.json"
        save_network_configs(optimized, path)
        recalled = load_network_configs(path, LAYERS, morph_arch)
        assert recalled.total_energy_pj == pytest.approx(
            optimized.total_energy_pj
        )

    def test_file_is_human_readable(self, optimized, tmp_path):
        path = tmp_path / "cfg.json"
        save_network_configs(optimized, path)
        payload = json.loads(path.read_text())
        assert payload["network"] == "store-test"
        first = payload["layers"][0]["dataflow"]
        assert set(first) == {"outer_order", "inner_order", "tiles", "parallelism"}


class TestMismatchDetection:
    def test_wrong_machine_rejected(self, optimized, tmp_path):
        from repro.arch.accelerator import morph_base

        path = tmp_path / "cfg.json"
        save_network_configs(optimized, path)
        with pytest.raises(ConfigMismatchError, match="Morph_base"):
            load_network_configs(path, LAYERS, morph_base())

    def test_wrong_layer_shape_rejected(self, optimized, tmp_path, morph_arch):
        path = tmp_path / "cfg.json"
        save_network_configs(optimized, path)
        mutated = (LAYERS[0].scaled(h=28), LAYERS[1])
        with pytest.raises(ConfigMismatchError, match="does not match"):
            load_network_configs(path, mutated, morph_arch)

    def test_wrong_layer_count_rejected(self, optimized, tmp_path, morph_arch):
        path = tmp_path / "cfg.json"
        save_network_configs(optimized, path)
        with pytest.raises(ConfigMismatchError, match="layers"):
            load_network_configs(path, LAYERS[:1], morph_arch)

    def test_bad_version_rejected(self, optimized, tmp_path, morph_arch):
        path = tmp_path / "cfg.json"
        save_network_configs(optimized, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        # repro-lint: disable=atomic-write  # deliberately clobbers the
        # record in place: the test *wants* an invalid file on disk.
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigMismatchError, match="format"):
            load_network_configs(path, LAYERS, morph_arch)
