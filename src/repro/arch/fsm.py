"""Programmable read/write FSM — functional model of the paper's Figure 8.

The flexible Morph replaces fixed-function control with an FSM programmed by
two sets of registers: *loop bounds* and *loop steps* for a design-time
number of loops.  Each FSM state is one iteration of the D-level loop; on
entry the FSM outputs its accumulator and adds the step ``s_j`` of the loop
``j`` that is currently terminating (or ``s_0`` when none is).

Given strides, the steps that make the accumulator trace a software loop
nest's ``sum(i_k * stride_k)`` address sequence are the *deltas* at each
wrap point:

    s_0 = stride_0
    s_j = stride_j - sum((b_k - 1) * stride_k for k < j)

which :func:`steps_for_strides` computes and the optimizer uses when
lowering a configuration (Section V-E).  Event *triggers* fire at loop-
iteration boundaries through a programmable mask over the loop-wrap
signals — exactly how the paper derives tile-done and psum load/unload
signals without extra counters.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Sequence


@dataclasses.dataclass(frozen=True)
class LoopSpec:
    """One loop of the FSM program: iteration bound and accumulator step."""

    bound: int
    step: int

    def __post_init__(self) -> None:
        if self.bound < 1:
            raise ValueError("loop bound must be >= 1")


@dataclasses.dataclass(frozen=True)
class EventTrigger:
    """Two-level mask logic over loop-wrap signals (Figure 8 "event mask").

    ``mask[k]`` selects loop ``k``'s wrap signal; the event fires on states
    where **all** selected loops are completing their final iteration.
    """

    name: str
    mask: tuple[bool, ...]

    def fires(self, wrapping: Sequence[bool]) -> bool:
        if len(wrapping) != len(self.mask):
            raise ValueError("mask length must equal loop depth")
        return all(w for w, m in zip(wrapping, self.mask) if m) and any(self.mask)


@dataclasses.dataclass(frozen=True)
class FsmState:
    """One emitted FSM state: current address plus fired events."""

    address: int
    indices: tuple[int, ...]
    events: tuple[str, ...]
    is_last: bool


class ProgrammableFsm:
    """Walks a D-level loop and emits the accumulator address sequence.

    Loops are ordered innermost first (index 0), matching the paper's
    ``i_k < b_k`` iteration-index description.
    """

    def __init__(
        self,
        loops: Sequence[LoopSpec],
        *,
        base_address: int = 0,
        triggers: Sequence[EventTrigger] = (),
    ) -> None:
        if not loops:
            raise ValueError("at least one loop required")
        self.loops = tuple(loops)
        self.base_address = base_address
        self.triggers = tuple(triggers)
        for trig in self.triggers:
            if len(trig.mask) != len(self.loops):
                raise ValueError(
                    f"trigger {trig.name!r} mask must have {len(self.loops)} bits"
                )

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def total_states(self) -> int:
        count = 1
        for loop in self.loops:
            count *= loop.bound
        return count

    # ------------------------------------------------------------------
    def states(self) -> Iterator[FsmState]:
        """Generate every FSM state in execution order."""
        indices = [0] * self.depth
        address = self.base_address
        total = self.total_states
        for state_num in range(total):
            wrapping = self._wrapping(indices)
            events = tuple(t.name for t in self.triggers if t.fires(wrapping))
            yield FsmState(
                address=address,
                indices=tuple(indices),
                events=events,
                is_last=state_num == total - 1,
            )
            address += self.loops[self._terminating(indices)].step
            self._advance(indices)

    def addresses(self) -> list[int]:
        return [state.address for state in self.states()]

    # ------------------------------------------------------------------
    def _wrapping(self, indices: list[int]) -> list[bool]:
        """Which loops are at their final iteration in this state."""
        return [idx == loop.bound - 1 for idx, loop in zip(indices, self.loops)]

    def _terminating(self, indices: list[int]) -> int:
        """Paper's ``j``: the loop whose step is applied on state exit.

        ``j`` is the outermost loop such that all loops inside it are on
        their final iteration (0 if the innermost loop still has work).
        """
        j = 0
        for k in range(self.depth):
            if indices[k] == self.loops[k].bound - 1:
                j = k + 1
            else:
                break
        return min(j, self.depth - 1)

    def _advance(self, indices: list[int]) -> None:
        for k in range(self.depth):
            indices[k] += 1
            if indices[k] < self.loops[k].bound:
                return
            indices[k] = 0


def steps_for_strides(bounds: Sequence[int], strides: Sequence[int]) -> list[int]:
    """Steps making the FSM trace ``sum(i_k * stride_k)`` (innermost first)."""
    if len(bounds) != len(strides):
        raise ValueError("bounds and strides must have equal length")
    steps = []
    carried = 0
    for bound, stride in zip(bounds, strides):
        steps.append(stride - carried)
        carried += (bound - 1) * stride
    return steps


def fsm_for_loop_nest(
    bounds: Sequence[int],
    strides: Sequence[int],
    *,
    base_address: int = 0,
    triggers: Sequence[EventTrigger] = (),
) -> ProgrammableFsm:
    """Build an FSM whose address stream equals the software loop nest."""
    steps = steps_for_strides(bounds, strides)
    loops = [LoopSpec(bound=b, step=s) for b, s in zip(bounds, steps)]
    return ProgrammableFsm(loops, base_address=base_address, triggers=triggers)


def reference_addresses(
    bounds: Sequence[int], strides: Sequence[int], base_address: int = 0
) -> list[int]:
    """Software-loop-nest address sequence, for validating the FSM."""
    if len(bounds) != len(strides):
        raise ValueError("bounds and strides must have equal length")
    addresses: list[int] = []

    def recurse(level: int, acc: int) -> None:
        if level < 0:
            addresses.append(acc)
            return
        for i in range(bounds[level]):
            recurse(level - 1, acc + i * strides[level])

    recurse(len(bounds) - 1, base_address)
    return addresses
