"""Machine descriptions: Morph, Morph-base and the Eyeriss comparison point.

Resources follow Table II of the paper:

============  =================  ==========
Parameter     Morph              Eyeriss
============  =================  ==========
PEs           16 per cluster     24 x 32
Clusters      6                  --
Vector width  8                  1
L2 size       1024 kB            1408 kB
L1 size       64 kB per cluster  --
L0 size       16 kB per PE       2 kB per PE
============  =================  ==========

Both machines are normalised to the same peak compute
(6 * 16 * 8 = 768 = 24 * 32 MACs/cycle) and comparable on-chip SRAM, which
is how the paper makes the energy comparison fair.
"""

from __future__ import annotations

import dataclasses

from repro.arch.buffers import (
    MORPH_BASE_L0_PARTITION,
    MORPH_BASE_L1_PARTITION,
    MORPH_BASE_L2_PARTITION,
    BufferLevel,
    FlexiblePartition,
    PartitionPolicy,
    StaticPartition,
)
from repro.arch.noc import BusSpec, NocConfig
from repro.arch.technology import DEFAULT_TECHNOLOGY, Technology
from repro.core.dataflow import Parallelism
from repro.core.dims import DataType
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import Precision, TileShape


@dataclasses.dataclass(frozen=True)
class AcceleratorConfig:
    """A complete accelerator instance the cost models can evaluate."""

    name: str
    clusters: int  #: M
    pes_per_cluster: int  #: N
    vector_width: int  #: Vw, lanes across output channels (Section IV-A2)
    levels: tuple[BufferLevel, ...]  #: outermost (last-level) first
    partitions: tuple[PartitionPolicy, ...]
    noc: NocConfig
    technology: Technology = DEFAULT_TECHNOLOGY
    precision: Precision = dataclasses.field(default_factory=Precision)
    #: Inflexible machines pin their dataflow (Morph-base, Eyeriss).
    fixed_outer_order: LoopOrder | None = None
    fixed_inner_order: LoopOrder | None = None
    fixed_parallelism: Parallelism | None = None

    def __post_init__(self) -> None:
        if len(self.levels) != len(self.partitions):
            raise ValueError("one partition policy required per buffer level")
        if self.clusters < 1 or self.pes_per_cluster < 1 or self.vector_width < 1:
            raise ValueError("cluster/PE/vector counts must be >= 1")

    # ------------------------------------------------------------------
    @property
    def total_pes(self) -> int:
        return self.clusters * self.pes_per_cluster

    @property
    def peak_maccs_per_cycle(self) -> int:
        return self.total_pes * self.vector_width

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def is_flexible(self) -> bool:
        return self.fixed_outer_order is None

    def level(self, index: int) -> BufferLevel:
        return self.levels[index]

    @property
    def innermost_level(self) -> BufferLevel:
        return self.levels[-1]

    # ------------------------------------------------------------------
    def tile_fits(
        self, level_index: int, layer: ConvLayer, tile: TileShape
    ) -> bool:
        """Capacity check of one tile at one level under its policy."""
        precision = self.precision
        tile_bytes = {
            DataType.INPUTS: tile.input_elements(layer) * precision.activation_bytes,
            DataType.WEIGHTS: tile.weight_elements(layer) * precision.weight_bytes,
            DataType.PSUMS: tile.psum_elements() * precision.psum_bytes,
        }
        return self.partitions[level_index].fits(self.levels[level_index], tile_bytes)

    def hierarchy_fits(self, layer: ConvLayer, tiles: tuple[TileShape, ...]) -> bool:
        if len(tiles) != self.num_levels:
            raise ValueError(
                f"{self.name} has {self.num_levels} levels, got {len(tiles)} tiles"
            )
        return all(
            self.tile_fits(i, layer, tile) for i, tile in enumerate(tiles)
        )

    def max_parallelism(self) -> int:
        return self.total_pes

    # ------------------------------------------------------------------
    def read_pj_per_byte(self, level_index: int, data_type: DataType) -> float:
        """Per-byte read energy: depends on which SRAM array activates.

        Flexible buffers activate one bank; static partitions are whole
        macros — the energy asymmetry behind the paper's observation that
        Morph-base's 3D-provisioned L0 hurts it on 2D CNNs (Section VI-D).
        """
        from repro.arch.sram import sram_read_pj_per_byte

        macro_kb = self.partitions[level_index].activated_macro_kb(
            self.levels[level_index], data_type
        )
        return sram_read_pj_per_byte(macro_kb)

    def write_pj_per_byte(self, level_index: int, data_type: DataType) -> float:
        from repro.arch.sram import sram_write_pj_per_byte

        macro_kb = self.partitions[level_index].activated_macro_kb(
            self.levels[level_index], data_type
        )
        return sram_write_pj_per_byte(macro_kb)

    def on_chip_sram_kb(self) -> float:
        return sum(
            lvl.capacity_bytes * lvl.instances / 1024.0 for lvl in self.levels
        )

    def describe(self) -> str:
        lines = [
            f"{self.name}: {self.clusters} clusters x {self.pes_per_cluster} PEs "
            f"x Vw={self.vector_width} = {self.peak_maccs_per_cycle} MACC/cycle"
        ]
        for lvl in self.levels:
            lines.append(
                f"  {lvl.name}: {lvl.capacity_kb:.0f} kB x{lvl.instances}, "
                f"{lvl.banks} banks"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Factory functions for the three evaluated machines
# ----------------------------------------------------------------------

#: Morph-base's fixed dataflow (Section IV-A3): the average-best orders the
#: Morph optimizer finds across the CNNs under test.
MORPH_BASE_OUTER = LoopOrder.parse("WHCKF")
MORPH_BASE_INNER = LoopOrder.parse("CFWHK")
#: Morph-base parallelises a fixed Hp (PEs within a cluster) and Kp (across
#: clusters): Hp * Kp = 16 * 6 = 96 PEs.
MORPH_BASE_PARALLELISM = Parallelism(h=16, k=6)


def _morph_noc(clusters: int) -> NocConfig:
    """Bus provisioning from Section IV-A4: 64-bit L2<->L1, 32-bit L1<->L0.

    Wire lengths come from the rough floorplan the paper describes for NoC
    energy: the L2 bus spans the chip (~3 mm for the ~9 mm^2 design), each
    cluster bus spans one cluster (~0.5 mm).
    """
    return NocConfig(
        dram_bus=BusSpec("DRAM", width_bits=64, length_mm=5.0),
        l2_l1=BusSpec("L2-L1", width_bits=64, length_mm=3.0, destinations=clusters),
        l1_l0=BusSpec("L1-L0", width_bits=32, length_mm=0.5, destinations=16),
        clusters=clusters,
    )


def morph(
    *,
    l2_kb: int = 1024,
    l1_kb: int = 64,
    l0_kb: int = 16,
    banks: int = 16,
    clusters: int = 6,
    pes_per_cluster: int = 16,
    vector_width: int = 8,
    technology: Technology = DEFAULT_TECHNOLOGY,
) -> AcceleratorConfig:
    """The flexible Morph accelerator (Sections IV-B, VI-B)."""
    levels = (
        BufferLevel("L2", l2_kb * 1024, banks=banks),
        BufferLevel("L1", l1_kb * 1024, banks=banks, instances=clusters),
        BufferLevel(
            "L0", l0_kb * 1024, banks=banks, instances=clusters * pes_per_cluster
        ),
    )
    flexible = FlexiblePartition()
    return AcceleratorConfig(
        name="Morph",
        clusters=clusters,
        pes_per_cluster=pes_per_cluster,
        vector_width=vector_width,
        levels=levels,
        partitions=(flexible, flexible, flexible),
        noc=_morph_noc(clusters),
        technology=technology,
    )


def morph_base(
    *,
    technology: Technology = DEFAULT_TECHNOLOGY,
) -> AcceleratorConfig:
    """The inflexible baseline: same resources, fixed dataflow (Section VI-B).

    Buffers are monolithic per static partition (bank count 1 models the
    statically partitioned SRAMs of Table IV); loop orders and parallelism
    are pinned to the average-best configuration.
    """
    levels = (
        BufferLevel("L2", 1024 * 1024, banks=1),
        BufferLevel("L1", 64 * 1024, banks=1, instances=6),
        BufferLevel("L0", 16 * 1024, banks=1, instances=96),
    )
    return AcceleratorConfig(
        name="Morph_base",
        clusters=6,
        pes_per_cluster=16,
        vector_width=8,
        levels=levels,
        partitions=(
            MORPH_BASE_L2_PARTITION,
            MORPH_BASE_L1_PARTITION,
            MORPH_BASE_L0_PARTITION,
        ),
        noc=_morph_noc(6),
        technology=technology,
        fixed_outer_order=MORPH_BASE_OUTER,
        fixed_inner_order=MORPH_BASE_INNER,
        fixed_parallelism=MORPH_BASE_PARALLELISM,
    )


#: Eyeriss evaluates with a fixed row-stationary-style dataflow: filters
#: stay resident close to the PEs while inputs slide spatially, so weights'
#: innermost relevant loop (C, K) sits outermost and the spatial dims cycle
#: inside.  F outermost = frame-by-frame processing (Section VI-B).
#: Parallelism is left free: row stationary folds and replicates its
#: logical PE sets over output rows, filters and channels to fill the
#: array, which our per-layer parallelism choice emulates.
EYERISS_OUTER = LoopOrder.parse("FKCWH")
EYERISS_INNER = LoopOrder.parse("FKCWH")


def eyeriss_like(
    *,
    technology: Technology = DEFAULT_TECHNOLOGY,
) -> AcceleratorConfig:
    """Eyeriss normalised to Morph's compute and storage (Table II).

    24 x 32 scalar PEs with 2 kB RF-style L0s and a 1408 kB global buffer;
    no cluster level.  The GLB split follows Eyeriss' organisation: it
    mostly holds ifmaps and psums while weights stream (5 % staging space),
    and like the real design each partition is multi-banked.
    """
    levels = (
        BufferLevel("L2", 1408 * 1024, banks=16),
        BufferLevel("L0", 2 * 1024, banks=1, word_bits=16, instances=768),
    )
    return AcceleratorConfig(
        name="Eyeriss",
        clusters=1,
        pes_per_cluster=768,
        vector_width=1,
        levels=levels,
        partitions=(
            StaticPartition(
                input_frac=0.50, psum_frac=0.45, weight_frac=0.05,
                banks_per_partition=8,
            ),
            StaticPartition(input_frac=0.25, psum_frac=0.25, weight_frac=0.50),
        ),
        noc=NocConfig(
            # The GLB feeds the whole 24x32 array through parallel
            # row/column multicast networks; 256 bits aggregate keeps the
            # scalar PEs rate-matched the way Morph's hierarchy of 64-bit
            # buses keeps its vector PEs fed (Section IV-A4).
            dram_bus=BusSpec("DRAM", width_bits=64, length_mm=5.0),
            l2_l1=BusSpec("GLB-PE", width_bits=256, length_mm=3.5, destinations=768),
            l1_l0=BusSpec("unused", width_bits=8, length_mm=0.1),
            clusters=1,
        ),
        technology=technology,
        fixed_outer_order=EYERISS_OUTER,
        fixed_inner_order=EYERISS_INNER,
        fixed_parallelism=None,
    )
