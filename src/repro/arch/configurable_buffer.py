"""Functional model of Morph's configurable banked buffer (Figure 7).

The buffer is split into ``B`` banks, each with a single read and a single
write port.  At layer-start, software assigns a contiguous range of banks to
each data type via the *bank assign* registers; mux/demux logic routes each
access to exactly one bank, so only that bank's array is activated (the
energy argument behind :meth:`BufferLevel.read_pj_per_byte`).

This model is used by tests to check the routing/fragmentation properties
the paper claims, and by the scheduler to produce per-layer bank-assignment
state (Section V-E).
"""

from __future__ import annotations

import dataclasses

from repro.arch.buffers import BufferLevel
from repro.core.dims import ALL_DATA_TYPES, DataType


@dataclasses.dataclass(frozen=True)
class BankRange:
    """Contiguous banks assigned to one data type."""

    first: int
    count: int

    @property
    def last(self) -> int:
        return self.first + self.count - 1

    def contains(self, bank: int) -> bool:
        return self.first <= bank <= self.last


class BankConflictError(RuntimeError):
    """Two same-cycle accesses hit the same single-ported bank."""


class ConfigurableBuffer:
    """A banked scratchpad with software-assigned per-data-type bank ranges."""

    def __init__(self, level: BufferLevel) -> None:
        self.level = level
        self._banks = [bytearray(level.bank_bytes) for _ in range(level.banks)]
        self._assignment: dict[DataType, BankRange] = {}
        self.read_count = 0
        self.write_count = 0
        self.bank_activations = [0] * level.banks

    # ------------------------------------------------------------------
    def configure(self, banks_per_type: dict[DataType, int]) -> None:
        """Program the bank-assign registers (layer start time).

        Banks are handed out contiguously in a fixed data-type order; the
        total must not exceed the physical bank count.
        """
        total = sum(banks_per_type.get(dt, 0) for dt in ALL_DATA_TYPES)
        if total > self.level.banks:
            raise ValueError(
                f"{total} banks requested, {self.level.banks} available"
            )
        self._assignment = {}
        next_bank = 0
        for data_type in ALL_DATA_TYPES:
            count = banks_per_type.get(data_type, 0)
            if count < 0:
                raise ValueError("bank counts must be non-negative")
            if count:
                self._assignment[data_type] = BankRange(next_bank, count)
                next_bank += count

    @property
    def assignment(self) -> dict[DataType, BankRange]:
        return dict(self._assignment)

    def capacity_bytes(self, data_type: DataType) -> int:
        rng = self._assignment.get(data_type)
        return 0 if rng is None else rng.count * self.level.bank_bytes

    def fragmentation_bytes(self, tile_bytes: dict[DataType, int]) -> int:
        """Internal fragmentation: allocated minus used bytes."""
        wasted = 0
        for data_type, rng in self._assignment.items():
            used = tile_bytes.get(data_type, 0)
            wasted += rng.count * self.level.bank_bytes - used
        return wasted

    # ------------------------------------------------------------------
    def _locate(self, data_type: DataType, address: int) -> tuple[int, int]:
        """Route a per-data-type address to (bank index, offset)."""
        rng = self._assignment.get(data_type)
        if rng is None:
            raise KeyError(f"no banks assigned to {data_type}")
        if not 0 <= address < rng.count * self.level.bank_bytes:
            raise IndexError(
                f"{data_type.value} address {address} outside assigned "
                f"{rng.count} banks"
            )
        bank = rng.first + address // self.level.bank_bytes
        offset = address % self.level.bank_bytes
        return bank, offset

    def write(self, data_type: DataType, address: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            bank, offset = self._locate(data_type, address + i)
            self._banks[bank][offset] = byte
            self.bank_activations[bank] += 1
        self.write_count += 1

    def read(self, data_type: DataType, address: int, length: int) -> bytes:
        out = bytearray()
        for i in range(length):
            bank, offset = self._locate(data_type, address + i)
            out.append(self._banks[bank][offset])
            self.bank_activations[bank] += 1
        self.read_count += 1
        return bytes(out)

    def parallel_read(self, requests: dict[DataType, int]) -> dict[DataType, int]:
        """One same-cycle read per data type (the replicated output muxes).

        Returns the activated bank per data type; raises
        :class:`BankConflictError` if two data types hit one bank — which
        the contiguous assignment makes impossible, a property the tests
        verify.
        """
        banks_hit: dict[DataType, int] = {}
        for data_type, address in requests.items():
            bank, _ = self._locate(data_type, address)
            if bank in banks_hit.values():
                raise BankConflictError(f"bank {bank} double-addressed")
            banks_hit[data_type] = bank
        for bank in banks_hit.values():
            self.bank_activations[bank] += 1
        self.read_count += len(banks_hit)
        return banks_hit
