"""CACTI-lite: analytic SRAM energy and area model.

The paper takes SRAM energies and areas from CACTI 6.0 with ``itrs-lop``
transistors at 32 nm (Section VI-A).  CACTI itself is a large C++ tool; this
module substitutes a compact analytic fit with the properties that drive the
paper's conclusions:

* energy per access grows roughly with the square root of the capacity of
  the *activated bank* (bit-line/word-line lengths), so banked buffers that
  activate a single bank per access (Figure 7) pay for the bank, not the
  whole macro;
* area grows linearly with capacity plus a banking overhead (extra decoders
  and sense amplifiers) — the paper quotes 4.9 % for a 1 MB L2 split into
  16 banks and measures 2.19 % for the banked 16 KB L0 (Table IV), which we
  use as calibration points.
"""

from __future__ import annotations

import math

#: Energy fit E(pJ/byte) = A + B * sqrt(bank_kB); the constants land close
#: to published CACTI itrs-lop numbers (~0.3 pJ/byte for ~1 kB register-file
#: class banks, ~1.7 pJ/byte for 64 kB banks, a few pJ/byte for monolithic
#: multi-hundred-kB macros).
_ENERGY_BASE_PJ_PER_BYTE = 0.08
_ENERGY_SLOPE_PJ_PER_BYTE = 0.24
#: Writes drive the full bit-line swing; CACTI puts them slightly above reads.
_WRITE_FACTOR = 1.1

#: Area calibrated to the paper's Table IV: a monolithic 16 kB L0 occupies
#: 0.041132 mm^2 at 32 nm -> 0.00257 mm^2 per kB.
_AREA_MM2_PER_KB = 0.041132 / 16.0

#: Banking overhead calibration (both at 16 banks): 16 kB -> 2.19 %
#: (Table IV L0 row), 1 MB -> 4.9 % (Section IV-B1).  Interpolated linearly
#: in log2(capacity) and scaled with bank count relative to 16.
_OVH_AT_16KB = 0.0219
_OVH_AT_1MB = 0.049
_OVH_SLOPE_PER_DOUBLING = (_OVH_AT_1MB - _OVH_AT_16KB) / 6.0  # 16 kB -> 1 MB


def sram_read_pj_per_byte(bank_kb: float) -> float:
    """Dynamic read energy per byte for a single activated bank."""
    if bank_kb <= 0:
        raise ValueError("bank capacity must be positive")
    return _ENERGY_BASE_PJ_PER_BYTE + _ENERGY_SLOPE_PJ_PER_BYTE * math.sqrt(bank_kb)


def sram_write_pj_per_byte(bank_kb: float) -> float:
    """Dynamic write energy per byte for a single activated bank."""
    return sram_read_pj_per_byte(bank_kb) * _WRITE_FACTOR


def banking_area_overhead(capacity_kb: float, banks: int) -> float:
    """Fractional area added by splitting a macro into ``banks`` banks."""
    if banks < 1:
        raise ValueError("banks must be >= 1")
    if banks == 1:
        return 0.0
    doublings = math.log2(max(capacity_kb, 1.0) / 16.0)
    base = _OVH_AT_16KB + _OVH_SLOPE_PER_DOUBLING * doublings
    base = max(base, 0.005)
    return base * (banks / 16.0)


def sram_area_mm2(capacity_kb: float, banks: int = 1) -> float:
    """Macro area including banking overhead (calibrated to Table IV)."""
    if capacity_kb <= 0:
        raise ValueError("capacity must be positive")
    return _AREA_MM2_PER_KB * capacity_kb * (1.0 + banking_area_overhead(capacity_kb, banks))


def sram_leakage_mw(capacity_kb: float, mw_per_kb: float) -> float:
    """Leakage power of a macro (banking does not change total cells)."""
    return capacity_kb * mw_per_kb
