"""On-chip buffer levels and their partitioning policies.

Morph's key storage mechanism (Section IV-B1, Figure 7) is a banked buffer
whose banks are assigned to inputs / weights / psums at layer-configuration
time, so tile sizes of the three data types can grow and shrink per layer
without fragmentation.  Morph-base instead carves each buffer into *static*
partitions sized for the average case (Table I).

Both policies answer the same question for the optimizer and the capacity
checker: *does this set of per-data-type tile footprints fit?*
"""

from __future__ import annotations

import dataclasses
import math

from repro.arch.sram import sram_read_pj_per_byte, sram_write_pj_per_byte
from repro.core.dims import ALL_DATA_TYPES, DataType


@dataclasses.dataclass(frozen=True)
class BufferLevel:
    """One level of on-chip SRAM (single logical instance).

    ``capacity_bytes`` is the full physical size; all Morph buffers are
    logically double buffered (Section III), halving the space available to
    live tiles — e.g. the paper bounds the sum of L2 tile sizes by 512 kB
    for the 1 MB L2.
    """

    name: str
    capacity_bytes: int
    banks: int = 16
    word_bits: int = 64
    double_buffered: bool = True
    instances: int = 1  #: e.g. one L1 per cluster, one L0 per PE

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.banks < 1:
            raise ValueError(f"{self.name}: banks must be >= 1")
        if self.capacity_bytes % self.banks:
            raise ValueError(f"{self.name}: capacity must divide into banks")

    @property
    def usable_bytes(self) -> int:
        """Capacity available to live tiles (half when double buffered)."""
        return self.capacity_bytes // 2 if self.double_buffered else self.capacity_bytes

    @property
    def bank_bytes(self) -> int:
        return self.capacity_bytes // self.banks

    @property
    def usable_banks(self) -> int:
        return self.banks // 2 if self.double_buffered else self.banks

    @property
    def bank_kb(self) -> float:
        return self.bank_bytes / 1024.0

    @property
    def capacity_kb(self) -> float:
        return self.capacity_bytes / 1024.0

    # ------------------------------------------------------------------
    def read_pj_per_byte(self) -> float:
        """Only the addressed bank activates per access (Figure 7)."""
        return sram_read_pj_per_byte(self.bank_kb)

    def write_pj_per_byte(self) -> float:
        return sram_write_pj_per_byte(self.bank_kb)


class PartitionPolicy:
    """Interface: can a set of per-data-type tile footprints be stored?"""

    def fits(self, level: BufferLevel, tile_bytes: dict[DataType, int]) -> bool:
        raise NotImplementedError

    def capacity_for(self, level: BufferLevel, data_type: DataType) -> int:
        """Largest single-data-type footprint this policy can ever hold."""
        raise NotImplementedError

    def activated_macro_kb(self, level: BufferLevel, data_type: DataType) -> float:
        """Capacity of the SRAM array activated by one access.

        Drives per-access energy: a static partition is its own monolithic
        macro; a flexible buffer activates a single bank (Figure 7).
        """
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class StaticPartition(PartitionPolicy):
    """Fixed fractional split of a buffer between the data types.

    This is Morph-base's organisation; Table I gives the fractions that the
    paper found best on average (L2: 38.5 % inputs / 40 % outputs /
    21.5 % weights; L1 and L0: 40 / 10 / 50).  ``banks_per_partition``
    controls how each partition is implemented: Morph-base uses monolithic
    macros (Table IV), while Eyeriss' global buffer is conventionally
    banked.
    """

    input_frac: float
    psum_frac: float
    weight_frac: float
    banks_per_partition: int = 1

    def __post_init__(self) -> None:
        total = self.input_frac + self.psum_frac + self.weight_frac
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise ValueError(f"partition fractions must sum to 1, got {total}")

    def frac_of(self, data_type: DataType) -> float:
        if data_type is DataType.INPUTS:
            return self.input_frac
        if data_type is DataType.PSUMS:
            return self.psum_frac
        return self.weight_frac

    def capacity_for(self, level: BufferLevel, data_type: DataType) -> int:
        return int(level.usable_bytes * self.frac_of(data_type))

    def fits(self, level: BufferLevel, tile_bytes: dict[DataType, int]) -> bool:
        return all(
            tile_bytes.get(dt, 0) <= self.capacity_for(level, dt)
            for dt in ALL_DATA_TYPES
        )

    def activated_macro_kb(self, level: BufferLevel, data_type: DataType) -> float:
        """Each partition is its own macro, optionally sub-banked."""
        kb = level.capacity_kb * self.frac_of(data_type) / self.banks_per_partition
        return max(kb, 0.25)


@dataclasses.dataclass(frozen=True)
class FlexiblePartition(PartitionPolicy):
    """Morph's bank-granular shared buffer (Section IV-B1).

    Banks are allocated contiguously per data type; a tile occupies a whole
    number of banks, so some internal fragmentation remains — exactly the
    trade-off the paper describes for its 16-bank design.
    """

    def fits(self, level: BufferLevel, tile_bytes: dict[DataType, int]) -> bool:
        bank = level.bank_bytes
        banks_needed = sum(
            math.ceil(tile_bytes.get(dt, 0) / bank) for dt in ALL_DATA_TYPES
        )
        return banks_needed <= level.usable_banks

    def capacity_for(self, level: BufferLevel, data_type: DataType) -> int:
        # Two banks must remain for the other data types (one each at min).
        available = max(level.usable_banks - 2, 1)
        return available * level.bank_bytes

    def activated_macro_kb(self, level: BufferLevel, data_type: DataType) -> float:
        """Reads activate exactly one bank (Figure 7's bank-select)."""
        return level.bank_kb

    def bank_assignment(
        self, level: BufferLevel, tile_bytes: dict[DataType, int]
    ) -> dict[DataType, int]:
        """Banks allocated per data type; raises if the tiles do not fit."""
        if not self.fits(level, tile_bytes):
            raise ValueError(
                f"tiles {tile_bytes} exceed {level.name} "
                f"({level.usable_banks} usable banks of {level.bank_bytes} B)"
            )
        bank = level.bank_bytes
        return {
            dt: math.ceil(tile_bytes.get(dt, 0) / bank) for dt in ALL_DATA_TYPES
        }


#: Table I of the paper: Morph-base static partitions.
MORPH_BASE_L2_PARTITION = StaticPartition(input_frac=0.385, psum_frac=0.40, weight_frac=0.215)
MORPH_BASE_L1_PARTITION = StaticPartition(input_frac=0.40, psum_frac=0.10, weight_frac=0.50)
MORPH_BASE_L0_PARTITION = StaticPartition(input_frac=0.40, psum_frac=0.10, weight_frac=0.50)
