"""PE area model reproducing the paper's Table IV.

The paper synthesises both PE variants in a 32 nm commercial process and
reports the cost of flexibility as a per-component area delta:

==============  ===========  ========  ========
Component       Morph base   Morph     change
==============  ===========  ========  ========
L0 buffer       0.041132     0.042036  +2.19 %
Arithmetic      0.00306      0.00366   +19.36 %
Control logic   0.00107      0.00182   +70.59 %
Total           0.04526      0.04751   +4.98 %
==============  ===========  ========  ========

We rebuild each row from structural parameters instead of copying the
totals: the L0 row comes from the CACTI-lite banking model (16 banks), the
arithmetic row from a per-lane datapath estimate plus the operand-routing
muxes flexibility needs, and the control row from a register/gate count of
the fixed versus programmable FSMs (Figure 8).  Gate and register unit areas
are calibrated once, then every Table IV entry is *computed*.
"""

from __future__ import annotations

import dataclasses

from repro.arch.sram import sram_area_mm2

#: 32 nm standard-cell estimates: NAND2-equivalent gate area and per-bit
#: register (flop) area, calibrated against the paper's control-logic row.
GATE_AREA_MM2 = 6.0e-7
REG_BIT_AREA_MM2 = 1.6e-6

#: One 8-bit multiplier + 32-bit accumulator lane, synthesised area.
MACC_LANE_AREA_MM2 = 3.825e-4
#: Flexible dataflows need operand-select muxes and accumulate/bypass
#: control per lane — the paper measures this at ~19 % of the datapath.
FLEX_LANE_MUX_GATES = 123


@dataclasses.dataclass(frozen=True)
class PeAreaBreakdown:
    """Per-PE component areas in mm^2 (Table IV rows)."""

    l0_buffer: float
    arithmetic: float
    control: float

    @property
    def total(self) -> float:
        return self.l0_buffer + self.arithmetic + self.control

    def overhead_vs(self, base: "PeAreaBreakdown") -> dict[str, float]:
        """Fractional change per component and in total."""
        return {
            "l0_buffer": self.l0_buffer / base.l0_buffer - 1.0,
            "arithmetic": self.arithmetic / base.arithmetic - 1.0,
            "control": self.control / base.control - 1.0,
            "total": self.total / base.total - 1.0,
        }


def l0_area_mm2(l0_kb: float, banks: int) -> float:
    """L0 SRAM area; banking adds decoder/sense-amp overhead."""
    return sram_area_mm2(l0_kb, banks=banks)


def arithmetic_area_mm2(lanes: int, flexible: bool) -> float:
    """Vector MACC datapath area for one PE."""
    area = lanes * MACC_LANE_AREA_MM2
    if flexible:
        area += lanes * FLEX_LANE_MUX_GATES * GATE_AREA_MM2
    return area


def control_area_mm2(
    *,
    flexible: bool,
    loop_depth: int = 7,
    addr_bits: int = 16,
    loop_reg_bits: int = 12,
    banks: int = 16,
    num_events: int = 4,
) -> float:
    """Read/write FSM pair plus buffer-control area for one PE.

    The fixed FSM is counters plus hard-coded next-state logic; the
    programmable FSM (Figure 8) adds, per loop: bound and step registers
    (``loop_reg_bits`` wide — trip counts are small), a comparator, and the
    event-mask/trigger logic, plus the bank-assign registers and mux
    selects for the configurable buffer (Figure 7).
    """
    # Fixed-function baseline: two FSMs (read + write), each loop_depth
    # address counters plus hard-coded next-state/control logic.
    fixed_regs = 2 * loop_depth * addr_bits
    fixed_gates = 2 * loop_depth * 30 + 766
    area = fixed_regs * REG_BIT_AREA_MM2 + fixed_gates * GATE_AREA_MM2
    if not flexible:
        return area
    # Programmable additions: bounds + steps registers and wrap comparators
    # per loop (x2 FSMs), event masks, and bank-assign state + routing.
    prog_regs = 2 * loop_depth * (2 * loop_reg_bits) + num_events * loop_depth
    prog_regs += 2 * banks  # bank-assign vector (Figure 7)
    prog_gates = 2 * loop_depth * 12 + num_events * 8 + banks * 6
    return area + prog_regs * REG_BIT_AREA_MM2 + prog_gates * GATE_AREA_MM2


def morph_base_pe_area(l0_kb: float = 16.0, lanes: int = 8) -> PeAreaBreakdown:
    """Inflexible PE: monolithic (statically partitioned) L0, fixed FSMs."""
    return PeAreaBreakdown(
        l0_buffer=l0_area_mm2(l0_kb, banks=1),
        arithmetic=arithmetic_area_mm2(lanes, flexible=False),
        control=control_area_mm2(flexible=False),
    )


def morph_pe_area(
    l0_kb: float = 16.0, lanes: int = 8, banks: int = 16
) -> PeAreaBreakdown:
    """Flexible PE: 16-bank L0, muxed datapath, programmable FSMs."""
    return PeAreaBreakdown(
        l0_buffer=l0_area_mm2(l0_kb, banks=banks),
        arithmetic=arithmetic_area_mm2(lanes, flexible=True),
        control=control_area_mm2(flexible=True, banks=banks),
    )
