"""Hardware substrate: technology, SRAM, buffers, NoC, FSMs, machines.

Models the physical pieces of the Morph accelerator (paper Section IV):
CACTI-style SRAM energy/area, the configurable banked buffer (Figure 7),
the programmable loop FSM (Figure 8), broadcast NoCs (Section IV-A4) and
the three evaluated machine configurations (Table II).
"""
