"""32 nm technology constants used by all energy/area models.

Sources mirror the paper's measurement setup (Section VI-A):

* arithmetic energies from Horowitz, "Computing's energy problem",
  ISSCC 2014, scaled from 45 nm to 32 nm;
* SRAM energies in the style of CACTI 6.0 ``itrs-lop`` (see
  :mod:`repro.arch.sram`);
* DRAM access energy of 20 pJ/bit, the figure the paper takes from [46];
* low-swing on-chip wires for the NoC, which burn energy every cycle via
  differential signalling (Section VI-A) — modelled as a static component.

Absolute joules are calibrated estimates; every paper result we reproduce is
a *ratio* between accelerators evaluated under this same model, which is
also how the paper reports its numbers (normalised plots).
"""

from __future__ import annotations

import dataclasses

#: Linear scaling factor applied to published 45 nm dynamic energies to move
#: them to the paper's 32 nm node (feature-size ratio 32/45, with voltage
#: held — a deliberately conservative scaling).
SCALE_45_TO_32 = 32.0 / 45.0

#: Horowitz ISSCC'14, 45 nm: 8-bit multiply 0.2 pJ + 32-bit add 0.1 pJ.
_MACC_PJ_45NM = 0.2 + 0.1


@dataclasses.dataclass(frozen=True)
class Technology:
    """Energy/latency constants for one process node."""

    name: str = "32nm-1GHz"
    clock_hz: float = 1e9

    #: DRAM access energy (paper Section VI-A: 20 pJ/bit).
    dram_pj_per_bit: float = 20.0

    #: One 8-bit multiply-accumulate, including the accumulator update.
    macc_pj: float = _MACC_PJ_45NM * SCALE_45_TO_32

    #: Low-swing interconnect dynamic energy per byte per millimetre.
    noc_pj_per_byte_mm: float = 0.08

    #: Low-swing differential signalling keeps the bus toggling every cycle
    #: regardless of traffic (Section VI-A); charged per wire-bit per cycle.
    noc_static_pj_per_bit_cycle: float = 0.02

    #: SRAM leakage, itrs-lop flavoured (low operating power transistors).
    sram_leakage_mw_per_kb: float = 0.006

    #: Datapath leakage per MACC lane, mW — per lane rather than per PE so
    #: scalar-PE machines (Eyeriss) and vector-PE machines (Morph) with the
    #: same peak compute carry the same leakage.
    lane_leakage_mw: float = 0.006

    @property
    def dram_pj_per_byte(self) -> float:
        return self.dram_pj_per_bit * 8.0

    def macc_energy_pj(self, maccs: int) -> float:
        return self.macc_pj * maccs

    def dram_energy_pj(self, bytes_moved: float) -> float:
        return self.dram_pj_per_byte * bytes_moved


DEFAULT_TECHNOLOGY = Technology()
