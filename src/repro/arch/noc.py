"""Broadcast network-on-chip model (paper Section IV-A4).

All Morph NoCs are simple broadcast buses that implement unicast, multicast
and broadcast with a destination mask.  Three buses connect the L2 to the
L1s/clusters (one each for inputs, weights, psums) and each cluster has a
local set of three buses to its L0s/PEs.

The paper sizes the buses by rate-matching against data reuse: each input is
reused ``R*S*T`` times, so a bus only needs ``M*N / (R*S*T)`` bytes/cycle to
keep ``M*N`` PEs fed — 64 bits between L2 and L1s and 32 bits between each
L1 and its L0s for the evaluated design.  Energy uses low-swing wires, which
also consume energy every cycle through differential signalling.
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class BusSpec:
    """One broadcast bus: width, estimated wire length, destination count."""

    name: str
    width_bits: int
    length_mm: float
    destinations: int = 1

    def __post_init__(self) -> None:
        if self.width_bits < 1:
            raise ValueError(f"{self.name}: width must be >= 1 bit")
        if self.length_mm <= 0:
            raise ValueError(f"{self.name}: length must be positive")

    @property
    def bytes_per_cycle(self) -> float:
        return self.width_bits / 8.0

    def transfer_cycles(self, bytes_moved: float) -> int:
        return math.ceil(bytes_moved / self.bytes_per_cycle)

    def dynamic_pj(self, bytes_moved: float, pj_per_byte_mm: float) -> float:
        """Energy to move ``bytes_moved`` down the bus (driven once,
        regardless of how many destinations latch it)."""
        return bytes_moved * pj_per_byte_mm * self.length_mm

    def static_pj(self, cycles: float, pj_per_bit_cycle: float) -> float:
        """Differential-signalling energy burned every cycle."""
        return self.width_bits * cycles * pj_per_bit_cycle


@dataclasses.dataclass(frozen=True)
class NocConfig:
    """Bus provisioning for the whole chip.

    ``dram_bus`` models the off-chip interface; ``l2_l1`` is the single
    shared broadcast bus set; ``l1_l0`` describes *one* cluster's local bus
    set (there are ``clusters`` of them operating in parallel).
    """

    dram_bus: BusSpec
    l2_l1: BusSpec
    l1_l0: BusSpec
    clusters: int = 1

    def boundary_bus(self, boundary_index: int) -> BusSpec:
        """Bus crossed at boundary ``i`` (0 = DRAM->L2)."""
        if boundary_index == 0:
            return self.dram_bus
        if boundary_index == 1:
            return self.l2_l1
        return self.l1_l0

    def boundary_parallel_buses(self, boundary_index: int) -> int:
        """Independent buses available at a boundary (clusters for L1->L0)."""
        return self.clusters if boundary_index >= 2 else 1

    def boundary_bandwidth_bytes_per_cycle(self, boundary_index: int) -> float:
        bus = self.boundary_bus(boundary_index)
        return bus.bytes_per_cycle * self.boundary_parallel_buses(boundary_index)

    def total_wire_bits(self) -> int:
        """On-chip wire count for static-energy accounting (DRAM excluded)."""
        return self.l2_l1.width_bits + self.l1_l0.width_bits * self.clusters


@dataclasses.dataclass(frozen=True)
class MulticastMask:
    """Destination mask for one bus transfer (Section IV-B3).

    Morph programs one mask per layer (fixed parallelism within a layer) and
    a second mask for the final, possibly partial round of tiles.
    """

    destinations: tuple[bool, ...]

    def __post_init__(self) -> None:
        if not self.destinations:
            raise ValueError("mask must cover at least one destination")

    @classmethod
    def broadcast(cls, n: int) -> "MulticastMask":
        return cls(tuple(True for _ in range(n)))

    @classmethod
    def unicast(cls, n: int, target: int) -> "MulticastMask":
        if not 0 <= target < n:
            raise ValueError("unicast target out of range")
        return cls(tuple(i == target for i in range(n)))

    @classmethod
    def first_k(cls, n: int, k: int) -> "MulticastMask":
        """Mask enabling the first ``k`` destinations — the paper's last
        partial round of tiles."""
        if not 0 < k <= n:
            raise ValueError("k must be in 1..n")
        return cls(tuple(i < k for i in range(n)))

    @property
    def fanout(self) -> int:
        return sum(self.destinations)

    @property
    def is_broadcast(self) -> bool:
        return all(self.destinations)

    @property
    def is_unicast(self) -> bool:
        return self.fanout == 1


def rate_match_width_bits(
    pes: int,
    reuse_factor: int,
    elem_bits: int = 8,
    margin: float = 1.0,
) -> int:
    """Minimum bus width that keeps ``pes`` PEs fed (Section IV-A4).

    With each element reused ``reuse_factor`` times near the PEs, the bus
    only needs ``pes / reuse_factor`` elements per cycle; rounded up to the
    next power of two, as hardware buses are.
    """
    if pes < 1 or reuse_factor < 1:
        raise ValueError("pes and reuse_factor must be >= 1")
    needed = pes * elem_bits * margin / reuse_factor
    width = 1
    while width < needed:
        width *= 2
    return width
