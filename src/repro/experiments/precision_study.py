"""Extension study: datum-width sensitivity of Morph's energy.

The paper assumes 8-bit activations/weights, noting that "3D CNNs for
video understanding have not been studied for precision, but we will
assume that similar results for 2D would hold" (Section III remark).
This extension quantifies what is at stake: re-optimising C3D on Morph
under 4-bit, 8-bit and 16-bit activations/weights (psums scale to match:
``2P + log2(R*S*T*C)`` bits, Section IV-B1).

Narrower data shrinks every tile footprint, letting more of each data
type pin on-chip — so energy falls *faster* than linearly in datum width,
which is the argument for pursuing 3D-CNN quantisation.
"""

from __future__ import annotations

import dataclasses

from repro.arch.accelerator import morph
from repro.core.tiling import Precision
from repro.experiments.common import default_options, format_table, resolve_session
from repro.optimizer.search import OptimizerOptions

#: (label, activation/weight bytes, psum bytes).
PRECISIONS = (
    ("int4", 1, 2),  # 4-bit packed pairs: half-byte data, 16-bit psums
    ("int8", 1, 4),  # the paper's operating point
    ("int16", 2, 8),
)


@dataclasses.dataclass(frozen=True)
class PrecisionResult:
    #: label -> (energy pJ, dram bytes)
    points: dict[str, tuple[float, float]]

    def energy(self, label: str) -> float:
        return self.points[label][0]

    def scaling_int16_over_int8(self) -> float:
        return self.energy("int16") / self.energy("int8")


def run_precision_study(
    fast: bool = True,
    options: OptimizerOptions | None = None,
    layers: tuple[str, ...] | None = None,
    session=None,
) -> PrecisionResult:
    session = resolve_session(session)
    options = options or default_options(fast)
    network = session.build_network("c3d")
    selected = tuple(
        layer for layer in network if layers is None or layer.name in layers
    )
    points: dict[str, tuple[float, float]] = {}
    for label, act_bytes, psum_bytes in PRECISIONS:
        arch = dataclasses.replace(
            morph(),
            name=f"Morph-{label}",
            precision=Precision(
                activation_bytes=act_bytes,
                weight_bytes=act_bytes,
                psum_bytes=psum_bytes,
            ),
        )
        result = session.optimize_network(
            selected, arch, options, network_name=f"c3d-{label}"
        )
        dram = sum(r.best.traffic.dram_total_bytes for r in result.layers)
        points[label] = (result.total_energy_pj, dram)
    return PrecisionResult(points=points)


def main(fast: bool = True, session=None) -> str:
    result = run_precision_study(fast, session=session)
    rows = [
        (
            label,
            result.points[label][0] / 1e6,
            result.points[label][1] / 1e6,
            result.energy(label) / result.energy("int8"),
        )
        for label, _, _ in PRECISIONS
    ]
    report = format_table(
        ["precision", "energy (uJ)", "DRAM MB", "vs int8"],
        rows,
        title="Precision sensitivity of Morph on C3D (extension study)",
    )
    print(report)
    return report


if __name__ == "__main__":
    main()
