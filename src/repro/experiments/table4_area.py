"""Table IV: PE area breakdown and the ~5 % cost of flexibility.

Rebuilds the paper's synthesis table from the structural area models in
:mod:`repro.arch.area`: banked versus monolithic L0, muxed versus fixed
datapath, programmable versus hard-coded FSMs.  The figure of merit is the
total overhead staying ~5 % (the paper reports 4.98 %), dominated by the
on-chip memory which flexibility barely touches.
"""

from __future__ import annotations

import dataclasses

from repro.arch.area import PeAreaBreakdown, morph_base_pe_area, morph_pe_area
from repro.experiments.common import format_table

#: The paper's measured values (mm^2), for side-by-side reporting.
PAPER_TABLE4 = {
    "l0_buffer": (0.041132, 0.042036, 0.0219),
    "arithmetic": (0.00306, 0.00366, 0.1936),
    "control": (0.00107, 0.00182, 0.7059),
    "total": (0.04526, 0.04751, 0.0498),
}


@dataclasses.dataclass(frozen=True)
class Table4Result:
    base: PeAreaBreakdown
    flexible: PeAreaBreakdown

    @property
    def overheads(self) -> dict[str, float]:
        return self.flexible.overhead_vs(self.base)

    def component(self, name: str) -> tuple[float, float, float]:
        base = getattr(self.base, name) if name != "total" else self.base.total
        flex = (
            getattr(self.flexible, name) if name != "total" else self.flexible.total
        )
        return base, flex, flex / base - 1.0


def run_table4() -> Table4Result:
    return Table4Result(base=morph_base_pe_area(), flexible=morph_pe_area())


def main(fast: bool = True, session=None) -> str:
    # ``fast``/``session``: uniform experiment signature; the area model
    # is closed-form — nothing to search, cache or parallelise.
    result = run_table4()
    rows = []
    for name in ("l0_buffer", "arithmetic", "control", "total"):
        base, flex, ovh = result.component(name)
        p_base, p_flex, p_ovh = PAPER_TABLE4[name]
        rows.append(
            (
                name,
                f"{base:.5f}",
                f"{flex:.5f}",
                f"{ovh * 100:.2f}%",
                f"{p_ovh * 100:.2f}%",
            )
        )
    report = format_table(
        ["component", "base mm^2", "Morph mm^2", "overhead", "paper overhead"],
        rows,
        title="Table IV: Morph PE area breakdown (32 nm model)",
    )
    print(report)
    return report


if __name__ == "__main__":
    main()
