"""Figure 9: energy of the five CNNs on Eyeriss, Morph-base and Morph.

Each network is evaluated on all three machines; energies are normalised to
Eyeriss with the component split (DRAM / L2 / L1 / L0 / compute) the figure
stacks.  Paper headlines to reproduce:

* Morph averages ~2.5x lower energy than Morph-base across the 3D CNNs
  (up to 3.4x);
* both Morph variants beat Eyeriss heavily on 3D CNNs — 15.9x on average
  for Morph — with the gap widening with frame count (I3D vs C3D);
* Eyeriss beats Morph-base on AlexNet (2D), while Morph still edges
  Eyeriss there thanks to tiling and loop-order flexibility.
"""

from __future__ import annotations

import dataclasses

from repro.arch.accelerator import morph
from repro.baselines.eyeriss import evaluate_network_on_eyeriss
from repro.baselines.morph_base import evaluate_network_on_morph_base
from repro.experiments.common import default_options, format_table, resolve_session
from repro.optimizer.search import OptimizerOptions

#: Display order follows the figure: 3D CNNs first, then 2D.
FIG9_NETWORKS = ("c3d", "resnet3d50", "i3d", "two_stream", "alexnet")
THREE_D = ("C3D", "ResNet3D-50", "I3D")

COMPONENTS = ("DRAM", "L2", "L1", "L0", "Compute")
ACCELERATORS = ("Eyeriss", "Morph_base", "Morph")


@dataclasses.dataclass(frozen=True)
class NetworkEnergy:
    network: str
    is_3d: bool
    #: accelerator -> component -> pJ
    components: dict[str, dict[str, float]]

    def total(self, accelerator: str) -> float:
        return sum(self.components[accelerator].values())

    def normalised_total(self, accelerator: str) -> float:
        return self.total(accelerator) / self.total("Eyeriss")

    def reduction_vs(self, accelerator: str, baseline: str) -> float:
        """How many times less energy ``accelerator`` uses than ``baseline``."""
        return self.total(baseline) / self.total(accelerator)


@dataclasses.dataclass(frozen=True)
class Figure9Result:
    networks: tuple[NetworkEnergy, ...]

    def by_name(self, network: str) -> NetworkEnergy:
        for entry in self.networks:
            if entry.network == network:
                return entry
        raise KeyError(network)

    def average_reduction_3d(self, accelerator: str, baseline: str) -> float:
        values = [
            n.reduction_vs(accelerator, baseline)
            for n in self.networks
            if n.network in THREE_D
        ]
        return sum(values) / len(values)


def run_figure9(
    fast: bool = True,
    options: OptimizerOptions | None = None,
    networks: tuple[str, ...] = FIG9_NETWORKS,
    session=None,
) -> Figure9Result:
    session = resolve_session(session)
    options = options or default_options(fast)
    morph_arch = morph()
    rows = []
    for name in networks:
        network = session.build_network(name)
        with session.activate():
            # The baselines' engine calls resolve through this session.
            eyeriss = evaluate_network_on_eyeriss(network, options)
            base = evaluate_network_on_morph_base(network, options)
        flexible = session.optimize_network(
            network.layers, morph_arch, options, network_name=network.name
        )
        components = {
            "Eyeriss": _pad(eyeriss.energy_components_pj()),
            "Morph_base": _pad(base.energy_components_pj()),
            "Morph": _pad(flexible.energy_components_pj()),
        }
        rows.append(
            NetworkEnergy(
                network=network.name, is_3d=network.is_3d, components=components
            )
        )
    return Figure9Result(networks=tuple(rows))


def _pad(components: dict[str, float]) -> dict[str, float]:
    return {name: components.get(name, 0.0) for name in COMPONENTS}


def main(fast: bool = True, session=None) -> str:
    result = run_figure9(fast, session=session)
    out = []
    rows = []
    for entry in result.networks:
        for accel in ACCELERATORS:
            comp = entry.components[accel]
            rows.append(
                (
                    entry.network,
                    accel,
                    entry.normalised_total(accel),
                    *(comp[c] / 1e6 for c in COMPONENTS),
                )
            )
    out.append(
        format_table(
            ["network", "accelerator", "norm. energy"]
            + [f"{c} (uJ)" for c in COMPONENTS],
            rows,
            title="Figure 9: energy, normalised to Eyeriss per network",
        )
    )
    out.append(
        "\nHeadlines: "
        f"Morph vs Morph_base (3D avg) = "
        f"{result.average_reduction_3d('Morph', 'Morph_base'):.2f}x; "
        f"Morph vs Eyeriss (3D avg) = "
        f"{result.average_reduction_3d('Morph', 'Eyeriss'):.2f}x"
    )
    report = "\n".join(out)
    print(report)
    return report


if __name__ == "__main__":
    main()
