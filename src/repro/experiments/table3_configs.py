"""Table III: the Morph software analysis' chosen C3D configurations.

For each C3D layer, the energy-optimised configuration on the Morph
machine: outer and inner loop order plus the headline tile/parallelism
parameters the paper tabulates (Kt, Ht, Ft, Kp * Vw).  Ht and Ft are
reported in *input space* as the paper does (layer1's Ht = 114 = 112 rows
+ 2 padding).
"""

from __future__ import annotations

import dataclasses

from repro.arch.accelerator import morph
from repro.core.dims import Dim
from repro.core.tiling import input_extent
from repro.experiments.common import default_options, format_table, resolve_session
from repro.optimizer.search import OptimizerOptions


@dataclasses.dataclass(frozen=True)
class Table3Row:
    layer: str
    outer_order: str
    inner_order: str
    kt: int
    ht: int  #: input-space rows, halo/padding included
    ft: int  #: input-space frames
    kp_vw: int

    def as_tuple(self) -> tuple:
        return (
            self.layer,
            self.outer_order,
            self.inner_order,
            self.kt,
            self.ht,
            self.ft,
            self.kp_vw,
        )


@dataclasses.dataclass(frozen=True)
class Table3Result:
    rows: tuple[Table3Row, ...]

    def row(self, layer: str) -> Table3Row:
        for entry in self.rows:
            if entry.layer == layer:
                return entry
        raise KeyError(layer)


def run_table3(
    fast: bool = True,
    options: OptimizerOptions | None = None,
    layers: tuple[str, ...] | None = None,
    session=None,
) -> Table3Result:
    session = resolve_session(session)
    options = options or default_options(fast)
    arch = morph()
    rows = []
    for layer in session.build_network("c3d"):
        if layers is not None and layer.name not in layers:
            continue
        ev = session.optimize_layer(layer, arch, options).best
        tile = ev.dataflow.hierarchy.outermost
        rows.append(
            Table3Row(
                layer=layer.name,
                outer_order=ev.dataflow.outer_order.format(),
                inner_order=ev.dataflow.inner_order.format(lower=True),
                kt=tile.extent(Dim.K),
                ht=input_extent(layer, Dim.H, tile.extent(Dim.H)),
                ft=input_extent(layer, Dim.F, tile.extent(Dim.F)),
                kp_vw=ev.dataflow.parallelism.k * arch.vector_width,
            )
        )
    return Table3Result(rows=tuple(rows))


def main(fast: bool = True, session=None) -> str:
    result = run_table3(fast, session=session)
    report = format_table(
        ["layer", "outer", "inner", "Kt", "Ht", "Ft", "Kp*Vw"],
        [row.as_tuple() for row in result.rows],
        title="Table III: C3D configurations chosen by the Morph optimizer "
        "(energy objective)",
    )
    print(report)
    return report


if __name__ == "__main__":
    main()
