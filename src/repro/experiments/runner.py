"""Experiment runner: regenerate any or all paper figures/tables.

Usage::

    python -m repro.experiments.runner --all
    python -m repro.experiments.runner fig9 table3 --thorough
    python -m repro.experiments.runner --all --parallelism 8 --cache-dir ~/.cache/repro

``--parallelism`` fans unique-layer searches across worker processes
(``--parallelism-mode thread`` swaps in a thread pool for free-threaded
builds) and ``--cache-dir`` persists each search's chosen configuration
on disk, so a rerun recalls every configuration instead of re-searching
(paper Section V: the analysis runs once per CNN and is then saved and
recalled); ``--cache-backend`` picks the store layout (``local`` flat
directory, ``sharded`` two-level fan-out for cluster-shared mounts,
``memory`` in-process).  All of these set the process-wide engine
defaults (:func:`repro.optimizer.engine.set_engine_defaults`), which
every experiment's ``optimize_network`` / ``optimize_layer`` call picks
up; ``--no-cache`` disables memoisation entirely for timing cold runs.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.optimizer.engine import describe_cache_statistics, set_engine_defaults
from repro.workloads import set_build_defaults

from repro.experiments import (
    ablation_flexibility,
    fig1_footprint,
    fig4_loop_orders,
    fig5_hierarchy,
    fig9_energy,
    fig10_perf_watt,
    precision_study,
    table3_configs,
    table4_area,
)

EXPERIMENTS: dict[str, Callable[..., str]] = {
    "fig1": lambda fast: fig1_footprint.main(),
    "fig4": fig4_loop_orders.main,
    "fig5": lambda fast: fig5_hierarchy.main(),
    "fig9": fig9_energy.main,
    "fig10": fig10_perf_watt.main,
    "table3": table3_configs.main,
    "table4": lambda fast: table4_area.main(),
    "ablation": ablation_flexibility.main,
    "precision": precision_study.main,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate Morph (MICRO 2018) figures and tables."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"which to run: {', '.join(EXPERIMENTS)} or 'all'",
    )
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument(
        "--thorough",
        action="store_true",
        help="full search-space sweep (slow; default uses the fast preset)",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for unique-layer searches (default: "
        "$REPRO_PARALLELISM or serial)",
    )
    parser.add_argument(
        "--parallelism-mode",
        choices=("process", "thread"),
        default=None,
        help="executor for parallel searches (default: "
        "$REPRO_PARALLELISM_MODE or process; thread suits free-threaded "
        "builds — results are identical either way)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist/recall per-layer configurations under DIR (default: "
        "$REPRO_CACHE_DIR or no disk cache)",
    )
    parser.add_argument(
        "--cache-backend",
        choices=("local", "sharded", "memory"),
        default=None,
        help="config-store layout for --cache-dir (default: "
        "$REPRO_CACHE_BACKEND or local); 'sharded' fans records over "
        "two directory levels plus a manifest for cluster-shared "
        "NFS/object-storage mounts, 'memory' keeps them in-process",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable all optimizer caching (cold-run timing)",
    )
    parser.add_argument(
        "--vectorize",
        dest="vectorize",
        action="store_true",
        default=None,
        help="force the columnar batch evaluator on (default: on when "
        "NumPy is available, or $REPRO_VECTORIZE)",
    )
    parser.add_argument(
        "--no-vectorize",
        dest="vectorize",
        action="store_false",
        help="run the scalar reference search path (identical results)",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=None,
        metavar="N",
        help="input frames for frame-flexible networks (C3D, I3D, ...): "
        "sweeps like C3D at 8/16/32 frames need no code edits",
    )
    args = parser.parse_args(argv)
    set_engine_defaults(
        parallelism=args.parallelism,
        parallelism_mode=args.parallelism_mode,
        cache_dir=args.cache_dir,
        cache_backend=args.cache_backend,
        use_cache=False if args.no_cache else None,
        vectorize=args.vectorize,
    )
    if args.frames is not None and args.frames < 1:
        parser.error("--frames must be >= 1")
    set_build_defaults(frames=args.frames)

    chosen = list(args.experiments or [])
    unknown = [name for name in chosen if name not in EXPERIMENTS and name != "all"]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; choose from "
            f"{', '.join(EXPERIMENTS)} or 'all'"
        )
    if args.all or "all" in chosen or not chosen:
        chosen = list(EXPERIMENTS)

    fast = not args.thorough
    for name in chosen:
        print(f"\n=== {name} " + "=" * (70 - len(name)))
        start = time.time()
        EXPERIMENTS[name](fast)
        print(f"[{name} done in {time.time() - start:.1f}s]")
    # Per-backend recall statistics of every persistent config store the
    # sweeps touched (hits, misses, recall re-evaluations).
    print(f"\n{describe_cache_statistics()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
