"""Experiment runner: regenerate any or all paper figures/tables.

Usage::

    python -m repro.experiments.runner --all
    python -m repro.experiments.runner fig9 table3 --thorough
    python -m repro.experiments.runner --all --parallelism 8 --cache-dir ~/.cache/repro
    python -m repro.experiments.runner --all --config sweep.toml

The runner is a thin CLI over :mod:`repro.api`: it materialises one
:class:`~repro.api.SessionConfig` from its flags (with the documented
precedence — explicit flags beat ``--config`` file values beat
``$REPRO_*`` environment variables beat built-in defaults), opens a
:class:`~repro.api.Session`, and hands that session to every experiment's
uniform ``main(fast=..., session=...)`` entry point.  Nothing is mutated
process-wide: two runners embedded in one process (or a runner inside a
larger service) cannot leak configuration into each other.

``--parallelism`` fans unique-layer searches across worker processes
(``--parallelism-mode thread`` swaps in a thread pool for free-threaded
builds) and ``--cache-dir`` persists each search's chosen configuration
on disk, so a rerun recalls every configuration instead of re-searching
(paper Section V: the analysis runs once per CNN and is then saved and
recalled); ``--cache-backend`` picks the store layout (``local`` flat
directory, ``sharded`` two-level fan-out for cluster-shared mounts —
with automatic manifest compaction tunable via
``--manifest-compact-ratio`` — ``memory`` in-process).  ``--no-cache``
disables memoisation entirely for timing cold runs.  On exit the session
folds its cache statistics into the store's ``CACHE_STATS.json`` sidecar
and prints the merged (cross-process) totals.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import Session, SessionConfig
from repro.experiments import EXPERIMENTS


def build_config(args: argparse.Namespace) -> SessionConfig:
    """One :class:`SessionConfig` from the CLI flags, layered over any
    ``--config`` file and the environment (explicit flags win)."""
    return SessionConfig.resolve(
        file=args.config,
        parallelism=args.parallelism,
        parallelism_mode=args.parallelism_mode,
        cache_dir=args.cache_dir,
        cache_backend=args.cache_backend,
        use_cache=False if args.no_cache else None,
        vectorize=args.vectorize,
        budget_ms=args.budget_ms,
        kernel_backend=args.kernel_backend,
        max_table_bytes=args.max_table_bytes,
        frames=args.frames,
        manifest_compact_ratio=args.manifest_compact_ratio,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate Morph (MICRO 2018) figures and tables."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"which to run: {', '.join(EXPERIMENTS)}, 'all', or 'serve' "
        "(long-lived line-JSON serving loop on stdin/stdout)",
    )
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument(
        "--thorough",
        action="store_true",
        help="full search-space sweep (slow; default uses the fast preset)",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="load a SessionConfig from a TOML/JSON file; explicit flags "
        "override its values, which override $REPRO_* variables",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for unique-layer searches (default: "
        "$REPRO_PARALLELISM or serial)",
    )
    parser.add_argument(
        "--parallelism-mode",
        choices=("process", "thread"),
        default=None,
        help="executor for parallel searches (default: "
        "$REPRO_PARALLELISM_MODE or process; thread suits free-threaded "
        "builds — results are identical either way)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist/recall per-layer configurations under DIR (default: "
        "$REPRO_CACHE_DIR or no disk cache)",
    )
    parser.add_argument(
        "--cache-backend",
        choices=("local", "sharded", "memory"),
        default=None,
        help="config-store layout for --cache-dir (default: "
        "$REPRO_CACHE_BACKEND or local); 'sharded' fans records over "
        "two directory levels plus a manifest for cluster-shared "
        "NFS/object-storage mounts, 'memory' keeps them in-process",
    )
    parser.add_argument(
        "--manifest-compact-ratio",
        type=float,
        default=None,
        metavar="R",
        help="auto-compact the sharded store's manifest once it exceeds "
        "R lines per live key (default: $REPRO_MANIFEST_COMPACT_RATIO "
        "or 4.0; 0 disables)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable all optimizer caching (cold-run timing)",
    )
    parser.add_argument(
        "--vectorize",
        dest="vectorize",
        action="store_true",
        default=None,
        help="force the columnar batch evaluator on (default: on when "
        "NumPy is available, or $REPRO_VECTORIZE)",
    )
    parser.add_argument(
        "--no-vectorize",
        dest="vectorize",
        action="store_false",
        help="run the scalar reference search path (identical results)",
    )
    parser.add_argument(
        "--budget-ms",
        type=float,
        default=None,
        metavar="MS",
        help="anytime budget per layer search in milliseconds (default: "
        "$REPRO_BUDGET_MS or unbudgeted); results are bit-identical to "
        "the unbudgeted search unless the budget is hit, in which case "
        "the best-so-far configuration is reported with its bound gap",
    )
    parser.add_argument(
        "--kernel-backend",
        choices=("numpy", "compiled"),
        default=None,
        help="kernel-execution backend for columnar passes (default: "
        "$REPRO_KERNEL_BACKEND or numpy); 'compiled' JIT-compiles the "
        "shared kernels when a JIT is installed and silently matches "
        "numpy otherwise — results are bit-identical either way",
    )
    parser.add_argument(
        "--max-table-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="cap columnar candidate/schedule tables at BYTES, streaming "
        "rows in chunks with carried reductions (default: "
        "$REPRO_MAX_TABLE_BYTES or uncapped; identical results)",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=None,
        metavar="N",
        help="input frames for frame-flexible networks (C3D, I3D, ...): "
        "sweeps like C3D at 8/16/32 frames need no code edits",
    )
    parser.add_argument(
        "--serve-workers",
        type=int,
        default=None,
        metavar="N",
        help="serve mode: worker threads / max concurrent searches "
        "(default: $REPRO_SERVE_WORKERS or 4)",
    )
    parser.add_argument(
        "--serve-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="serve mode: admitted-request cap before backpressure "
        "rejections (default: $REPRO_SERVE_QUEUE_DEPTH or 64)",
    )
    parser.add_argument(
        "--serve-tenant-rate",
        type=float,
        default=None,
        metavar="R",
        help="serve mode: per-tenant admission quota in requests/second "
        "(default: $REPRO_SERVE_TENANT_RATE or unlimited)",
    )
    args = parser.parse_args(argv)
    if args.frames is not None and args.frames < 1:
        parser.error("--frames must be >= 1")
    try:
        config = build_config(args)
    except (OSError, ValueError) as error:
        parser.error(str(error))

    chosen = list(args.experiments or [])
    if chosen == ["serve"]:
        return _serve(args, config)
    unknown = [name for name in chosen if name not in EXPERIMENTS and name != "all"]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; choose from "
            f"{', '.join(EXPERIMENTS)} or 'all'"
        )
    if args.all or "all" in chosen or not chosen:
        chosen = list(EXPERIMENTS)

    fast = not args.thorough
    with Session(config) as session:
        for name in chosen:
            print(f"\n=== {name} " + "=" * (70 - len(name)))
            start = time.time()
            EXPERIMENTS[name](fast=fast, session=session)
            print(f"[{name} done in {time.time() - start:.1f}s]")
        # Engine counters plus per-backend recall statistics, merged with
        # the persisted cross-process sidecar of the session's store.
        print(f"\n{session.describe_statistics()}")
    return 0


def _serve(args: argparse.Namespace, config: SessionConfig) -> int:
    """The ``serve`` subcommand: a line-JSON loop over stdin/stdout.

    Each input line is one request (see :mod:`repro.serve.protocol`);
    responses print in completion order.  Exits on EOF or a
    ``{"op": "shutdown"}`` line, draining in-flight requests and
    flushing the session's cache statistics on the way out.
    """
    import asyncio

    from repro.serve import serve_stdio

    session = Session(config)
    engine = session.serve(
        max_workers=args.serve_workers,
        max_queue_depth=args.serve_queue_depth,
        tenant_rate=args.serve_tenant_rate,
    )
    try:
        asyncio.run(serve_stdio(engine))
    finally:
        session.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
