"""Shared plumbing for the experiment harness.

Every experiment module exposes a ``run_*`` function returning a structured
result object plus a ``main(fast=True, session=None)`` that pretty-prints
it the way the paper's figure/table reports the data — one uniform
session-aware signature across all experiments, so the runner's table
needs no per-experiment adapters.  Results carry plain dict/list rows so
benchmarks and tests can assert on them without parsing text.

Experiments run *through a session* (:mod:`repro.api`): ``session=None``
resolves to the currently scoped session (or the process default), so a
bare ``run_figure9()`` behaves exactly as before while
``run_figure9(session=my_session)`` — or calling inside ``with
my_session:`` — applies that session's parallelism/cache/vectorize/frames
configuration to every search the experiment performs.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

from repro.optimizer.search import OptimizerOptions


def resolve_session(session=None):
    """The session an experiment should run under: the explicit argument,
    else the currently scoped session, else the process default."""
    from repro.api import current_session

    return session if session is not None else current_session()


def default_options(fast: bool = True, **overrides) -> OptimizerOptions:
    """Search-effort preset shared by all experiments.

    ``fast=True`` (the default everywhere, including benchmarks) uses the
    coarser discretisation; pass ``fast=False`` for the thorough sweep the
    paper's offline optimizer would run.
    """
    return (
        OptimizerOptions.fast(**overrides)
        if fast
        else OptimizerOptions(**overrides)
    )


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table (the harness' replacement for matplotlib)."""
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


@dataclasses.dataclass(frozen=True)
class SeriesResult:
    """A named series of (label, value) points — one bar group of a figure."""

    name: str
    labels: tuple[str, ...]
    values: tuple[float, ...]

    def as_rows(self) -> list[tuple[str, float]]:
        return list(zip(self.labels, self.values))

    def value_for(self, label: str) -> float:
        try:
            return self.values[self.labels.index(label)]
        except ValueError:
            raise KeyError(f"{self.name} has no point {label!r}") from None
