"""Experiment harness: one module per figure/table of the paper.

==========  ===========================================================
Module      Paper content
==========  ===========================================================
fig1_*      Figure 1a/1b: footprints and reuse, 2D vs 3D CNNs
fig4_*      Figure 4a/4b/4c: loop-order and allocation motivation (C3D)
fig5_*      Figure 5: buffer-hierarchy-depth sweep
fig9_*      Figure 9: energy, Eyeriss vs Morph-base vs Morph
fig10_*     Figure 10: performance/watt, Morph vs Morph-base
table3_*    Table III: chosen C3D configurations
table4_*    Table IV: PE area breakdown
==========  ===========================================================

Run everything with ``python -m repro.experiments.runner --all``.
"""
