"""Experiment harness: one module per figure/table of the paper.

==========  ===========================================================
Module      Paper content
==========  ===========================================================
fig1_*      Figure 1a/1b: footprints and reuse, 2D vs 3D CNNs
fig4_*      Figure 4a/4b/4c: loop-order and allocation motivation (C3D)
fig5_*      Figure 5: buffer-hierarchy-depth sweep
fig9_*      Figure 9: energy, Eyeriss vs Morph-base vs Morph
fig10_*     Figure 10: performance/watt, Morph vs Morph-base
table3_*    Table III: chosen C3D configurations
table4_*    Table IV: PE area breakdown
==========  ===========================================================

Every experiment exposes the same session-aware entry point
``main(fast=True, session=None) -> str`` (and a structured ``run_*``
counterpart); :data:`EXPERIMENTS` is the canonical name -> entry-point
table the runner, benchmarks and tests share.  No wrappers, no lambdas —
the uniform signature means no flag can be silently dropped on the way
through.

Run everything with ``python -m repro.experiments.runner --all``.
"""

from repro.experiments import (
    ablation_flexibility,
    fig1_footprint,
    fig4_loop_orders,
    fig5_hierarchy,
    fig9_energy,
    fig10_perf_watt,
    precision_study,
    table3_configs,
    table4_area,
)

#: Canonical experiment registry: every value is the module's
#: ``main(fast=True, session=None) -> str`` — one uniform signature.
EXPERIMENTS = {
    "fig1": fig1_footprint.main,
    "fig4": fig4_loop_orders.main,
    "fig5": fig5_hierarchy.main,
    "fig9": fig9_energy.main,
    "fig10": fig10_perf_watt.main,
    "table3": table3_configs.main,
    "table4": table4_area.main,
    "ablation": ablation_flexibility.main,
    "precision": precision_study.main,
}

__all__ = ["EXPERIMENTS"]
