"""Figure 4: the motivation study on C3D (Section III).

* **Figure 4a** — DRAM access energy per C3D layer for three fixed outer
  loop orders ([KWHCF] weight-stationary extreme, [WFHCK] input-stationary
  extreme, [WHCKF] average-best) versus Opt, which picks the best outer
  order per layer.  For each bar, tile sizes and inner orders are swept and
  the lowest-total-energy point is reported, isolating the outer order's
  effect — exactly the paper's methodology.
* **Figure 4b** — how Opt partitions the (shared) L2 buffer between
  inputs, outputs and weights per layer.
* **Figure 4c** — same study for inner loop orders ([kfwhc], [whkfc],
  [cfwhk] average-best) versus Opt, reporting on-chip energy.

The experiment runs on the Morph machine (flexible buffers, Section III's
"accelerator with three levels of on-chip buffer which can be flexibly
partitioned ... similar to our final evaluated design").
"""

from __future__ import annotations

import dataclasses

from repro.arch.accelerator import morph
from repro.core.dims import DataType
from repro.core.loopnest import LoopOrder
from repro.experiments.common import default_options, format_table, resolve_session
from repro.optimizer.search import OptimizerOptions

#: The fixed outer orders of Figure 4a.
FIG4A_OUTER_ORDERS = ("KWHCF", "WFHCK", "WHCKF")
#: The fixed inner orders of Figure 4c (paper prints them lower-case).
FIG4C_INNER_ORDERS = ("KFWHC", "WHKFC", "CFWHK")


@dataclasses.dataclass(frozen=True)
class Figure4Result:
    layer_names: tuple[str, ...]
    #: Figure 4a: order -> per-layer DRAM energy (pJ); "Opt" included.
    dram_energy: dict[str, tuple[float, ...]]
    #: Figure 4b: per-layer (input, output, weight) fraction of the L2.
    l2_allocation: tuple[tuple[float, float, float], ...]
    #: Figure 4c: order -> per-layer on-chip energy (pJ); "Opt" included.
    onchip_energy: dict[str, tuple[float, ...]]

    def opt_never_worse(self, table: str = "dram") -> bool:
        data = self.dram_energy if table == "dram" else self.onchip_energy
        opt = data["Opt"]
        tolerance = 1.0 + 1e-9
        return all(
            opt[i] <= min(series[i] for name, series in data.items() if name != "Opt")
            * tolerance
            for i in range(len(self.layer_names))
        )


def _optimize(session, layer, arch, options: OptimizerOptions):
    """Engine-backed per-layer search: each (layer, fixed order) study is
    memoised, so re-running the figure (tests, benchmarks) recalls it."""
    return session.optimize_layer(layer, arch, options).best


def run_figure4(
    fast: bool = True, layers: tuple[str, ...] | None = None, session=None
) -> Figure4Result:
    """``layers`` restricts the study to a subset of C3D layers (tests)."""
    session = resolve_session(session)
    arch = morph()
    network = session.build_network("c3d")
    selected = [
        layer for layer in network if layers is None or layer.name in layers
    ]
    base_options = default_options(fast)
    layer_names = tuple(layer.name for layer in selected)

    # ---- Figure 4a: outer loop orders, DRAM energy -------------------
    dram: dict[str, list[float]] = {name: [] for name in FIG4A_OUTER_ORDERS}
    dram["Opt"] = []
    opt_evals = []
    for layer in selected:
        best_total = None
        for order_name in FIG4A_OUTER_ORDERS:
            options = base_options.with_(
                fixed_outer_order=LoopOrder.parse(order_name)
            )
            ev = _optimize(session, layer, arch, options)
            dram[order_name].append(ev.energy.dram_pj)
            if best_total is None or ev.total_energy_pj < best_total.total_energy_pj:
                best_total = ev
        opt_ev = _optimize(session, layer, arch, base_options)
        if opt_ev.total_energy_pj > best_total.total_energy_pj:
            opt_ev = best_total  # Opt may at worst equal the best fixed order
        opt_evals.append(opt_ev)
        # "Opt picks whichever outer loop order is optimal for each layer":
        # for the DRAM-energy plot that is the order minimising DRAM energy.
        dram["Opt"].append(
            min(
                opt_ev.energy.dram_pj,
                *(dram[name][-1] for name in FIG4A_OUTER_ORDERS),
            )
        )

    # ---- Figure 4b: Opt's L2 allocation -------------------------------
    allocation = []
    usable = arch.levels[0].usable_bytes
    for ev in opt_evals:
        tile = ev.dataflow.hierarchy.outermost
        layer = ev.layer
        allocation.append(
            (
                tile.bytes_of(DataType.INPUTS, layer, arch.precision) / usable,
                tile.bytes_of(DataType.PSUMS, layer, arch.precision) / usable,
                tile.bytes_of(DataType.WEIGHTS, layer, arch.precision) / usable,
            )
        )

    # ---- Figure 4c: inner loop orders, on-chip energy -----------------
    onchip: dict[str, list[float]] = {name: [] for name in FIG4C_INNER_ORDERS}
    onchip["Opt"] = []
    for index, layer in enumerate(selected):
        for order_name in FIG4C_INNER_ORDERS:
            options = base_options.with_(
                fixed_inner_order=LoopOrder.parse(order_name)
            )
            ev = _optimize(session, layer, arch, options)
            onchip[order_name].append(ev.energy.on_chip_pj)
        onchip["Opt"].append(
            min(
                opt_evals[index].energy.on_chip_pj,
                *(onchip[name][index] for name in FIG4C_INNER_ORDERS),
            )
        )

    return Figure4Result(
        layer_names=layer_names,
        dram_energy={k: tuple(v) for k, v in dram.items()},
        l2_allocation=tuple(allocation),
        onchip_energy={k: tuple(v) for k, v in onchip.items()},
    )


def main(fast: bool = True, session=None) -> str:
    result = run_figure4(fast, session=session)
    out = []
    orders = list(result.dram_energy)
    rows = [
        (layer, *(result.dram_energy[o][i] / 1e6 for o in orders))
        for i, layer in enumerate(result.layer_names)
    ]
    out.append(
        format_table(
            ["layer"] + [f"{o} (uJ)" for o in orders],
            rows,
            title="Figure 4a: DRAM energy by outer loop order (C3D)",
        )
    )
    rows_b = [
        (layer, *[round(x, 3) for x in result.l2_allocation[i]])
        for i, layer in enumerate(result.layer_names)
    ]
    out.append(
        format_table(
            ["layer", "inputs", "outputs", "weights"],
            rows_b,
            title="\nFigure 4b: Opt's L2 buffer allocation (fraction of usable L2)",
        )
    )
    orders_c = list(result.onchip_energy)
    rows_c = [
        (layer, *(result.onchip_energy[o][i] / 1e6 for o in orders_c))
        for i, layer in enumerate(result.layer_names)
    ]
    out.append(
        format_table(
            ["layer"] + [f"[{o.lower()}] (uJ)" for o in orders_c],
            rows_c,
            title="\nFigure 4c: on-chip energy by inner loop order (C3D)",
        )
    )
    report = "\n".join(out)
    print(report)
    return report


if __name__ == "__main__":
    main()
