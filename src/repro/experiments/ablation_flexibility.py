"""Ablation: which of Morph's flexibility mechanisms buys what.

The paper bundles three configuration-time mechanisms (Section IV-B):
flexible **loop orders** (programmable FSMs), flexible **buffer
partitioning** (banked shared buffers), and flexible **PE parallelism**
(NoC masks).  Figure 9 only reports them together; this ablation — the
design-choice study DESIGN.md calls out — enables them one at a time on
C3D, measuring each mechanism's marginal energy gain over Morph-base.

Machine variants (all with Morph's buffer sizes):

=================  ===========  ==========  ============
variant            loop orders  partitions  parallelism
=================  ===========  ==========  ============
base               fixed        static      fixed
+orders            free         static      fixed
+partitions        fixed        banked      fixed
+parallelism       fixed        static      free
morph (all)        free         banked      free
=================  ===========  ==========  ============
"""

from __future__ import annotations

import dataclasses

from repro.arch.accelerator import (
    MORPH_BASE_INNER,
    MORPH_BASE_OUTER,
    MORPH_BASE_PARALLELISM,
    AcceleratorConfig,
    morph,
    morph_base,
)
from repro.experiments.common import default_options, format_table, resolve_session
from repro.optimizer.search import OptimizerOptions


def _variant(
    name: str,
    *,
    free_orders: bool,
    banked_partitions: bool,
    free_parallelism: bool,
) -> AcceleratorConfig:
    """Build a Morph variant with a subset of mechanisms enabled."""
    template = morph() if banked_partitions else morph_base()
    return dataclasses.replace(
        template,
        name=name,
        fixed_outer_order=None if free_orders else MORPH_BASE_OUTER,
        fixed_inner_order=None if free_orders else MORPH_BASE_INNER,
        fixed_parallelism=None if free_parallelism else MORPH_BASE_PARALLELISM,
    )


VARIANTS = (
    ("base", dict(free_orders=False, banked_partitions=False, free_parallelism=False)),
    ("+orders", dict(free_orders=True, banked_partitions=False, free_parallelism=False)),
    ("+partitions", dict(free_orders=False, banked_partitions=True, free_parallelism=False)),
    ("+parallelism", dict(free_orders=False, banked_partitions=False, free_parallelism=True)),
    ("morph", dict(free_orders=True, banked_partitions=True, free_parallelism=True)),
)


@dataclasses.dataclass(frozen=True)
class AblationResult:
    #: variant name -> (energy pJ, cycles)
    variants: dict[str, tuple[float, float]]

    def energy(self, name: str) -> float:
        return self.variants[name][0]

    def gain_over_base(self, name: str) -> float:
        return self.energy("base") / self.energy(name)

    def mechanisms_compose(self) -> bool:
        """Full Morph should beat every single-mechanism variant."""
        full = self.energy("morph")
        return all(
            full <= self.energy(name) * 1.001
            for name, _ in VARIANTS
            if name != "morph"
        )


def run_ablation(
    fast: bool = True,
    options: OptimizerOptions | None = None,
    layers: tuple[str, ...] | None = None,
    session=None,
) -> AblationResult:
    session = resolve_session(session)
    options = options or default_options(fast)
    network = session.build_network("c3d")
    selected = tuple(
        layer for layer in network if layers is None or layer.name in layers
    )
    results: dict[str, tuple[float, float]] = {}
    for name, flags in VARIANTS:
        arch = _variant(f"Morph[{name}]", **flags)
        outcome = session.optimize_network(
            selected, arch, options, network_name=f"c3d-ablation-{name}"
        )
        results[name] = (outcome.total_energy_pj, outcome.total_cycles)
    return AblationResult(variants=results)


def main(fast: bool = True, session=None) -> str:
    result = run_ablation(fast, session=session)
    rows = []
    for name, _ in VARIANTS:
        energy, cycles = result.variants[name]
        rows.append(
            (name, energy / 1e6, cycles / 1e6, result.gain_over_base(name))
        )
    report = format_table(
        ["variant", "energy (uJ)", "Mcycles", "gain vs base"],
        rows,
        title="Flexibility ablation on C3D (energy objective)",
    )
    print(report)
    return report


if __name__ == "__main__":
    main()
