"""Figure 10: performance-per-watt, Morph versus Morph-base.

Both machines have the same peak GFLOPs, so any win comes from PE
utilisation (adaptive loop orders and parallelisation) and energy.  The
paper reports 4x on average (C3D 4.2x, ResNet3D 4.14x, I3D 4.89x,
Two-Stream 2.07x, AlexNet 5.08x).  The optimizer here runs with the
``perf_per_watt`` objective — the paper's flow returns "several best
configurations (best performance, best performance/watt, etc.)" and this
figure picks the latter.
"""

from __future__ import annotations

import dataclasses

from repro.arch.accelerator import morph
from repro.baselines.morph_base import evaluate_network_on_morph_base
from repro.experiments.common import default_options, format_table, resolve_session
from repro.optimizer.search import OptimizerOptions

FIG10_NETWORKS = ("c3d", "resnet3d50", "i3d", "two_stream", "alexnet")


@dataclasses.dataclass(frozen=True)
class PerfWattEntry:
    network: str
    is_3d: bool
    morph_gmacs_per_joule: float
    base_gmacs_per_joule: float
    morph_utilization: float
    base_utilization: float

    @property
    def improvement(self) -> float:
        return self.morph_gmacs_per_joule / self.base_gmacs_per_joule


@dataclasses.dataclass(frozen=True)
class Figure10Result:
    entries: tuple[PerfWattEntry, ...]

    def by_name(self, network: str) -> PerfWattEntry:
        for entry in self.entries:
            if entry.network == network:
                return entry
        raise KeyError(network)

    @property
    def average_improvement(self) -> float:
        return sum(e.improvement for e in self.entries) / len(self.entries)


def run_figure10(
    fast: bool = True,
    options: OptimizerOptions | None = None,
    networks: tuple[str, ...] = FIG10_NETWORKS,
    session=None,
) -> Figure10Result:
    session = resolve_session(session)
    options = (options or default_options(fast)).with_(objective="perf_per_watt")
    morph_arch = morph()
    entries = []
    for name in networks:
        network = session.build_network(name)
        flexible = session.optimize_network(
            network.layers, morph_arch, options, network_name=network.name
        )
        with session.activate():
            base = evaluate_network_on_morph_base(network, options)
        entries.append(
            PerfWattEntry(
                network=network.name,
                is_3d=network.is_3d,
                morph_gmacs_per_joule=flexible.perf_per_watt / 1e9,
                base_gmacs_per_joule=base.perf_per_watt / 1e9,
                morph_utilization=_mean_util(flexible),
                base_utilization=_mean_util(base),
            )
        )
    return Figure10Result(entries=tuple(entries))


def _mean_util(result) -> float:
    utils = [r.best.performance.utilization for r in result.layers]
    return sum(utils) / len(utils)


def main(fast: bool = True, session=None) -> str:
    result = run_figure10(fast, session=session)
    rows = [
        (
            e.network,
            e.base_gmacs_per_joule,
            e.morph_gmacs_per_joule,
            e.improvement,
            e.base_utilization,
            e.morph_utilization,
        )
        for e in result.entries
    ]
    report = format_table(
        [
            "network",
            "base GMAC/J",
            "Morph GMAC/J",
            "improvement",
            "base util",
            "Morph util",
        ],
        rows,
        title="Figure 10: perf/watt, Morph vs Morph_base "
        f"(avg {result.average_improvement:.2f}x)",
    )
    print(report)
    return report


if __name__ == "__main__":
    main()
