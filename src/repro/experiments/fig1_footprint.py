"""Figure 1: memory footprint and data reuse, 2D versus 3D CNNs.

* **Figure 1a** — per-layer input and filter footprints for AlexNet,
  Inception and ResNet-50 versus C3D, ResNet3D-50 and I3D, under the
  caption's normalisation: 224 x 224 input frames, 3 channels, 16 frames.
  The paper's takeaways: 3D footprints far exceed typical on-chip memory
  (Observation 1) and vary dramatically across layers (Observation 2).
* **Figure 1b** — average MACs per byte of input+filter data (Observation
  3: 3D CNNs have far higher reuse, making on-chip energy dominant).
"""

from __future__ import annotations

import dataclasses

from repro.experiments.common import format_table
from repro.workloads import build_network
from repro.workloads.networks import Network

#: Figure 1's normalisation: 224x224 frames, 16 of them for the 3D nets.
FIG1_BUILDS = {
    "AlexNet": dict(name="alexnet"),
    "Inception": dict(name="inception"),
    "ResNet-50": dict(name="resnet50"),
    "C3D": dict(name="c3d", input_hw=224, frames=16),
    "ResNet3D-50": dict(name="resnet3d50", input_hw=224, frames=16),
    "I3D": dict(name="i3d", input_hw=224, frames=16),
}


@dataclasses.dataclass(frozen=True)
class LayerFootprint:
    network: str
    layer: str
    input_bytes: int
    weight_bytes: int
    is_3d: bool


@dataclasses.dataclass(frozen=True)
class Figure1Result:
    footprints: tuple[LayerFootprint, ...]  #: Figure 1a
    reuse: dict[str, float]  #: Figure 1b, MACs per byte

    def network_layers(self, network: str) -> list[LayerFootprint]:
        return [fp for fp in self.footprints if fp.network == network]

    def max_footprint(self, network: str) -> int:
        return max(
            fp.input_bytes + fp.weight_bytes for fp in self.network_layers(network)
        )

    def reuse_ratio_3d_over_2d(self) -> float:
        """How much more reuse the average 3D net has over the average 2D."""
        three_d = [v for k, v in self.reuse.items() if k in ("C3D", "ResNet3D-50", "I3D")]
        two_d = [v for k, v in self.reuse.items() if k in ("AlexNet", "Inception", "ResNet-50")]
        return (sum(three_d) / len(three_d)) / (sum(two_d) / len(two_d))


def _build(label: str) -> Network:
    spec = dict(FIG1_BUILDS[label])
    return build_network(spec.pop("name"), **spec)


def run_figure1() -> Figure1Result:
    footprints: list[LayerFootprint] = []
    reuse: dict[str, float] = {}
    for label in FIG1_BUILDS:
        network = _build(label)
        for layer in network:
            footprints.append(
                LayerFootprint(
                    network=label,
                    layer=layer.name,
                    input_bytes=layer.input_bytes(),
                    weight_bytes=layer.weight_bytes(),
                    is_3d=network.is_3d,
                )
            )
        reuse[label] = network.average_reuse
    return Figure1Result(footprints=tuple(footprints), reuse=reuse)


def main(fast: bool = True, session=None) -> str:
    # ``fast``/``session`` are accepted for the uniform experiment
    # signature; the footprint analysis runs no search to scale or scope
    # (its builds pin the figure's own normalisation explicitly).
    result = run_figure1()
    out = []
    rows_a = []
    for label in FIG1_BUILDS:
        layers = result.network_layers(label)
        rows_a.append(
            (
                label,
                len(layers),
                max(fp.input_bytes for fp in layers) / 1e6,
                max(fp.weight_bytes for fp in layers) / 1e6,
                result.max_footprint(label) / 1e6,
            )
        )
    out.append(
        format_table(
            ["network", "layers", "max input MB", "max weight MB", "max total MB"],
            rows_a,
            title="Figure 1a: memory footprints (224x224, 16 frames for 3D)",
        )
    )
    rows_b = [(label, result.reuse[label]) for label in FIG1_BUILDS]
    out.append(
        format_table(
            ["network", "MACs/byte"],
            rows_b,
            title="\nFigure 1b: average data reuse",
        )
    )
    report = "\n".join(out)
    print(report)
    return report


if __name__ == "__main__":
    main()
