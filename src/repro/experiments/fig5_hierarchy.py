"""Figure 5: how many levels of on-chip buffer hierarchy are worth it.

The paper sweeps buffer hierarchies of one to four levels for a
representative convolution (112 x 112 x 3 input, 16 frames, 3 x 3 x 3
filter; the 2D variant sets F = T = 1), sweeping loop orders and tile sizes
and *fixing the physical buffer size to the tile size* to isolate the
effect of hierarchy depth.  Findings to reproduce: both 2D and 3D prefer
three levels; the benefit is much larger for 3D (7.8x over one level,
versus 3.8x for 2D) because halo effects push 3D towards large tiles whose
per-access energy only a deeper hierarchy can amortise; a fourth level adds
traffic without new reuse and efficiency drops.
"""

from __future__ import annotations

import dataclasses
import itertools
import math

from repro.arch.sram import sram_read_pj_per_byte, sram_write_pj_per_byte
from repro.arch.technology import DEFAULT_TECHNOLOGY
from repro.core.access_model import compute_alu_traffic, compute_traffic
from repro.core.dataflow import Dataflow
from repro.core.dims import ALL_DIMS, DataType, Dim
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import TileHierarchy, TileShape
from repro.experiments.common import format_table
from repro.optimizer.space import (
    REPRESENTATIVE_INNER_ORDERS,
    REPRESENTATIVE_OUTER_ORDERS,
)

#: The representative layer from the figure's caption.
LAYER_3D = ConvLayer("fig5-3d", h=112, w=112, c=3, f=16, k=64, r=3, s=3, t=3)
LAYER_2D = ConvLayer("fig5-2d", h=112, w=112, c=3, f=1, k=64, r=3, s=3, t=1)

#: Buffer-size grid the per-level tile sizes are drawn from (bytes).
SIZE_GRID = (
    2 * 2**20, 1 * 2**20, 512 * 2**10, 128 * 2**10, 64 * 2**10,
    32 * 2**10, 8 * 2**10, 2 * 2**10,
)

VECTOR_WIDTH = 8

#: Shrink priorities: which dims to halve first when a tile is too big.
#: Different data-type balances want different shapes — e.g. cutting K
#: first shrinks the 4-byte psums while preserving input slide reuse.
_SHRINK_STRATEGIES = (
    None,  # heaviest footprint first
    (Dim.K, Dim.F, Dim.W, Dim.H, Dim.C),  # psums first
    (Dim.C, Dim.K, Dim.F, Dim.H, Dim.W),  # channels first
)


def _greedy_tile(
    layer: ConvLayer,
    parent: TileShape,
    capacity: int,
    priority: tuple[Dim, ...] | None = None,
) -> TileShape:
    """Shrink from the parent, halving dims by ``priority`` (or by largest
    footprint saving), until the tile fits ``capacity``."""
    current = {dim: parent.extent(dim) for dim in ALL_DIMS}
    for _ in range(64):
        tile = TileShape.from_mapping(current)
        if tile.total_bytes(layer) <= capacity:
            return tile
        if priority is not None:
            target = next((d for d in priority if current[d] > 1), None)
        else:
            target = max(
                (d for d in ALL_DIMS if current[d] > 1),
                key=lambda d: _shrink_gain(layer, current, d),
                default=None,
            )
        if target is None:
            return tile
        current[target] = math.ceil(current[target] / 2)
    return TileShape.from_mapping(current)


def _shrink_gain(layer: ConvLayer, current: dict, dim) -> int:
    tile = TileShape.from_mapping(current)
    halved = dict(current)
    halved[dim] = math.ceil(current[dim] / 2)
    return tile.total_bytes(layer) - TileShape.from_mapping(halved).total_bytes(layer)


def _tile_candidates(
    layer: ConvLayer, parent: TileShape, capacity: int
) -> list[TileShape]:
    """Distinct fitting tiles from all shrink strategies."""
    tiles = []
    for priority in _SHRINK_STRATEGIES:
        tile = _greedy_tile(layer, parent, capacity, priority)
        if tile.total_bytes(layer) <= capacity and tile not in tiles:
            tiles.append(tile)
    return tiles


def _energy_pj(dataflow: Dataflow) -> float:
    """DRAM + per-level SRAM energy with buffers sized to their tiles."""
    layer = dataflow.layer
    traffic = compute_traffic(dataflow)
    tech = DEFAULT_TECHNOLOGY
    energy = tech.dram_energy_pj(
        traffic.dram_read_bytes + traffic.dram_write_bytes
    )
    levels = dataflow.hierarchy.levels
    reads = [0.0] * levels
    writes = [0.0] * levels
    for index, boundary in enumerate(traffic.boundaries):
        for data_type in DataType:
            t = boundary.of(data_type)
            if data_type is DataType.PSUMS:
                down, up = t.load_bytes, t.writeback_bytes
                if index > 0:
                    reads[index - 1] += down
                    writes[index - 1] += up
                writes[index] += down
                reads[index] += up
            else:
                if index > 0:
                    reads[index - 1] += t.fill_bytes
                writes[index] += t.fill_bytes
    alu = compute_alu_traffic(traffic, VECTOR_WIDTH)
    reads[-1] += alu.l0_read_bytes
    writes[-1] += alu.l0_write_bytes
    for index in range(levels):
        tile_kb = max(
            dataflow.hierarchy.tiles[index].total_bytes(layer) / 1024.0, 0.25
        )
        energy += reads[index] * sram_read_pj_per_byte(tile_kb)
        energy += writes[index] * sram_write_pj_per_byte(tile_kb)
    return energy


def best_energy_for_levels(layer: ConvLayer, levels: int) -> float:
    """Sweep size assignments and loop orders for a fixed hierarchy depth."""
    outer_orders = [LoopOrder.parse(o) for o in REPRESENTATIVE_OUTER_ORDERS[:6]]
    inner_orders = [LoopOrder.parse(o) for o in REPRESENTATIVE_INNER_ORDERS[:6]]
    best = float("inf")
    for sizes in itertools.combinations(SIZE_GRID, levels):
        # Beam over shrink-strategy variants at each level.
        beams: list[tuple[TileShape, ...]] = [()]
        for size in sizes:  # grid is descending, so nesting is monotone
            new_beams = []
            for beam in beams:
                parent = beam[-1] if beam else TileShape.full(layer)
                for tile in _tile_candidates(layer, parent, size):
                    new_beams.append(beam + (tile,))
            beams = new_beams[:9]
        for beam in beams:
            hierarchy = TileHierarchy(layer, beam)
            for outer in outer_orders:
                for inner in inner_orders if levels > 1 else inner_orders[:1]:
                    energy = _energy_pj(Dataflow(outer, inner, hierarchy))
                    best = min(best, energy)
    return best


@dataclasses.dataclass(frozen=True)
class Figure5Result:
    levels: tuple[int, ...]
    energy_3d: tuple[float, ...]
    energy_2d: tuple[float, ...]

    def advantage(self, is_3d: bool) -> tuple[float, ...]:
        """Energy advantage over a single-level hierarchy (the figure's y)."""
        series = self.energy_3d if is_3d else self.energy_2d
        return tuple(series[0] / e for e in series)

    def best_depth(self, is_3d: bool) -> int:
        adv = self.advantage(is_3d)
        return self.levels[adv.index(max(adv))]


def run_figure5(max_levels: int = 4) -> Figure5Result:
    levels = tuple(range(1, max_levels + 1))
    return Figure5Result(
        levels=levels,
        energy_3d=tuple(best_energy_for_levels(LAYER_3D, n) for n in levels),
        energy_2d=tuple(best_energy_for_levels(LAYER_2D, n) for n in levels),
    )


def main(fast: bool = True, session=None) -> str:
    # ``fast``/``session``: uniform experiment signature; the hierarchy
    # sweep uses its own fixed grid rather than the optimizer engine.
    result = run_figure5()
    adv3, adv2 = result.advantage(True), result.advantage(False)
    rows = [
        (n, result.energy_3d[i] / 1e6, adv3[i], result.energy_2d[i] / 1e6, adv2[i])
        for i, n in enumerate(result.levels)
    ]
    report = format_table(
        ["levels", "3D energy (uJ)", "3D advantage", "2D energy (uJ)", "2D advantage"],
        rows,
        title="Figure 5: multi-level buffer hierarchy advantage",
    )
    print(report)
    return report


if __name__ == "__main__":
    main()
