"""Core models: layers, loop orders, tiling, traffic, energy, performance.

This package is the paper's primary contribution rebuilt as a library:
the flexible-dataflow cost model that Morph's hardware exposes and its
software optimizer searches (paper Sections II-V).

Two evaluation paths share one set of equations:

* the **scalar path** (:mod:`repro.core.evaluate`) walks one candidate at
  a time through ``compute_traffic`` -> ``compute_performance`` ->
  ``compute_energy`` and returns a full :class:`~repro.core.evaluate.
  Evaluation` object — the readable reference implementation;
* the **columnar batch path** (:mod:`repro.core.batch`) lowers a whole
  candidate set into NumPy columns (tile extents per level, loop-order and
  parallelism indices) and computes traffic, cycles, energy and the
  objective for every candidate in a handful of array expressions,
  materialising ``Evaluation`` objects lazily for winners only.

The formulas live in shared scalar/array-agnostic ``*_kernel`` functions
(:func:`~repro.core.tiling.sum_input_extents_kernel`,
:func:`~repro.core.performance_model.utilization_kernel`,
:func:`~repro.core.energy_model.energy_accumulation_kernel`, ...), so the
two paths cannot drift apart; an equivalence harness
(``tests/test_batch_equivalence.py``) additionally pins chosen
configurations and bit-identical scores across random layers, strides,
dilations and objectives.  The optimizer uses the batch path by default;
``REPRO_VECTORIZE=0`` (or a missing NumPy) falls back to the scalar path
everywhere.  Dilated 3D convolution (D2Conv3D-style ``dilation_h/w/f`` on
:class:`~repro.core.layer.ConvLayer`) is handled by both.

How the columnar path *executes* the kernels is itself pluggable:
:mod:`repro.core.backend` registers kernel-execution backends
(``kernel_backend="numpy"`` runs them as plain Python over columns;
``"compiled"`` JIT-compiles them with numba when installed and silently
falls back otherwise — bit-identical either way, the backend contract in
``docs/INVARIANTS.md``), and ``max_table_bytes=...`` caps the peak table
memory of the columnar passes by streaming row chunks with carried
reductions.  Both knobs thread through
:class:`~repro.optimizer.search.OptimizerOptions`,
:class:`repro.api.SessionConfig`, ``$REPRO_KERNEL_BACKEND`` /
``$REPRO_MAX_TABLE_BYTES`` and the runner flags, and — being pure speed
knobs — stay out of search signatures and cache keys.
"""
