"""Core models: layers, loop orders, tiling, traffic, energy, performance.

This package is the paper's primary contribution rebuilt as a library:
the flexible-dataflow cost model that Morph's hardware exposes and its
software optimizer searches (paper Sections II-V).
"""
