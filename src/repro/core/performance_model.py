"""Performance model: PE utilisation, cycles and runtime (Section V-D).

The paper converts PE utilisation and configuration metadata into wall-clock
time with an analytic model.  Ours works the same way:

* **Utilisation** multiplies three effects: PEs left idle because the
  parallel degree is below the machine's PE count; load imbalance when the
  number of tiles along a parallelised dim does not divide the parallel
  degree (the paper's "edge cases such as when tile size is not an integer
  multiple of the dimension size"); and vector-lane slack when the innermost
  K tile is not a multiple of ``Vw``.
* **Cycles** are the maximum of compute-bound cycles and the
  bandwidth-bound cycles of every bus (Section IV-A4's rate-matching shows
  compute normally dominates; the model verifies rather than assumes it).
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Iterable

from repro.arch.accelerator import AcceleratorConfig
from repro.core.access_model import TrafficReport
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.dims import DataType, Dim, Num
from repro.core.tiling import ceil_div


# ----------------------------------------------------------------------
# Scalar/array-agnostic formula kernels (shared with repro.core.batch)
# ----------------------------------------------------------------------
def imbalance_utilisation_kernel(tiles: Num, degree: Num) -> Num:
    """Fraction of PE-rounds doing useful work when ``tiles`` units are
    dealt round-robin to ``degree`` workers.  Exactly 1.0 at degree 1, so
    callers can multiply unconditionally."""
    return tiles / (ceil_div(tiles, degree) * degree)


def vector_lane_utilisation_kernel(k_inner: Num, vector_width: Num) -> Num:
    """Vector-lane slack when the innermost K tile is not a multiple of
    ``Vw`` (Section IV-A2)."""
    return k_inner / (vector_width * ceil_div(k_inner, vector_width))


def utilization_kernel(
    degree: Num,
    total_pes: Num,
    vector_width: Num,
    k_inner: Num,
    dim_factors: "Iterable[tuple[Num, Num, Num, Num]]",
) -> Num:
    """Sustained fraction of peak MACC throughput.

    ``dim_factors`` yields, per parallelisable dim (W, H, K, F order), the
    tuple ``(cluster_degree, cluster_tiles, pe_degree, pe_tiles)``.  Works
    on scalars and on candidate columns alike; the scalar model and the
    batch pipeline both call this single implementation.
    """
    util = degree / total_pes
    for c_deg, c_tiles, p_deg, p_tiles in dim_factors:
        util = util * imbalance_utilisation_kernel(c_tiles, c_deg)
        util = util * imbalance_utilisation_kernel(p_tiles, p_deg)
    return util * vector_lane_utilisation_kernel(k_inner, vector_width)


def compute_cycles_kernel(
    maccs: Num, peak_maccs_per_cycle: Num, utilization: Num
) -> Num:
    """Compute-bound cycles at a sustained utilisation."""
    return maccs / (peak_maccs_per_cycle * utilization)


def boundary_bus_bytes_kernel(
    input_fill: Num, weight_fill: Num, psum_load: Num, psum_writeback: Num
) -> Num:
    """Bytes crossing one boundary's bus (both directions for psums)."""
    return input_fill + weight_fill + (psum_load + psum_writeback)


def split_parallelism(
    parallelism: Parallelism, clusters: int, pes_per_cluster: int
) -> tuple[Parallelism, Parallelism]:
    """Factor a flat parallel spec into (cluster-level, PE-level) parts.

    Morph distributes work first across its M clusters and then across the
    N PEs within each (Section IV-A2).  The heuristic mirrors the paper's
    base design: filter parallelism maps to clusters first (each cluster
    owns an output-channel group, minimising input replication across
    clusters), then temporal/spatial dims fill remaining cluster slots, and
    whatever remains runs across the PEs of each cluster.

    The divisor search is pure in its three arguments and called for every
    candidate evaluation, so results are memoised process-wide
    (:func:`repro.clear_cache` resets the memo via :func:`clear_memos`).
    """
    return _split_parallelism_cached(parallelism, clusters, pes_per_cluster)


def clear_memos() -> None:
    """Reset this module's process-wide memos (the ``split_parallelism``
    divisor-search cache), for callers that mutate machine descriptions
    in place; wired into :func:`repro.clear_cache`."""
    _split_parallelism_cached.cache_clear()


@functools.lru_cache(maxsize=4096)
def _split_parallelism_cached(
    parallelism: Parallelism, clusters: int, pes_per_cluster: int
) -> tuple[Parallelism, Parallelism]:
    dims = (Dim.K, Dim.F, Dim.H, Dim.W)
    degrees = [parallelism.of(d) for d in dims]
    divisor_lists = [
        [d for d in range(1, deg + 1) if deg % d == 0] for deg in degrees
    ]

    best: tuple[int, int, int, int] | None = None
    best_rank: tuple | None = None

    def search(index: int, chosen: list[int], cluster_used: int) -> None:
        nonlocal best, best_rank
        if cluster_used > clusters:
            return
        if index == len(dims):
            pe_used = 1
            for deg, c in zip(degrees, chosen):
                pe_used *= deg // c
            if pe_used > pes_per_cluster:
                return
            # Prefer K (then F, H, W) at the cluster level: each cluster
            # owning an output-channel group minimises cross-cluster input
            # replication (the Morph-base arrangement, Section IV-A3).
            rank = tuple(-c for c in chosen)
            if best_rank is None or rank < best_rank:
                best, best_rank = tuple(chosen), rank
            return
        for c in reversed(divisor_lists[index]):
            chosen.append(c)
            search(index + 1, chosen, cluster_used * c)
            chosen.pop()

    search(0, [], 1)
    if best is None:
        raise ValueError(
            f"parallelism {parallelism.describe()} does not fit "
            f"{clusters} clusters x {pes_per_cluster} PEs"
        )
    cluster_par = Parallelism.from_mapping(dict(zip(dims, best)))
    pe_par = Parallelism.from_mapping(
        {dim: deg // c for dim, deg, c in zip(dims, degrees, best)}
    )
    return cluster_par, pe_par


def parallel_level_degrees(
    num_levels: int,
    clusters: int,
    pes_per_cluster: int,
    parallelism: Parallelism,
) -> tuple[dict[Dim, int], ...]:
    """Per-level parallel splits, indexed like the tile hierarchy.

    Clusters distribute the tiles of the *middle* level (their L1 tiles
    within the L2 tile) and PEs the innermost level's; two-level machines
    apply the whole degree at their single inner level.  Used both to cap
    sub-tile sizes in the optimizer and to tell the traffic model which
    loop trips execute concurrently (broadcast rather than re-fetched).
    """
    cluster_par, pe_par = split_parallelism(parallelism, clusters, pes_per_cluster)
    dims = (Dim.W, Dim.H, Dim.K, Dim.F)
    if num_levels >= 3:
        degrees: list[dict[Dim, int]] = [{} for _ in range(num_levels)]
        degrees[1] = {d: cluster_par.of(d) for d in dims}
        degrees[-1] = {d: pe_par.of(d) for d in dims}
        return tuple(degrees)
    if num_levels == 2:
        return ({}, {d: cluster_par.of(d) * pe_par.of(d) for d in dims})
    return ({},)


def compute_utilization(
    hierarchy,
    arch: AcceleratorConfig,
    parallelism: Parallelism,
) -> float:
    """Fraction of peak MACC throughput sustained (see module docstring).

    Exposed separately so the optimizer can rank parallelisation candidates
    cheaply before running the full traffic model.  The arithmetic lives in
    :func:`utilization_kernel`, shared with the batch pipeline.
    """
    cluster_par, pe_par = split_parallelism(
        parallelism, arch.clusters, arch.pes_per_cluster
    )
    inner = hierarchy.innermost
    mid_index = max(hierarchy.levels - 2, 0)
    mid_tile = hierarchy.tiles[mid_index]
    pe_parent = hierarchy.parent_of(hierarchy.levels - 1)
    cluster_parent = hierarchy.parent_of(mid_index)

    dim_factors = [
        (
            cluster_par.of(dim),
            ceil_div(cluster_parent.extent(dim), mid_tile.extent(dim)),
            pe_par.of(dim),
            ceil_div(pe_parent.extent(dim), inner.extent(dim)),
        )
        for dim in (Dim.W, Dim.H, Dim.K, Dim.F)
    ]
    return utilization_kernel(
        parallelism.degree,
        arch.total_pes,
        arch.vector_width,
        inner.extent(Dim.K),
        dim_factors,
    )


@dataclasses.dataclass(frozen=True)
class PerformanceReport:
    """Cycles and utilisation of one layer on one accelerator."""

    cycles: float
    compute_cycles: float
    bandwidth_cycles: dict[str, float]
    utilization: float  #: fraction of peak MACC throughput achieved
    active_pes: int
    bound_by: str  #: "compute" or the name of the limiting bus

    def runtime_s(self, clock_hz: float) -> float:
        return self.cycles / clock_hz


def compute_performance(
    traffic: TrafficReport,
    arch: AcceleratorConfig,
    dataflow: Dataflow,
) -> PerformanceReport:
    """Evaluate cycles for a layer given its traffic profile."""
    parallelism = dataflow.parallelism
    if parallelism.degree > arch.total_pes:
        raise ValueError(
            f"{parallelism.describe()} exceeds {arch.total_pes} PEs"
        )
    util = compute_utilization(dataflow.hierarchy, arch, parallelism)

    # --- compute-bound cycles ----------------------------------------
    compute_cycles = compute_cycles_kernel(
        traffic.maccs, arch.peak_maccs_per_cycle, util
    )

    # --- bandwidth-bound cycles --------------------------------------
    bandwidth_cycles: dict[str, float] = {}
    for index, boundary in enumerate(traffic.boundaries):
        psums = boundary.of(DataType.PSUMS)
        bytes_crossing = boundary_bus_bytes_kernel(
            boundary.of(DataType.INPUTS).fill_bytes,
            boundary.of(DataType.WEIGHTS).fill_bytes,
            psums.load_bytes,
            psums.writeback_bytes,
        )
        bw = arch.noc.boundary_bandwidth_bytes_per_cycle(index)
        bandwidth_cycles[boundary.name] = bytes_crossing / bw

    cycles = compute_cycles
    bound_by = "compute"
    for name, bw_cycles in bandwidth_cycles.items():
        if bw_cycles > cycles:
            cycles = bw_cycles
            bound_by = name

    return PerformanceReport(
        cycles=cycles,
        compute_cycles=compute_cycles,
        bandwidth_cycles=bandwidth_cycles,
        utilization=util,
        active_pes=parallelism.degree,
        bound_by=bound_by,
    )
