"""Pluggable kernel-execution backends for the columnar pipelines.

The shared ``*_kernel`` formulas (``docs/INVARIANTS.md``, kernel-purity)
are deliberately scalar/array-agnostic, which makes them a *lowering
target*: the same ``def`` that scores one candidate with Python ints can
be handed to a JIT compiler and run over whole candidate columns.  This
module owns that lowering step behind a tiny registry so execution
backends are pluggable:

``numpy``
    The identity lowering — kernels run as plain Python over NumPy
    columns, exactly as PRs 2/4 shipped them.  Always available.
``compiled``
    Kernels are wrapped in ``numba.njit`` when numba is importable.
    When it is not — or when a particular kernel cannot be typed by
    numba (heterogeneous containers, ``*args``) — the wrapper silently
    and permanently falls back to the original Python function.
    Selecting ``compiled`` therefore **never** raises an import error
    and never changes results: the lowered kernel must be bit-identical
    to the original, which stays the single source of the math
    (backends lower, never fork — enforced by ``repro.lint``).

A GPU backend (CuPy drops in where NumPy does) can be registered later
via :func:`register_backend` without touching any call site: callers
resolve a backend by name and route every kernel call through
:func:`KernelBackend.kernel_impl`.

The module also owns chunk planning for the streaming columnar passes:
:func:`plan_chunk_rows` converts a ``max_table_bytes`` memory cap into a
row-block size (memoized), so schedule/candidate tables that outgrow the
cap are processed in blocks with carried reductions instead of falling
back to the scalar path.

Backend/cap *defaults* resolve through the scoped-config chain
(``repro.optimizer.engine.default_kernel_backend`` /
``default_max_table_bytes``: session > ``$REPRO_KERNEL_BACKEND`` /
``$REPRO_MAX_TABLE_BYTES`` > built-in) — this module never reads the
environment itself.
"""

from __future__ import annotations

import dataclasses
import types
from typing import Any, Callable

KernelFn = Callable[..., Any]

#: Import-probe memo for numba: absent key = not probed yet; ``None``
#: value = probed and unavailable.  Reset by :func:`clear_backend_caches`.
_NUMBA_MODULE: dict[str, Any] = {}

#: Lowered-kernel dispatch memo: ``module.qualname`` -> lowered callable.
_COMPILED_MEMO: dict[str, KernelFn] = {}

#: njit dispatchers for kernels/helpers referenced *by* jitted kernels.
_JIT_SUPPORT: dict[str, Any] = {}

#: Non-kernel helpers a jitted kernel may call (the sanctioned helper
#: list of the kernel-purity rule, minus ``kernel_and_stride`` which
#: takes a layer object and is always evaluated outside kernels).
_SUPPORT_HELPERS = frozenset({"ceil_div", "clip_min0"})

#: Chunk plans: ``(row_bytes, max_table_bytes)`` -> rows per chunk.
_CHUNK_PLANS: dict[tuple[int, int], int] = {}


def _load_numba() -> Any:
    """Import numba once; memoize the module (or ``None`` if absent)."""
    if "module" not in _NUMBA_MODULE:
        try:
            import numba
        except Exception:
            # Missing *or* broken install: the fallback must be silent.
            _NUMBA_MODULE["module"] = None
        else:
            _NUMBA_MODULE["module"] = numba
    return _NUMBA_MODULE["module"]


def compiled_available() -> bool:
    """Whether the ``compiled`` backend can actually JIT (numba present)."""
    return _load_numba() is not None


class _GuardedKernel:
    """A JIT-wrapped kernel that falls back to the original on failure.

    numba compiles lazily at first call, so wrap-time success proves
    nothing: a kernel taking heterogeneous containers or ``*args`` only
    fails when typed.  The guard tries the jitted callable and, on any
    exception, permanently reverts to the pure-Python kernel — the
    original ``def`` is the bit-exactness oracle, so the fallback is
    always correct, just slower.
    """

    __slots__ = ("fn", "jitted", "failed", "__wrapped__")

    def __init__(self, fn: KernelFn, jitted: KernelFn) -> None:
        self.fn = fn
        self.jitted = jitted
        self.failed = False
        self.__wrapped__ = fn

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        if not self.failed:
            try:
                return self.jitted(*args, **kwargs)
            except Exception:
                self.failed = True
        return self.fn(*args, **kwargs)


def _lower_identity(fn: KernelFn) -> KernelFn:
    return fn


def _njit_with_support(
    numba: Any, fn: types.FunctionType, seen: frozenset[str]
) -> Any:
    """``numba.njit`` ``fn``, lowering referenced kernels/helpers too.

    Jitted code can only call other jitted functions, and kernels lean
    on the sanctioned helpers (``ceil_div``, ``clip_min0``) and on each
    other.  The kernel is re-bound over a globals copy where every
    referenced ``*_kernel`` / helper function is replaced by its njit
    dispatcher, recursively — the original module globals are never
    mutated, so the pure-Python oracle path is untouched.
    """
    key = f"{fn.__module__}.{fn.__qualname__}"
    if key in _JIT_SUPPORT:
        return _JIT_SUPPORT[key]
    overrides: dict[str, Any] = {}
    for name in fn.__code__.co_names:
        if name in seen:
            continue
        value = fn.__globals__.get(name)
        if not isinstance(value, types.FunctionType):
            continue
        if name.endswith("_kernel") or name in _SUPPORT_HELPERS:
            overrides[name] = _njit_with_support(
                numba, value, seen | {name}
            )
    if overrides:
        fn = types.FunctionType(
            fn.__code__,
            {**fn.__globals__, **overrides},
            fn.__name__,
            fn.__defaults__,
            fn.__closure__,
        )
    dispatcher = numba.njit(cache=False)(fn)
    _JIT_SUPPORT[key] = dispatcher
    return dispatcher


def _lower_compiled(fn: KernelFn) -> KernelFn:
    key = f"{fn.__module__}.{fn.__qualname__}"
    if key not in _COMPILED_MEMO:
        numba = _load_numba()
        jitted: Any = None
        if numba is not None and isinstance(fn, types.FunctionType):
            try:
                jitted = _njit_with_support(numba, fn, frozenset({fn.__name__}))
            except Exception:
                jitted = None  # wrap-time failure: silent fallback
        if jitted is None:
            _COMPILED_MEMO[key] = fn
        else:
            _COMPILED_MEMO[key] = _GuardedKernel(fn, jitted)
    return _COMPILED_MEMO[key]


@dataclasses.dataclass(frozen=True)
class KernelBackend:
    """One named way of executing ``*_kernel`` formulas.

    ``lower`` maps the original kernel function to the callable this
    backend executes; it must preserve bit-identity with the original.
    ``available`` reports whether the backend's accelerator substrate is
    importable — when it is not, :meth:`kernel_impl` silently serves the
    original function, so selecting an unavailable backend degrades to
    the ``numpy`` behaviour instead of raising.
    """

    name: str
    available: Callable[[], bool]
    lower: Callable[[KernelFn], KernelFn]

    def kernel_impl(self, fn: KernelFn) -> KernelFn:
        """The callable to execute in place of kernel ``fn``."""
        if not self.available():
            return fn
        return self.lower(fn)


def _always_available() -> bool:
    return True


#: Registry of execution backends, keyed by name.  A future ``cupy``
#: backend registers here and every call site picks it up by name.
KERNEL_BACKENDS: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register (or replace) a backend under ``backend.name``."""
    KERNEL_BACKENDS[backend.name] = backend
    return backend


register_backend(
    KernelBackend(
        name="numpy", available=_always_available, lower=_lower_identity
    )
)
register_backend(
    KernelBackend(
        name="compiled", available=compiled_available, lower=_lower_compiled
    )
)


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted for stable messages."""
    return tuple(sorted(KERNEL_BACKENDS))


def check_backend_name(name: str) -> str:
    """Validate ``name`` against the registry; return it unchanged."""
    if name not in KERNEL_BACKENDS:
        known = ", ".join(backend_names())
        raise ValueError(
            f"unknown kernel backend {name!r}; known backends: {known}"
        )
    return name


def resolve_kernel_backend(name: str | None = None) -> KernelBackend:
    """Resolve an explicit name (or the scoped default) to a backend.

    ``None`` defers to ``default_kernel_backend()`` — session config,
    then ``$REPRO_KERNEL_BACKEND``, then the built-in ``"numpy"``.
    """
    if name is None:
        from repro.optimizer.engine import default_kernel_backend

        name = default_kernel_backend()
    check_backend_name(name)
    return KERNEL_BACKENDS[name]


def resolve_max_table_bytes(value: int | None = None) -> int | None:
    """Resolve an explicit memory cap (or the scoped default).

    Returns ``None`` when no cap is configured anywhere — columnar
    passes then materialize full tables exactly as before.
    """
    if value is None:
        from repro.optimizer.engine import default_max_table_bytes

        return default_max_table_bytes()
    value = int(value)
    if value < 1:
        raise ValueError(
            f"max_table_bytes must be a positive byte count, got {value}"
        )
    return value


def plan_chunk_rows(row_bytes: int, max_table_bytes: int) -> int:
    """Rows per chunk so one chunk's table stays under the byte cap.

    Raises ``ValueError`` when the cap cannot hold even a single row —
    a cap that small is a configuration error, not a request for an
    empty table.
    """
    key = (int(row_bytes), int(max_table_bytes))
    if key not in _CHUNK_PLANS:
        rows, cap = key
        if rows <= 0:
            raise ValueError(f"row_bytes must be positive, got {rows}")
        per_chunk = cap // rows
        if per_chunk < 1:
            raise ValueError(
                f"max_table_bytes={cap} is smaller than a single table "
                f"row ({rows} bytes); raise the cap"
            )
        _CHUNK_PLANS[key] = per_chunk
    return _CHUNK_PLANS[key]


def clear_backend_caches() -> None:
    """Reset dispatch memos and chunk plans (``repro.clear_cache()``)."""
    _COMPILED_MEMO.clear()
    _JIT_SUPPORT.clear()
    _CHUNK_PLANS.clear()
    _NUMBA_MODULE.clear()
