"""Analytic data-movement model for tiled, loop-ordered 3D convolution.

This is the quantitative core of the reproduction: given a layer and a
:class:`~repro.core.dataflow.Dataflow` (loop orders + tile hierarchy), it
computes how many bytes of inputs, weights and partial sums cross every
buffer boundary (DRAM->L2, L2->L1, L1->L0).  The energy model (Section V-D
of the paper: "a linear energy model to convert the number of reads/writes/
operations to expected energy") is a straight dot product over these counts.

Rules implemented (paper Sections II-D/II-E):

* **Fetch rule** — per boundary, a data type is reloaded once per iteration
  of every loop from the outermost down to the innermost loop *relevant* to
  it.  Loops with trip count 1 are degenerate and dropped first.
* **Full residency** — if every relevant loop is degenerate, the data type's
  whole region fits in the child level and is fetched only when the parent's
  copy changes.  This reproduces the paper's Figure 4a remark that layers
  whose data fits in L2 have outer-loop-order-independent DRAM energy.
* **Slide reuse** — along the innermost relevant loop, overlapping input
  halos are not refetched, so the byte sum telescopes to the parent extent.
* **Psum zero-init** — the globally first visit of each psum tile skips the
  read (initialised by accumulation); every fill is eventually written back.
  Final outputs leave to DRAM at activation width, intermediate spills at
  psum width.

Byte counts are exact within each full parent tile (per-dimension sums of
edge-clipped child extents); raggedness across partial parent tiles is
approximated by ceil trip counts.  :mod:`repro.sim.trace` walks the actual
schedule and is used in tests to validate this model (exactly, for evenly
dividing shapes).
"""

from __future__ import annotations

import dataclasses

from repro.core.dataflow import Dataflow
from repro.core.dims import (
    ALL_DATA_TYPES,
    ALL_DIMS,
    SLIDING_DIMS,
    DataType,
    Dim,
    Num,
    relevant_dims,
)
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import (
    DEFAULT_PRECISION,
    Precision,
    TileShape,
    sum_input_extents,
    union_input_extent,
)


@dataclasses.dataclass(frozen=True)
class DataTraffic:
    """Movement of one data type across one buffer boundary."""

    fills: int  #: number of tile loads into the child level
    fill_bytes: int  #: bytes logically installed into the child per fill sum
    load_bytes: int = 0  #: psums only: bytes read from parent (revisits)
    writeback_bytes: int = 0  #: psums only: bytes written back to parent
    writeback_count: int = 0

    @property
    def parent_read_bytes(self) -> int:
        """Bytes read from the parent level to serve this boundary."""
        return self.load_bytes if self.load_bytes or self.writeback_bytes else self.fill_bytes

    def describe(self) -> str:
        return (
            f"fills={self.fills} fill_bytes={self.fill_bytes} "
            f"load_bytes={self.load_bytes} wb_bytes={self.writeback_bytes}"
        )


@dataclasses.dataclass(frozen=True)
class BoundaryTraffic:
    """All three data types across one boundary (parent -> child)."""

    name: str
    parent_level: int  #: 0 = DRAM, 1 = last-level buffer, ...
    per_type: dict[DataType, DataTraffic]

    def of(self, data_type: DataType) -> DataTraffic:
        return self.per_type[data_type]


@dataclasses.dataclass(frozen=True)
class TrafficReport:
    """Complete data-movement profile of one layer under one dataflow."""

    layer: ConvLayer
    dataflow: Dataflow
    precision: Precision
    boundaries: tuple[BoundaryTraffic, ...]  #: outermost (DRAM->L2) first
    maccs: int

    # ------------------------------------------------------------------
    @property
    def dram_boundary(self) -> BoundaryTraffic:
        return self.boundaries[0]

    @property
    def dram_read_bytes(self) -> int:
        """Bytes read from DRAM (input + weight fetch, psum re-loads)."""
        b = self.dram_boundary
        return (
            b.of(DataType.INPUTS).fill_bytes
            + b.of(DataType.WEIGHTS).fill_bytes
            + b.of(DataType.PSUMS).load_bytes
        )

    @property
    def dram_write_bytes(self) -> int:
        """Bytes written to DRAM (psum spills + final outputs)."""
        return self.dram_boundary.of(DataType.PSUMS).writeback_bytes

    @property
    def dram_total_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes

    def boundary(self, index: int) -> BoundaryTraffic:
        return self.boundaries[index]


# ----------------------------------------------------------------------
# Scalar/array-agnostic formula kernels (shared with repro.core.batch)
# ----------------------------------------------------------------------
def clip_min0(x: Num) -> Num:
    """``max(0, x)`` for ints/floats and elementwise for arrays."""
    return x * (x > 0)


def psum_spill_bytes_kernel(fill_bytes: Num, out_psum_bytes: Num) -> Num:
    """Psum bytes that revisit the parent level (zero-init skips the first
    visit of each tile, so only refills beyond one full output pass load)."""
    return clip_min0(fill_bytes - out_psum_bytes)


def dram_psum_writeback_kernel(
    spill_bytes: Num, output_activation_bytes: Num
) -> Num:
    """DRAM-boundary psum writeback: true spills move at psum width, the
    final outputs leave once at activation width."""
    return spill_bytes + output_activation_bytes


def _innermost_relevant_index(order: tuple[Dim, ...], rel: frozenset[Dim]) -> int:
    """Index of the innermost loop relevant to a data type, or -1."""
    for idx in range(len(order) - 1, -1, -1):
        if order[idx] in rel:
            return idx
    return -1


def _run_fill_bytes_inputs(
    layer: ConvLayer,
    parent: TileShape,
    child: TileShape,
    order: tuple[Dim, ...],
    trips: dict[Dim, int],
    irrelevant_trips: dict[Dim, int],
    p: int,
    elem_bytes: int,
) -> int:
    """Bytes of input fetched during one execution of a boundary nest.

    Relevant dims contribute the sum of per-position input extents (halo
    refetched at every tile), except the dim at the innermost relevant loop
    position when it slides — there the halo telescopes (slide reuse).
    Irrelevant dims outside the innermost relevant loop multiply the total
    (``irrelevant_trips``: their *sequential* rounds — concurrent parallel
    iterations broadcast one fetch, Section IV-A4).
    """
    slide_dim = order[p]
    bytes_total = elem_bytes
    rel = relevant_dims(DataType.INPUTS)
    for dim in rel:
        total = parent.extent(dim)
        if dim is slide_dim and dim in SLIDING_DIMS and trips[dim] > 1:
            bytes_total *= union_input_extent(layer, dim, total)
        elif dim is Dim.C:
            bytes_total *= total
        else:
            bytes_total *= sum_input_extents(layer, dim, total, child.extent(dim))
    for idx in range(p + 1):
        dim = order[idx]
        if dim not in rel:
            bytes_total *= irrelevant_trips[dim]
    return bytes_total


def _run_fill_bytes_dense(
    parent: TileShape,
    order: tuple[Dim, ...],
    irrelevant_trips: dict[Dim, int],
    p: int,
    data_type: DataType,
    elem_bytes: int,
    per_point_elems: int,
) -> int:
    """Per-run fill bytes for halo-free data types (weights, psums).

    Per-position extents along relevant dims always sum to the parent
    extent, so the cross product over relevant dims is the parent region;
    irrelevant loops outside the innermost relevant one multiply it (by
    their sequential rounds — see :func:`_run_fill_bytes_inputs`).
    """
    rel = relevant_dims(data_type)
    bytes_total = elem_bytes * per_point_elems
    for dim in rel:
        bytes_total *= parent.extent(dim)
    for idx in range(p + 1):
        dim = order[idx]
        if dim not in rel:
            bytes_total *= irrelevant_trips[dim]
    return bytes_total


def _region_bytes(
    layer: ConvLayer,
    parent: TileShape,
    data_type: DataType,
    precision: Precision,
) -> int:
    """Footprint of the whole parent region for one data type."""
    return parent.bytes_of(data_type, layer, precision)


def compute_traffic(
    dataflow: Dataflow,
    precision: Precision = DEFAULT_PRECISION,
    level_degrees: tuple[dict[Dim, int], ...] | None = None,
) -> TrafficReport:
    """Evaluate the analytic model for one layer under one dataflow.

    ``level_degrees[i]`` (from :func:`repro.core.performance_model.
    parallel_level_degrees`) gives the parallel workers splitting level
    ``i``'s tiles.  Loop iterations along a parallelised dim execute
    concurrently, so a data type *insensitive* to that dim is fetched once
    and broadcast rather than re-fetched per iteration — its sequential
    refetch rounds shrink to ``ceil(trips / degree)``.
    """
    layer = dataflow.layer
    hierarchy = dataflow.hierarchy
    level_names = _level_names(hierarchy.levels)

    execs = 1
    parent_fills: dict[DataType, int] = {dt: 1 for dt in ALL_DATA_TYPES}
    out_psum_bytes = layer.output_elements * precision.psum_bytes

    boundaries: list[BoundaryTraffic] = []
    for level_index in range(hierarchy.levels):
        parent = hierarchy.parent_of(level_index)
        child = hierarchy.tiles[level_index]
        order = dataflow.order_for_boundary(level_index)
        is_dram = level_index == 0

        trips = parent.trip_counts(child)
        degrees = (
            level_degrees[level_index]
            if level_degrees is not None
            else {}
        )
        seq_trips = {
            dim: -(-count // degrees.get(dim, 1)) for dim, count in trips.items()
        }
        nd_order = tuple(d for d in order.dims if trips[d] > 1)

        per_type: dict[DataType, DataTraffic] = {}
        for data_type in ALL_DATA_TYPES:
            rel = relevant_dims(data_type)
            p = _innermost_relevant_index(nd_order, rel)
            if p < 0:
                fills = parent_fills[data_type]
                fill_bytes = fills * _region_bytes(layer, parent, data_type, precision)
            else:
                run_fetches = 1
                for dim in nd_order[: p + 1]:
                    run_fetches *= trips[dim] if dim in rel else seq_trips[dim]
                fills = execs * run_fetches
                if data_type is DataType.INPUTS:
                    run_bytes = _run_fill_bytes_inputs(
                        layer, parent, child, nd_order, trips, seq_trips, p,
                        precision.activation_bytes,
                    )
                elif data_type is DataType.WEIGHTS:
                    run_bytes = _run_fill_bytes_dense(
                        parent, nd_order, seq_trips, p, data_type,
                        precision.weight_bytes, layer.r * layer.s * layer.t,
                    )
                else:
                    run_bytes = _run_fill_bytes_dense(
                        parent, nd_order, seq_trips, p, data_type,
                        precision.psum_bytes, 1,
                    )
                fill_bytes = execs * run_bytes

            if data_type is DataType.PSUMS:
                load_bytes = psum_spill_bytes_kernel(fill_bytes, out_psum_bytes)
                writeback_bytes = fill_bytes
                if is_dram:
                    # Final outputs leave at activation width; only true
                    # spills (revisited tiles) move at psum width.
                    writeback_bytes = dram_psum_writeback_kernel(
                        load_bytes,
                        layer.output_elements * precision.activation_bytes,
                    )
                per_type[data_type] = DataTraffic(
                    fills=fills,
                    fill_bytes=fill_bytes,
                    load_bytes=load_bytes,
                    writeback_bytes=writeback_bytes,
                    writeback_count=fills,
                )
            else:
                per_type[data_type] = DataTraffic(fills=fills, fill_bytes=fill_bytes)

            parent_fills[data_type] = fills

        boundaries.append(
            BoundaryTraffic(
                name=f"{level_names[level_index]}->{level_names[level_index + 1]}",
                parent_level=level_index,
                per_type=per_type,
            )
        )

        for dim in ALL_DIMS:
            execs *= trips[dim]

    return TrafficReport(
        layer=layer,
        dataflow=dataflow,
        precision=precision,
        boundaries=tuple(boundaries),
        maccs=layer.maccs,
    )


def _level_names(levels: int) -> list[str]:
    """DRAM plus on-chip buffer names, outermost first (L2, L1, L0 for 3)."""
    return ["DRAM"] + [f"L{levels - 1 - i}" for i in range(levels)]


@dataclasses.dataclass(frozen=True)
class AluTraffic:
    """Traffic between the innermost buffer (L0) and the vector ALU.

    Per cycle each PE performs ``Vw`` MACs across output channels sharing
    one input element (Section IV-A2): one input byte feeds all lanes while
    each lane reads its own weight.  Accumulator registers keep psums local;
    they spill to / refill from L0 once per L0-tile residency, mirroring the
    L0 boundary fill counts.
    """

    input_read_bytes: int
    weight_read_bytes: int
    psum_write_bytes: int
    psum_read_bytes: int

    @property
    def l0_read_bytes(self) -> int:
        return self.input_read_bytes + self.weight_read_bytes + self.psum_read_bytes

    @property
    def l0_write_bytes(self) -> int:
        return self.psum_write_bytes


def alu_read_bytes(
    maccs: int, vector_width: int, precision: Precision
) -> tuple[int, int]:
    """Unconditional ALU-side (input, weight) L0 read bytes for a layer.

    One input byte feeds all ``Vw`` lanes per vector round; each lane
    reads its own weight per MAC (Section IV-A2).  These depend only on
    the MAC count, so the optimizer's lower bound shares this formula
    with :func:`compute_alu_traffic`.
    """
    if vector_width < 1:
        raise ValueError("vector width must be >= 1")
    input_reads = -(-maccs // vector_width) * precision.activation_bytes
    weight_reads = maccs * precision.weight_bytes
    return input_reads, weight_reads


def compute_alu_traffic(
    report: TrafficReport, vector_width: int, precision: Precision | None = None
) -> AluTraffic:
    """ALU-side L0 accesses for a traffic report (see :class:`AluTraffic`)."""
    precision = precision or report.precision
    innermost = report.boundaries[-1].of(DataType.PSUMS)
    input_reads, weight_reads = alu_read_bytes(
        report.maccs, vector_width, precision
    )
    return AluTraffic(
        input_read_bytes=input_reads,
        weight_read_bytes=weight_reads,
        psum_write_bytes=innermost.fill_bytes,
        psum_read_bytes=innermost.load_bytes,
    )


def boundary_fill_profile(
    layer: ConvLayer,
    parent: TileShape,
    child: TileShape,
    order: LoopOrder,
    precision: Precision = DEFAULT_PRECISION,
) -> dict[DataType, tuple[int, int]]:
    """(fills, fill bytes) per data type for ONE execution of one boundary.

    This is the kernel of the optimizer's ``f_reuse`` scoring function
    (Section V-C): given candidate sub-tile sizes and an inner loop order,
    how much data crosses this boundary per pass over the parent tile.
    Shares all fetch/slide/residency rules with :func:`compute_traffic`.
    """
    trips = parent.trip_counts(child)
    nd_order = tuple(d for d in order.dims if trips[d] > 1)
    profile: dict[DataType, tuple[int, int]] = {}
    for data_type in ALL_DATA_TYPES:
        rel = relevant_dims(data_type)
        p = _innermost_relevant_index(nd_order, rel)
        if p < 0:
            profile[data_type] = (1, _region_bytes(layer, parent, data_type, precision))
            continue
        fetches = 1
        for dim in nd_order[: p + 1]:
            fetches *= trips[dim]
        if data_type is DataType.INPUTS:
            run_bytes = _run_fill_bytes_inputs(
                layer, parent, child, nd_order, trips, trips, p,
                precision.activation_bytes,
            )
        elif data_type is DataType.WEIGHTS:
            run_bytes = _run_fill_bytes_dense(
                parent, nd_order, trips, p, data_type,
                precision.weight_bytes, layer.r * layer.s * layer.t,
            )
        else:
            run_bytes = _run_fill_bytes_dense(
                parent, nd_order, trips, p, data_type, precision.psum_bytes, 1,
            )
        profile[data_type] = (fetches, run_bytes)
    return profile


def loop_order_signature(
    parent: TileShape,
    child: TileShape,
    order: LoopOrder,
) -> tuple:
    """Equivalence-class key of a loop order for fixed tile shapes.

    Two loop orders with the same signature produce identical boundary
    traffic: costs depend only on, per data type, the *set* of
    non-degenerate loops at or outside its innermost relevant loop, plus
    (for inputs) which dim occupies that innermost slot (slide reuse).  The
    optimizer uses this to dedupe the 120 permutations, often down to a
    handful (Section V-A search-space discretisation).
    """
    trips = parent.trip_counts(child)
    nd_order = tuple(d for d in order.dims if trips[d] > 1)
    signature: list = []
    for data_type in ALL_DATA_TYPES:
        rel = relevant_dims(data_type)
        p = _innermost_relevant_index(nd_order, rel)
        if p < 0:
            signature.append(None)
        else:
            outside = frozenset(nd_order[: p + 1])
            slide = nd_order[p] if data_type is DataType.INPUTS else None
            signature.append((outside, slide))
    return tuple(signature)
