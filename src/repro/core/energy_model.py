"""Linear energy model (paper Section V-D and VI-A).

Converts the access counts of :mod:`repro.core.access_model` into energy:
``E = sum(accesses_i * cost_i)`` with per-component costs from
:mod:`repro.arch.technology` / :mod:`repro.arch.sram`.  The output
breakdown matches Figure 9's stacked components: DRAM, L2, L1, L0 and
compute (we additionally expose NoC and static energy, folded into the
figure's buckets by :meth:`EnergyBreakdown.figure9_components`).

Multicast replication: data types that are *irrelevant* to a parallelised
dimension are broadcast — read once from the source buffer, written into
every destination's private buffer — so child-level write bytes scale with
the replication factor while parent-level reads do not (Section IV-A4).
"""

from __future__ import annotations

import dataclasses

from repro.arch.accelerator import AcceleratorConfig
from repro.arch.sram import sram_leakage_mw
from repro.core.access_model import TrafficReport, compute_alu_traffic
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.dims import ALL_DATA_TYPES, DataType
from repro.core.performance_model import PerformanceReport, split_parallelism


@dataclasses.dataclass(frozen=True)
class LevelEnergy:
    """Read/write bytes and energy of one on-chip buffer level."""

    name: str
    read_bytes_by_type: dict[DataType, float]
    write_bytes_by_type: dict[DataType, float]
    energy_pj: float

    @property
    def read_bytes(self) -> float:
        return sum(self.read_bytes_by_type.values())

    @property
    def write_bytes(self) -> float:
        return sum(self.write_bytes_by_type.values())


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one layer on one accelerator, by component (in pJ)."""

    dram_pj: float
    levels: tuple[LevelEnergy, ...]  #: outermost (L2) first
    noc_pj: float
    compute_pj: float
    static_pj: float

    @property
    def total_pj(self) -> float:
        return (
            self.dram_pj
            + sum(level.energy_pj for level in self.levels)
            + self.noc_pj
            + self.compute_pj
            + self.static_pj
        )

    @property
    def on_chip_pj(self) -> float:
        return self.total_pj - self.dram_pj

    def level_pj(self, name: str) -> float:
        for level in self.levels:
            if level.name == name:
                return level.energy_pj
        return 0.0

    def figure9_components(self) -> dict[str, float]:
        """The five stacked components of the paper's Figure 9.

        NoC energy rides with the buffer traffic that causes it, so it is
        folded into the source levels proportionally; static energy joins
        compute (both scale with runtime, not data movement).
        """
        components = {"DRAM": self.dram_pj}
        sram_total = sum(level.energy_pj for level in self.levels) or 1.0
        for level in self.levels:
            share = level.energy_pj / sram_total
            components[level.name] = level.energy_pj + self.noc_pj * share
        components["Compute"] = self.compute_pj + self.static_pj
        for name in ("L2", "L1", "L0"):
            components.setdefault(name, 0.0)
        return components


def _level_replications(
    num_levels: int,
    cluster_par: Parallelism,
    pe_par: Parallelism,
) -> list[dict[DataType, int]]:
    """Replication factor of each data type at each on-chip level.

    The outermost buffer is unique (factor 1).  For a three-level machine
    the middle level is per-cluster (cluster replication) and the innermost
    per-PE (cluster x PE replication); shallower machines apply the whole
    replication at the innermost level.
    """
    total = {
        dt: cluster_par.replication(dt) * pe_par.replication(dt)
        for dt in ALL_DATA_TYPES
    }
    if num_levels == 1:
        return [total]
    replications: list[dict[DataType, int]] = [
        {dt: 1 for dt in ALL_DATA_TYPES} for _ in range(num_levels)
    ]
    replications[-1] = total
    for mid in range(1, num_levels - 1):
        replications[mid] = {
            dt: cluster_par.replication(dt) for dt in ALL_DATA_TYPES
        }
    return replications


def static_pj_per_cycle(arch: AcceleratorConfig) -> float:
    """Leakage + NoC static power per cycle (1 mW at 1 GHz = 1 pJ/cycle).

    Shared by :func:`compute_energy` and the optimizer's objective lower
    bound (:func:`repro.optimizer.search.layer_cost_floors`) so the prune
    bound can never drift from the model it bounds.
    """
    tech = arch.technology
    leak_mw = sum(
        sram_leakage_mw(
            level.capacity_kb * level.instances, tech.sram_leakage_mw_per_kb
        )
        for level in arch.levels
    )
    leak_mw += arch.peak_maccs_per_cycle * tech.lane_leakage_mw
    return leak_mw + arch.noc.total_wire_bits() * tech.noc_static_pj_per_bit_cycle


def compute_energy(
    traffic: TrafficReport,
    arch: AcceleratorConfig,
    dataflow: Dataflow,
    performance: PerformanceReport,
) -> EnergyBreakdown:
    """Dot product of access counts with technology costs."""
    tech = arch.technology
    num_levels = arch.num_levels
    cluster_par, pe_par = split_parallelism(
        dataflow.parallelism, arch.clusters, arch.pes_per_cluster
    )
    repl = _level_replications(num_levels, cluster_par, pe_par)

    level_reads = [{dt: 0.0 for dt in ALL_DATA_TYPES} for _ in range(num_levels)]
    level_writes = [{dt: 0.0 for dt in ALL_DATA_TYPES} for _ in range(num_levels)]
    dram_read = 0.0
    dram_write = 0.0
    noc_pj = 0.0

    for index, boundary in enumerate(traffic.boundaries):
        parent = index - 1  # on-chip parent level; -1 = DRAM
        child = index
        parent_repl = repl[parent] if parent >= 0 else {dt: 1 for dt in ALL_DATA_TYPES}
        bus = arch.noc.boundary_bus(index)
        boundary_bus_bytes = 0.0

        for data_type in ALL_DATA_TYPES:
            t = boundary.of(data_type)
            if data_type is DataType.PSUMS:
                down = t.load_bytes * parent_repl[data_type]
                up = t.writeback_bytes * parent_repl[data_type]
                if parent >= 0:
                    level_reads[parent][data_type] += down
                    level_writes[parent][data_type] += up
                else:
                    dram_read += down
                    dram_write += up
                level_writes[child][data_type] += down
                level_reads[child][data_type] += up
                boundary_bus_bytes += down + up
            else:
                source_bytes = t.fill_bytes * parent_repl[data_type]
                dest_bytes = t.fill_bytes * repl[child][data_type]
                if parent >= 0:
                    level_reads[parent][data_type] += source_bytes
                else:
                    dram_read += source_bytes
                level_writes[child][data_type] += dest_bytes
                boundary_bus_bytes += source_bytes

        noc_pj += bus.dynamic_pj(boundary_bus_bytes, tech.noc_pj_per_byte_mm)

    # ALU <-> innermost buffer traffic (Section IV-A2's vector PE).
    alu = compute_alu_traffic(traffic, arch.vector_width)
    level_reads[-1][DataType.INPUTS] += alu.input_read_bytes
    level_reads[-1][DataType.WEIGHTS] += alu.weight_read_bytes
    level_reads[-1][DataType.PSUMS] += alu.psum_read_bytes
    level_writes[-1][DataType.PSUMS] += alu.psum_write_bytes

    levels = []
    for i, level in enumerate(arch.levels):
        energy = 0.0
        for data_type in ALL_DATA_TYPES:
            energy += level_reads[i][data_type] * arch.read_pj_per_byte(i, data_type)
            energy += level_writes[i][data_type] * arch.write_pj_per_byte(i, data_type)
        levels.append(
            LevelEnergy(
                name=level.name,
                read_bytes_by_type=dict(level_reads[i]),
                write_bytes_by_type=dict(level_writes[i]),
                energy_pj=energy,
            )
        )

    dram_pj = tech.dram_energy_pj(dram_read + dram_write)
    compute_pj = tech.macc_energy_pj(traffic.maccs)

    # Static energy: SRAM leakage + PE leakage + NoC differential
    # signalling, all proportional to runtime.
    static_pj = static_pj_per_cycle(arch) * performance.cycles

    return EnergyBreakdown(
        dram_pj=dram_pj,
        levels=tuple(levels),
        noc_pj=noc_pj,
        compute_pj=compute_pj,
        static_pj=static_pj,
    )
