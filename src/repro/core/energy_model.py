"""Linear energy model (paper Section V-D and VI-A).

Converts the access counts of :mod:`repro.core.access_model` into energy:
``E = sum(accesses_i * cost_i)`` with per-component costs from
:mod:`repro.arch.technology` / :mod:`repro.arch.sram`.  The output
breakdown matches Figure 9's stacked components: DRAM, L2, L1, L0 and
compute (we additionally expose NoC and static energy, folded into the
figure's buckets by :meth:`EnergyBreakdown.figure9_components`).

Multicast replication: data types that are *irrelevant* to a parallelised
dimension are broadcast — read once from the source buffer, written into
every destination's private buffer — so child-level write bytes scale with
the replication factor while parent-level reads do not (Section IV-A4).
"""

from __future__ import annotations

import dataclasses
import functools

from repro.arch.accelerator import AcceleratorConfig
from repro.arch.sram import sram_leakage_mw
from repro.core.access_model import TrafficReport, compute_alu_traffic
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.dims import ALL_DATA_TYPES, DataType, Num
from repro.core.performance_model import PerformanceReport, split_parallelism


@dataclasses.dataclass(frozen=True)
class LevelEnergy:
    """Read/write bytes and energy of one on-chip buffer level."""

    name: str
    read_bytes_by_type: dict[DataType, float]
    write_bytes_by_type: dict[DataType, float]
    energy_pj: float

    @property
    def read_bytes(self) -> float:
        return sum(self.read_bytes_by_type.values())

    @property
    def write_bytes(self) -> float:
        return sum(self.write_bytes_by_type.values())


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one layer on one accelerator, by component (in pJ)."""

    dram_pj: float
    levels: tuple[LevelEnergy, ...]  #: outermost (L2) first
    noc_pj: float
    compute_pj: float
    static_pj: float

    @property
    def total_pj(self) -> float:
        return (
            self.dram_pj
            + sum(level.energy_pj for level in self.levels)
            + self.noc_pj
            + self.compute_pj
            + self.static_pj
        )

    @property
    def on_chip_pj(self) -> float:
        return self.total_pj - self.dram_pj

    def level_pj(self, name: str) -> float:
        for level in self.levels:
            if level.name == name:
                return level.energy_pj
        return 0.0

    def figure9_components(self) -> dict[str, float]:
        """The five stacked components of the paper's Figure 9.

        NoC energy rides with the buffer traffic that causes it, so it is
        folded into the source levels proportionally; static energy joins
        compute (both scale with runtime, not data movement).
        """
        components = {"DRAM": self.dram_pj}
        sram_total = sum(level.energy_pj for level in self.levels) or 1.0
        for level in self.levels:
            share = level.energy_pj / sram_total
            components[level.name] = level.energy_pj + self.noc_pj * share
        components["Compute"] = self.compute_pj + self.static_pj
        for name in ("L2", "L1", "L0"):
            components.setdefault(name, 0.0)
        return components


def _level_replications(
    num_levels: int,
    cluster_par: Parallelism,
    pe_par: Parallelism,
) -> list[dict[DataType, int]]:
    """Replication factor of each data type at each on-chip level.

    The outermost buffer is unique (factor 1).  For a three-level machine
    the middle level is per-cluster (cluster replication) and the innermost
    per-PE (cluster x PE replication); shallower machines apply the whole
    replication at the innermost level.
    """
    total = {
        dt: cluster_par.replication(dt) * pe_par.replication(dt)
        for dt in ALL_DATA_TYPES
    }
    if num_levels == 1:
        return [total]
    replications: list[dict[DataType, int]] = [
        {dt: 1 for dt in ALL_DATA_TYPES} for _ in range(num_levels)
    ]
    replications[-1] = total
    for mid in range(1, num_levels - 1):
        replications[mid] = {
            dt: cluster_par.replication(dt) for dt in ALL_DATA_TYPES
        }
    return replications


def static_pj_per_cycle(arch: AcceleratorConfig) -> float:
    """Leakage + NoC static power per cycle (1 mW at 1 GHz = 1 pJ/cycle).

    Shared by :func:`compute_energy` and the optimizer's objective lower
    bound (:func:`repro.optimizer.search.layer_cost_floors`) so the prune
    bound can never drift from the model it bounds.
    """
    tech = arch.technology
    leak_mw = sum(
        sram_leakage_mw(
            level.capacity_kb * level.instances, tech.sram_leakage_mw_per_kb
        )
        for level in arch.levels
    )
    leak_mw += arch.peak_maccs_per_cycle * tech.lane_leakage_mw
    return leak_mw + arch.noc.total_wire_bits() * tech.noc_static_pj_per_bit_cycle


def energy_accumulation_kernel(
    *,
    num_levels: int,
    fill_bytes: Num,  #: [boundary][data type] fill bytes
    psum_load_bytes: Num,  #: [boundary] psum re-load bytes
    psum_writeback_bytes: Num,  #: [boundary] psum writeback bytes
    alu_input_read_bytes: Num,
    alu_weight_read_bytes: Num,
    alu_psum_read_bytes: Num,
    alu_psum_write_bytes: Num,
    repl: Num,  #: [level][data type] replication factors
    read_pj: Num,  #: [level][data type] read pJ/byte
    write_pj: Num,  #: [level][data type] write pJ/byte
    noc_pj_per_byte_mm: float,
    bus_length_mm: Num,  #: [boundary] wire length of the bus crossed
    dram_pj_per_byte: float,
    macc_pj: float,
    maccs: Num,
    static_pj_per_cycle: float,
    cycles: Num,
) -> tuple:
    """The whole energy dot product, on scalars or candidate columns.

    This single implementation serves both :func:`compute_energy` (Python
    ints/floats extracted from a :class:`TrafficReport`) and the columnar
    batch pipeline (NumPy arrays per candidate), so the two paths cannot
    drift apart.  Returns ``(dram_pj, level_reads, level_writes,
    level_energy, noc_pj, compute_pj, static_pj)`` with the level entries
    indexed ``[level][data type]``.
    """
    level_reads = [{dt: 0.0 for dt in ALL_DATA_TYPES} for _ in range(num_levels)]
    level_writes = [{dt: 0.0 for dt in ALL_DATA_TYPES} for _ in range(num_levels)]
    dram_read = 0.0
    dram_write = 0.0
    noc_pj = 0.0

    for index in range(num_levels):
        parent = index - 1  # on-chip parent level; -1 = DRAM
        child = index
        parent_repl = (
            repl[parent] if parent >= 0 else {dt: 1 for dt in ALL_DATA_TYPES}
        )
        boundary_bus_bytes = 0.0

        for data_type in ALL_DATA_TYPES:
            if data_type is DataType.PSUMS:
                down = psum_load_bytes[index] * parent_repl[data_type]
                up = psum_writeback_bytes[index] * parent_repl[data_type]
                if parent >= 0:
                    level_reads[parent][data_type] += down
                    level_writes[parent][data_type] += up
                else:
                    dram_read += down
                    dram_write += up
                level_writes[child][data_type] += down
                level_reads[child][data_type] += up
                boundary_bus_bytes += down + up
            else:
                fills = fill_bytes[index][data_type]
                source_bytes = fills * parent_repl[data_type]
                dest_bytes = fills * repl[child][data_type]
                if parent >= 0:
                    level_reads[parent][data_type] += source_bytes
                else:
                    dram_read += source_bytes
                level_writes[child][data_type] += dest_bytes
                boundary_bus_bytes += source_bytes

        # Same association as BusSpec.dynamic_pj: (bytes * pJ/byte/mm) * mm.
        noc_pj += boundary_bus_bytes * noc_pj_per_byte_mm * bus_length_mm[index]

    # ALU <-> innermost buffer traffic (Section IV-A2's vector PE).
    level_reads[-1][DataType.INPUTS] += alu_input_read_bytes
    level_reads[-1][DataType.WEIGHTS] += alu_weight_read_bytes
    level_reads[-1][DataType.PSUMS] += alu_psum_read_bytes
    level_writes[-1][DataType.PSUMS] += alu_psum_write_bytes

    level_energy = []
    for i in range(num_levels):
        energy = 0.0
        for data_type in ALL_DATA_TYPES:
            energy += level_reads[i][data_type] * read_pj[i][data_type]
            energy += level_writes[i][data_type] * write_pj[i][data_type]
        level_energy.append(energy)

    dram_pj = dram_pj_per_byte * (dram_read + dram_write)
    compute_pj = macc_pj * maccs
    static_pj = static_pj_per_cycle * cycles
    return (
        dram_pj, level_reads, level_writes, level_energy, noc_pj,
        compute_pj, static_pj,
    )


def clear_memos() -> None:
    """Reset this module's process-wide memos (the per-machine energy
    cost tables), for callers that mutate machine or technology
    descriptions in place; wired into :func:`repro.clear_cache`."""
    energy_cost_tables.cache_clear()


@functools.lru_cache(maxsize=64)
def energy_cost_tables(arch: AcceleratorConfig) -> tuple:
    """Per-``[level][data type]`` read/write pJ/byte plus per-boundary bus
    wire lengths — the constant coefficient columns of the kernel.

    Cached per machine (evaluations call this once each); callers must
    treat the returned tables as read-only.
    """
    read_pj = [
        {dt: arch.read_pj_per_byte(i, dt) for dt in ALL_DATA_TYPES}
        for i in range(arch.num_levels)
    ]
    write_pj = [
        {dt: arch.write_pj_per_byte(i, dt) for dt in ALL_DATA_TYPES}
        for i in range(arch.num_levels)
    ]
    bus_length_mm = [
        arch.noc.boundary_bus(i).length_mm for i in range(arch.num_levels)
    ]
    return read_pj, write_pj, bus_length_mm


def compute_energy(
    traffic: TrafficReport,
    arch: AcceleratorConfig,
    dataflow: Dataflow,
    performance: PerformanceReport,
) -> EnergyBreakdown:
    """Dot product of access counts with technology costs.

    All arithmetic happens in :func:`energy_accumulation_kernel`, which the
    columnar batch pipeline shares; this wrapper only unpacks the traffic
    report and repacks the breakdown objects.
    """
    tech = arch.technology
    num_levels = arch.num_levels
    cluster_par, pe_par = split_parallelism(
        dataflow.parallelism, arch.clusters, arch.pes_per_cluster
    )
    repl = _level_replications(num_levels, cluster_par, pe_par)
    read_pj, write_pj, bus_length_mm = energy_cost_tables(arch)
    alu = compute_alu_traffic(traffic, arch.vector_width)

    (
        dram_pj, level_reads, level_writes, level_energy, noc_pj,
        compute_pj, static_pj,
    ) = energy_accumulation_kernel(
        num_levels=num_levels,
        fill_bytes=[
            {dt: boundary.of(dt).fill_bytes for dt in ALL_DATA_TYPES}
            for boundary in traffic.boundaries
        ],
        psum_load_bytes=[
            boundary.of(DataType.PSUMS).load_bytes
            for boundary in traffic.boundaries
        ],
        psum_writeback_bytes=[
            boundary.of(DataType.PSUMS).writeback_bytes
            for boundary in traffic.boundaries
        ],
        alu_input_read_bytes=alu.input_read_bytes,
        alu_weight_read_bytes=alu.weight_read_bytes,
        alu_psum_read_bytes=alu.psum_read_bytes,
        alu_psum_write_bytes=alu.psum_write_bytes,
        repl=repl,
        read_pj=read_pj,
        write_pj=write_pj,
        noc_pj_per_byte_mm=tech.noc_pj_per_byte_mm,
        bus_length_mm=bus_length_mm,
        dram_pj_per_byte=tech.dram_pj_per_byte,
        macc_pj=tech.macc_pj,
        maccs=traffic.maccs,
        static_pj_per_cycle=static_pj_per_cycle(arch),
        cycles=performance.cycles,
    )

    levels = [
        LevelEnergy(
            name=level.name,
            read_bytes_by_type=dict(level_reads[i]),
            write_bytes_by_type=dict(level_writes[i]),
            energy_pj=level_energy[i],
        )
        for i, level in enumerate(arch.levels)
    ]
    return EnergyBreakdown(
        dram_pj=dram_pj,
        levels=tuple(levels),
        noc_pj=noc_pj,
        compute_pj=compute_pj,
        static_pj=static_pj,
    )
