"""A complete per-layer hardware configuration ("dataflow", Section II-F).

The paper defines a dataflow as loop order plus PE parallelism; a full Morph
configuration additionally fixes tile sizes at each buffer level
(Section V-A: ``[outer loop order, inner loop order, Ht, Wt, Ct, Kt, Ft,
Hp, Wp, Kp]``).  :class:`Dataflow` bundles all of it.
"""

from __future__ import annotations

import dataclasses

from repro.core.dims import DataType, Dim, relevant_dims
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import TileHierarchy, TileShape


@dataclasses.dataclass(frozen=True)
class Parallelism:
    """Spatial work distribution across PEs (paper Hp, Wp, Kp and Fp).

    The channel dim ``C`` is never parallelised across PEs: different C
    iterations update the *same* partial sums, which would require
    cross-PE accumulation (the paper parallelises H, W, K and notes F).
    """

    w: int = 1
    h: int = 1
    k: int = 1
    f: int = 1

    def __post_init__(self) -> None:
        for field in ("w", "h", "k", "f"):
            if getattr(self, field) < 1:
                raise ValueError(f"parallel degree {field} must be >= 1")

    @classmethod
    def none(cls) -> "Parallelism":
        return cls()

    @classmethod
    def from_mapping(cls, degrees: dict[Dim, int]) -> "Parallelism":
        if Dim.C in degrees and degrees[Dim.C] != 1:
            raise ValueError("C cannot be parallelised across PEs")
        return cls(
            w=degrees.get(Dim.W, 1),
            h=degrees.get(Dim.H, 1),
            k=degrees.get(Dim.K, 1),
            f=degrees.get(Dim.F, 1),
        )

    def of(self, dim: Dim) -> int:
        return {Dim.W: self.w, Dim.H: self.h, Dim.K: self.k, Dim.F: self.f}.get(
            dim, 1
        )

    @property
    def degree(self) -> int:
        """Total number of PEs kept busy by this distribution."""
        return self.w * self.h * self.k * self.f

    def replication(self, data_type: DataType) -> int:
        """How many PEs receive a copy of each ``data_type`` tile.

        PEs parallelised along a dim *irrelevant* to a data type all work on
        the same tile of it, so broadcasting replicates it into that many
        private L0s (Section IV-A4's multicast).
        """
        rel = relevant_dims(data_type)
        factor = 1
        for dim in (Dim.W, Dim.H, Dim.K, Dim.F):
            if dim not in rel:
                factor *= self.of(dim)
        return factor

    def describe(self) -> str:
        parts = [
            f"{name}p={value}"
            for name, value in (("W", self.w), ("H", self.h), ("K", self.k), ("F", self.f))
            if value > 1
        ]
        return " ".join(parts) if parts else "serial"


@dataclasses.dataclass(frozen=True)
class Dataflow:
    """Everything needed to schedule one layer on the accelerator."""

    outer_order: LoopOrder  #: DRAM -> last-level buffer tile order
    inner_order: LoopOrder  #: shared order for all on-chip boundaries (§III)
    hierarchy: TileHierarchy
    parallelism: Parallelism = dataclasses.field(default_factory=Parallelism.none)

    @property
    def layer(self) -> ConvLayer:
        return self.hierarchy.layer

    def order_for_boundary(self, boundary_index: int) -> LoopOrder:
        """Loop order at boundary ``i`` (0 = DRAM->L2, then inner levels)."""
        return self.outer_order if boundary_index == 0 else self.inner_order

    def describe(self) -> str:
        tiles = "; ".join(
            f"L{self.hierarchy.levels - 1 - i}:{tile.describe()}"
            for i, tile in enumerate(self.hierarchy.tiles)
        )
        return (
            f"outer {self.outer_order.format()} inner "
            f"{self.inner_order.format(lower=True)} | {tiles} | "
            f"{self.parallelism.describe()}"
        )


def single_tile_dataflow(
    layer: ConvLayer,
    levels: int = 3,
    outer: str = "WHCKF",
    inner: str = "CFWHK",
) -> Dataflow:
    """Degenerate dataflow whose tiles cover the whole layer at every level.

    Useful as a baseline in tests: every data type fits everywhere, so each
    byte should move through each boundary exactly once.
    """
    full = TileShape.full(layer)
    hierarchy = TileHierarchy(layer, tuple(full for _ in range(levels)))
    return Dataflow(
        outer_order=LoopOrder.parse(outer),
        inner_order=LoopOrder.parse(inner),
        hierarchy=hierarchy,
    )
