"""3D convolution layer shapes and first-order metrics.

A :class:`ConvLayer` captures everything the paper's models need about one
layer: input volume ``H x W x C`` over ``F`` frames, ``K`` filters of extent
``R x S x T`` (height, width, temporal), plus strides and zero padding.  2D
convolution is the special case ``F == T == 1`` (paper Section II-B remark),
so 2D networks such as AlexNet reuse the same class.

Derived metrics implemented here back the paper's motivating analysis:
footprints (Figure 1a), MACs and arithmetic-intensity style reuse
(Figure 1b), and output geometry used throughout tiling.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.core.dims import Dim

#: Default datum widths, per the paper: 8-bit activations and weights
#: (Section III remark), psums wide enough to avoid overflow (Section IV-B1).
ACTIVATION_BYTES = 1
WEIGHT_BYTES = 1
PSUM_BYTES = 4


def dilated_extent(kernel: int, dilation: int) -> int:
    """Input-space span of a ``kernel``-tap filter with ``dilation`` holes.

    A dilated filter touches ``kernel`` input positions spread over
    ``(kernel - 1) * dilation + 1`` consecutive positions (D2Conv3D-style
    dilated 3D convolution); ``dilation == 1`` is the dense case.
    """
    return (kernel - 1) * dilation + 1


def conv_output_extent(
    in_extent: int, kernel: int, stride: int, pad: int, dilation: int = 1
) -> int:
    """Number of output positions of a 1D convolution along one axis."""
    span = in_extent + 2 * pad - dilated_extent(kernel, dilation)
    if span < 0:
        raise ValueError(
            f"kernel {kernel} (dilation {dilation}) larger than padded "
            f"input {in_extent + 2 * pad}"
        )
    return span // stride + 1


@dataclasses.dataclass(frozen=True)
class ConvLayer:
    """Shape of one (3D) convolution layer.

    Dimension naming follows the paper (Section II-B): the input video has
    spatial resolution ``H x W``, ``F`` frames and ``C`` channels; each of
    the ``K`` filters has spatial size ``R x S``, temporal size ``T`` and
    ``C`` channels.
    """

    name: str
    h: int  #: input height
    w: int  #: input width
    c: int  #: input channels
    f: int  #: input frames (1 for a 2D layer)
    k: int  #: number of filters (output channels)
    r: int  #: filter height
    s: int  #: filter width
    t: int  #: filter temporal depth (1 for a 2D layer)
    stride_h: int = 1
    stride_w: int = 1
    stride_f: int = 1
    pad_h: int = 0
    pad_w: int = 0
    pad_f: int = 0
    #: Dilation rates (D2Conv3D scenario): filter taps are spread
    #: ``dilation`` positions apart in input space.  1 = dense convolution.
    dilation_h: int = 1
    dilation_w: int = 1
    dilation_f: int = 1

    def __post_init__(self) -> None:
        for field in ("h", "w", "c", "f", "k", "r", "s", "t"):
            value = getattr(self, field)
            if value < 1:
                raise ValueError(f"{self.name}: {field} must be >= 1, got {value}")
        for field in ("stride_h", "stride_w", "stride_f"):
            if getattr(self, field) < 1:
                raise ValueError(f"{self.name}: {field} must be >= 1")
        for field in ("pad_h", "pad_w", "pad_f"):
            if getattr(self, field) < 0:
                raise ValueError(f"{self.name}: {field} must be >= 0")
        for field in ("dilation_h", "dilation_w", "dilation_f"):
            if getattr(self, field) < 1:
                raise ValueError(f"{self.name}: {field} must be >= 1")
        if self.dilated_r > self.h + 2 * self.pad_h:
            raise ValueError(f"{self.name}: filter height {self.r} exceeds input")
        if self.dilated_s > self.w + 2 * self.pad_w:
            raise ValueError(f"{self.name}: filter width {self.s} exceeds input")
        if self.dilated_t > self.f + 2 * self.pad_f:
            raise ValueError(f"{self.name}: filter depth {self.t} exceeds input")

    # ------------------------------------------------------------------
    # Input-space filter spans (dilation-aware)
    # ------------------------------------------------------------------
    @property
    def dilated_r(self) -> int:
        """Input rows spanned by the filter: (R-1)*dilation + 1."""
        return dilated_extent(self.r, self.dilation_h)

    @property
    def dilated_s(self) -> int:
        return dilated_extent(self.s, self.dilation_w)

    @property
    def dilated_t(self) -> int:
        return dilated_extent(self.t, self.dilation_f)

    # ------------------------------------------------------------------
    # Output geometry
    # ------------------------------------------------------------------
    @property
    def out_h(self) -> int:
        return conv_output_extent(
            self.h, self.r, self.stride_h, self.pad_h, self.dilation_h
        )

    @property
    def out_w(self) -> int:
        return conv_output_extent(
            self.w, self.s, self.stride_w, self.pad_w, self.dilation_w
        )

    @property
    def out_f(self) -> int:
        return conv_output_extent(
            self.f, self.t, self.stride_f, self.pad_f, self.dilation_f
        )

    @property
    def is_2d(self) -> bool:
        """True when this layer degenerates to 2D convolution (F = T = 1)."""
        return self.f == 1 and self.t == 1

    def output_dim(self, dim: Dim) -> int:
        """Total extent of ``dim`` in the tiled (output-space) loop nest."""
        if dim is Dim.W:
            return self.out_w
        if dim is Dim.H:
            return self.out_h
        if dim is Dim.F:
            return self.out_f
        if dim is Dim.C:
            return self.c
        return self.k

    # ------------------------------------------------------------------
    # Work and footprint metrics (Figure 1)
    # ------------------------------------------------------------------
    @property
    def maccs(self) -> int:
        """Multiply-accumulates to evaluate the layer (dense, 100% density)."""
        return (
            self.k
            * self.out_h
            * self.out_w
            * self.out_f
            * self.c
            * self.r
            * self.s
            * self.t
        )

    @property
    def input_elements(self) -> int:
        return self.h * self.w * self.c * self.f

    @property
    def weight_elements(self) -> int:
        return self.k * self.r * self.s * self.t * self.c

    @property
    def output_elements(self) -> int:
        return self.k * self.out_h * self.out_w * self.out_f

    def input_bytes(self, elem_bytes: int = ACTIVATION_BYTES) -> int:
        return self.input_elements * elem_bytes

    def weight_bytes(self, elem_bytes: int = WEIGHT_BYTES) -> int:
        return self.weight_elements * elem_bytes

    def output_bytes(self, elem_bytes: int = ACTIVATION_BYTES) -> int:
        return self.output_elements * elem_bytes

    def footprint_bytes(self) -> int:
        """Input + weight footprint, the quantity plotted in Figure 1a."""
        return self.input_bytes() + self.weight_bytes()

    @property
    def reuse_maccs_per_byte(self) -> float:
        """MACs per byte of (input + weight) data — Figure 1b's metric."""
        return self.maccs / self.footprint_bytes()

    @property
    def input_slide_reuse(self) -> int:
        """Per-input-element reuse factor from sliding: R*S*T (Section IV-A)."""
        return self.r * self.s * self.t

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def scaled(self, *, name: str | None = None, **overrides: int) -> "ConvLayer":
        """Return a copy with some fields replaced."""
        return dataclasses.replace(self, name=name or self.name, **overrides)

    def as_2d_frame(self) -> "ConvLayer":
        """Single-frame, single-tap 2D view of this layer.

        Used by the Eyeriss baseline, which evaluates a 3D CNN "frame by
        frame" (paper Section IV-A): each temporal tap of each output frame
        is one 2D convolution of this shape.
        """
        return dataclasses.replace(
            self, name=f"{self.name}/frame", f=1, t=1, stride_f=1, pad_f=0,
            dilation_f=1,
        )

    def describe(self) -> str:
        text = (
            f"{self.name}: in {self.c}x{self.h}x{self.w}x{self.f}f -> "
            f"out {self.k}x{self.out_h}x{self.out_w}x{self.out_f}f, "
            f"filter {self.r}x{self.s}x{self.t}, "
            f"stride ({self.stride_h},{self.stride_w},{self.stride_f}), "
            f"pad ({self.pad_h},{self.pad_w},{self.pad_f})"
        )
        if (self.dilation_h, self.dilation_w, self.dilation_f) != (1, 1, 1):
            text += (
                f", dilation ({self.dilation_h},{self.dilation_w},"
                f"{self.dilation_f})"
            )
        return text


def total_maccs(layers: Iterator[ConvLayer]) -> int:
    """Sum of MACs over an iterable of layers."""
    return sum(layer.maccs for layer in layers)
