"""Problem dimensions for (tiled) 3D convolution.

The paper tiles five dimensions of the 3D convolution loop nest —
``W``/``H`` (spatial), ``C`` (input channels), ``K`` (filters) and ``F``
(frames) — and never tiles the filter extents ``R``/``S``/``T`` because they
are small (Section II-D).  This module defines those dimension names and the
per-data-type *relevance* sets that drive every reuse calculation:

* an input-activation tile is identified by its ``(W, H, C, F)`` coordinates,
* a weight tile by ``(C, K)``,
* a partial-sum (output) tile by ``(W, H, K, F)``.

A loop over a dimension that is *irrelevant* to a data type does not change
which tile of that data type is needed, which is exactly what creates
temporal reuse (Section II-E of the paper).
"""

from __future__ import annotations

import enum
from typing import Any, Iterable

#: The value type of the ``*_kernel`` formula functions: a Python scalar
#: *or* a NumPy column — one body serves the scalar reference models and
#: the columnar batch engine, so the alias is deliberately loose (naming
#: ``np.ndarray`` here would couple the kernels to one backend; the
#: kernel-purity lint rule keeps the bodies array-agnostic instead).
Num = Any


class Dim(enum.Enum):
    """One of the five tileable 3D-convolution dimensions."""

    W = "W"  #: output width
    H = "H"  #: output height
    C = "C"  #: input channels
    K = "K"  #: output channels / filters
    F = "F"  #: output frames (temporal)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Dim.{self.name}"

    @classmethod
    def from_letter(cls, letter: str) -> "Dim":
        """Parse a single (case-insensitive) dimension letter.

        The paper writes outer loop orders in upper case (``[WHCKF]``) and
        inner loop orders in lower case (``[cfwhk]``); both parse to the same
        :class:`Dim` values.
        """
        try:
            return cls(letter.upper())
        except ValueError as exc:
            raise ValueError(f"unknown dimension letter {letter!r}") from exc


#: Canonical ordering used for iteration and display.
ALL_DIMS: tuple[Dim, ...] = (Dim.W, Dim.H, Dim.C, Dim.K, Dim.F)

#: Dimensions along which convolution slides, creating halos (Section II-D).
SLIDING_DIMS: frozenset[Dim] = frozenset({Dim.W, Dim.H, Dim.F})


class DataType(enum.Enum):
    """The three 3D-CNN data types moved through the buffer hierarchy."""

    INPUTS = "inputs"
    WEIGHTS = "weights"
    PSUMS = "psums"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"DataType.{self.name}"


#: Loop dimensions whose iteration changes the needed tile of each data type.
RELEVANT_DIMS: dict[DataType, frozenset[Dim]] = {
    DataType.INPUTS: frozenset({Dim.W, Dim.H, Dim.C, Dim.F}),
    DataType.WEIGHTS: frozenset({Dim.C, Dim.K}),
    DataType.PSUMS: frozenset({Dim.W, Dim.H, Dim.K, Dim.F}),
}

#: Reduction dimensions for partial sums: iterating these revisits the same
#: psum tile with more accumulation work (only C among the tiled dims).
PSUM_REDUCTION_DIMS: frozenset[Dim] = frozenset({Dim.C})

ALL_DATA_TYPES: tuple[DataType, ...] = (
    DataType.INPUTS,
    DataType.WEIGHTS,
    DataType.PSUMS,
)


def relevant_dims(data_type: DataType) -> frozenset[Dim]:
    """Return the loop dims whose iteration moves ``data_type`` tiles."""
    return RELEVANT_DIMS[data_type]


def parse_dims(spec: str | Iterable[Dim]) -> tuple[Dim, ...]:
    """Parse a dimension sequence from a compact string like ``"WHCKF"``.

    Accepts an iterable of :class:`Dim` unchanged (returned as a tuple), or a
    string of dimension letters, optionally wrapped in square brackets the
    way the paper prints loop orders.
    """
    if isinstance(spec, str):
        letters = spec.strip().strip("[]")
        return tuple(Dim.from_letter(ch) for ch in letters)
    return tuple(spec)


def format_dims(dims: Iterable[Dim], *, lower: bool = False) -> str:
    """Format dims the way the paper does, e.g. ``[WHCKF]`` or ``[cfwhk]``."""
    body = "".join(d.value for d in dims)
    return f"[{body.lower() if lower else body}]"
