"""Facade: evaluate one layer under one dataflow on one accelerator.

This is the "Performance and Power Calculation" step of the paper's
software flow (Section V-D): traffic -> cycles -> energy, bundled into a
single :class:`Evaluation` the optimizer can rank configurations by.
"""

from __future__ import annotations

import dataclasses

from repro.arch.accelerator import AcceleratorConfig
from repro.core.access_model import TrafficReport, compute_traffic
from repro.core.dataflow import Dataflow
from repro.core.dims import Num
from repro.core.energy_model import EnergyBreakdown, compute_energy
from repro.core.layer import ConvLayer
from repro.core.performance_model import (
    PerformanceReport,
    compute_performance,
    parallel_level_degrees,
)


class CapacityError(ValueError):
    """A tile hierarchy does not fit the accelerator's buffers."""


# ----------------------------------------------------------------------
# Scalar/array-agnostic objective kernels (shared with repro.core.batch)
# ----------------------------------------------------------------------
def runtime_s_kernel(cycles: Num, clock_hz: Num) -> Num:
    return cycles / clock_hz


def edp_kernel(total_energy_pj: Num, cycles: Num, clock_hz: Num) -> Num:
    """Energy-delay product (J * s)."""
    return total_energy_pj * 1e-12 * runtime_s_kernel(cycles, clock_hz)


def perf_per_watt_kernel(maccs: Num, total_energy_pj: Num) -> Num:
    """Throughput per watt = MACs per joule (Figure 10's metric)."""
    return maccs / (total_energy_pj * 1e-12)


@dataclasses.dataclass(frozen=True)
class Evaluation:
    """All model outputs for one (layer, dataflow, accelerator) triple."""

    dataflow: Dataflow
    arch: AcceleratorConfig
    traffic: TrafficReport
    performance: PerformanceReport
    energy: EnergyBreakdown

    @property
    def layer(self) -> ConvLayer:
        return self.traffic.layer

    @property
    def total_energy_pj(self) -> float:
        return self.energy.total_pj

    @property
    def cycles(self) -> float:
        return self.performance.cycles

    @property
    def runtime_s(self) -> float:
        return self.performance.runtime_s(self.arch.technology.clock_hz)

    @property
    def power_w(self) -> float:
        """Average power: total energy over runtime."""
        return self.total_energy_pj * 1e-12 / self.runtime_s

    @property
    def perf_per_watt(self) -> float:
        """Throughput per watt = MACs per joule (Figure 10's metric)."""
        return perf_per_watt_kernel(self.traffic.maccs, self.total_energy_pj)

    @property
    def edp(self) -> float:
        """Energy-delay product (J * s)."""
        return edp_kernel(
            self.total_energy_pj, self.cycles, self.arch.technology.clock_hz
        )

    def describe(self) -> str:
        return (
            f"{self.layer.name} on {self.arch.name}: "
            f"{self.total_energy_pj / 1e6:.2f} uJ, "
            f"{self.cycles / 1e6:.2f} Mcycles, "
            f"util {self.performance.utilization:.2f}, "
            f"{self.dataflow.describe()}"
        )


def evaluate(
    dataflow: Dataflow,
    arch: AcceleratorConfig,
    *,
    check_capacity: bool = True,
) -> Evaluation:
    """Run traffic, performance and energy models for one configuration."""
    layer = dataflow.layer
    if check_capacity and not arch.hierarchy_fits(layer, dataflow.hierarchy.tiles):
        raise CapacityError(
            f"hierarchy does not fit {arch.name} for layer {layer.name}"
        )
    level_degrees = parallel_level_degrees(
        arch.num_levels,
        arch.clusters,
        arch.pes_per_cluster,
        dataflow.parallelism,
    )
    traffic = compute_traffic(dataflow, arch.precision, level_degrees)
    performance = compute_performance(traffic, arch, dataflow)
    energy = compute_energy(traffic, arch, dataflow, performance)
    return Evaluation(
        dataflow=dataflow,
        arch=arch,
        traffic=traffic,
        performance=performance,
        energy=energy,
    )
