"""Columnar batch evaluation of the analytic models (the vectorized core).

The scalar path (:func:`repro.core.evaluate.evaluate`) walks one candidate
configuration at a time, building a ``TrafficReport``/``EnergyBreakdown``
object pile per candidate.  This module lowers a whole candidate set into
NumPy columns — tile extents per level, loop-order indices, parallelism
indices — and computes traffic, cycles, energy and the objective for *all*
candidates in a handful of array expressions.  ``Evaluation`` objects are
materialised lazily, only for chosen winners, by re-running the scalar
path on that single candidate.

Equivalence contract
--------------------
The batch pipeline is a semantic-preserving rewrite, not a second model:

* every arithmetic formula is imported from the scalar modules' shared
  ``*_kernel`` functions (:mod:`repro.core.tiling`,
  :mod:`repro.core.access_model`, :mod:`repro.core.performance_model`,
  :mod:`repro.core.energy_model`, :mod:`repro.core.evaluate`), which accept
  scalars and arrays alike;
* byte counts stay integral (int64 columns mirroring the scalar path's
  Python ints) until the same points where the scalar path converts to
  float, and float reductions follow the same association order,
  so scores are bit-identical to the scalar path.  int64 is the one
  envelope the scalar path's arbitrary-precision ints do not have; the
  search guards it by re-evaluating the chosen winner through the scalar
  path and falling back to the scalar search on any score mismatch;
* the structural loop-nest rules (degenerate-loop dropping, innermost
  relevant loop, slide reuse, full residency) are re-expressed as suffix
  masks over loop positions; ``tests/test_batch_equivalence.py`` pins them
  to the scalar implementation across random layers, strides, dilations
  and objectives.

The loop-position algebra
-------------------------
For a candidate the non-degenerate loop order drops trip-count-1 loops.
Rather than materialising per-candidate orders, each of the five loop
positions gets a boolean column ``active[i]`` ("relevant to the data type
and non-degenerate").  The scalar rule "multiply every loop at or outside
the innermost relevant one" becomes the inclusive suffix-or of ``active``;
degenerate or broadcast loops contribute factor 1 exactly as in the scalar
model, so including them in the masked product is harmless.  Slide reuse
picks, per input dim, the candidates where that dim is the innermost
active relevant loop (no active relevant loop strictly inside it).
"""

from __future__ import annotations

import dataclasses
import functools

try:  # numpy is the only dependency; the scalar path runs without it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised via REPRO_VECTORIZE=0
    np = None

from repro.arch.accelerator import AcceleratorConfig
from repro.arch.buffers import FlexiblePartition, StaticPartition
from repro.core.access_model import (
    alu_read_bytes,
    dram_psum_writeback_kernel,
    psum_spill_bytes_kernel,
)
from repro.core.backend import (
    KernelBackend,
    plan_chunk_rows,
    resolve_kernel_backend,
    resolve_max_table_bytes,
)
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.dims import ALL_DATA_TYPES, ALL_DIMS, DataType, Dim, relevant_dims
from repro.core.energy_model import (
    _level_replications,
    energy_accumulation_kernel,
    energy_cost_tables,
    static_pj_per_cycle,
)
from repro.core.evaluate import Evaluation, edp_kernel, evaluate, perf_per_watt_kernel
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.performance_model import (
    boundary_bus_bytes_kernel,
    compute_cycles_kernel,
    parallel_level_degrees,
    split_parallelism,
    utilization_kernel,
)
from repro.core.tiling import (
    Precision,
    TileHierarchy,
    TileShape,
    ceil_div,
    input_extent_kernel,
    kernel_and_stride,
    sum_input_extents_kernel,
)

available = np is not None

#: Column index of each tiled dim (W, H, C, K, F order, as ALL_DIMS).
DIM_INDEX: dict[Dim, int] = {dim: i for i, dim in enumerate(ALL_DIMS)}
_SLIDING = (Dim.W, Dim.H, Dim.F)
_PAR_DIMS = (Dim.W, Dim.H, Dim.K, Dim.F)

#: Working-set estimate for chunk planning: intermediate columns the
#: score pipeline holds live per candidate besides its tile slice.
_WORKSPACE_COLUMNS = 16


def _require_numpy() -> None:
    if np is None:  # pragma: no cover
        raise RuntimeError(
            "repro.core.batch needs numpy; set REPRO_VECTORIZE=0 or install it"
        )


def clear_constant_caches() -> None:
    """Reset the constant-table memos (layer extents, order tables,
    parallelism tables, relevance vectors), for callers that mutate layer
    or machine descriptions in place; wired into :func:`repro.clear_cache`.
    """
    full_extents.cache_clear()
    _order_tables.cache_clear()
    parallelism_tables.cache_clear()
    _rel_vector_cached.cache_clear()


# ----------------------------------------------------------------------
# Constant tables (per layer / order set / parallelism set)
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=1024)
def full_extents(layer: ConvLayer) -> "np.ndarray":
    """(5,) int64 output-space extents of the whole layer, ALL_DIMS order.

    Cached (and frozen) because every block of a layer's search asks for
    it; callers only broadcast and index.
    """
    full = TileShape.full(layer)
    extents = np.array([full.extent(d) for d in ALL_DIMS], dtype=np.int64)
    extents.setflags(write=False)
    return extents


@functools.lru_cache(maxsize=512)
def _order_tables(orders: tuple[LoopOrder, ...]):
    """``(dim_at, pos_of)`` lookup tables for a tuple of loop orders.

    ``dim_at[o, i]`` is the dim code at position ``i`` (outermost first) of
    order ``o``; ``pos_of[o, d]`` is the position of dim code ``d``.
    """
    n = len(orders)
    dim_at = np.empty((n, 5), dtype=np.int64)
    pos_of = np.empty((n, 5), dtype=np.int64)
    for o, order in enumerate(orders):
        for i, dim in enumerate(order.dims):
            code = DIM_INDEX[dim]
            dim_at[o, i] = code
            pos_of[o, code] = i
    return dim_at, pos_of


@dataclasses.dataclass(frozen=True)
class ParallelismTables:
    """Per-parallelism constants, indexed by position in the input tuple."""

    degrees: "np.ndarray"  #: (n_par, levels, 5) per-level split degrees
    replication: "np.ndarray"  #: (n_par, levels, 3) per-data-type copies
    cluster_deg: "np.ndarray"  #: (n_par, 5) cluster-level split degrees
    pe_deg: "np.ndarray"  #: (n_par, 5) PE-level split degrees
    total_degree: "np.ndarray"  #: (n_par,) PEs kept busy


@functools.lru_cache(maxsize=256)
def parallelism_tables(
    parallelisms: tuple[Parallelism, ...], arch: AcceleratorConfig
) -> ParallelismTables:
    """Cached per (parallelism set, machine) — constant across the many
    candidate blocks of one search; consumers only read."""
    n, levels = len(parallelisms), arch.num_levels
    degrees = np.ones((n, levels, 5), dtype=np.int64)
    replication = np.ones((n, levels, 3), dtype=np.int64)
    cluster_deg = np.ones((n, 5), dtype=np.int64)
    pe_deg = np.ones((n, 5), dtype=np.int64)
    total = np.empty(n, dtype=np.int64)
    for p, par in enumerate(parallelisms):
        level_degrees = parallel_level_degrees(
            levels, arch.clusters, arch.pes_per_cluster, par
        )
        for lvl, dd in enumerate(level_degrees):
            for dim, deg in dd.items():
                degrees[p, lvl, DIM_INDEX[dim]] = deg
        cluster_par, pe_par = split_parallelism(
            par, arch.clusters, arch.pes_per_cluster
        )
        repl = _level_replications(levels, cluster_par, pe_par)
        for lvl in range(levels):
            for t, dt in enumerate(ALL_DATA_TYPES):
                replication[p, lvl, t] = repl[lvl][dt]
        for dim in _PAR_DIMS:
            cluster_deg[p, DIM_INDEX[dim]] = cluster_par.of(dim)
            pe_deg[p, DIM_INDEX[dim]] = pe_par.of(dim)
        total[p] = par.degree
    for table in (degrees, replication, cluster_deg, pe_deg, total):
        table.setflags(write=False)
    return ParallelismTables(degrees, replication, cluster_deg, pe_deg, total)


# ----------------------------------------------------------------------
# Vectorized capacity checks
# ----------------------------------------------------------------------
def tile_bytes_columns(
    layer: ConvLayer, precision: Precision, tiles: "np.ndarray"
) -> dict[DataType, "np.ndarray"]:
    """Per-data-type byte footprints of tile columns ``tiles`` ((5, N))."""
    w, h, c, k, f = (tiles[DIM_INDEX[d]] for d in ALL_DIMS)
    spans = {dim: kernel_and_stride(layer, dim) for dim in _SLIDING}
    input_elems = (
        input_extent_kernel(w, *spans[Dim.W])
        * input_extent_kernel(h, *spans[Dim.H])
        * input_extent_kernel(f, *spans[Dim.F])
        * c
    )
    weight_elems = k * c * (layer.r * layer.s * layer.t)
    psum_elems = w * h * f * k
    return {
        DataType.INPUTS: input_elems * precision.activation_bytes,
        DataType.WEIGHTS: weight_elems * precision.weight_bytes,
        DataType.PSUMS: psum_elems * precision.psum_bytes,
    }


def tile_fits_mask(
    arch: AcceleratorConfig,
    level_index: int,
    layer: ConvLayer,
    tiles: "np.ndarray",
) -> "np.ndarray":
    """Vectorized :meth:`AcceleratorConfig.tile_fits` over tile columns."""
    _require_numpy()
    tiles = np.asarray(tiles, dtype=np.int64)
    bytes_by_type = tile_bytes_columns(layer, arch.precision, tiles)
    policy = arch.partitions[level_index]
    level = arch.levels[level_index]
    if isinstance(policy, FlexiblePartition):
        banks = sum(
            ceil_div(bytes_by_type[dt], level.bank_bytes) for dt in ALL_DATA_TYPES
        )
        return banks <= level.usable_banks
    if isinstance(policy, StaticPartition):
        mask = np.ones(tiles.shape[-1], dtype=bool)
        for dt in ALL_DATA_TYPES:
            mask &= bytes_by_type[dt] <= policy.capacity_for(level, dt)
        return mask
    # Unknown policy: fall back to the scalar check per candidate.
    return np.array(
        [
            arch.tile_fits(
                level_index,
                layer,
                TileShape(*(int(tiles[DIM_INDEX[d], i]) for d in ALL_DIMS)),
            )
            for i in range(tiles.shape[-1])
        ],
        dtype=bool,
    )


def normalize_tiles(layer: ConvLayer, tiles: "np.ndarray") -> "np.ndarray":
    """Apply :class:`TileHierarchy`'s normalisation to tile columns.

    ``tiles`` is ``(levels, 5, N)``; each level is clipped to the layer and
    to its parent (monotone non-increasing), exactly as the scalar
    ``TileHierarchy.__post_init__`` clip chain does.
    """
    tiles = np.asarray(tiles, dtype=np.int64)
    bound = full_extents(layer)[None, :, None]
    return np.minimum.accumulate(np.minimum(tiles, bound), axis=0)


def hierarchy_fits_mask(
    arch: AcceleratorConfig, layer: ConvLayer, tiles: "np.ndarray"
) -> "np.ndarray":
    """Vectorized :meth:`AcceleratorConfig.hierarchy_fits` over columns."""
    mask = tile_fits_mask(arch, 0, layer, tiles[0])
    for level_index in range(1, arch.num_levels):
        mask = mask & tile_fits_mask(arch, level_index, layer, tiles[level_index])
    return mask


# ----------------------------------------------------------------------
# Vectorized boundary traffic
# ----------------------------------------------------------------------
def _rel_vector(data_type: DataType) -> "np.ndarray":
    return np.array([d in relevant_dims(data_type) for d in ALL_DIMS])


@functools.lru_cache(maxsize=8)
def _rel_vector_cached(data_type: DataType):
    return _rel_vector(data_type)


def _boundary_fill_columns(
    layer: ConvLayer,
    precision: Precision,
    parent,  #: (5, N) parent tile extents
    child,  #: (5, N) child tile extents
    trips,  #: (5, N) ceil trip counts
    seq_trips,  #: (5, N) sequential rounds (trips / parallel degree)
    dim_at,  #: (N, 5) dim code at each loop position, outermost first
    pos_of,  #: (N, 5) loop position of each dim code
    backend: KernelBackend | None = None,  #: kernel-execution backend
) -> dict[DataType, tuple["np.ndarray", "np.ndarray", "np.ndarray"]]:
    """Per data type: ``(has_relevant_loop, run_fetches, run_bytes)``.

    Columnar re-expression of ``_run_fill_bytes_inputs`` /
    ``_run_fill_bytes_dense`` plus the fetch-multiplicity rule, for ONE
    execution of the boundary nest.  Degenerate loops are dropped via the
    suffix masks described in the module docstring.
    """
    n = parent.shape[-1]
    if backend is None:
        input_extent = input_extent_kernel
        sum_input_extents = sum_input_extents_kernel
    else:
        input_extent = backend.kernel_impl(input_extent_kernel)
        sum_input_extents = backend.kernel_impl(sum_input_extents_kernel)
    cand = np.arange(n)
    trips_at = trips[dim_at.T, cand]  # (5 positions, N)
    seq_at = seq_trips[dim_at.T, cand]

    out: dict[DataType, tuple] = {}
    for data_type in ALL_DATA_TYPES:
        relv = _rel_vector_cached(data_type)
        rel_at = relv[dim_at.T]  # (5, N): position holds a relevant dim
        active_at = rel_at & (trips_at > 1)

        # suffix_incl[i]: any active relevant loop at or inside position i
        # == "position i is outside (or at) the innermost relevant loop".
        suffix_incl = np.empty((5, n), dtype=bool)
        suffix_strict = np.empty((5, n), dtype=bool)
        running = np.zeros(n, dtype=bool)
        for i in range(4, -1, -1):
            suffix_strict[i] = running
            running = running | active_at[i]
            suffix_incl[i] = running
        has_rel = suffix_incl[0]

        # Fetch multiplicity: product of trip counts (sequential rounds for
        # irrelevant dims) over every loop at or outside the innermost
        # relevant one.  Degenerate loops multiply by 1 exactly as if
        # dropped from the order.
        factors = np.where(rel_at, trips_at, seq_at)
        run_fetches = np.where(suffix_incl, factors, 1).prod(axis=0)

        elem = precision.bytes_of(data_type)
        if data_type is DataType.INPUTS:
            run_bytes = np.full(n, elem, dtype=np.int64)
            for dim in (Dim.W, Dim.H, Dim.C, Dim.F):
                d = DIM_INDEX[dim]
                total = parent[d]
                if dim is Dim.C:
                    run_bytes *= total
                    continue
                span, stride = kernel_and_stride(layer, dim)
                halo_sum = sum_input_extents(total, child[d], span, stride)
                # Slide reuse: this dim occupies the innermost relevant
                # non-degenerate loop, so halos telescope to the union.
                is_slide = (trips[d] > 1) & ~suffix_strict[pos_of[:, d], cand]
                run_bytes *= np.where(
                    is_slide, input_extent(total, span, stride), halo_sum
                )
            irrelevant = (Dim.K,)
        elif data_type is DataType.WEIGHTS:
            run_bytes = (
                np.full(n, elem * layer.r * layer.s * layer.t, dtype=np.int64)
                * parent[DIM_INDEX[Dim.C]]
                * parent[DIM_INDEX[Dim.K]]
            )
            irrelevant = (Dim.W, Dim.H, Dim.F)
        else:
            run_bytes = (
                np.full(n, elem, dtype=np.int64)
                * parent[DIM_INDEX[Dim.W]]
                * parent[DIM_INDEX[Dim.H]]
                * parent[DIM_INDEX[Dim.K]]
                * parent[DIM_INDEX[Dim.F]]
            )
            irrelevant = (Dim.C,)
        # Irrelevant loops outside the innermost relevant one multiply the
        # per-run bytes by their sequential (non-broadcast) rounds.
        for dim in irrelevant:
            d = DIM_INDEX[dim]
            outside = suffix_incl[pos_of[:, d], cand]
            run_bytes *= np.where(outside, seq_trips[d], 1)

        out[data_type] = (has_rel, run_fetches, run_bytes)
    return out


def _region_bytes_columns(
    layer: ConvLayer, precision: Precision, parent
) -> dict[DataType, "np.ndarray"]:
    """Whole-region footprints of parent tile columns (full residency)."""
    return tile_bytes_columns(layer, precision, parent)


def boundary_fill_bytes_sum(
    layer: ConvLayer,
    precision: Precision,
    parent: "np.ndarray",  #: (5,) or (5, N) parent extents
    child: "np.ndarray",  #: (5, N) child tile extents
    order: LoopOrder,
) -> "np.ndarray":
    """Summed per-execution fill bytes across the three data types.

    Columnar counterpart of summing ``boundary_fill_profile`` byte entries
    — the denominator of the allocator's ``f_reuse`` score — for many child
    tiles under one parent and one loop order.
    """
    _require_numpy()
    child = np.asarray(child, dtype=np.int64)
    n = child.shape[-1]
    parent = np.broadcast_to(
        np.asarray(parent, dtype=np.int64).reshape(5, -1), (5, n)
    )
    trips = ceil_div(parent, child)
    dim_tbl, pos_tbl = _order_tables((order,))
    dim_at = np.broadcast_to(dim_tbl[0], (n, 5))
    pos_of = np.broadcast_to(pos_tbl[0], (n, 5))
    profile = _boundary_fill_columns(
        layer, precision, parent, child, trips, trips, dim_at, pos_of
    )
    region = _region_bytes_columns(layer, precision, parent)
    total = np.zeros(n, dtype=np.int64)
    for data_type in ALL_DATA_TYPES:
        has_rel, _, run_bytes = profile[data_type]
        total += np.where(has_rel, run_bytes, region[data_type])
    return total


# ----------------------------------------------------------------------
# The batch evaluator
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CandidateBatch:
    """A columnar table of candidate configurations for one layer.

    ``tiles`` holds output-space tile extents as ``(levels, 5, N)`` int64
    (ALL_DIMS order); ``outer``/``inner`` index into ``orders`` and ``par``
    into ``parallelisms``.  Construction normalises the hierarchy exactly
    like :class:`TileHierarchy` does.
    """

    layer: ConvLayer
    arch: AcceleratorConfig
    orders: tuple[LoopOrder, ...]
    parallelisms: tuple[Parallelism, ...]
    tiles: "np.ndarray"
    outer: "np.ndarray"
    inner: "np.ndarray"
    par: "np.ndarray"

    def __post_init__(self) -> None:
        _require_numpy()
        self.tiles = normalize_tiles(self.layer, self.tiles)
        self.outer = np.asarray(self.outer, dtype=np.int64)
        self.inner = np.asarray(self.inner, dtype=np.int64)
        self.par = np.asarray(self.par, dtype=np.int64)

    def __len__(self) -> int:
        return self.tiles.shape[-1]

    # ------------------------------------------------------------------
    def dataflow(self, index: int) -> Dataflow:
        """Materialise one candidate row as a scalar :class:`Dataflow`."""
        tiles = tuple(
            TileShape(*(int(self.tiles[lvl, d, index]) for d in range(5)))
            for lvl in range(self.tiles.shape[0])
        )
        return Dataflow(
            outer_order=self.orders[int(self.outer[index])],
            inner_order=self.orders[int(self.inner[index])],
            hierarchy=TileHierarchy(self.layer, tiles),
            parallelism=self.parallelisms[int(self.par[index])],
        )

    def evaluate_row(self, index: int) -> Evaluation:
        """Scalar evaluation of one row (winner materialisation)."""
        return evaluate(self.dataflow(index), self.arch)

    # ------------------------------------------------------------------
    def _row_bytes(self) -> int:
        """Estimated peak working bytes per candidate column.

        One candidate carries its ``(levels, 5)`` int64 tile slice plus
        roughly :data:`_WORKSPACE_COLUMNS` equally sized intermediate
        columns (trips, masks, fills, spills, energies) through the
        score pipeline; the chunk planner divides ``max_table_bytes``
        by this estimate.
        """
        levels = self.tiles.shape[0]
        return 8 * (levels * 5 + _WORKSPACE_COLUMNS)

    def scores(
        self,
        objective: str,
        *,
        kernel_backend: str | None = None,
        max_table_bytes: int | None = None,
    ) -> "np.ndarray":
        """Objective column (lower is better); +inf marks infeasible rows.

        Bit-identical to scoring each row's scalar :class:`Evaluation`
        under :data:`repro.optimizer.search.OBJECTIVES`, for every
        backend and for any ``max_table_bytes`` chunking: every column
        op in the pipeline is elementwise per candidate, so evaluating
        a slice of columns is the same arithmetic on a smaller array.
        ``None`` knobs defer to the scoped defaults
        (:func:`repro.core.backend.resolve_kernel_backend` /
        :func:`repro.core.backend.resolve_max_table_bytes`).
        """
        n = len(self)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        backend = resolve_kernel_backend(kernel_backend)
        cap = resolve_max_table_bytes(max_table_bytes)
        if cap is None:
            return self._scores_slice(objective, slice(0, n), backend)
        rows = plan_chunk_rows(self._row_bytes(), cap)
        out = np.empty(n, dtype=np.float64)
        for start in range(0, n, rows):
            sl = slice(start, min(start + rows, n))
            out[sl] = self._scores_slice(objective, sl, backend)
        return out

    def best(
        self,
        objective: str,
        *,
        kernel_backend: str | None = None,
        max_table_bytes: int | None = None,
    ) -> tuple[int, float, int]:
        """First-min winner: ``(index, score, finite_count)``.

        Equivalent to ``np.argmin`` over :meth:`scores` (ties break to
        the lowest row index, i.e. the lowest legacy candidate rank)
        but streams the table in chunks under ``max_table_bytes`` with
        a carried reduction, so the full score column is never
        materialised.  ``index`` is ``-1`` only for an empty batch.
        """
        n = len(self)
        if n == 0:
            return -1, float("inf"), 0
        backend = resolve_kernel_backend(kernel_backend)
        cap = resolve_max_table_bytes(max_table_bytes)
        rows = n if cap is None else plan_chunk_rows(self._row_bytes(), cap)
        best_index, best_score, finite = -1, float("inf"), 0
        for start in range(0, n, rows):
            sl = slice(start, min(start + rows, n))
            chunk = self._scores_slice(objective, sl, backend)
            finite += int(np.isfinite(chunk).sum())
            local = int(np.argmin(chunk))
            score = float(chunk[local])
            # Strict < keeps the earliest chunk's row on equal scores,
            # so the global first-min tie-break survives chunking.
            if best_index < 0 or score < best_score:
                best_index, best_score = start + local, score
        return best_index, best_score, finite

    def _scores_slice(
        self, objective: str, sl: slice, backend: KernelBackend
    ) -> "np.ndarray":
        """The score pipeline over one contiguous slice of columns."""
        tiles = self.tiles[:, :, sl]
        outer = self.outer[sl]
        inner = self.inner[sl]
        par = self.par[sl]
        n = tiles.shape[-1]
        layer, arch = self.layer, self.arch
        precision = arch.precision
        levels = arch.num_levels
        if tiles.shape[0] != levels:
            raise ValueError(
                f"{arch.name} has {levels} levels, got {tiles.shape[0]}"
            )
        impl = backend.kernel_impl
        dim_tbl, pos_tbl = _order_tables(self.orders)
        par_tbl = parallelism_tables(self.parallelisms, arch)
        full = np.broadcast_to(full_extents(layer)[:, None], (5, n))

        # --- traffic ---------------------------------------------------
        out_psum_bytes = layer.output_elements * precision.psum_bytes
        execs = np.ones(n, dtype=np.int64)
        parent_fills = {dt: np.ones(n, dtype=np.int64) for dt in ALL_DATA_TYPES}
        fill_bytes: list[dict[DataType, "np.ndarray"]] = []
        psum_load: list["np.ndarray"] = []
        psum_writeback: list["np.ndarray"] = []

        for level_index in range(levels):
            parent = full if level_index == 0 else tiles[level_index - 1]
            child = tiles[level_index]
            order_idx = outer if level_index == 0 else inner
            trips = ceil_div(parent, child)
            degrees = par_tbl.degrees[par, level_index].T  # (5, N)
            seq_trips = ceil_div(trips, degrees)
            profile = _boundary_fill_columns(
                layer, precision, parent, child, trips, seq_trips,
                dim_tbl[order_idx], pos_tbl[order_idx], backend,
            )
            region = _region_bytes_columns(layer, precision, parent)

            level_fill: dict[DataType, "np.ndarray"] = {}
            for data_type in ALL_DATA_TYPES:
                has_rel, run_fetches, run_bytes = profile[data_type]
                fills = np.where(
                    has_rel, execs * run_fetches, parent_fills[data_type]
                )
                level_fill[data_type] = np.where(
                    has_rel,
                    execs * run_bytes,
                    parent_fills[data_type] * region[data_type],
                )
                parent_fills[data_type] = fills
            fill_bytes.append(level_fill)

            spill = impl(psum_spill_bytes_kernel)(
                level_fill[DataType.PSUMS], out_psum_bytes
            )
            psum_load.append(spill)
            if level_index == 0:
                psum_writeback.append(
                    impl(dram_psum_writeback_kernel)(
                        spill,
                        layer.output_elements * precision.activation_bytes,
                    )
                )
            else:
                psum_writeback.append(level_fill[DataType.PSUMS])
            execs = execs * trips.prod(axis=0)

        # --- performance ----------------------------------------------
        mid_index = max(levels - 2, 0)
        mid_tile = tiles[mid_index]
        inner_tile = tiles[-1]
        cluster_parent = full if mid_index == 0 else tiles[mid_index - 1]
        pe_parent = full if levels == 1 else tiles[levels - 2]
        c_deg = par_tbl.cluster_deg[par].T  # (5, N)
        p_deg = par_tbl.pe_deg[par].T
        dim_factors = [
            (
                c_deg[DIM_INDEX[dim]],
                ceil_div(cluster_parent[DIM_INDEX[dim]], mid_tile[DIM_INDEX[dim]]),
                p_deg[DIM_INDEX[dim]],
                ceil_div(pe_parent[DIM_INDEX[dim]], inner_tile[DIM_INDEX[dim]]),
            )
            for dim in _PAR_DIMS
        ]
        util = impl(utilization_kernel)(
            par_tbl.total_degree[par],
            arch.total_pes,
            arch.vector_width,
            inner_tile[DIM_INDEX[Dim.K]],
            dim_factors,
        )
        maccs = layer.maccs
        cycles = impl(compute_cycles_kernel)(
            maccs, arch.peak_maccs_per_cycle, util
        )
        for index in range(levels):
            crossing = impl(boundary_bus_bytes_kernel)(
                fill_bytes[index][DataType.INPUTS],
                fill_bytes[index][DataType.WEIGHTS],
                psum_load[index],
                psum_writeback[index],
            )
            bw = arch.noc.boundary_bandwidth_bytes_per_cycle(index)
            cycles = np.maximum(cycles, crossing / bw)

        # --- energy ----------------------------------------------------
        read_pj, write_pj, bus_length_mm = energy_cost_tables(arch)
        repl_cols = [
            {
                dt: par_tbl.replication[par, lvl, t]
                for t, dt in enumerate(ALL_DATA_TYPES)
            }
            for lvl in range(levels)
        ]
        alu_inputs, alu_weights = alu_read_bytes(
            maccs, arch.vector_width, precision
        )
        tech = arch.technology
        (
            dram_pj, _reads, _writes, level_energy, noc_pj, compute_pj,
            static_pj,
        ) = impl(energy_accumulation_kernel)(
            num_levels=levels,
            fill_bytes=fill_bytes,
            psum_load_bytes=psum_load,
            psum_writeback_bytes=psum_writeback,
            alu_input_read_bytes=alu_inputs,
            alu_weight_read_bytes=alu_weights,
            alu_psum_read_bytes=psum_load[-1],
            alu_psum_write_bytes=fill_bytes[-1][DataType.PSUMS],
            repl=repl_cols,
            read_pj=read_pj,
            write_pj=write_pj,
            noc_pj_per_byte_mm=tech.noc_pj_per_byte_mm,
            bus_length_mm=bus_length_mm,
            dram_pj_per_byte=tech.dram_pj_per_byte,
            macc_pj=tech.macc_pj,
            maccs=maccs,
            static_pj_per_cycle=static_pj_per_cycle(arch),
            cycles=cycles,
        )
        # Same association as EnergyBreakdown.total_pj.
        total_pj = dram_pj + sum(level_energy) + noc_pj + compute_pj + static_pj

        # --- objective -------------------------------------------------
        if objective == "energy":
            scores = total_pj
        elif objective == "latency":
            scores = cycles + 0.0
        elif objective == "edp":
            scores = impl(edp_kernel)(total_pj, cycles, tech.clock_hz)
        elif objective == "perf_per_watt":
            scores = -impl(perf_per_watt_kernel)(maccs, total_pj)
        else:
            raise ValueError(f"unknown objective {objective!r}")

        feasible = hierarchy_fits_mask(arch, layer, tiles)
        return np.where(feasible, scores, np.inf)
