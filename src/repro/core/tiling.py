"""Multi-level tiling of 3D convolution (paper Section II-D).

Tiles are expressed in **output space** for the sliding dims ``W``/``H``/``F``
and in element space for ``C``/``K``.  An output-space tile of extent ``e``
along a sliding dim needs an input-space extent of ``(e - 1) * stride +
kernel`` — consecutive tiles therefore overlap by ``kernel - stride`` input
positions, the *halo* of Figure 3.  The paper reports input-space tile sizes
(e.g. ``Ht = 114`` for C3D layer 1 = 112 input rows + 2 padding); helpers
here convert both ways.

Only ``W``, ``H``, ``C``, ``K``, ``F`` are tiled; ``R``, ``S``, ``T`` are
small (1–11) and never tiled (Section II-D).

The closed-form extent formulas are split into ``*_kernel`` functions that
use only arithmetic valid for Python ints *and* NumPy arrays, so the scalar
model path and the columnar batch path (:mod:`repro.core.batch`) evaluate
the very same equations.
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.dims import ALL_DIMS, DataType, Dim, Num
from repro.core.layer import ConvLayer


# ----------------------------------------------------------------------
# Scalar/array-agnostic formula kernels
# ----------------------------------------------------------------------
def ceil_div(a: Num, b: Num) -> Num:
    """``ceil(a / b)`` for positive ints; works elementwise on arrays."""
    return -(-a // b)


def input_extent_kernel(out_extent: Num, span: Num, stride: Num) -> Num:
    """Input positions covered by ``out_extent`` outputs of one filter of
    input-space ``span`` sliding by ``stride`` (halo included)."""
    return (out_extent - 1) * stride + span


def sum_input_extents_kernel(
    total: Num, tile: Num, span: Num, stride: Num
) -> Num:
    """Sum of per-tile input footprints along one sliding dim.

    Closed form of ``sum(input_extent_kernel(e) for e in tile_positions())``
    with ``n = ceil(total / tile)`` tiles: ``stride * total + n * (span -
    stride)`` — each tile re-fetches its halo.
    """
    return stride * total + ceil_div(total, tile) * (span - stride)


def minimum_kernel(a: Num, b: Num) -> Num:
    """Elementwise ``min`` for Python ints and NumPy arrays alike."""
    return b + (a - b) * (a < b)


def tile_extent_at_kernel(index: Num, total: Num, tile: Num) -> Num:
    """Output extent of tile ``index`` covering ``total``: ``tile`` except a
    possibly short final tile — ``min(tile, total - index * tile)``."""
    return minimum_kernel(tile, total - index * tile)


@dataclasses.dataclass(frozen=True)
class Precision:
    """Datum widths in bytes for the three data types.

    The paper assumes 8-bit activations/weights (Section III remark) and
    psums of ``2P + log2(R*S*T*C)`` bits, which we round to 4 bytes
    (Section IV-B1).
    """

    activation_bytes: int = 1
    weight_bytes: int = 1
    psum_bytes: int = 4

    def bytes_of(self, data_type: DataType) -> int:
        if data_type is DataType.INPUTS:
            return self.activation_bytes
        if data_type is DataType.WEIGHTS:
            return self.weight_bytes
        return self.psum_bytes


DEFAULT_PRECISION = Precision()


def kernel_and_stride(layer: ConvLayer, dim: Dim) -> tuple[int, int]:
    """Input-space filter span and stride along a sliding dim (W, H or F).

    The span is dilation-aware: a dilated filter touches the same number of
    taps spread over ``(taps - 1) * dilation + 1`` input positions, so all
    halo/footprint math downstream handles dilated convolution for free.
    """
    if dim is Dim.W:
        return layer.dilated_s, layer.stride_w
    if dim is Dim.H:
        return layer.dilated_r, layer.stride_h
    if dim is Dim.F:
        return layer.dilated_t, layer.stride_f
    raise ValueError(f"{dim} is not a sliding dimension")


def input_extent(layer: ConvLayer, dim: Dim, out_extent: int) -> int:
    """Input-space footprint of ``out_extent`` output positions along ``dim``.

    For sliding dims this includes the halo; for ``C`` the input extent is
    the channel count itself.  ``K`` has no input-space meaning.
    """
    if dim is Dim.C:
        return out_extent
    kernel, stride = kernel_and_stride(layer, dim)
    return input_extent_kernel(out_extent, kernel, stride)


def halo_overlap(layer: ConvLayer, dim: Dim) -> int:
    """Input positions shared by consecutive tiles along a sliding dim."""
    kernel, stride = kernel_and_stride(layer, dim)
    return max(0, kernel - stride)


@dataclasses.dataclass(frozen=True)
class TileShape:
    """Per-dimension tile extents (output space for W/H/F)."""

    w: int
    h: int
    c: int
    k: int
    f: int

    def __post_init__(self) -> None:
        for field in ("w", "h", "c", "k", "f"):
            if getattr(self, field) < 1:
                raise ValueError(f"tile extent {field} must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def full(cls, layer: ConvLayer) -> "TileShape":
        """The degenerate single tile covering the whole layer."""
        return cls(w=layer.out_w, h=layer.out_h, c=layer.c, k=layer.k, f=layer.out_f)

    @classmethod
    def minimum(cls) -> "TileShape":
        """The smallest legal tile: one output point of one filter/channel.

        Its input footprint is ``R x S x T x 1`` — the paper's minimum tile
        ``R*S*Ct*T`` with ``Ct = 1`` (Section II-D).
        """
        return cls(w=1, h=1, c=1, k=1, f=1)

    @classmethod
    def from_mapping(cls, extents: dict[Dim, int]) -> "TileShape":
        return cls(
            w=extents[Dim.W],
            h=extents[Dim.H],
            c=extents[Dim.C],
            k=extents[Dim.K],
            f=extents[Dim.F],
        )

    def extent(self, dim: Dim) -> int:
        # Identity chain instead of a dict: this is the hottest call in the
        # optimizer's search loop.
        if dim is Dim.W:
            return self.w
        if dim is Dim.H:
            return self.h
        if dim is Dim.C:
            return self.c
        if dim is Dim.K:
            return self.k
        return self.f

    def as_mapping(self) -> dict[Dim, int]:
        return {dim: self.extent(dim) for dim in ALL_DIMS}

    # ------------------------------------------------------------------
    def clipped(self, bound: "TileShape") -> "TileShape":
        """Elementwise ``min`` against an enclosing tile or the layer."""
        return TileShape(
            w=min(self.w, bound.w),
            h=min(self.h, bound.h),
            c=min(self.c, bound.c),
            k=min(self.k, bound.k),
            f=min(self.f, bound.f),
        )

    def fits_within(self, bound: "TileShape") -> bool:
        return all(self.extent(d) <= bound.extent(d) for d in ALL_DIMS)

    def trip_counts(self, child: "TileShape") -> dict[Dim, int]:
        """Tiles of ``child`` needed to cover this tile, per dim (ceil)."""
        return {
            Dim.W: -(-self.w // child.w),
            Dim.H: -(-self.h // child.h),
            Dim.C: -(-self.c // child.c),
            Dim.K: -(-self.k // child.k),
            Dim.F: -(-self.f // child.f),
        }

    # ------------------------------------------------------------------
    # Footprints
    # ------------------------------------------------------------------
    def input_elements(self, layer: ConvLayer) -> int:
        """Input-space element count, halos included (dilation-aware)."""
        return (
            input_extent_kernel(self.w, layer.dilated_s, layer.stride_w)
            * input_extent_kernel(self.h, layer.dilated_r, layer.stride_h)
            * input_extent_kernel(self.f, layer.dilated_t, layer.stride_f)
            * self.c
        )

    def weight_elements(self, layer: ConvLayer) -> int:
        return self.k * self.c * layer.r * layer.s * layer.t

    def psum_elements(self) -> int:
        return self.w * self.h * self.f * self.k

    def elements_of(self, data_type: DataType, layer: ConvLayer) -> int:
        if data_type is DataType.INPUTS:
            return self.input_elements(layer)
        if data_type is DataType.WEIGHTS:
            return self.weight_elements(layer)
        return self.psum_elements()

    def bytes_of(
        self,
        data_type: DataType,
        layer: ConvLayer,
        precision: Precision = DEFAULT_PRECISION,
    ) -> int:
        return self.elements_of(data_type, layer) * precision.bytes_of(data_type)

    def total_bytes(
        self, layer: ConvLayer, precision: Precision = DEFAULT_PRECISION
    ) -> int:
        """Sum of all three data-type footprints (shared-buffer occupancy)."""
        return sum(self.bytes_of(dt, layer, precision) for dt in DataType)

    def maccs(self, layer: ConvLayer) -> int:
        """MAC operations to fully process this tile once."""
        return (
            self.w * self.h * self.f * self.k * self.c * layer.r * layer.s * layer.t
        )

    # ------------------------------------------------------------------
    def describe(self, layer: ConvLayer | None = None) -> str:
        base = f"W{self.w} H{self.h} C{self.c} K{self.k} F{self.f}"
        if layer is not None:
            base += (
                f" (input {input_extent(layer, Dim.H, self.h)}"
                f"x{input_extent(layer, Dim.W, self.w)}"
                f"x{input_extent(layer, Dim.F, self.f)}f)"
            )
        return base


def tile_positions(total: int, tile: int) -> list[int]:
    """Output extents of the tiles covering ``total``; the last may be short."""
    if tile < 1:
        raise ValueError("tile extent must be >= 1")
    count = math.ceil(total / tile)
    return [tile_extent_at_kernel(index, total, tile) for index in range(count)]


def tile_positions_array(total: int, tile: int) -> Num:
    """Vectorized :func:`tile_positions`: one int64 array instead of a list.

    Same closed form (:func:`tile_extent_at_kernel`) evaluated over
    ``arange(ceil(total / tile))`` — the building block the columnar
    simulators (:mod:`repro.sim`) use to materialise whole tile schedules
    as coordinate tables.
    """
    import numpy as np

    if tile < 1:
        raise ValueError("tile extent must be >= 1")
    count = ceil_div(total, tile)
    return tile_extent_at_kernel(
        np.arange(count, dtype=np.int64), np.int64(total), np.int64(tile)
    )


def sum_input_extents(layer: ConvLayer, dim: Dim, total: int, tile: int) -> int:
    """Sum of input-space footprints of all tiles along one sliding dim.

    Closed form of ``sum(input_extent(e) for e in tile_positions())``:
    with n tiles, kernel ``ker`` and stride ``st`` this is
    ``st * total + n * (ker - st)`` — each tile re-fetches its halo.
    """
    if dim is Dim.C:
        return total
    kernel, stride = kernel_and_stride(layer, dim)
    return sum_input_extents_kernel(total, tile, kernel, stride)


def union_input_extent(layer: ConvLayer, dim: Dim, total: int) -> int:
    """Input-space footprint of the union of all tiles along a sliding dim.

    This is what slide reuse achieves (Section II-E): sliding along the
    major dim, overlapped halo regions are fetched once, so the byte total
    telescopes to the extent of the union.
    """
    return input_extent(layer, dim, total)


@dataclasses.dataclass(frozen=True)
class TileHierarchy:
    """Tile shapes for each on-chip level, outermost (last-level) first.

    For the paper's three-level hierarchy this is ``(L2, L1, L0)``.  Shapes
    are normalised on construction: clipped to the layer and made
    monotonically non-increasing (sub-tiles fit in tiles, Section V-C).
    """

    layer: ConvLayer
    tiles: tuple[TileShape, ...]

    def __post_init__(self) -> None:
        if not self.tiles:
            raise ValueError("at least one tile level required")
        bound = TileShape.full(self.layer)
        normalised = []
        for tile in self.tiles:
            bound = tile.clipped(bound)
            normalised.append(bound)
        object.__setattr__(self, "tiles", tuple(normalised))

    @property
    def levels(self) -> int:
        return len(self.tiles)

    @property
    def outermost(self) -> TileShape:
        return self.tiles[0]

    @property
    def innermost(self) -> TileShape:
        return self.tiles[-1]

    def parent_of(self, level_index: int) -> TileShape:
        """Enclosing region of the tile at ``level_index`` (layer for 0)."""
        if level_index == 0:
            return TileShape.full(self.layer)
        return self.tiles[level_index - 1]
