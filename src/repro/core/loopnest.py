"""Loop orders and the data-transfer rules they imply (paper Section II-E).

A :class:`LoopOrder` is a permutation of the five tileable dimensions.  The
paper's central observation is that the position of each dimension in the
order determines *when* each data type must be (re)loaded:

* filters load in the innermost loop labelled ``C`` or ``K``,
* inputs load in the innermost loop labelled ``W``, ``H``, ``C`` or ``F``,
* partial sums load in the innermost loop labelled ``W``, ``H``, ``K`` or
  ``F``.

Everything outside that innermost *relevant* loop multiplies the number of
reloads; everything inside it is free temporal reuse.  This module provides
that position algebra; :mod:`repro.core.access_model` turns it into byte
counts.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.dims import (
    ALL_DIMS,
    DataType,
    Dim,
    format_dims,
    parse_dims,
    relevant_dims,
)


@dataclasses.dataclass(frozen=True)
class LoopOrder:
    """An ordering of loop dimensions, outermost first.

    The paper writes orders like ``[WHCKF]`` meaning ``W`` is the outermost
    loop and ``F`` the innermost (Section II-E).  Orders must mention each of
    the five tiled dims exactly once; use :meth:`parse` for the compact
    string form.
    """

    dims: tuple[Dim, ...]

    def __post_init__(self) -> None:
        if sorted(d.value for d in self.dims) != sorted(d.value for d in ALL_DIMS):
            raise ValueError(
                f"loop order must be a permutation of {format_dims(ALL_DIMS)}, "
                f"got {format_dims(self.dims)}"
            )

    @classmethod
    def parse(cls, spec: str | Iterable[Dim]) -> "LoopOrder":
        return cls(parse_dims(spec))

    # ------------------------------------------------------------------
    @property
    def outermost(self) -> Dim:
        return self.dims[0]

    @property
    def innermost(self) -> Dim:
        return self.dims[-1]

    def position(self, dim: Dim) -> int:
        """0-based position of ``dim``, 0 being the outermost loop."""
        return self.dims.index(dim)

    def innermost_relevant(self, data_type: DataType) -> Dim:
        """The innermost loop dim whose iteration moves ``data_type`` tiles.

        This is the loop in which the paper says the next tile of the data
        type is loaded (Section II-E "Data transfers").
        """
        rel = relevant_dims(data_type)
        for dim in reversed(self.dims):
            if dim in rel:
                return dim
        raise AssertionError("every data type is relevant to some dim")

    def loops_outside(self, dim: Dim, *, inclusive: bool = True) -> tuple[Dim, ...]:
        """Dims at or outside ``dim``'s loop (outermost first)."""
        idx = self.position(dim)
        end = idx + 1 if inclusive else idx
        return self.dims[:end]

    def restricted(self, keep: Iterable[Dim]) -> tuple[Dim, ...]:
        """The order with only ``keep`` dims retained (used to drop
        degenerate, trip-count-1 loops before reuse analysis)."""
        keep_set = frozenset(keep)
        return tuple(d for d in self.dims if d in keep_set)

    # ------------------------------------------------------------------
    def format(self, *, lower: bool = False) -> str:
        return format_dims(self.dims, lower=lower)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.format()


def all_loop_orders() -> Iterator[LoopOrder]:
    """All 120 permutations of the five tiled dims."""
    for perm in itertools.permutations(ALL_DIMS):
        yield LoopOrder(perm)


def fetch_multiplicity(
    order: Sequence[Dim],
    trip_counts: Mapping[Dim, int],
    data_type: DataType,
) -> int:
    """Number of tile fetches of ``data_type`` for one execution of a nest.

    ``order`` is the loop order (outermost first) *after* degenerate loops
    have been removed; ``trip_counts`` gives each loop's iteration count.
    Implements the Section II-E rule: the product of all trip counts from
    the outermost loop down to (and including) the innermost loop relevant
    to the data type.  Returns 1 when no relevant loop remains, i.e. the
    data type's whole region is resident for the entire nest execution.
    """
    rel = relevant_dims(data_type)
    innermost_rel = -1
    for idx, dim in enumerate(order):
        if dim in rel:
            innermost_rel = idx
    if innermost_rel < 0:
        return 1
    count = 1
    for dim in order[: innermost_rel + 1]:
        count *= trip_counts[dim]
    return count


def distinct_tiles(
    order: Sequence[Dim],
    trip_counts: Mapping[Dim, int],
    data_type: DataType,
) -> int:
    """Number of *distinct* tiles of ``data_type`` touched by one execution.

    The ratio ``fetch_multiplicity / distinct_tiles`` is how many times each
    tile is (re)loaded; for partial sums it determines how many re-reads for
    accumulation are needed (the first visit of each tile is zero-initialised
    and skips the read).
    """
    rel = relevant_dims(data_type)
    count = 1
    for dim in order:
        if dim in rel:
            count *= trip_counts[dim]
    return count
