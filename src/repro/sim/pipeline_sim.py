"""Double-buffered pipeline timing simulator.

The analytic performance model (Section V-D) computes cycles from peak
throughput, utilisation factors and aggregate bus bandwidths.  This
simulator cross-checks it the way the trace simulator cross-checks the
traffic model: it walks the *actual* outer tile schedule, timing each
tile's bus transfers and compute, with the double buffering all Morph
buffers implement ("to remove dead time between processing tiles",
Section IV-A2) — the next tile's fills overlap the current tile's
compute, so steady-state cycles are ``max(load, compute)`` per tile plus
a pipeline prologue/epilogue.

Fidelity notes: the inner levels' traffic is folded into per-L2-tile
aggregate transfer times (their buses run concurrently with compute the
same way); utilisation inside one tile's compute uses the analytic
utilisation factor.  Tests assert agreement with the analytic cycle count
within tolerance and identical compute/bandwidth-bound classification.
"""

from __future__ import annotations

import dataclasses

from repro.arch.accelerator import AcceleratorConfig
from repro.core.access_model import compute_traffic
from repro.core.dataflow import Dataflow
from repro.core.dims import DataType, Dim
from repro.core.performance_model import (
    compute_utilization,
    parallel_level_degrees,
)
from repro.sim.tiled_executor import TileCoord, iter_tiles


@dataclasses.dataclass(frozen=True)
class TileTiming:
    """One outer tile's pass through the pipeline."""

    load_cycles: float  #: DRAM -> L2 transfer for this tile's new data
    compute_cycles: float  #: PE-array time, inner transfers overlapped
    drain_cycles: float  #: psum writeback to DRAM, if any


@dataclasses.dataclass(frozen=True)
class PipelineReport:
    """Simulated execution timeline of one layer."""

    tiles: int
    cycles: float
    load_bound_tiles: int
    compute_bound_tiles: int
    prologue_cycles: float

    @property
    def bound_by(self) -> str:
        return (
            "compute"
            if self.compute_bound_tiles >= self.load_bound_tiles
            else "DRAM->L2"
        )


def _tile_io_bytes(
    layer, coord: TileCoord, previous: TileCoord | None, precision
) -> tuple[float, float]:
    """(load bytes, drain bytes) for one outer tile.

    Inputs/weights reload when their coordinates move (slide reuse along a
    single stepped axis is approximated by skipping reloads of unchanged
    tensors); psums drain when the tile's output coordinates change.
    """
    def moved(dims) -> bool:
        if previous is None:
            return True
        return any(
            coord.origin[d] != previous.origin[d]
            or coord.extent[d] != previous.extent[d]
            for d in dims
        )

    load = 0.0
    if moved((Dim.W, Dim.H, Dim.C, Dim.F)):
        in_w = (coord.extent[Dim.W] - 1) * layer.stride_w + layer.s
        in_h = (coord.extent[Dim.H] - 1) * layer.stride_h + layer.r
        in_f = (coord.extent[Dim.F] - 1) * layer.stride_f + layer.t
        load += in_w * in_h * in_f * coord.extent[Dim.C] * precision.activation_bytes
    if moved((Dim.C, Dim.K)):
        load += (
            coord.extent[Dim.K]
            * coord.extent[Dim.C]
            * layer.r * layer.s * layer.t
            * precision.weight_bytes
        )
    drain = 0.0
    if moved((Dim.W, Dim.H, Dim.K, Dim.F)):
        drain = (
            coord.extent[Dim.W]
            * coord.extent[Dim.H]
            * coord.extent[Dim.F]
            * coord.extent[Dim.K]
            * precision.activation_bytes
        )
    return load, drain


def simulate_pipeline(
    dataflow: Dataflow,
    arch: AcceleratorConfig,
) -> PipelineReport:
    """Walk the outer tile schedule with double-buffered overlap."""
    layer = dataflow.layer
    precision = arch.precision
    hierarchy = dataflow.hierarchy
    util = compute_utilization(hierarchy, arch, dataflow.parallelism)
    peak = arch.peak_maccs_per_cycle * util

    # Inner-boundary traffic runs concurrently with compute on the L2->L1
    # and L1->L0 buses; a tile's effective compute time is the max of its
    # MACC time and its share of inner-bus transfer time.
    level_degrees = parallel_level_degrees(
        arch.num_levels, arch.clusters, arch.pes_per_cluster, dataflow.parallelism
    )
    traffic = compute_traffic(dataflow, precision, level_degrees)
    inner_bus_cycles_total = 0.0
    for index, boundary in enumerate(traffic.boundaries):
        if index == 0:
            continue
        bytes_crossing = 0.0
        for dt in DataType:
            t = boundary.of(dt)
            if dt is DataType.PSUMS:
                bytes_crossing += t.load_bytes + t.writeback_bytes
            else:
                bytes_crossing += t.fill_bytes
        bw = arch.noc.boundary_bandwidth_bytes_per_cycle(index)
        inner_bus_cycles_total = max(inner_bus_cycles_total, bytes_crossing / bw)

    dram_bw = arch.noc.boundary_bandwidth_bytes_per_cycle(0)

    root = TileCoord(
        origin={d: 0 for d in Dim},
        extent={
            Dim.W: layer.out_w,
            Dim.H: layer.out_h,
            Dim.C: layer.c,
            Dim.K: layer.k,
            Dim.F: layer.out_f,
        },
    )
    coords = list(
        iter_tiles(root.origin, root.extent, hierarchy.outermost, dataflow.outer_order)
    )
    total_maccs = layer.maccs
    total_tile_maccs = sum(
        c.extent[Dim.W] * c.extent[Dim.H] * c.extent[Dim.F]
        * c.extent[Dim.K] * c.extent[Dim.C]
        for c in coords
    ) * layer.r * layer.s * layer.t
    assert total_tile_maccs == total_maccs, "schedule must cover the layer"

    inner_share = inner_bus_cycles_total / len(coords)

    timings = []
    previous = None
    for coord in coords:
        load_bytes, drain_bytes = _tile_io_bytes(layer, coord, previous, precision)
        maccs = (
            coord.extent[Dim.W] * coord.extent[Dim.H] * coord.extent[Dim.F]
            * coord.extent[Dim.K] * coord.extent[Dim.C]
            * layer.r * layer.s * layer.t
        )
        timings.append(
            TileTiming(
                load_cycles=load_bytes / dram_bw,
                compute_cycles=max(maccs / peak, inner_share),
                drain_cycles=drain_bytes / dram_bw,
            )
        )
        previous = coord

    # Double-buffered schedule: tile i computes while tile i+1 loads and
    # tile i-1 drains; each step advances by the slowest of the three.
    cycles = timings[0].load_cycles  # prologue: first fill cannot overlap
    load_bound = compute_bound = 0
    for i, timing in enumerate(timings):
        next_load = timings[i + 1].load_cycles if i + 1 < len(timings) else 0.0
        prev_drain = timings[i - 1].drain_cycles if i > 0 else 0.0
        step = max(timing.compute_cycles, next_load, prev_drain)
        if next_load > timing.compute_cycles:
            load_bound += 1
        else:
            compute_bound += 1
        cycles += step
    cycles += timings[-1].drain_cycles  # epilogue

    return PipelineReport(
        tiles=len(coords),
        cycles=cycles,
        load_bound_tiles=load_bound,
        compute_bound_tiles=compute_bound,
        prologue_cycles=timings[0].load_cycles,
    )
