"""Double-buffered pipeline timing simulator.

The analytic performance model (Section V-D) computes cycles from peak
throughput, utilisation factors and aggregate bus bandwidths.  This
simulator cross-checks it the way the trace simulator cross-checks the
traffic model: it walks the *actual* outer tile schedule, timing each
tile's bus transfers and compute, with the double buffering all Morph
buffers implement ("to remove dead time between processing tiles",
Section IV-A2) — the next tile's fills overlap the current tile's
compute, so steady-state cycles are ``max(load, compute)`` per tile plus
a pipeline prologue/epilogue.

Like the trace simulator, the walk has two interchangeable paths sharing
one set of ``*_kernel`` formulas: the scalar tile-by-tile reference and a
**columnar pass** (``vectorize=True``, the default when NumPy imports)
that lowers the outer schedule into one coordinate table, detects tensor
movement with shifted-array comparisons, and reduces the double-buffered
step recurrence with a sequential ``cumsum`` — so cycle totals, tile
classifications and the prologue are **bit-identical** between the paths
(pinned by ``tests/test_sim_equivalence.py``).  ``vectorize=`` /
the active :class:`repro.api.Session` / ``REPRO_VECTORIZE`` select the
path.

Fidelity notes: the inner levels' traffic is folded into per-L2-tile
aggregate transfer times (their buses run concurrently with compute the
same way); utilisation inside one tile's compute uses the analytic
utilisation factor; input windows use the dilation-aware filter span
(:func:`~repro.core.tiling.kernel_and_stride`), matching the analytic
footprint math.  Tests assert agreement with the analytic cycle count
within tolerance and identical compute/bandwidth-bound classification.
"""

from __future__ import annotations

import dataclasses

from repro.arch.accelerator import AcceleratorConfig
from repro.core.access_model import compute_traffic
from repro.core.backend import (
    KernelBackend,
    plan_chunk_rows,
    resolve_kernel_backend,
    resolve_max_table_bytes,
)
from repro.core.dataflow import Dataflow
from repro.core.dims import DataType, Dim
from repro.core.performance_model import (
    compute_utilization,
    parallel_level_degrees,
)
from repro.core.tiling import input_extent_kernel, kernel_and_stride
from repro.sim.tiled_executor import TileCoord, iter_tiles


@dataclasses.dataclass(frozen=True)
class TileTiming:
    """One outer tile's pass through the pipeline."""

    load_cycles: float  #: DRAM -> L2 transfer for this tile's new data
    compute_cycles: float  #: PE-array time, inner transfers overlapped
    drain_cycles: float  #: psum writeback to DRAM, if any


@dataclasses.dataclass(frozen=True)
class PipelineReport:
    """Simulated execution timeline of one layer."""

    tiles: int
    cycles: float
    load_bound_tiles: int
    compute_bound_tiles: int
    prologue_cycles: float

    @property
    def bound_by(self) -> str:
        return (
            "compute"
            if self.compute_bound_tiles >= self.load_bound_tiles
            else "DRAM->L2"
        )


# ----------------------------------------------------------------------
# Scalar/array-agnostic formula kernels (shared by both execution paths)
# ----------------------------------------------------------------------
def input_tile_elements_kernel(layer, w, h, c, f):
    """Input-window elements of an output tile (dilated halos included)."""
    return (
        input_extent_kernel(w, *kernel_and_stride(layer, Dim.W))
        * input_extent_kernel(h, *kernel_and_stride(layer, Dim.H))
        * input_extent_kernel(f, *kernel_and_stride(layer, Dim.F))
        * c
    )


def weight_tile_elements_kernel(layer, c, k):
    return k * c * (layer.r * layer.s * layer.t)


def psum_tile_elements_kernel(w, h, k, f):
    return w * h * k * f


def _tile_io_bytes(
    layer, coord: TileCoord, previous: TileCoord | None, precision
) -> tuple[float, float]:
    """(load bytes, drain bytes) for one outer tile.

    Inputs/weights reload when their coordinates move (slide reuse along a
    single stepped axis is approximated by skipping reloads of unchanged
    tensors); psums drain when the tile's output coordinates change.
    """
    def moved(dims) -> bool:
        if previous is None:
            return True
        return any(
            coord.origin[d] != previous.origin[d]
            or coord.extent[d] != previous.extent[d]
            for d in dims
        )

    load = 0.0
    if moved((Dim.W, Dim.H, Dim.C, Dim.F)):
        load += input_tile_elements_kernel(
            layer,
            coord.extent[Dim.W], coord.extent[Dim.H],
            coord.extent[Dim.C], coord.extent[Dim.F],
        ) * precision.activation_bytes
    if moved((Dim.C, Dim.K)):
        load += weight_tile_elements_kernel(
            layer, coord.extent[Dim.C], coord.extent[Dim.K]
        ) * precision.weight_bytes
    drain = 0.0
    if moved((Dim.W, Dim.H, Dim.K, Dim.F)):
        drain = psum_tile_elements_kernel(
            coord.extent[Dim.W], coord.extent[Dim.H],
            coord.extent[Dim.K], coord.extent[Dim.F],
        ) * precision.activation_bytes
    return load, drain


def _inner_bus_cycles(dataflow: Dataflow, arch: AcceleratorConfig) -> float:
    """Aggregate inner-boundary transfer cycles (the slowest inner bus)."""
    level_degrees = parallel_level_degrees(
        arch.num_levels, arch.clusters, arch.pes_per_cluster, dataflow.parallelism
    )
    traffic = compute_traffic(dataflow, arch.precision, level_degrees)
    inner_bus_cycles_total = 0.0
    for index, boundary in enumerate(traffic.boundaries):
        if index == 0:
            continue
        bytes_crossing = 0.0
        for dt in DataType:
            t = boundary.of(dt)
            if dt is DataType.PSUMS:
                bytes_crossing += t.load_bytes + t.writeback_bytes
            else:
                bytes_crossing += t.fill_bytes
        bw = arch.noc.boundary_bandwidth_bytes_per_cycle(index)
        inner_bus_cycles_total = max(inner_bus_cycles_total, bytes_crossing / bw)
    return inner_bus_cycles_total


def simulate_pipeline(
    dataflow: Dataflow,
    arch: AcceleratorConfig,
    *,
    vectorize: bool | None = None,
    kernel_backend: str | None = None,
    max_table_bytes: int | None = None,
) -> PipelineReport:
    """Walk the outer tile schedule with double-buffered overlap.

    ``vectorize`` selects the columnar pass over the scalar reference
    walk (default: the engine knob / ``REPRO_VECTORIZE``);
    ``kernel_backend`` picks the kernel-execution backend and
    ``max_table_bytes`` streams the outer schedule in bounded chunks
    with a carried pipeline state (``None`` knobs defer to the scoped
    defaults).  Reports are bit-identical across every path, backend
    and chunking.
    """
    from repro.sim.trace import _resolve_vectorize

    layer = dataflow.layer
    precision = arch.precision
    hierarchy = dataflow.hierarchy
    util = compute_utilization(hierarchy, arch, dataflow.parallelism)
    peak = arch.peak_maccs_per_cycle * util

    # Inner-boundary traffic runs concurrently with compute on the L2->L1
    # and L1->L0 buses; a tile's effective compute time is the max of its
    # MACC time and its share of inner-bus transfer time.
    inner_bus_cycles_total = _inner_bus_cycles(dataflow, arch)
    dram_bw = arch.noc.boundary_bandwidth_bytes_per_cycle(0)

    if _resolve_vectorize(vectorize):
        backend = resolve_kernel_backend(kernel_backend)
        cap = resolve_max_table_bytes(max_table_bytes)
        if cap is not None:
            return _simulate_columnar_chunked(
                dataflow, arch, peak, inner_bus_cycles_total, dram_bw,
                backend, cap,
            )
        return _simulate_columnar(
            dataflow, arch, peak, inner_bus_cycles_total, dram_bw, backend
        )
    return _simulate_scalar(
        dataflow, arch, peak, inner_bus_cycles_total, dram_bw
    )


def _root_coord(layer) -> TileCoord:
    return TileCoord(
        origin={d: 0 for d in Dim},
        extent={
            Dim.W: layer.out_w,
            Dim.H: layer.out_h,
            Dim.C: layer.c,
            Dim.K: layer.k,
            Dim.F: layer.out_f,
        },
    )


# ----------------------------------------------------------------------
# Scalar reference walk
# ----------------------------------------------------------------------
def _simulate_scalar(
    dataflow: Dataflow,
    arch: AcceleratorConfig,
    peak: float,
    inner_bus_cycles_total: float,
    dram_bw: float,
) -> PipelineReport:
    layer = dataflow.layer
    precision = arch.precision
    root = _root_coord(layer)
    coords = list(
        iter_tiles(
            root.origin, root.extent,
            dataflow.hierarchy.outermost, dataflow.outer_order,
        )
    )
    total_maccs = layer.maccs
    total_tile_maccs = sum(
        c.extent[Dim.W] * c.extent[Dim.H] * c.extent[Dim.F]
        * c.extent[Dim.K] * c.extent[Dim.C]
        for c in coords
    ) * layer.r * layer.s * layer.t
    assert total_tile_maccs == total_maccs, "schedule must cover the layer"

    inner_share = inner_bus_cycles_total / len(coords)

    timings = []
    previous = None
    for coord in coords:
        load_bytes, drain_bytes = _tile_io_bytes(layer, coord, previous, precision)
        maccs = (
            coord.extent[Dim.W] * coord.extent[Dim.H] * coord.extent[Dim.F]
            * coord.extent[Dim.K] * coord.extent[Dim.C]
            * layer.r * layer.s * layer.t
        )
        timings.append(
            TileTiming(
                load_cycles=load_bytes / dram_bw,
                compute_cycles=max(maccs / peak, inner_share),
                drain_cycles=drain_bytes / dram_bw,
            )
        )
        previous = coord

    # Double-buffered schedule: tile i computes while tile i+1 loads and
    # tile i-1 drains; each step advances by the slowest of the three.
    cycles = timings[0].load_cycles  # prologue: first fill cannot overlap
    load_bound = compute_bound = 0
    for i, timing in enumerate(timings):
        next_load = timings[i + 1].load_cycles if i + 1 < len(timings) else 0.0
        prev_drain = timings[i - 1].drain_cycles if i > 0 else 0.0
        step = max(timing.compute_cycles, next_load, prev_drain)
        if next_load > timing.compute_cycles:
            load_bound += 1
        else:
            compute_bound += 1
        cycles += step
    cycles += timings[-1].drain_cycles  # epilogue

    return PipelineReport(
        tiles=len(coords),
        cycles=cycles,
        load_bound_tiles=load_bound,
        compute_bound_tiles=compute_bound,
        prologue_cycles=timings[0].load_cycles,
    )


# ----------------------------------------------------------------------
# Columnar pass
# ----------------------------------------------------------------------
def _simulate_columnar(
    dataflow: Dataflow,
    arch: AcceleratorConfig,
    peak: float,
    inner_bus_cycles_total: float,
    dram_bw: float,
    backend: KernelBackend | None = None,
) -> PipelineReport:
    """One-table re-expression of the scalar walk over the outer schedule.

    Tensor movement between consecutive tiles is a shifted-array
    comparison over the tensor's relevant dims; the double-buffered step
    recurrence ``cycles += max(compute, next load, prev drain)`` reduces
    with a sequential ``cumsum`` over ``[prologue, steps..., epilogue]``,
    reproducing the scalar left-to-right float accumulation bit for bit.
    """
    import numpy as np

    from repro.core.batch import DIM_INDEX
    from repro.sim.tiled_executor import schedule_tables

    layer = dataflow.layer
    precision = arch.precision
    table = schedule_tables(dataflow, levels=1)[0]
    n = len(table)
    ext = table.extent
    w, h, c, k, f = (ext[DIM_INDEX[d]] for d in (Dim.W, Dim.H, Dim.C, Dim.K, Dim.F))

    maccs = (w * h * f * k * c) * (layer.r * layer.s * layer.t)
    assert int(maccs.sum()) == layer.maccs, "schedule must cover the layer"

    def moved(dims) -> np.ndarray:
        rows = [DIM_INDEX[d] for d in dims]
        flags = np.empty(n, dtype=bool)
        flags[0] = True
        flags[1:] = (
            (table.origin[rows, 1:] != table.origin[rows, :-1])
            | (ext[rows, 1:] != ext[rows, :-1])
        ).any(axis=0)
        return flags

    if backend is None:
        in_elems = input_tile_elements_kernel
        wt_elems = weight_tile_elements_kernel
        ps_elems = psum_tile_elements_kernel
    else:
        in_elems = backend.kernel_impl(input_tile_elements_kernel)
        wt_elems = backend.kernel_impl(weight_tile_elements_kernel)
        ps_elems = backend.kernel_impl(psum_tile_elements_kernel)
    in_bytes = in_elems(layer, w, h, c, f) * precision.activation_bytes
    wt_bytes = wt_elems(layer, c, k) * precision.weight_bytes
    ps_bytes = ps_elems(w, h, k, f) * precision.activation_bytes

    load_bytes = (
        moved((Dim.W, Dim.H, Dim.C, Dim.F)) * in_bytes
        + moved((Dim.C, Dim.K)) * wt_bytes
    ).astype(np.float64)
    drain_bytes = (moved((Dim.W, Dim.H, Dim.K, Dim.F)) * ps_bytes).astype(
        np.float64
    )

    load_cycles = load_bytes / dram_bw
    drain_cycles = drain_bytes / dram_bw
    inner_share = inner_bus_cycles_total / n
    compute_cycles = np.maximum(maccs / peak, inner_share)

    next_load = np.concatenate([load_cycles[1:], [0.0]])
    prev_drain = np.concatenate([[0.0], drain_cycles[:-1]])
    steps = np.maximum(np.maximum(compute_cycles, next_load), prev_drain)
    load_bound = int((next_load > compute_cycles).sum())

    # cumsum is the sequential left-to-right accumulation the scalar loop
    # performs — same association order, bit-identical total.
    timeline = np.concatenate(
        [load_cycles[:1], steps, drain_cycles[-1:]]
    )
    cycles = float(np.cumsum(timeline)[-1])

    return PipelineReport(
        tiles=n,
        cycles=cycles,
        load_bound_tiles=load_bound,
        compute_bound_tiles=n - load_bound,
        prologue_cycles=float(load_cycles[0]),
    )


#: Working bytes per outer-schedule row in the chunked pipeline pass:
#: stacked origin/extent columns plus byte, mask and cycle columns.
_PIPE_ROW_WORKSPACE = 256


def _simulate_columnar_chunked(
    dataflow: Dataflow,
    arch: AcceleratorConfig,
    peak: float,
    inner_bus_cycles_total: float,
    dram_bw: float,
    backend: KernelBackend,
    max_table_bytes: int,
) -> PipelineReport:
    """The columnar pass streamed in row chunks under a memory cap.

    The double-buffered step of a tile needs the *next* tile's load
    time, so the last row of each chunk is held pending until the next
    chunk (or the end of the schedule) supplies its successor.  Cycle
    totals accumulate with a carried ``cumsum`` — the running total is
    prepended to each chunk's step column — which reproduces the scalar
    loop's left-to-right float association exactly, so the report is
    bit-identical to the unchunked pass.
    """
    import numpy as np

    from repro.core.batch import DIM_INDEX, full_extents
    from repro.sim.tiled_executor import (
        TABLE_ROW_BYTES,
        child_counts,
        iter_boundary_chunks,
    )

    layer = dataflow.layer
    precision = arch.precision
    in_elems = backend.kernel_impl(input_tile_elements_kernel)
    wt_elems = backend.kernel_impl(weight_tile_elements_kernel)
    ps_elems = backend.kernel_impl(psum_tile_elements_kernel)

    n = int(
        child_counts(
            full_extents(layer)[:, None],
            dataflow.hierarchy.outermost,
            dataflow.outer_order,
        ).sum()
    )
    inner_share = inner_bus_cycles_total / n
    max_rows = plan_chunk_rows(
        TABLE_ROW_BYTES + _PIPE_ROW_WORKSPACE, max_table_bytes
    )

    in_rows = [DIM_INDEX[d] for d in (Dim.W, Dim.H, Dim.C, Dim.F)]
    wt_rows = [DIM_INDEX[d] for d in (Dim.C, Dim.K)]
    ps_rows = [DIM_INDEX[d] for d in (Dim.W, Dim.H, Dim.K, Dim.F)]

    cycles = 0.0
    prologue = 0.0
    load_bound = 0
    total_maccs = 0
    prev_col = None  #: (10, 1) carried origin+extent of the previous row
    pending = None  #: (compute, drain, prev_drain) of the previous row
    for chunk in iter_boundary_chunks(dataflow, 0, max_rows):
        rows_n = len(chunk)
        ext = chunk.extent
        w, h, c, k, f = (
            ext[DIM_INDEX[d]] for d in (Dim.W, Dim.H, Dim.C, Dim.K, Dim.F)
        )
        maccs = (w * h * f * k * c) * (layer.r * layer.s * layer.t)
        total_maccs += int(maccs.sum())
        coords = np.concatenate([chunk.origin, ext])  # (10, rows_n)
        if prev_col is None:
            prev_col = coords[:, :1] - 1  # synthetic: every tensor moves
        shifted = np.concatenate([prev_col, coords[:, :-1]], axis=1)

        def moved(dim_rows, coords=coords, shifted=shifted):
            both = dim_rows + [r + 5 for r in dim_rows]
            return (coords[both] != shifted[both]).any(axis=0)

        in_bytes = in_elems(layer, w, h, c, f) * precision.activation_bytes
        wt_bytes = wt_elems(layer, c, k) * precision.weight_bytes
        ps_bytes = ps_elems(w, h, k, f) * precision.activation_bytes
        load_cycles = (
            moved(in_rows) * in_bytes + moved(wt_rows) * wt_bytes
        ).astype(np.float64) / dram_bw
        drain_cycles = (moved(ps_rows) * ps_bytes).astype(np.float64) / dram_bw
        compute_cycles = np.maximum(maccs / peak, inner_share)

        if pending is None:
            # Prologue: the global first fill cannot overlap anything.
            cycles = prologue = float(load_cycles[0])
            head = np.empty(0, dtype=np.float64)
            prev_drain0 = 0.0
        else:
            p_compute, p_drain, p_prev_drain = pending
            head_load = float(load_cycles[0])
            head = np.array(
                [max(p_compute, head_load, p_prev_drain)], dtype=np.float64
            )
            load_bound += head_load > p_compute
            prev_drain0 = p_drain
        # Steps of chunk rows 0..rows_n-2; the last row goes pending.
        next_load = load_cycles[1:]
        prev_drain = np.concatenate([[prev_drain0], drain_cycles[: rows_n - 2]])
        steps = np.maximum(
            np.maximum(compute_cycles[: rows_n - 1], next_load),
            prev_drain[: rows_n - 1],
        )
        load_bound += int((next_load > compute_cycles[: rows_n - 1]).sum())
        cycles = float(np.cumsum(np.concatenate([[cycles], head, steps]))[-1])
        pending = (
            float(compute_cycles[-1]),
            float(drain_cycles[-1]),
            float(drain_cycles[-2]) if rows_n >= 2 else prev_drain0,
        )
        prev_col = coords[:, -1:].copy()

    assert total_maccs == layer.maccs, "schedule must cover the layer"
    assert pending is not None
    # The global last tile: no successor load, then the epilogue drain.
    p_compute, p_drain, p_prev_drain = pending
    last_step = max(p_compute, p_prev_drain)
    cycles = float(np.cumsum(np.array([cycles, last_step, p_drain]))[-1])

    return PipelineReport(
        tiles=n,
        cycles=cycles,
        load_bound_tiles=load_bound,
        compute_bound_tiles=n - load_bound,
        prologue_cycles=prologue,
    )
