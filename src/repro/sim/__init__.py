"""Functional simulators that validate the analytic models.

* :mod:`repro.sim.conv3d_ref` — numpy reference 3D convolution
  (Algorithm 1 of the paper).
* :mod:`repro.sim.tiled_executor` — executes a configuration's actual tile
  schedule; must be bit-identical to the reference for every legal config.
* :mod:`repro.sim.trace` — walks the schedule with buffer-residency
  tracking; the analytic access model must agree exactly on
  evenly-dividing shapes.
"""
