"""Functional simulators that validate the analytic models.

* :mod:`repro.sim.conv3d_ref` — numpy reference 3D convolution
  (Algorithm 1 of the paper).
* :mod:`repro.sim.tiled_executor` — executes a configuration's actual tile
  schedule; must be bit-identical to the reference for every legal config.
  Also home of the **columnar schedule lowering** (:func:`tile_table` /
  :func:`schedule_tables`): a dataflow's complete multi-level tile
  schedule materialised as NumPy origin/extent coordinate tables, one row
  per tile visit, in exact scalar visit order.
* :mod:`repro.sim.trace` — walks the schedule with buffer-residency
  tracking; the analytic access model must agree exactly on
  evenly-dividing shapes.
* :mod:`repro.sim.pipeline_sim` — double-buffered pipeline timing over
  the outer tile schedule, cross-checking the analytic cycle model.

The trace and pipeline simulators each have two interchangeable paths:
the scalar tile-by-tile reference walk, and a columnar event pipeline
that computes region intervals, fill/writeback bytes, slide-reuse
credits and per-tile timing as array passes over the coordinate tables
(shifted-array diffs instead of per-iteration dict/tuple work).  Both
paths evaluate the same shared ``*_kernel`` formulas, and their counters
and cycle totals are **bit-identical** — pinned by
``tests/test_sim_equivalence.py`` — so the columnar path is purely a
speed knob (``vectorize=`` argument, engine defaults, or the
``REPRO_VECTORIZE`` environment variable), fast enough to validate every
registered network in the slow CI tier.
"""
