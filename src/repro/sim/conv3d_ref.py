"""Reference 3D convolution (numpy) — functional ground truth.

Implements Algorithm 1 of the paper directly (as a vectorised einsum over
extracted windows plus a naive loop version for cross-checking).  The tiled
executor must produce bit-identical results to :func:`conv3d_reference`
under every tiling/loop-order configuration — the paper's observation that
"the result of 3D convolution remains the same irrespective of the loop
order" (Section II-E) becomes a testable property.
"""

from __future__ import annotations

import numpy as np

from repro.core.layer import ConvLayer


def make_inputs(layer: ConvLayer, rng: np.random.Generator) -> np.ndarray:
    """Random int32 input tensor, shape (C, F, H, W)."""
    return rng.integers(-8, 8, size=(layer.c, layer.f, layer.h, layer.w)).astype(
        np.int64
    )


def make_weights(layer: ConvLayer, rng: np.random.Generator) -> np.ndarray:
    """Random int32 weights, shape (K, C, T, R, S)."""
    return rng.integers(
        -8, 8, size=(layer.k, layer.c, layer.t, layer.r, layer.s)
    ).astype(np.int64)


def pad_inputs(layer: ConvLayer, inputs: np.ndarray) -> np.ndarray:
    """Apply the layer's zero padding; result shape (C, F+2pf, H+2ph, W+2pw)."""
    return np.pad(
        inputs,
        (
            (0, 0),
            (layer.pad_f, layer.pad_f),
            (layer.pad_h, layer.pad_h),
            (layer.pad_w, layer.pad_w),
        ),
    )


def conv3d_reference(
    layer: ConvLayer, inputs: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Dense 3D convolution; output shape (K, F_out, H_out, W_out)."""
    _check_shapes(layer, inputs, weights)
    padded = pad_inputs(layer, inputs)
    out = np.zeros(
        (layer.k, layer.out_f, layer.out_h, layer.out_w), dtype=np.int64
    )
    for t in range(layer.t):
        for r in range(layer.r):
            for s in range(layer.s):
                window = padded[
                    :,
                    t : t + layer.out_f * layer.stride_f : layer.stride_f,
                    r : r + layer.out_h * layer.stride_h : layer.stride_h,
                    s : s + layer.out_w * layer.stride_w : layer.stride_w,
                ]
                # (K, C) x (C, F, H, W) -> (K, F, H, W)
                out += np.einsum(
                    "kc,cfhw->kfhw", weights[:, :, t, r, s], window
                )
    return out


def conv3d_naive(
    layer: ConvLayer, inputs: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Direct loop-nest transliteration of the paper's Algorithm 1.

    Exponentially slower than :func:`conv3d_reference`; used in tests on
    tiny layers to validate the vectorised version itself.
    """
    _check_shapes(layer, inputs, weights)
    padded = pad_inputs(layer, inputs)
    out = np.zeros(
        (layer.k, layer.out_f, layer.out_h, layer.out_w), dtype=np.int64
    )
    for k in range(layer.k):
        for f in range(layer.out_f):
            for h in range(layer.out_h):
                for w in range(layer.out_w):
                    acc = 0
                    for c in range(layer.c):
                        for t in range(layer.t):
                            for r in range(layer.r):
                                for s in range(layer.s):
                                    acc += (
                                        padded[
                                            c,
                                            f * layer.stride_f + t,
                                            h * layer.stride_h + r,
                                            w * layer.stride_w + s,
                                        ]
                                        * weights[k, c, t, r, s]
                                    )
                    out[k, f, h, w] = acc
    return out


def conv2d_reference(
    layer: ConvLayer, inputs: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """2D convolution through the 3D path (F = T = 1), Section II-B remark."""
    if not layer.is_2d:
        raise ValueError(f"{layer.name} is not a 2D layer")
    return conv3d_reference(layer, inputs, weights)


def _check_shapes(layer: ConvLayer, inputs: np.ndarray, weights: np.ndarray) -> None:
    expected_in = (layer.c, layer.f, layer.h, layer.w)
    expected_w = (layer.k, layer.c, layer.t, layer.r, layer.s)
    if inputs.shape != expected_in:
        raise ValueError(f"inputs shape {inputs.shape} != {expected_in}")
    if weights.shape != expected_w:
        raise ValueError(f"weights shape {weights.shape} != {expected_w}")
