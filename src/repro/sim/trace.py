"""Residency-tracking trace simulator for validating the analytic model.

Walks the *complete* multi-level tile schedule of a dataflow (every loop
iteration at every boundary) maintaining, per buffer level and data type,
which global tile region is currently resident.  A mismatch between needed
and resident region is a fill; evicting a dirty psum region is a writeback;
slide reuse is credited when the new input region differs from the resident
one along exactly one axis with overlap (the paper's "do not re-fetch the
overlapped region in the major dimension").

This is exponentially slower than :func:`repro.core.access_model.
compute_traffic` but assumption-free: the test suite asserts exact
agreement on evenly-dividing shapes and close agreement elsewhere (the
analytic model approximates ragged-edge trip counts).
"""

from __future__ import annotations

import dataclasses

from repro.core.dataflow import Dataflow
from repro.core.dims import ALL_DATA_TYPES, DataType, Dim
from repro.core.layer import ConvLayer
from repro.core.tiling import DEFAULT_PRECISION, Precision, kernel_and_stride
from repro.sim.tiled_executor import TileCoord, iter_tiles

#: Axes of each data type's storage region, in a fixed order.
_REGION_DIMS: dict[DataType, tuple[Dim, ...]] = {
    DataType.INPUTS: (Dim.W, Dim.H, Dim.C, Dim.F),
    DataType.WEIGHTS: (Dim.C, Dim.K),
    DataType.PSUMS: (Dim.W, Dim.H, Dim.K, Dim.F),
}


def _interval(
    layer: ConvLayer, data_type: DataType, dim: Dim, origin: int, extent: int
) -> tuple[int, int]:
    """Half-open storage interval along one axis (input space for sliding
    dims of inputs, element space otherwise)."""
    if data_type is DataType.INPUTS and dim in (Dim.W, Dim.H, Dim.F):
        kernel, stride = kernel_and_stride(layer, dim)
        start = origin * stride
        length = (extent - 1) * stride + kernel
        return (start, start + length)
    return (origin, origin + extent)


def _region(
    layer: ConvLayer, data_type: DataType, coord: TileCoord
) -> tuple[tuple[int, int], ...]:
    return tuple(
        _interval(layer, data_type, dim, coord.origin[dim], coord.extent[dim])
        for dim in _REGION_DIMS[data_type]
    )


def _region_bytes(
    region: tuple[tuple[int, int], ...], elem_bytes: int, per_point: int = 1
) -> int:
    """``per_point`` carries the untiled R*S*T factor for weight regions."""
    size = elem_bytes * per_point
    for lo, hi in region:
        size *= hi - lo
    return size


def _fetch_bytes_with_slide(
    new: tuple[tuple[int, int], ...],
    old: tuple[tuple[int, int], ...] | None,
    elem_bytes: int,
) -> int:
    """Bytes to load ``new`` given ``old`` resident, with slide reuse.

    Reuse is credited only for a *forward* slide along exactly one axis —
    the paper's major-dimension slide.  A backward wrap (the major dim
    resetting when an outer loop steps) refetches in full, because by then
    the overlapped rows have been overwritten by later tiles.
    """
    full = _region_bytes(new, elem_bytes)
    if old is None:
        return full
    differing = [i for i, (n, o) in enumerate(zip(new, old)) if n != o]
    if len(differing) != 1:
        return full
    axis = differing[0]
    n_lo, n_hi = new[axis]
    o_lo, o_hi = old[axis]
    if n_lo <= o_lo:
        return full  # backward or in-place: no slide credit
    overlap = max(0, min(n_hi, o_hi) - max(n_lo, o_lo))
    if overlap == 0:
        return full
    reused = elem_bytes * overlap
    for i, (lo, hi) in enumerate(new):
        if i != axis:
            reused *= hi - lo
    return full - reused


@dataclasses.dataclass
class TraceBoundary:
    """Observed traffic at one boundary (child-level fills/evictions)."""

    fills: dict[DataType, int]
    fill_bytes: dict[DataType, int]
    psum_load_bytes: int = 0
    psum_writeback_bytes: int = 0


@dataclasses.dataclass
class TraceReport:
    """Trace-simulator counterpart of :class:`TrafficReport`."""

    layer: ConvLayer
    boundaries: list[TraceBoundary]
    precision: Precision

    def dram_psum_writeback_bytes(self) -> int:
        """With the final-output width adjustment the analytic model uses:
        spills at psum width, final outputs at activation width."""
        raw = self.boundaries[0].psum_writeback_bytes
        out_psum = self.layer.output_elements * self.precision.psum_bytes
        out_act = self.layer.output_elements * self.precision.activation_bytes
        return raw - out_psum + out_act


class _LevelState:
    def __init__(self) -> None:
        self.resident: dict[DataType, tuple | None] = {
            dt: None for dt in ALL_DATA_TYPES
        }
        self.visited_psums: set[tuple] = set()


def trace_dataflow(
    dataflow: Dataflow, precision: Precision = DEFAULT_PRECISION
) -> TraceReport:
    """Simulate the full schedule and return observed per-boundary traffic."""
    layer = dataflow.layer
    levels = dataflow.hierarchy.levels
    states = [_LevelState() for _ in range(levels)]
    boundaries = [
        TraceBoundary(
            fills={dt: 0 for dt in ALL_DATA_TYPES},
            fill_bytes={dt: 0 for dt in ALL_DATA_TYPES},
        )
        for _ in range(levels)
    ]

    weight_taps = layer.r * layer.s * layer.t

    def visit(level_index: int, region_coord: TileCoord) -> None:
        tile = dataflow.hierarchy.tiles[level_index]
        order = dataflow.order_for_boundary(level_index)
        state = states[level_index]
        boundary = boundaries[level_index]
        for index, coord in enumerate(
            iter_tiles(region_coord.origin, region_coord.extent, tile, order)
        ):
            run_start = index == 0
            for data_type in ALL_DATA_TYPES:
                needed = _region(layer, data_type, coord)
                resident = state.resident[data_type]
                if needed == resident:
                    continue
                elem = precision.bytes_of(data_type)
                if data_type is DataType.PSUMS:
                    if resident is not None:
                        boundary.psum_writeback_bytes += _region_bytes(
                            resident, elem
                        )
                    boundary.fills[data_type] += 1
                    boundary.fill_bytes[data_type] += _region_bytes(needed, elem)
                    if needed in state.visited_psums:
                        boundary.psum_load_bytes += _region_bytes(needed, elem)
                    state.visited_psums.add(needed)
                elif data_type is DataType.INPUTS:
                    boundary.fills[data_type] += 1
                    # Slide reuse only applies within one execution of this
                    # boundary's loop nest: a fill triggered by the parent
                    # tile changing lands in a freshly swapped double
                    # buffer and cannot reuse stale rows.
                    boundary.fill_bytes[data_type] += (
                        _region_bytes(needed, elem)
                        if run_start
                        else _fetch_bytes_with_slide(needed, resident, elem)
                    )
                else:
                    boundary.fills[data_type] += 1
                    boundary.fill_bytes[data_type] += _region_bytes(
                        needed, elem, weight_taps
                    )
                state.resident[data_type] = needed
            if level_index + 1 < levels:
                visit(level_index + 1, coord)

    root = TileCoord(
        origin={d: 0 for d in Dim},
        extent={
            Dim.W: layer.out_w,
            Dim.H: layer.out_h,
            Dim.C: layer.c,
            Dim.K: layer.k,
            Dim.F: layer.out_f,
        },
    )
    visit(0, root)

    # End-of-layer flush: resident dirty psums drain up the hierarchy.
    psum_bytes = precision.bytes_of(DataType.PSUMS)
    for state, boundary in zip(states, boundaries):
        resident = state.resident[DataType.PSUMS]
        if resident is not None:
            boundary.psum_writeback_bytes += _region_bytes(resident, psum_bytes)

    return TraceReport(layer=layer, boundaries=boundaries, precision=precision)
