"""Residency-tracking trace simulator for validating the analytic model.

Walks the *complete* multi-level tile schedule of a dataflow (every loop
iteration at every boundary) maintaining, per buffer level and data type,
which global tile region is currently resident.  A mismatch between needed
and resident region is a fill; evicting a dirty psum region is a writeback;
slide reuse is credited when the new input region differs from the resident
one along exactly one axis with overlap (the paper's "do not re-fetch the
overlapped region in the major dimension").

Columnar event pipeline
-----------------------
The simulator has two interchangeable execution paths:

* the **scalar walk** (``vectorize=False``) — the original recursive
  tile-by-tile reference, assumption-free and dependency-free;
* the **columnar pass** (``vectorize=True``, the default when NumPy
  imports) — the full schedule is lowered into per-level coordinate
  tables (:func:`repro.sim.tiled_executor.schedule_tables`) and every
  residency decision becomes an array expression: region intervals are
  computed for all visits at once, fills are found by diffing consecutive
  rows with shifted-array comparisons, slide credits by the per-axis
  overlap kernel, and psum revisit loads by a first-occurrence scan over
  packed region identities.

Both paths evaluate the *same* region/byte/slide formulas — the shared
scalar/array-agnostic ``*_kernel`` helpers below — so they are provably
one simulator, not a fork, and their per-level fill/writeback/slide
counters are **bit-identical** (pinned by ``tests/test_sim_equivalence.py``
and the equivalence suites).  The columnar pass is what makes validating
full registered networks feasible; the scalar walk stays as the reference
and escape hatch.  Select per call (``vectorize=``), process-wide
(the active :class:`repro.api.Session`'s ``vectorize``, the deprecated
:func:`repro.optimizer.engine.set_engine_defaults`) or via the
``REPRO_VECTORIZE`` environment variable.

This is exponentially slower than :func:`repro.core.access_model.
compute_traffic` but assumption-free: the test suite asserts exact
agreement on evenly-dividing shapes and close agreement elsewhere (the
analytic model approximates ragged-edge trip counts).
"""

from __future__ import annotations

import dataclasses

from repro.core.backend import (
    KernelBackend,
    plan_chunk_rows,
    resolve_kernel_backend,
    resolve_max_table_bytes,
)
from repro.core.dataflow import Dataflow
from repro.core.dims import ALL_DATA_TYPES, DataType, Dim
from repro.core.layer import ConvLayer
from repro.core.tiling import (
    DEFAULT_PRECISION,
    Precision,
    kernel_and_stride,
    minimum_kernel,
)
from repro.sim.tiled_executor import TileCoord, iter_tiles

#: Axes of each data type's storage region, in a fixed order.
_REGION_DIMS: dict[DataType, tuple[Dim, ...]] = {
    DataType.INPUTS: (Dim.W, Dim.H, Dim.C, Dim.F),
    DataType.WEIGHTS: (Dim.C, Dim.K),
    DataType.PSUMS: (Dim.W, Dim.H, Dim.K, Dim.F),
}


# ----------------------------------------------------------------------
# Scalar/array-agnostic formula kernels (shared by both execution paths)
# ----------------------------------------------------------------------
def interval_kernel(origin, extent, span, stride):
    """Half-open storage interval ``(lo, hi)`` along one region axis.

    Sliding input dims pass their input-space filter ``span`` and
    ``stride``; element-space axes (channels, filters, psum dims) pass
    ``span = stride = 1``, collapsing to ``(origin, origin + extent)``.
    """
    lo = origin * stride
    return lo, lo + (extent - 1) * stride + span


def region_bytes_kernel(elem, per_point, *axis_lengths):
    """Byte size of a region: ``elem * per_point * prod(axis lengths)``.

    ``per_point`` carries the untiled ``R*S*T`` taps for weight regions.
    """
    size = elem * per_point
    for length in axis_lengths:
        size = size * length
    return size


def slide_reuse_kernel(new_lo, new_hi, old_lo, old_hi):
    """Overlap length credited for a slide along one axis.

    Reuse applies only to a *forward* slide (the paper's major-dimension
    slide): a backward wrap refetches in full because the overlapped rows
    were overwritten by later tiles.  Returns 0 for backward, in-place or
    disjoint moves — pure arithmetic, so it evaluates identically for
    Python ints and NumPy columns.
    """
    overlap = minimum_kernel(new_hi, old_hi) - (
        old_lo + (new_lo - old_lo) * (new_lo > old_lo)  # max(new_lo, old_lo)
    )
    overlap = overlap * (overlap > 0)
    return overlap * (new_lo > old_lo)


def _span_stride(
    layer: ConvLayer, data_type: DataType, dim: Dim
) -> tuple[int, int]:
    """(span, stride) feeding :func:`interval_kernel` for one region axis:
    the dilated filter span for sliding input dims, identity otherwise."""
    if data_type is DataType.INPUTS and dim in (Dim.W, Dim.H, Dim.F):
        return kernel_and_stride(layer, dim)
    return (1, 1)


def _interval(
    layer: ConvLayer, data_type: DataType, dim: Dim, origin: int, extent: int
) -> tuple[int, int]:
    """Half-open storage interval along one axis (input space for sliding
    dims of inputs, element space otherwise)."""
    span, stride = _span_stride(layer, data_type, dim)
    return interval_kernel(origin, extent, span, stride)


def _region(
    layer: ConvLayer, data_type: DataType, coord: TileCoord
) -> tuple[tuple[int, int], ...]:
    return tuple(
        _interval(layer, data_type, dim, coord.origin[dim], coord.extent[dim])
        for dim in _REGION_DIMS[data_type]
    )


def _region_bytes(
    region: tuple[tuple[int, int], ...], elem_bytes: int, per_point: int = 1
) -> int:
    return region_bytes_kernel(
        elem_bytes, per_point, *(hi - lo for lo, hi in region)
    )


def _fetch_bytes_with_slide(
    new: tuple[tuple[int, int], ...],
    old: tuple[tuple[int, int], ...] | None,
    elem_bytes: int,
) -> int:
    """Bytes to load ``new`` given ``old`` resident, with slide reuse.

    Reuse is credited only for a *forward* slide along exactly one axis
    (see :func:`slide_reuse_kernel`); any other move refetches in full.
    """
    full = _region_bytes(new, elem_bytes)
    if old is None:
        return full
    differing = [i for i, (n, o) in enumerate(zip(new, old)) if n != o]
    if len(differing) != 1:
        return full
    axis = differing[0]
    reused = elem_bytes * slide_reuse_kernel(*new[axis], *old[axis])
    for i, (lo, hi) in enumerate(new):
        if i != axis:
            reused *= hi - lo
    return full - reused


@dataclasses.dataclass
class TraceBoundary:
    """Observed traffic at one boundary (child-level fills/evictions)."""

    fills: dict[DataType, int]
    fill_bytes: dict[DataType, int]
    psum_load_bytes: int = 0
    psum_writeback_bytes: int = 0


@dataclasses.dataclass
class TraceReport:
    """Trace-simulator counterpart of :class:`TrafficReport`."""

    layer: ConvLayer
    boundaries: list[TraceBoundary]
    precision: Precision

    def dram_psum_writeback_bytes(self) -> int:
        """With the final-output width adjustment the analytic model uses:
        spills at psum width, final outputs at activation width."""
        raw = self.boundaries[0].psum_writeback_bytes
        out_psum = self.layer.output_elements * self.precision.psum_bytes
        out_act = self.layer.output_elements * self.precision.activation_bytes
        return raw - out_psum + out_act


class _LevelState:
    def __init__(self) -> None:
        self.resident: dict[DataType, tuple | None] = {
            dt: None for dt in ALL_DATA_TYPES
        }
        self.visited_psums: set[tuple] = set()


def _empty_boundaries(levels: int) -> list[TraceBoundary]:
    return [
        TraceBoundary(
            fills={dt: 0 for dt in ALL_DATA_TYPES},
            fill_bytes={dt: 0 for dt in ALL_DATA_TYPES},
        )
        for _ in range(levels)
    ]


def _resolve_vectorize(vectorize: bool | None) -> bool:
    """Resolve the knob like the optimizer engine: explicit argument,
    else :func:`~repro.optimizer.engine.default_vectorize` (honouring
    the active session, ``set_engine_defaults`` and ``REPRO_VECTORIZE``);
    either way the
    columnar path needs NumPy."""
    from repro.core import batch

    if vectorize is None:
        from repro.optimizer.engine import default_vectorize

        return default_vectorize() and batch.available
    return bool(vectorize) and batch.available


def trace_dataflow(
    dataflow: Dataflow,
    precision: Precision = DEFAULT_PRECISION,
    *,
    vectorize: bool | None = None,
    kernel_backend: str | None = None,
    max_table_bytes: int | None = None,
) -> TraceReport:
    """Simulate the full schedule and return observed per-boundary traffic.

    ``vectorize`` selects the columnar pass (default: on when NumPy is
    available, following the engine's knob and ``REPRO_VECTORIZE``); the
    scalar walk is the reference path.  ``kernel_backend`` picks the
    kernel-execution backend for the columnar pass and
    ``max_table_bytes`` caps its peak table memory by streaming the
    schedule in chunks with carried residency state (``None`` knobs
    defer to the scoped defaults).  Counters are bit-identical across
    every path, backend and chunking.
    """
    if _resolve_vectorize(vectorize):
        backend = resolve_kernel_backend(kernel_backend)
        cap = resolve_max_table_bytes(max_table_bytes)
        if cap is not None:
            return _trace_columnar_chunked(dataflow, precision, backend, cap)
        return _trace_columnar(dataflow, precision, backend)
    return _trace_scalar(dataflow, precision)


# ----------------------------------------------------------------------
# Scalar reference walk
# ----------------------------------------------------------------------
def _trace_scalar(dataflow: Dataflow, precision: Precision) -> TraceReport:
    layer = dataflow.layer
    levels = dataflow.hierarchy.levels
    states = [_LevelState() for _ in range(levels)]
    boundaries = _empty_boundaries(levels)

    weight_taps = layer.r * layer.s * layer.t

    def visit(level_index: int, region_coord: TileCoord) -> None:
        tile = dataflow.hierarchy.tiles[level_index]
        order = dataflow.order_for_boundary(level_index)
        state = states[level_index]
        boundary = boundaries[level_index]
        for index, coord in enumerate(
            iter_tiles(region_coord.origin, region_coord.extent, tile, order)
        ):
            run_start = index == 0
            for data_type in ALL_DATA_TYPES:
                needed = _region(layer, data_type, coord)
                resident = state.resident[data_type]
                if needed == resident:
                    continue
                elem = precision.bytes_of(data_type)
                if data_type is DataType.PSUMS:
                    if resident is not None:
                        boundary.psum_writeback_bytes += _region_bytes(
                            resident, elem
                        )
                    boundary.fills[data_type] += 1
                    boundary.fill_bytes[data_type] += _region_bytes(needed, elem)
                    if needed in state.visited_psums:
                        boundary.psum_load_bytes += _region_bytes(needed, elem)
                    state.visited_psums.add(needed)
                elif data_type is DataType.INPUTS:
                    boundary.fills[data_type] += 1
                    # Slide reuse only applies within one execution of this
                    # boundary's loop nest: a fill triggered by the parent
                    # tile changing lands in a freshly swapped double
                    # buffer and cannot reuse stale rows.
                    boundary.fill_bytes[data_type] += (
                        _region_bytes(needed, elem)
                        if run_start
                        else _fetch_bytes_with_slide(needed, resident, elem)
                    )
                else:
                    boundary.fills[data_type] += 1
                    boundary.fill_bytes[data_type] += _region_bytes(
                        needed, elem, weight_taps
                    )
                state.resident[data_type] = needed
            if level_index + 1 < levels:
                visit(level_index + 1, coord)

    root = TileCoord(
        origin={d: 0 for d in Dim},
        extent={
            Dim.W: layer.out_w,
            Dim.H: layer.out_h,
            Dim.C: layer.c,
            Dim.K: layer.k,
            Dim.F: layer.out_f,
        },
    )
    visit(0, root)

    # End-of-layer flush: resident dirty psums drain up the hierarchy.
    psum_bytes = precision.bytes_of(DataType.PSUMS)
    for state, boundary in zip(states, boundaries):
        resident = state.resident[DataType.PSUMS]
        if resident is not None:
            boundary.psum_writeback_bytes += _region_bytes(resident, psum_bytes)

    return TraceReport(layer=layer, boundaries=boundaries, precision=precision)


# ----------------------------------------------------------------------
# Columnar pass
# ----------------------------------------------------------------------
def _trace_columnar(
    dataflow: Dataflow,
    precision: Precision,
    backend: KernelBackend | None = None,
) -> TraceReport:
    """Array-pass re-expression of the scalar walk, level by level.

    Per boundary, the full visit sequence is one coordinate table; the
    scalar walk's residency question "does this visit's region differ from
    the resident one?" becomes a shifted-array comparison, because the
    resident region at row ``i`` is always row ``i - 1``'s region.
    """
    import numpy as np

    from repro.sim.tiled_executor import schedule_tables

    layer = dataflow.layer
    levels = dataflow.hierarchy.levels
    boundaries = _empty_boundaries(levels)
    weight_taps = layer.r * layer.s * layer.t
    psum_elem = precision.bytes_of(DataType.PSUMS)
    region_bytes = (
        region_bytes_kernel
        if backend is None
        else backend.kernel_impl(region_bytes_kernel)
    )

    for boundary, table in zip(boundaries, schedule_tables(dataflow)):
        for data_type in ALL_DATA_TYPES:
            elem = precision.bytes_of(data_type)
            per_point = weight_taps if data_type is DataType.WEIGHTS else 1
            lo, hi = _interval_columns(layer, data_type, table, backend)
            lengths = hi - lo
            sizes = region_bytes(elem, per_point, *lengths)
            # resident(row i) == region(row i - 1): a fill happens exactly
            # where some axis differs from the previous row.
            axis_differs = (lo[:, 1:] != lo[:, :-1]) | (hi[:, 1:] != hi[:, :-1])
            changed = np.empty(len(table), dtype=bool)
            changed[0] = True
            np.any(axis_differs, axis=0, out=changed[1:])

            boundary.fills[data_type] = int(changed.sum())
            if data_type is DataType.INPUTS:
                boundary.fill_bytes[data_type] = int(
                    sizes[changed].sum()
                    - _slide_credits(
                        lo, hi, lengths, axis_differs, changed,
                        table.first_child, elem, backend,
                    )
                )
            elif data_type is DataType.WEIGHTS:
                boundary.fill_bytes[data_type] = int(sizes[changed].sum())
            else:
                boundary.fill_bytes[data_type] = int(sizes[changed].sum())
                changed_rows = np.flatnonzero(changed)
                # Evicting row i's resident writes back row i-1's region;
                # the end-of-layer flush drains the final resident region.
                boundary.psum_writeback_bytes = int(
                    sizes[changed_rows[1:] - 1].sum() + sizes[-1]
                )
                boundary.psum_load_bytes = int(
                    sizes[changed_rows[_psum_revisits(lo, hi, changed_rows)]].sum()
                )

    return TraceReport(layer=layer, boundaries=boundaries, precision=precision)


#: Working bytes per schedule row in the chunked trace pass: the widest
#: region (4 axes) carries int64 lo/hi interval columns plus size and
#: mask columns alongside the row's coordinates.
_TRACE_ROW_WORKSPACE = 96


class _ChunkTraceState:
    """Carried residency state of one (boundary, data type) row stream."""

    def __init__(self) -> None:
        self.prev_lo = None  #: (axes,) previous row's interval lows
        self.prev_hi = None  #: (axes,) previous row's interval highs
        self.prev_size = 0  #: previous row's region bytes
        self.fills = 0
        self.fill_bytes = 0
        self.writeback = 0
        self.load = 0
        self.seen: set[bytes] = set()  #: packed psum region identities


def _trace_columnar_chunked(
    dataflow: Dataflow,
    precision: Precision,
    backend: KernelBackend,
    max_table_bytes: int,
) -> TraceReport:
    """The columnar pass streamed in row chunks under a memory cap.

    Schedule tables are regenerated chunk by chunk
    (:func:`~repro.sim.tiled_executor.iter_boundary_chunks`) and every
    reduction carries across chunk boundaries: the residency diff of a
    chunk's first row compares against the carried previous row, so
    fills, slide credits, psum writebacks and revisit loads are
    bit-identical to the unchunked pass.  The very first row of each
    stream compares against a synthetic region that differs on every
    axis with zero resident bytes — it fills (like the unchunked
    ``changed[0] = True``), earns no slide credit (multi-axis diff) and
    writes nothing back, with no first-row special case downstream.
    """
    import numpy as np

    from repro.sim.tiled_executor import TABLE_ROW_BYTES, iter_boundary_chunks

    layer = dataflow.layer
    levels = dataflow.hierarchy.levels
    boundaries = _empty_boundaries(levels)
    weight_taps = layer.r * layer.s * layer.t
    region_bytes = backend.kernel_impl(region_bytes_kernel)
    slide_reuse = backend.kernel_impl(slide_reuse_kernel)

    for index in range(levels):
        # Streaming boundary ``index`` keeps one bounded chunk alive per
        # ancestor level, plus this pass's per-row interval workspace.
        max_rows = plan_chunk_rows(
            (index + 1) * TABLE_ROW_BYTES + _TRACE_ROW_WORKSPACE,
            max_table_bytes,
        )
        states = {dt: _ChunkTraceState() for dt in ALL_DATA_TYPES}
        for chunk in iter_boundary_chunks(dataflow, index, max_rows):
            for data_type in ALL_DATA_TYPES:
                state = states[data_type]
                elem = precision.bytes_of(data_type)
                per_point = weight_taps if data_type is DataType.WEIGHTS else 1
                lo, hi = _interval_columns(layer, data_type, chunk, backend)
                lengths = hi - lo
                sizes = region_bytes(elem, per_point, *lengths)
                if state.prev_lo is None:
                    state.prev_lo = lo[:, 0] - 1
                    state.prev_hi = hi[:, 0].copy()
                lo_ext = np.concatenate([state.prev_lo[:, None], lo], axis=1)
                hi_ext = np.concatenate([state.prev_hi[:, None], hi], axis=1)
                # axis_differs[:, r] compares chunk row r to its
                # predecessor (the carry for r == 0).
                axis_differs = (lo_ext[:, 1:] != lo_ext[:, :-1]) | (
                    hi_ext[:, 1:] != hi_ext[:, :-1]
                )
                changed = np.any(axis_differs, axis=0)
                state.fills += int(changed.sum())
                filled = int(sizes[changed].sum())
                if data_type is DataType.INPUTS:
                    eligible = (
                        changed
                        & ~chunk.first_child
                        & (axis_differs.sum(axis=0) == 1)
                    )
                    rows = np.flatnonzero(eligible)
                    if rows.size:
                        axis = np.argmax(axis_differs[:, rows], axis=0)
                        overlap = slide_reuse(
                            lo[axis, rows], hi[axis, rows],
                            lo_ext[axis, rows], hi_ext[axis, rows],
                        )
                        cross = region_bytes(elem, 1, *lengths[:, rows])
                        cross //= lengths[axis, rows]
                        filled -= int((overlap * cross).sum())
                state.fill_bytes += filled
                if data_type is DataType.PSUMS:
                    # Evicting a changed row writes back its predecessor's
                    # region; the synthetic first carry is zero bytes.
                    prev_sizes = np.concatenate(
                        [[state.prev_size], sizes[:-1]]
                    )
                    state.writeback += int(prev_sizes[changed].sum())
                    for row in np.flatnonzero(changed):
                        key = lo[:, row].tobytes() + hi[:, row].tobytes()
                        if key in state.seen:
                            state.load += int(sizes[row])
                        else:
                            state.seen.add(key)
                state.prev_lo = lo[:, -1].copy()
                state.prev_hi = hi[:, -1].copy()
                state.prev_size = int(sizes[-1])
        boundary = boundaries[index]
        for data_type in ALL_DATA_TYPES:
            boundary.fills[data_type] = states[data_type].fills
            boundary.fill_bytes[data_type] = states[data_type].fill_bytes
        # End-of-layer flush: the final resident psum region drains.
        psums = states[DataType.PSUMS]
        boundary.psum_writeback_bytes = psums.writeback + psums.prev_size
        boundary.psum_load_bytes = psums.load

    return TraceReport(layer=layer, boundaries=boundaries, precision=precision)


def _interval_columns(
    layer: ConvLayer,
    data_type: DataType,
    table,
    backend: KernelBackend | None = None,
):
    """``(lo, hi)`` ``(axes, N)`` interval columns of every visit's region."""
    import numpy as np

    from repro.core.batch import DIM_INDEX

    interval = (
        interval_kernel
        if backend is None
        else backend.kernel_impl(interval_kernel)
    )
    los, his = [], []
    for dim in _REGION_DIMS[data_type]:
        span, stride = _span_stride(layer, data_type, dim)
        lo, hi = interval(
            table.origin[DIM_INDEX[dim]], table.extent[DIM_INDEX[dim]],
            span, stride,
        )
        los.append(lo)
        his.append(hi)
    return np.stack(los), np.stack(his)


def _slide_credits(
    lo, hi, lengths, axis_differs, changed, first_child, elem: int,
    backend: KernelBackend | None = None,
) -> int:
    """Total bytes saved by forward single-axis slides, summed over fills.

    The scalar rule: a non-run-start fill whose region differs from the
    resident one along exactly one axis earns the overlap credit of
    :func:`slide_reuse_kernel` times the other axes' extents.  Here the
    per-row differing-axis count and the credited overlap are computed for
    all rows at once; rows with zero credit contribute nothing, exactly
    like the kernel's zero return in the scalar path.
    """
    import numpy as np

    slide_reuse = (
        slide_reuse_kernel
        if backend is None
        else backend.kernel_impl(slide_reuse_kernel)
    )
    region_bytes = (
        region_bytes_kernel
        if backend is None
        else backend.kernel_impl(region_bytes_kernel)
    )
    eligible = changed[1:] & ~first_child[1:] & (axis_differs.sum(axis=0) == 1)
    rows = np.flatnonzero(eligible) + 1  # row index into the full table
    if rows.size == 0:
        return 0
    axis = np.argmax(axis_differs[:, rows - 1], axis=0)
    overlap = slide_reuse(
        lo[axis, rows], hi[axis, rows], lo[axis, rows - 1], hi[axis, rows - 1]
    )
    # sizes = elem * prod(lengths); dividing out the slide axis leaves the
    # cross-section the overlap is multiplied by (exact: lengths >= 1).
    cross_section = region_bytes(elem, 1, *lengths[:, rows])
    cross_section //= lengths[axis, rows]
    return int((overlap * cross_section).sum())


def _psum_revisits(lo, hi, changed_rows):
    """Mask over ``changed_rows``: fills whose region already appeared at
    an earlier fill (the scalar ``visited_psums`` membership test).

    Region identities are packed into single int64 keys (positional
    encoding over the per-axis value ranges) so first-occurrence detection
    is one stable sort; regions too large to pack — far beyond any real
    layer — fall back to a row-wise :func:`numpy.unique`.
    """
    import numpy as np

    fields = np.concatenate(
        [lo[:, changed_rows], hi[:, changed_rows]]
    )  # (2 * axes, fills)
    bases = [int(row.max()) + 1 for row in fields]
    width = 1
    for base in bases:
        width *= base
    if width < 2**62:
        keys = np.zeros(fields.shape[-1], dtype=np.int64)
        for row, base in zip(fields, bases):
            keys *= base
            keys += row
        # Stable sort keeps equal keys in fill order: the first element of
        # each run is the earliest fill of that region, every later one a
        # revisit.
        order = np.argsort(keys, kind="stable")
        ranked = keys[order]
        first = np.empty(len(ranked), dtype=bool)
        first[:1] = True
        first[1:] = ranked[1:] != ranked[:-1]
        revisit = np.empty(len(ranked), dtype=bool)
        revisit[order] = ~first
        return revisit
    # Reachable only for regions beyond any real layer's coordinate range.
    _, first_seen, inverse = np.unique(  # pragma: no cover
        fields.T, axis=0, return_index=True, return_inverse=True
    )
    return first_seen[inverse] != np.arange(len(changed_rows))  # pragma: no cover
