"""Tiled 3D-convolution executor: runs a Dataflow's actual schedule.

Executes the convolution tile by tile in precisely the order the
configuration prescribes — outer loop order over last-level tiles, inner
loop order inside them — accumulating partial sums across channel tiles the
way the hardware does.  Its output must equal the reference convolution for
*every* legal configuration: the paper's loop-order-invariance claim
(Section II-E) plus the correctness of our halo arithmetic.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterator

import numpy as np

from repro.core.dataflow import Dataflow
from repro.core.dims import Dim
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import TileShape, tile_positions
from repro.sim.conv3d_ref import conv3d_reference, pad_inputs


@dataclasses.dataclass(frozen=True)
class TileCoord:
    """Origin (in output space / channel space) plus extents of one tile."""

    origin: dict[Dim, int]
    extent: dict[Dim, int]

    def of(self, dim: Dim) -> tuple[int, int]:
        return self.origin[dim], self.extent[dim]


def iter_tiles(
    parent_origin: dict[Dim, int],
    parent_extent: dict[Dim, int],
    tile: TileShape,
    order: LoopOrder,
) -> Iterator[TileCoord]:
    """Child tile coordinates covering a parent region, in loop order.

    The loop order lists dims outermost first, so the innermost dim varies
    fastest — ``itertools.product`` over per-dim offset lists in that order.
    """
    offset_lists = []
    for dim in order.dims:
        extents = tile_positions(parent_extent[dim], tile.extent(dim))
        offsets = []
        position = parent_origin[dim]
        for ext in extents:
            offsets.append((position, ext))
            position += ext
        offset_lists.append(offsets)
    for combo in itertools.product(*offset_lists):
        origin = {dim: off for dim, (off, _) in zip(order.dims, combo)}
        extent = {dim: ext for dim, (_, ext) in zip(order.dims, combo)}
        yield TileCoord(origin=origin, extent=extent)


def _layer_for_tile(layer: ConvLayer, coord: TileCoord) -> ConvLayer:
    """A sub-layer computing exactly this tile (no padding: pre-applied)."""
    return ConvLayer(
        name=f"{layer.name}/tile",
        h=(coord.extent[Dim.H] - 1) * layer.stride_h + layer.r,
        w=(coord.extent[Dim.W] - 1) * layer.stride_w + layer.s,
        c=coord.extent[Dim.C],
        f=(coord.extent[Dim.F] - 1) * layer.stride_f + layer.t,
        k=coord.extent[Dim.K],
        r=layer.r,
        s=layer.s,
        t=layer.t,
        stride_h=layer.stride_h,
        stride_w=layer.stride_w,
        stride_f=layer.stride_f,
    )


def execute_tiled(
    dataflow: Dataflow,
    inputs: np.ndarray,
    weights: np.ndarray,
    *,
    level: int | None = None,
) -> np.ndarray:
    """Run the convolution through the tiled schedule.

    ``level`` selects how deep to recurse into the tile hierarchy (default:
    all levels).  Every tile is computed via the reference convolution on
    its input window, and accumulated into the output at its coordinates —
    channel tiling (C) naturally exercises partial-sum accumulation.
    """
    layer = dataflow.layer
    padded = pad_inputs(layer, inputs)
    out = np.zeros(
        (layer.k, layer.out_f, layer.out_h, layer.out_w), dtype=np.int64
    )
    depth = dataflow.hierarchy.levels if level is None else level
    root = TileCoord(
        origin={d: 0 for d in Dim},
        extent={
            Dim.W: layer.out_w,
            Dim.H: layer.out_h,
            Dim.C: layer.c,
            Dim.K: layer.k,
            Dim.F: layer.out_f,
        },
    )
    _recurse(dataflow, layer, padded, weights, out, root, 0, depth)
    return out


def _recurse(
    dataflow: Dataflow,
    layer: ConvLayer,
    padded: np.ndarray,
    weights: np.ndarray,
    out: np.ndarray,
    region: TileCoord,
    boundary: int,
    depth: int,
) -> None:
    if boundary == depth:
        _compute_tile(layer, padded, weights, out, region)
        return
    tile = dataflow.hierarchy.tiles[boundary]
    order = dataflow.order_for_boundary(boundary)
    for coord in iter_tiles(region.origin, region.extent, tile, order):
        _recurse(dataflow, layer, padded, weights, out, coord, boundary + 1, depth)


def _compute_tile(
    layer: ConvLayer,
    padded: np.ndarray,
    weights: np.ndarray,
    out: np.ndarray,
    coord: TileCoord,
) -> None:
    w0, we = coord.of(Dim.W)
    h0, he = coord.of(Dim.H)
    c0, ce = coord.of(Dim.C)
    k0, ke = coord.of(Dim.K)
    f0, fe = coord.of(Dim.F)
    sub_layer = _layer_for_tile(layer, coord)
    window = padded[
        c0 : c0 + ce,
        f0 * layer.stride_f : f0 * layer.stride_f + sub_layer.f,
        h0 * layer.stride_h : h0 * layer.stride_h + sub_layer.h,
        w0 * layer.stride_w : w0 * layer.stride_w + sub_layer.w,
    ]
    tile_weights = weights[k0 : k0 + ke, c0 : c0 + ce]
    partial = conv3d_reference(sub_layer, window, tile_weights)
    out[k0 : k0 + ke, f0 : f0 + fe, h0 : h0 + he, w0 : w0 + we] += partial
