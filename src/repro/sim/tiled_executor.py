"""Tiled 3D-convolution executor: runs a Dataflow's actual schedule.

Executes the convolution tile by tile in precisely the order the
configuration prescribes — outer loop order over last-level tiles, inner
loop order inside them — accumulating partial sums across channel tiles the
way the hardware does.  Its output must equal the reference convolution for
*every* legal configuration: the paper's loop-order-invariance claim
(Section II-E) plus the correctness of our halo arithmetic.

Columnar schedule lowering
--------------------------
:func:`iter_tiles` is the scalar reference enumeration — one
:class:`TileCoord` at a time, innermost dim fastest.  :func:`tile_table`
is its columnar counterpart: it materialises the child tiles of *many*
parent regions at once as NumPy origin/extent columns (``(5, N)`` int64,
``ALL_DIMS`` order), in exactly the order the scalar enumeration would
visit them; :func:`schedule_tables` chains it level by level to lower a
dataflow's complete multi-level schedule into one coordinate table per
boundary.  The columnar simulators (:mod:`repro.sim.trace`,
:mod:`repro.sim.pipeline_sim`) run array passes over these tables instead
of walking tiles one by one.

Streaming lowering
------------------
A full boundary table holds every tile visit of the layer — tiny L0
tiles on a huge layer can make that table alone outgrow memory.
:func:`tile_table_rows` decodes any contiguous row range ``[lo, hi)`` of
:func:`tile_table`'s result directly (the mixed-radix decode is a pure
function of the global row index, so a slice costs only its own rows),
and :func:`iter_boundary_chunks` streams a boundary's table in visit
order as bounded-size chunks, regenerating ancestor levels chunk by
chunk instead of materialising them.  Concatenating the chunks
reproduces the full table bit for bit (``parent`` columns excepted —
they index into the chunk-local parent set and are not meaningful
across chunks).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterator

import numpy as np

from repro.core.batch import DIM_INDEX, full_extents
from repro.core.dataflow import Dataflow
from repro.core.dims import ALL_DIMS, Dim
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import (
    TileShape,
    ceil_div,
    tile_extent_at_kernel,
    tile_positions,
)
from repro.sim.conv3d_ref import conv3d_reference, pad_inputs


@dataclasses.dataclass(frozen=True)
class TileCoord:
    """Origin (in output space / channel space) plus extents of one tile."""

    origin: dict[Dim, int]
    extent: dict[Dim, int]

    def of(self, dim: Dim) -> tuple[int, int]:
        return self.origin[dim], self.extent[dim]


def iter_tiles(
    parent_origin: dict[Dim, int],
    parent_extent: dict[Dim, int],
    tile: TileShape,
    order: LoopOrder,
) -> Iterator[TileCoord]:
    """Child tile coordinates covering a parent region, in loop order.

    The loop order lists dims outermost first, so the innermost dim varies
    fastest — ``itertools.product`` over per-dim offset lists in that order.
    """
    offset_lists = []
    for dim in order.dims:
        extents = tile_positions(parent_extent[dim], tile.extent(dim))
        offsets = []
        position = parent_origin[dim]
        for ext in extents:
            offsets.append((position, ext))
            position += ext
        offset_lists.append(offsets)
    for combo in itertools.product(*offset_lists):
        origin = {dim: off for dim, (off, _) in zip(order.dims, combo)}
        extent = {dim: ext for dim, (_, ext) in zip(order.dims, combo)}
        yield TileCoord(origin=origin, extent=extent)


@dataclasses.dataclass(frozen=True)
class TileTable:
    """Columnar tile coordinates: one row per visited tile, in visit order.

    ``origin``/``extent`` are ``(5, N)`` int64 columns in ``ALL_DIMS``
    order (W, H, C, K, F — :data:`repro.core.batch.DIM_INDEX`);
    ``parent`` maps each row to its parent's row in the enclosing level's
    table; ``first_child`` marks the first tile of each parent's
    enumeration (the scalar walk's ``index == 0``, where slide reuse
    cannot apply because the double buffer was freshly swapped).
    """

    origin: np.ndarray
    extent: np.ndarray
    parent: np.ndarray
    first_child: np.ndarray

    def __len__(self) -> int:
        return self.origin.shape[-1]

    def coord(self, row: int) -> TileCoord:
        """Materialise one row as a scalar :class:`TileCoord`."""
        return TileCoord(
            origin={d: int(self.origin[DIM_INDEX[d], row]) for d in ALL_DIMS},
            extent={d: int(self.extent[DIM_INDEX[d], row]) for d in ALL_DIMS},
        )


def tile_table(
    parent_origin: np.ndarray,
    parent_extent: np.ndarray,
    tile: TileShape,
    order: LoopOrder,
) -> TileTable:
    """Columnar :func:`iter_tiles` over many parent regions at once.

    ``parent_origin``/``parent_extent`` are ``(5, P)`` int64 columns
    (``ALL_DIMS`` order).  Rows of the result enumerate, for each parent in
    column order, that parent's child tiles in loop order (outermost dim
    of ``order`` slowest, innermost fastest) — exactly the sequence the
    scalar recursion visits, ragged edge tiles included: a short parent
    has fewer and/or shorter children, via the same
    :func:`~repro.core.tiling.tile_extent_at_kernel` closed form that
    :func:`~repro.core.tiling.tile_positions` evaluates per tile.
    """
    parent_origin = np.asarray(parent_origin, dtype=np.int64).reshape(5, -1)
    parent_extent = np.asarray(parent_extent, dtype=np.int64).reshape(5, -1)
    dim_rows = np.array([DIM_INDEX[d] for d in order.dims], dtype=np.intp)
    tile_ext = np.array(
        [tile.extent(d) for d in order.dims], dtype=np.int64
    )[:, None]
    counts = ceil_div(parent_extent[dim_rows], tile_ext)  # (5, P)
    per_parent = counts.prod(axis=0)
    total = int(per_parent.sum())
    parent_index = np.repeat(
        np.arange(parent_origin.shape[-1], dtype=np.int64), per_parent
    )
    starts = np.cumsum(per_parent) - per_parent
    local = np.arange(total, dtype=np.int64) - starts[parent_index]
    # Mixed-radix decode of the per-parent linear index: stride of an
    # ordered dim is the product of the counts of every dim inside it.
    strides = np.ones_like(counts)
    for row in range(len(order.dims) - 2, -1, -1):
        strides[row] = strides[row + 1] * counts[row + 1]
    steps = (local[None, :] // strides[:, parent_index]) % counts[:, parent_index]
    origin_ordered = parent_origin[dim_rows][:, parent_index] + steps * tile_ext
    extent_ordered = tile_extent_at_kernel(
        steps, parent_extent[dim_rows][:, parent_index], tile_ext
    )
    origin = np.empty((5, total), dtype=np.int64)
    extent = np.empty((5, total), dtype=np.int64)
    origin[dim_rows] = origin_ordered
    extent[dim_rows] = extent_ordered
    return TileTable(
        origin=origin,
        extent=extent,
        parent=parent_index,
        first_child=local == 0,
    )


#: Bytes one :class:`TileTable` row occupies: two (5,) int64 coordinate
#: columns plus an int64 parent index and a bool first_child flag.
TABLE_ROW_BYTES = 8 * 5 * 2 + 8 + 1


def child_counts(
    parent_extent: np.ndarray, tile: TileShape, order: LoopOrder
) -> np.ndarray:
    """(P,) child-tile counts of each parent region under ``tile``."""
    parent_extent = np.asarray(parent_extent, dtype=np.int64).reshape(5, -1)
    dim_rows = np.array([DIM_INDEX[d] for d in order.dims], dtype=np.intp)
    tile_ext = np.array(
        [tile.extent(d) for d in order.dims], dtype=np.int64
    )[:, None]
    return ceil_div(parent_extent[dim_rows], tile_ext).prod(axis=0)


def tile_table_rows(
    parent_origin: np.ndarray,
    parent_extent: np.ndarray,
    tile: TileShape,
    order: LoopOrder,
    lo: int,
    hi: int,
) -> TileTable:
    """Rows ``[lo, hi)`` of :func:`tile_table`, decoded directly.

    The mixed-radix decode maps a *global* row index to its coordinates
    without touching any other row, so a slice allocates only
    ``hi - lo`` columns — bit-identical to slicing the full table
    (``parent`` excepted: it still indexes the parent *columns passed
    in*, exactly as :func:`tile_table`'s does).
    """
    parent_origin = np.asarray(parent_origin, dtype=np.int64).reshape(5, -1)
    parent_extent = np.asarray(parent_extent, dtype=np.int64).reshape(5, -1)
    dim_rows = np.array([DIM_INDEX[d] for d in order.dims], dtype=np.intp)
    tile_ext = np.array(
        [tile.extent(d) for d in order.dims], dtype=np.int64
    )[:, None]
    counts = ceil_div(parent_extent[dim_rows], tile_ext)  # (5, P)
    per_parent = counts.prod(axis=0)
    ends = np.cumsum(per_parent)
    rows = np.arange(lo, hi, dtype=np.int64)
    parent_index = np.searchsorted(ends, rows, side="right").astype(np.int64)
    local = rows - (ends - per_parent)[parent_index]
    strides = np.ones_like(counts)
    for row in range(len(order.dims) - 2, -1, -1):
        strides[row] = strides[row + 1] * counts[row + 1]
    steps = (local[None, :] // strides[:, parent_index]) % counts[:, parent_index]
    origin_ordered = parent_origin[dim_rows][:, parent_index] + steps * tile_ext
    extent_ordered = tile_extent_at_kernel(
        steps, parent_extent[dim_rows][:, parent_index], tile_ext
    )
    origin = np.empty((5, rows.size), dtype=np.int64)
    extent = np.empty((5, rows.size), dtype=np.int64)
    origin[dim_rows] = origin_ordered
    extent[dim_rows] = extent_ordered
    return TileTable(
        origin=origin,
        extent=extent,
        parent=parent_index,
        first_child=local == 0,
    )


def iter_boundary_chunks(
    dataflow: Dataflow, boundary: int, max_rows: int
) -> Iterator[TileTable]:
    """Stream one boundary's schedule table as chunks of ``<= max_rows``.

    Yields :class:`TileTable` chunks whose rows, concatenated, equal
    ``schedule_tables(dataflow)[boundary]`` bit for bit (including
    ``first_child``; ``parent`` is chunk-local).  Ancestor levels are
    themselves regenerated in bounded chunks, so peak table memory is
    about ``(boundary + 1) * max_rows * TABLE_ROW_BYTES`` no matter how
    many tile visits the layer has — size ``max_rows`` accordingly.
    """
    if max_rows < 1:
        raise ValueError(f"max_rows must be >= 1, got {max_rows}")
    root_origin = np.zeros((5, 1), dtype=np.int64)
    root_extent = full_extents(dataflow.layer)[:, None]

    def chunks(level: int) -> Iterator[TileTable]:
        tile = dataflow.hierarchy.tiles[level]
        order = dataflow.order_for_boundary(level)
        if level == 0:
            parents: Iterator[tuple[np.ndarray, np.ndarray]] = iter(
                ((root_origin, root_extent),)
            )
        else:
            parents = ((t.origin, t.extent) for t in chunks(level - 1))
        for origin, extent in parents:
            total = int(child_counts(extent, tile, order).sum())
            for lo in range(0, total, max_rows):
                yield tile_table_rows(
                    origin, extent, tile, order, lo, min(lo + max_rows, total)
                )

    return chunks(boundary)


def schedule_tables(
    dataflow: Dataflow, levels: int | None = None
) -> list[TileTable]:
    """Lower a dataflow's full multi-level schedule into coordinate tables.

    Returns one :class:`TileTable` per boundary, outermost first; table
    ``i`` enumerates every tile visit at level ``i`` across the whole
    layer, in the scalar walk's visit order (its rows are the level-``i``
    invocations chained across all parents).
    """
    origin = np.zeros((5, 1), dtype=np.int64)
    extent = full_extents(dataflow.layer)[:, None]
    tables: list[TileTable] = []
    depth = dataflow.hierarchy.levels if levels is None else levels
    for boundary in range(depth):
        table = tile_table(
            origin, extent,
            dataflow.hierarchy.tiles[boundary],
            dataflow.order_for_boundary(boundary),
        )
        tables.append(table)
        origin, extent = table.origin, table.extent
    return tables


def _layer_for_tile(layer: ConvLayer, coord: TileCoord) -> ConvLayer:
    """A sub-layer computing exactly this tile (no padding: pre-applied)."""
    return ConvLayer(
        name=f"{layer.name}/tile",
        h=(coord.extent[Dim.H] - 1) * layer.stride_h + layer.r,
        w=(coord.extent[Dim.W] - 1) * layer.stride_w + layer.s,
        c=coord.extent[Dim.C],
        f=(coord.extent[Dim.F] - 1) * layer.stride_f + layer.t,
        k=coord.extent[Dim.K],
        r=layer.r,
        s=layer.s,
        t=layer.t,
        stride_h=layer.stride_h,
        stride_w=layer.stride_w,
        stride_f=layer.stride_f,
    )


def execute_tiled(
    dataflow: Dataflow,
    inputs: np.ndarray,
    weights: np.ndarray,
    *,
    level: int | None = None,
) -> np.ndarray:
    """Run the convolution through the tiled schedule.

    ``level`` selects how deep to recurse into the tile hierarchy (default:
    all levels).  Every tile is computed via the reference convolution on
    its input window, and accumulated into the output at its coordinates —
    channel tiling (C) naturally exercises partial-sum accumulation.
    """
    layer = dataflow.layer
    padded = pad_inputs(layer, inputs)
    out = np.zeros(
        (layer.k, layer.out_f, layer.out_h, layer.out_w), dtype=np.int64
    )
    depth = dataflow.hierarchy.levels if level is None else level
    root = TileCoord(
        origin={d: 0 for d in Dim},
        extent={
            Dim.W: layer.out_w,
            Dim.H: layer.out_h,
            Dim.C: layer.c,
            Dim.K: layer.k,
            Dim.F: layer.out_f,
        },
    )
    _recurse(dataflow, layer, padded, weights, out, root, 0, depth)
    return out


def _recurse(
    dataflow: Dataflow,
    layer: ConvLayer,
    padded: np.ndarray,
    weights: np.ndarray,
    out: np.ndarray,
    region: TileCoord,
    boundary: int,
    depth: int,
) -> None:
    if boundary == depth:
        _compute_tile(layer, padded, weights, out, region)
        return
    tile = dataflow.hierarchy.tiles[boundary]
    order = dataflow.order_for_boundary(boundary)
    for coord in iter_tiles(region.origin, region.extent, tile, order):
        _recurse(dataflow, layer, padded, weights, out, coord, boundary + 1, depth)


def _compute_tile(
    layer: ConvLayer,
    padded: np.ndarray,
    weights: np.ndarray,
    out: np.ndarray,
    coord: TileCoord,
) -> None:
    w0, we = coord.of(Dim.W)
    h0, he = coord.of(Dim.H)
    c0, ce = coord.of(Dim.C)
    k0, ke = coord.of(Dim.K)
    f0, fe = coord.of(Dim.F)
    sub_layer = _layer_for_tile(layer, coord)
    window = padded[
        c0 : c0 + ce,
        f0 * layer.stride_f : f0 * layer.stride_f + sub_layer.f,
        h0 * layer.stride_h : h0 * layer.stride_h + sub_layer.h,
        w0 * layer.stride_w : w0 * layer.stride_w + sub_layer.w,
    ]
    tile_weights = weights[k0 : k0 + ke, c0 : c0 + ce]
    partial = conv3d_reference(sub_layer, window, tile_weights)
    out[k0 : k0 + ke, f0 : f0 + fe, h0 : h0 + he, w0 : w0 + we] += partial
