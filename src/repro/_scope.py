"""Context-local session scoping (the substrate under :mod:`repro.api`).

A :class:`~repro.api.Session` *scopes* the engine/build configuration that
:func:`~repro.optimizer.engine.set_engine_defaults` used to mutate
process-wide: entering a session pushes its
:class:`~repro.api.SessionConfig` onto a :class:`contextvars.ContextVar`,
and every ``default_*`` resolver (engine knobs, workload build defaults,
the simulators' vectorize knob) consults the active config before falling
back to the process-wide defaults and ``$REPRO_*`` environment variables.

``contextvars`` gives exactly the isolation the concurrent-sweep story
needs: each thread (and each asyncio task) owns its own context, so two
sessions entered in two threads never see each other's configuration,
while nested ``with`` blocks in one thread restore the outer session on
exit via token-based reset.

This module is import-cycle-free on purpose — it knows nothing about
sessions beyond "an object" — so the low-level layers (``workloads``,
``optimizer.engine``, ``sim``) can read the active config without
importing :mod:`repro.api`.
"""

from __future__ import annotations

from contextvars import ContextVar, Token
from typing import Any

#: The innermost active :class:`~repro.api.SessionConfig` (or ``None``).
_ACTIVE: ContextVar[Any] = ContextVar("repro_active_session_config", default=None)


def active_config() -> Any:
    """The innermost active session configuration, or ``None``."""
    return _ACTIVE.get()


def active_value(field: str) -> Any:
    """One field of the active session configuration (``None`` when no
    session is active or the session leaves the field unset)."""
    config = _ACTIVE.get()
    if config is None:
        return None
    return getattr(config, field, None)


def activate(config: Any) -> Token:
    """Push ``config`` as the active session configuration; returns the
    token that :func:`deactivate` needs to restore the outer scope."""
    return _ACTIVE.set(config)


def deactivate(token: Token) -> None:
    """Restore the configuration that was active before :func:`activate`."""
    _ACTIVE.reset(token)
