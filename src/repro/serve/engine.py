"""The asyncio serving engine: optimization-as-a-service on a Session.

:class:`ServeEngine` turns the one-shot :class:`repro.api.Session`
surface into a long-lived, multi-tenant service.  Requests
(:class:`ServeRequest`) carry a network, an optional per-request
:class:`~repro.api.SessionConfig` overlay and an optional deadline; the
engine admits them through per-tenant token-bucket quotas and a
queue-depth backpressure bound, runs the per-layer searches on a bounded
worker pool, and streams each layer's result back as it completes.

The serving contract (docs/INVARIANTS.md, "serving contract"):

* **Served results are bit-identical to direct calls.**  A request runs
  through exactly the same engine/caches as
  :meth:`repro.api.Session.optimize_network`; serving adds concurrency
  and admission control, never a different answer.
* **Concurrent identical requests coalesce.**  N tenants sweeping
  overlapping networks trigger exactly one underlying search per unique
  search signature: the first request claims the signature in the
  optimizer's in-flight table, the rest subscribe to its published
  result (``EngineStats.coalesced``).  Coalescing is pure concurrent
  dedup — searches are deterministic, so a subscribed result is the
  result.
* **Deadlines map onto the anytime budget.**  A request's remaining
  deadline becomes each layer search's ``budget_ms``; an expired budget
  returns the best-so-far configuration with its certified ``bound_gap``
  (``budget_exhausted=True``).  Budget-exhausted results never enter any
  cache layer and never coalesce — they are request-specific prefixes.
* **Rejection is explicit.**  Quota or queue-depth violations raise
  :class:`ServeRejected` with a ``retry_after_ms`` hint instead of
  queueing unboundedly; a closed engine rejects rather than silently
  dropping.

All timing flows through the sanctioned injectable serve clock
(:mod:`repro.serve.clock`), so quota refill, deadline mapping and
latency percentiles are all exactly testable with a fake clock.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import math
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, AsyncIterator, Callable, Mapping

from repro.api import Session, SessionConfig, _coerce_network
from repro.optimizer.engine import BackendCacheStats, EngineStats
from repro.optimizer.search import (
    LayerResult,
    NetworkResult,
    OptimizerOptions,
)
from repro.serve.clock import now_ms
from repro.serve.config import (
    DEFAULT_LATENCY_WINDOW,
    DEFAULT_RETRY_AFTER_MS,
    ServeConfig,
)

__all__ = [
    "ServeEngine",
    "ServeEvent",
    "ServeMetrics",
    "ServeRejected",
    "ServeRequest",
    "ServeResult",
    "TenantStats",
]


class ServeRejected(Exception):
    """A request the engine refused to admit.

    ``reason`` is one of ``"quota"`` (the tenant's token bucket is
    empty), ``"backpressure"`` (the admitted-but-unfinished count is at
    ``max_queue_depth``) or ``"closed"`` (the engine is shutting down).
    ``retry_after_ms`` is the engine's hint for when a retry is worth
    attempting (``None`` for ``"closed"`` — a closed engine never
    reopens).
    """

    def __init__(
        self,
        reason: str,
        *,
        tenant: str,
        retry_after_ms: float | None = None,
    ) -> None:
        self.reason = reason
        self.tenant = tenant
        self.retry_after_ms = retry_after_ms
        hint = (
            "" if retry_after_ms is None
            else f"; retry after {retry_after_ms:.1f} ms"
        )
        super().__init__(f"request rejected ({reason}) for tenant "
                         f"{tenant!r}{hint}")


@dataclasses.dataclass(frozen=True)
class ServeRequest:
    """One unit of serving work: a network to optimize for a tenant.

    ``network`` accepts a registered network name (built under the
    request's resolved session config), a
    :class:`~repro.workloads.networks.Network`, or a plain layer
    iterable.  ``config`` overlays the serving session's
    :class:`~repro.api.SessionConfig` for this request only.
    ``deadline_ms`` bounds the request end-to-end from admission; the
    remaining deadline becomes each layer search's anytime ``budget_ms``.
    """

    network: Any
    tenant: str = "default"
    arch: Any = None
    options: OptimizerOptions | None = None
    config: SessionConfig | None = None
    deadline_ms: float | None = None
    network_name: str = "network"
    request_id: str | None = None

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ValueError("deadline_ms must be >= 0 milliseconds")


@dataclasses.dataclass(frozen=True)
class ServeResult:
    """A completed request: the full network result plus provenance."""

    request_id: str
    tenant: str
    network_name: str
    result: NetworkResult
    latency_ms: float
    #: True when any layer hit the deadline-derived budget: the result is
    #: a certified best-so-far (per-layer ``bound_gap``), not the proven
    #: optimum, and it was not cached anywhere.
    budget_exhausted: bool
    #: Engine counters for exactly this request's layer searches.
    stats: EngineStats


@dataclasses.dataclass(frozen=True)
class ServeEvent:
    """One streamed serving event.

    ``kind == "layer"``: one layer finished (``layer_result`` set,
    ``index``/``total`` position it).  ``kind == "result"``: the request
    completed (``result`` set) — always the final event of a stream.
    """

    kind: str
    request_id: str
    tenant: str
    index: int = 0
    total: int = 0
    layer_result: LayerResult | None = None
    result: ServeResult | None = None
    error: BaseException | None = None


@dataclasses.dataclass(frozen=True)
class TenantStats:
    """Admission counters for one tenant."""

    admitted: int = 0
    rejected_quota: int = 0
    rejected_backpressure: int = 0
    completed: int = 0
    failed: int = 0


@dataclasses.dataclass(frozen=True)
class ServeMetrics:
    """A point-in-time snapshot of the serving engine.

    ``coalesce_rate`` is the fraction of unique-signature resolutions
    served by subscribing to another request's in-flight search —
    ``coalesced / (coalesced + searched)`` over the engine counters.
    Latency percentiles are nearest-rank over the last
    ``DEFAULT_LATENCY_WINDOW`` completed requests (``None`` before the
    first completion).  ``cache`` is the merged per-store recall
    statistics (persisted sidecar + this process's unflushed movement),
    keyed by store identity.
    """

    queue_depth: int
    peak_queue_depth: int
    admitted: int
    rejected_quota: int
    rejected_backpressure: int
    rejected_closed: int
    completed: int
    failed: int
    coalesce_rate: float
    engine: EngineStats
    per_tenant: Mapping[str, TenantStats]
    latency_p50_ms: float | None
    latency_p95_ms: float | None
    latency_p99_ms: float | None
    cache: Mapping[str, BackendCacheStats]

    def describe(self) -> str:
        lines = [
            f"queue {self.queue_depth} (peak {self.peak_queue_depth}), "
            f"admitted {self.admitted}, rejected "
            f"{self.rejected_quota}+{self.rejected_backpressure}"
            f"+{self.rejected_closed} (quota+backpressure+closed), "
            f"completed {self.completed}, failed {self.failed}, "
            f"coalesce rate {self.coalesce_rate:.2f}"
        ]
        if self.latency_p50_ms is not None:
            lines.append(
                f"latency ms p50 {self.latency_p50_ms:.1f} "
                f"p95 {self.latency_p95_ms:.1f} "
                f"p99 {self.latency_p99_ms:.1f}"
            )
        lines.append(f"engine: {self.engine.describe()}")
        for tenant, stats in sorted(self.per_tenant.items()):
            lines.append(
                f"tenant [{tenant}]: admitted {stats.admitted}, "
                f"rejected {stats.rejected_quota}+"
                f"{stats.rejected_backpressure} (quota+backpressure), "
                f"completed {stats.completed}, failed {stats.failed}"
            )
        for kind, entry in sorted(self.cache.items()):
            lines.append(f"config cache [{kind}]: {entry.describe()}")
        return "\n".join(lines)


class _TokenBucket:
    """Per-tenant admission quota: ``rate`` tokens/second, ``capacity``
    burst, refilled continuously from the sanctioned serve clock."""

    __slots__ = ("rate_per_ms", "capacity", "tokens", "updated_ms")

    def __init__(self, rate: float, capacity: float, now: float) -> None:
        self.rate_per_ms = rate / 1000.0
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self.updated_ms = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated_ms)
        self.tokens = min(
            self.capacity, self.tokens + elapsed * self.rate_per_ms
        )
        self.updated_ms = now

    def try_acquire(self, now: float) -> bool:
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after_ms(self, now: float) -> float:
        """Milliseconds until one full token is available."""
        self._refill(now)
        deficit = 1.0 - self.tokens
        if deficit <= 0.0:
            return 0.0
        return deficit / self.rate_per_ms


def _percentile(ordered: list[float], q: float) -> float | None:
    """Nearest-rank percentile of an already sorted sample."""
    if not ordered:
        return None
    rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def _merge_stats(into: EngineStats, delta: EngineStats) -> None:
    for field in dataclasses.fields(EngineStats):
        setattr(
            into,
            field.name,
            getattr(into, field.name) + getattr(delta, field.name),
        )


@dataclasses.dataclass
class _Ticket:
    """Internal per-admitted-request state."""

    request: ServeRequest
    request_id: str
    admitted_ms: float
    deadline_abs_ms: float | None


class ServeEngine:
    """Long-lived async front end over a session's optimizer surface.

    Admission (quotas, backpressure, closed-check) happens synchronously
    inside the submitting coroutine's first step — a rejected request
    raises :class:`ServeRejected` before any work is scheduled.  Admitted
    requests run on a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
    (one slot per request; a request's layers run sequentially in its
    slot, so ``max_workers`` bounds concurrent searches), streaming
    per-layer results back through the event loop.

    Use as an async context manager, or call :meth:`shutdown` /
    :meth:`aclose` explicitly; construction is cheap — the pool starts
    lazily on the first admission.
    """

    def __init__(
        self,
        session: Session | None = None,
        config: ServeConfig | None = None,
        **overrides: Any,
    ) -> None:
        if config is None:
            config = ServeConfig.resolve(**overrides)
        elif overrides:
            config = config.merged(ServeConfig.from_dict(overrides))
        self.config = config
        self.session = session if session is not None else Session()
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False
        self._inflight = 0
        self._peak_inflight = 0
        self._request_counter = 0
        self._admitted = 0
        self._rejected_quota = 0
        self._rejected_backpressure = 0
        self._rejected_closed = 0
        self._completed = 0
        self._failed = 0
        self._buckets: dict[str, _TokenBucket] = {}
        self._tenants: dict[str, dict[str, int]] = {}
        self._engine_stats = EngineStats()
        self._latencies_ms: deque[float] = deque(
            maxlen=DEFAULT_LATENCY_WINDOW
        )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _tenant(self, name: str) -> dict[str, int]:
        counters = self._tenants.get(name)
        if counters is None:
            counters = self._tenants[name] = {
                "admitted": 0,
                "rejected_quota": 0,
                "rejected_backpressure": 0,
                "completed": 0,
                "failed": 0,
            }
        return counters

    def _retry_hint(self) -> float:
        """Backpressure retry hint: the median recent latency (one slot
        should free up on that horizon), or the stock hint cold."""
        ordered = sorted(self._latencies_ms)
        estimate = _percentile(ordered, 50.0)
        return DEFAULT_RETRY_AFTER_MS if estimate is None else estimate

    def _admit(self, request: ServeRequest) -> _Ticket:
        """Synchronous admission control; raises :class:`ServeRejected`.

        Runs under the engine lock in the submitting coroutine's first
        step, so rejection ordering is deterministic: a request observes
        exactly the engine state left by previously *started* requests.
        """
        now = now_ms()
        with self._lock:
            tenant = self._tenant(request.tenant)
            if self._closed:
                self._rejected_closed += 1
                raise ServeRejected("closed", tenant=request.tenant)
            if self._inflight >= self.config.effective_max_queue_depth:
                self._rejected_backpressure += 1
                tenant["rejected_backpressure"] += 1
                raise ServeRejected(
                    "backpressure",
                    tenant=request.tenant,
                    retry_after_ms=self._retry_hint(),
                )
            rate = self.config.tenant_rate
            if rate is not None:
                bucket = self._buckets.get(request.tenant)
                if bucket is None:
                    bucket = self._buckets[request.tenant] = _TokenBucket(
                        rate, self.config.effective_tenant_burst, now
                    )
                if not bucket.try_acquire(now):
                    self._rejected_quota += 1
                    tenant["rejected_quota"] += 1
                    raise ServeRejected(
                        "quota",
                        tenant=request.tenant,
                        retry_after_ms=bucket.retry_after_ms(now),
                    )
            self._inflight += 1
            self._peak_inflight = max(self._peak_inflight, self._inflight)
            self._admitted += 1
            tenant["admitted"] += 1
            self._request_counter += 1
            request_id = (
                request.request_id
                if request.request_id is not None
                else f"req-{self._request_counter}"
            )
            deadline_ms = (
                request.deadline_ms
                if request.deadline_ms is not None
                else self.config.default_deadline_ms
            )
            self._ensure_pool_locked()
        return _Ticket(
            request=request,
            request_id=request_id,
            admitted_ms=now,
            deadline_abs_ms=(
                None if deadline_ms is None else now + deadline_ms
            ),
        )

    def _ensure_pool_locked(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.effective_max_workers,
                thread_name_prefix="repro-serve",
            )
        return self._pool

    # ------------------------------------------------------------------
    # Execution (worker thread)
    # ------------------------------------------------------------------
    def _resolve_request(
        self, ticket: _Ticket
    ) -> tuple[Session, str, tuple, Any, OptimizerOptions]:
        """Materialise the request's session, network and search inputs."""
        request = ticket.request
        config = self.session.config
        if request.config is not None:
            config = config.merged(request.config)
        # Per-request sessions never flush telemetry themselves: the
        # owning session's close()/flush consumes the process-wide deltas
        # exactly once, after shutdown has drained the workers.
        session = Session(config.merged(
            SessionConfig.from_dict({"persist_statistics": False})
        ))
        network = request.network
        if isinstance(network, str):
            network = session.build_network(network)
        network_name, layers = _coerce_network(network, request.network_name)
        arch = request.arch
        if arch is None:
            from repro.arch.accelerator import morph

            arch = morph()
        options = (
            OptimizerOptions.fast()
            if request.options is None
            else request.options
        )
        return session, network_name, layers, arch, options

    def _execute(
        self, ticket: _Ticket, emit: Callable[[ServeEvent], None]
    ) -> None:
        """Run one admitted request to completion (worker thread)."""
        request = ticket.request
        try:
            (session, network_name, layers, arch, options) = (
                self._resolve_request(ticket)
            )
            stats = EngineStats()
            results: list[LayerResult] = []
            total = len(layers)
            for index, layer in enumerate(layers):
                if ticket.deadline_abs_ms is None:
                    budget_ms = None
                else:
                    budget_ms = max(
                        0.0, ticket.deadline_abs_ms - now_ms()
                    )
                engine = session.engine(
                    arch,
                    options,
                    budget_ms=budget_ms,
                    coalesce_inflight=self.config.effective_coalesce,
                )
                result = engine.optimize_layers((layer,))[0]
                _merge_stats(stats, engine.stats)
                results.append(result)
                emit(
                    ServeEvent(
                        kind="layer",
                        request_id=ticket.request_id,
                        tenant=request.tenant,
                        index=index,
                        total=total,
                        layer_result=result,
                    )
                )
            outcome = NetworkResult(
                network_name=network_name,
                arch_name=arch.name,
                layers=tuple(results),
            )
            served = ServeResult(
                request_id=ticket.request_id,
                tenant=request.tenant,
                network_name=network_name,
                result=outcome,
                latency_ms=max(0.0, now_ms() - ticket.admitted_ms),
                budget_exhausted=any(r.budget_exhausted for r in results),
                stats=stats,
            )
            with self._lock:
                self._inflight -= 1
                self._completed += 1
                self._tenant(request.tenant)["completed"] += 1
                _merge_stats(self._engine_stats, stats)
                self._latencies_ms.append(served.latency_ms)
            emit(
                ServeEvent(
                    kind="result",
                    request_id=ticket.request_id,
                    tenant=request.tenant,
                    index=total,
                    total=total,
                    result=served,
                )
            )
        except BaseException as error:  # noqa: B036 - relayed, not hidden
            with self._lock:
                self._inflight -= 1
                self._failed += 1
                self._tenant(request.tenant)["failed"] += 1
            emit(
                ServeEvent(
                    kind="error",
                    request_id=ticket.request_id,
                    tenant=request.tenant,
                    error=error,
                )
            )

    # ------------------------------------------------------------------
    # Async surface
    # ------------------------------------------------------------------
    async def stream(
        self, request: ServeRequest
    ) -> AsyncIterator[ServeEvent]:
        """Admit ``request`` and stream its events as they complete.

        Yields one ``"layer"`` event per finished layer, then the final
        ``"result"`` event.  Raises :class:`ServeRejected` synchronously
        (before any work is scheduled) when admission fails, and
        re-raises the underlying error if the request fails mid-run.
        """
        ticket = self._admit(request)
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue[ServeEvent] = asyncio.Queue()

        def emit(event: ServeEvent) -> None:
            # Tolerate a loop torn down mid-request (interpreter exit):
            # the counters above were already updated under the lock.
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(queue.put_nowait, event)

        with self._lock:
            pool = self._ensure_pool_locked()
        try:
            pool.submit(self._execute, ticket, emit)
        except RuntimeError:
            # shutdown() raced the admission: give the slot back and
            # reject like any other post-close arrival.
            with self._lock:
                self._inflight -= 1
                self._admitted -= 1
                self._tenant(request.tenant)["admitted"] -= 1
                self._rejected_closed += 1
            raise ServeRejected("closed", tenant=request.tenant) from None
        while True:
            event = await queue.get()
            if event.kind == "error":
                assert event.error is not None
                raise event.error
            yield event
            if event.kind == "result":
                return

    async def submit(self, request: ServeRequest) -> ServeResult:
        """Admit ``request`` and await its final :class:`ServeResult`."""
        final: ServeResult | None = None
        async for event in self.stream(request):
            if event.kind == "result":
                final = event.result
        assert final is not None
        return final

    # ------------------------------------------------------------------
    # Introspection and shutdown
    # ------------------------------------------------------------------
    def metrics(self) -> ServeMetrics:
        """A consistent point-in-time :class:`ServeMetrics` snapshot."""
        with self._lock:
            engine = dataclasses.replace(self._engine_stats)
            shared = engine.coalesced
            searched = engine.searched
            ordered = sorted(self._latencies_ms)
            per_tenant = {
                name: TenantStats(**counters)
                for name, counters in sorted(self._tenants.items())
            }
            snapshot = dict(
                queue_depth=self._inflight,
                peak_queue_depth=self._peak_inflight,
                admitted=self._admitted,
                rejected_quota=self._rejected_quota,
                rejected_backpressure=self._rejected_backpressure,
                rejected_closed=self._rejected_closed,
                completed=self._completed,
                failed=self._failed,
            )
        denominator = shared + searched
        return ServeMetrics(
            coalesce_rate=(
                shared / denominator if denominator else 0.0
            ),
            engine=engine,
            per_tenant=per_tenant,
            latency_p50_ms=_percentile(ordered, 50.0),
            latency_p95_ms=_percentile(ordered, 95.0),
            latency_p99_ms=_percentile(ordered, 99.0),
            cache=self.session.cache_statistics(merged=True),
            **snapshot,
        )

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def shutdown(self, wait: bool = True) -> None:
        """Refuse new admissions and (with ``wait``) drain in-flight
        requests.  Idempotent: a second call is a no-op beyond waiting.
        Already-admitted requests always run to completion — shutdown
        never cancels work a tenant was promised."""
        with self._lock:
            self._closed = True
            pool = self._pool
        if pool is not None:
            pool.shutdown(wait=wait)

    async def aclose(self) -> None:
        """Async shutdown: refuse new admissions, then drain in-flight
        requests without blocking the event loop."""
        with self._lock:
            self._closed = True
            pool = self._pool
        if pool is not None:
            await asyncio.to_thread(pool.shutdown, True)

    async def __aenter__(self) -> "ServeEngine":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    def describe(self) -> str:
        return f"ServeEngine({self.config.describe()})"
