"""Line-JSON serving protocol: one request per stdin line, one JSON
response per stdout line.

This is the runner's ``serve`` subcommand transport — a deliberately
minimal framing (newline-delimited JSON over stdio) that a smoke test,
a shell pipeline or a thin localhost wrapper can drive without any
client library.  Responses are emitted in *completion* order (requests
run concurrently through the :class:`~repro.serve.engine.ServeEngine`),
correlated by ``request_id``.

Request objects::

    {"op": "optimize", "network": "c3d", "tenant": "a",
     "deadline_ms": 250.0, "config": {...SessionConfig fields...},
     "request_id": "r1"}
    {"op": "metrics"}
    {"op": "shutdown"}

``op`` defaults to ``"optimize"``, so the minimal request is just
``{"network": "c3d"}``.  Responses carry ``"ok": true`` plus the
payload, or ``"ok": false`` plus ``"error"``/``"reason"`` (and
``"retry_after_ms"`` for quota/backpressure rejections).
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Any, TextIO

from repro.api import SessionConfig
from repro.serve.engine import ServeEngine, ServeRejected, ServeRequest

__all__ = ["decode_request", "encode_response", "serve_stdio"]


def decode_request(line: str) -> ServeRequest | str:
    """Parse one protocol line into a :class:`ServeRequest`, or the
    control-op name (``"metrics"`` / ``"shutdown"``).

    Raises ``ValueError`` for malformed lines (bad JSON, unknown ``op``,
    missing ``network``) — the stdio loop turns those into
    ``"ok": false`` responses rather than dying.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ValueError(f"bad JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ValueError("request must be a JSON object")
    op = payload.get("op", "optimize")
    if op in ("metrics", "shutdown"):
        return op
    if op != "optimize":
        raise ValueError(f"unknown op {op!r}")
    network = payload.get("network")
    if not isinstance(network, str) or not network:
        raise ValueError("optimize request needs a 'network' name")
    config = payload.get("config")
    request_config = (
        SessionConfig.from_dict(config) if isinstance(config, dict) else None
    )
    deadline = payload.get("deadline_ms")
    return ServeRequest(
        network=network,
        tenant=str(payload.get("tenant", "default")),
        config=request_config,
        deadline_ms=None if deadline is None else float(deadline),
        request_id=(
            str(payload["request_id"]) if "request_id" in payload else None
        ),
    )


def encode_response(payload: dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True)


def _result_payload(served: Any) -> dict[str, Any]:
    result = served.result
    return {
        "ok": True,
        "request_id": served.request_id,
        "tenant": served.tenant,
        "network": served.network_name,
        "total_energy_pj": result.total_energy_pj,
        "total_cycles": result.total_cycles,
        "latency_ms": served.latency_ms,
        "budget_exhausted": served.budget_exhausted,
        "layers": [
            {
                "name": layer.layer.name,
                "energy_pj": layer.best.total_energy_pj,
                "cycles": layer.best.cycles,
                "budget_exhausted": layer.budget_exhausted,
                "bound_gap": layer.bound_gap,
            }
            for layer in result.layers
        ],
        "engine": served.stats.describe(),
    }


def _metrics_payload(engine: ServeEngine) -> dict[str, Any]:
    metrics = engine.metrics()
    return {
        "ok": True,
        "op": "metrics",
        "queue_depth": metrics.queue_depth,
        "admitted": metrics.admitted,
        "rejected_quota": metrics.rejected_quota,
        "rejected_backpressure": metrics.rejected_backpressure,
        "rejected_closed": metrics.rejected_closed,
        "completed": metrics.completed,
        "failed": metrics.failed,
        "coalesce_rate": metrics.coalesce_rate,
        "searched": metrics.engine.searched,
        "coalesced": metrics.engine.coalesced,
        "memo_hits": metrics.engine.memo_hits,
        "latency_p50_ms": metrics.latency_p50_ms,
        "latency_p95_ms": metrics.latency_p95_ms,
        "latency_p99_ms": metrics.latency_p99_ms,
    }


async def serve_stdio(
    engine: ServeEngine,
    stdin: TextIO | None = None,
    stdout: TextIO | None = None,
) -> int:
    """Run the line-JSON loop until EOF or a ``shutdown`` op.

    Each optimize line becomes a concurrent task; responses print in
    completion order.  Returns the number of requests served.
    """
    stdin = sys.stdin if stdin is None else stdin
    stdout = sys.stdout if stdout is None else stdout
    loop = asyncio.get_running_loop()
    write_lock = asyncio.Lock()
    tasks: set[asyncio.Task[None]] = set()
    served = 0

    async def respond(payload: dict[str, Any]) -> None:
        async with write_lock:
            stdout.write(encode_response(payload) + "\n")
            stdout.flush()

    async def run_request(request: ServeRequest) -> None:
        nonlocal served
        try:
            outcome = await engine.submit(request)
        except ServeRejected as rejection:
            await respond(
                {
                    "ok": False,
                    "reason": rejection.reason,
                    "tenant": rejection.tenant,
                    "retry_after_ms": rejection.retry_after_ms,
                    "request_id": request.request_id,
                }
            )
            return
        except Exception as error:
            await respond(
                {
                    "ok": False,
                    "reason": "error",
                    "error": f"{type(error).__name__}: {error}",
                    "request_id": request.request_id,
                }
            )
            return
        served += 1
        await respond(_result_payload(outcome))

    while True:
        line = await loop.run_in_executor(None, stdin.readline)
        if not line:
            break
        line = line.strip()
        if not line:
            continue
        try:
            decoded = decode_request(line)
        except ValueError as error:
            await respond({"ok": False, "reason": "bad-request",
                           "error": str(error)})
            continue
        if decoded == "metrics":
            await respond(_metrics_payload(engine))
            continue
        if decoded == "shutdown":
            break
        assert isinstance(decoded, ServeRequest)
        task = asyncio.ensure_future(run_request(decoded))
        tasks.add(task)
        task.add_done_callback(tasks.discard)

    if tasks:
        await asyncio.gather(*list(tasks), return_exceptions=True)
    await engine.aclose()
    # The final snapshot rides on the shutdown ack: a mid-stream
    # "metrics" probe is a *live* reading (requests still in flight),
    # so this is where a pipeline gets the settled totals.
    final = {
        key: value
        for key, value in _metrics_payload(engine).items()
        if key not in ("ok", "op")
    }
    await respond(
        {"ok": True, "op": "shutdown", "served": served, "metrics": final}
    )
    return served
