"""ServeConfig: the serving layer's knobs as one immutable value.

Mirrors the :class:`repro.api.SessionConfig` conventions exactly: every
field defaults to ``None`` ("defer to the next layer down"), instances
are frozen/hashable, ``$REPRO_SERVE_*`` environment variables
materialise through :meth:`ServeConfig.from_env` with the established
strict parsing (an unparseable value raises a ``ValueError`` naming the
variable and the value — a typo'd quota must never silently mean
"unlimited"), and :meth:`ServeConfig.resolve` layers **explicit kwargs >
dict > environment > built-in defaults**.

This module is the *only* sanctioned reader of ``$REPRO_SERVE_*`` (the
scoped-config lint rule enforces it by path): serving configuration
flows through :class:`ServeConfig` into
:class:`repro.serve.engine.ServeEngine`, never through ad-hoc
environment reads.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Callable, Mapping

__all__ = ["ServeConfig"]

#: Built-in defaults applied by the ``effective_*`` accessors when every
#: configuration layer left the field ``None``.
DEFAULT_MAX_WORKERS = 4
DEFAULT_MAX_QUEUE_DEPTH = 64
DEFAULT_TENANT_BURST = 8.0
DEFAULT_LATENCY_WINDOW = 512
#: Fallback backpressure retry hint before any latency sample exists.
DEFAULT_RETRY_AFTER_MS = 100.0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise ValueError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise ValueError(f"must be > 0, got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise ValueError(f"must be >= 0, got {value}")
    return value


def _burst_float(text: str) -> float:
    value = float(text)
    if value < 1:
        raise ValueError(f"must be >= 1 request, got {value}")
    return value


def _strict_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"not a boolean: {text!r}")


#: ``$REPRO_SERVE_*`` variable -> (config field, strict parser).  The
#: single source of truth for :meth:`ServeConfig.from_env`.
_SERVE_ENV_FIELDS: dict[str, tuple[str, Callable[[str], Any]]] = {
    "REPRO_SERVE_WORKERS": ("max_workers", _positive_int),
    "REPRO_SERVE_QUEUE_DEPTH": ("max_queue_depth", _positive_int),
    "REPRO_SERVE_TENANT_RATE": ("tenant_rate", _positive_float),
    "REPRO_SERVE_TENANT_BURST": ("tenant_burst", _burst_float),
    "REPRO_SERVE_COALESCE": ("coalesce", _strict_bool),
    "REPRO_SERVE_DEADLINE_MS": ("default_deadline_ms", _nonnegative_float),
}


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """The serving layer's full configuration as one immutable value.

    ``None`` fields defer down the resolution chain (environment, then
    built-ins), so an empty config is the stock serving engine and a
    partially filled one overrides only what it names.
    """

    #: Worker threads running layer searches (the pool bound: at most
    #: this many engine searches run concurrently).
    max_workers: int | None = None
    #: Admitted-but-unfinished request cap; admissions beyond it are
    #: rejected with a retry-after hint instead of queueing unboundedly.
    max_queue_depth: int | None = None
    #: Per-tenant sustained admission rate, requests/second (token-bucket
    #: refill).  ``None`` after resolution = no quota.
    tenant_rate: float | None = None
    #: Per-tenant burst capacity (token-bucket size), in requests.
    tenant_burst: float | None = None
    #: Coalesce concurrent requests for the same search signature through
    #: the engine's in-flight table (pure concurrent dedup; identical
    #: results).  Default on.
    coalesce: bool | None = None
    #: Deadline applied to requests that do not carry their own,
    #: milliseconds.  ``None`` after resolution = no implicit deadline.
    default_deadline_ms: float | None = None

    def __post_init__(self) -> None:
        for field, convert in (
            ("max_workers", int),
            ("max_queue_depth", int),
            ("tenant_rate", float),
            ("tenant_burst", float),
            ("default_deadline_ms", float),
        ):
            value = getattr(self, field)
            if value is not None:
                try:
                    object.__setattr__(self, field, convert(value))
                except (TypeError, ValueError):
                    raise ValueError(
                        f"{field} must be a number, got {value!r}"
                    ) from None
        if self.coalesce is not None and not isinstance(self.coalesce, bool):
            value = self.coalesce
            if isinstance(value, str):
                object.__setattr__(self, "coalesce", _strict_bool(value))
            elif isinstance(value, int) and value in (0, 1):
                object.__setattr__(self, "coalesce", bool(value))
            else:
                raise ValueError(f"coalesce must be a boolean, got {value!r}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.tenant_rate is not None and self.tenant_rate <= 0:
            raise ValueError(
                f"tenant_rate must be > 0 requests/second, got "
                f"{self.tenant_rate!r} (omit it for no quota)"
            )
        if self.tenant_burst is not None and self.tenant_burst < 1:
            raise ValueError("tenant_burst must be >= 1 request")
        if self.default_deadline_ms is not None and self.default_deadline_ms < 0:
            raise ValueError("default_deadline_ms must be >= 0 milliseconds")

    # ------------------------------------------------------------------
    # Construction layers (SessionConfig conventions)
    # ------------------------------------------------------------------
    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        return tuple(f.name for f in dataclasses.fields(cls))

    @classmethod
    def from_env(
        cls, environ: Mapping[str, str] | None = None
    ) -> "ServeConfig":
        """Materialise the ``$REPRO_SERVE_*`` variables as a config.

        Unset (or empty) variables leave their field ``None``; parse
        failures raise ``ValueError`` naming the variable and the value.
        """
        environ = os.environ if environ is None else environ
        values: dict[str, Any] = {}
        for variable, (field, parse) in _SERVE_ENV_FIELDS.items():
            raw = environ.get(variable)
            if raw is None or raw.strip() == "":
                continue
            try:
                values[field] = parse(raw.strip())
            except (TypeError, ValueError):
                raise ValueError(
                    f"{variable} could not be parsed: {raw!r}"
                ) from None
        return cls(**values)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeConfig":
        """Build a config from a plain mapping; unknown keys raise."""
        known = cls.field_names()
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ValueError(
                f"unknown ServeConfig field(s) {unknown}; known: {list(known)}"
            )
        return cls(**dict(data))

    def merged(self, overlay: "ServeConfig") -> "ServeConfig":
        """A config where ``overlay``'s non-``None`` fields win."""
        values = {
            name: (
                getattr(overlay, name)
                if getattr(overlay, name) is not None
                else getattr(self, name)
            )
            for name in self.field_names()
        }
        return type(self)(**values)

    @classmethod
    def resolve(
        cls,
        *,
        data: Mapping[str, Any] | None = None,
        env: bool | Mapping[str, str] = True,
        **explicit: Any,
    ) -> "ServeConfig":
        """Layer the sources under the documented precedence: **explicit
        kwargs > ``data`` dict > environment > built-in defaults**."""
        config = cls()
        if env:
            config = config.merged(
                cls.from_env(None if env is True else env)
            )
        if data is not None:
            config = config.merged(cls.from_dict(data))
        explicit = {k: v for k, v in explicit.items() if v is not None}
        if explicit:
            config = config.merged(cls.from_dict(explicit))
        return config

    # ------------------------------------------------------------------
    # Effective values (the built-in-defaults layer)
    # ------------------------------------------------------------------
    @property
    def effective_max_workers(self) -> int:
        return (
            DEFAULT_MAX_WORKERS if self.max_workers is None else self.max_workers
        )

    @property
    def effective_max_queue_depth(self) -> int:
        return (
            DEFAULT_MAX_QUEUE_DEPTH
            if self.max_queue_depth is None
            else self.max_queue_depth
        )

    @property
    def effective_tenant_burst(self) -> float:
        return (
            DEFAULT_TENANT_BURST
            if self.tenant_burst is None
            else self.tenant_burst
        )

    @property
    def effective_coalesce(self) -> bool:
        return True if self.coalesce is None else self.coalesce

    def describe(self) -> str:
        set_fields = {
            name: getattr(self, name)
            for name in self.field_names()
            if getattr(self, name) is not None
        }
        if not set_fields:
            return "ServeConfig(defaults)"
        body = ", ".join(f"{k}={v}" for k, v in sorted(set_fields.items()))
        return f"ServeConfig({body})"
