"""repro.serve: async optimization-as-a-service on top of the Session.

The serving layer the ROADMAP's north star asks for: a long-lived,
multi-tenant front end over the per-layer design-space search.  It is a
*pure concurrency-and-admission* layer — every answer it returns is
bit-identical to the same request through
:meth:`repro.api.Session.optimize_network` — adding:

* **request coalescing** — concurrent requests for the same search
  signature share one underlying search via the optimizer's in-flight
  table (N tenants sweeping overlapping networks → one search per
  unique signature);
* **per-tenant token-bucket quotas** and **queue-depth backpressure**
  (reject-with-retry-after, never unbounded queueing);
* **latency SLOs** — a request deadline maps onto the anytime search's
  ``budget_ms``, returning certified best-so-far results (``bound_gap``)
  that never enter any cache layer;
* **incremental streaming** of per-layer results and a
  :class:`ServeMetrics` snapshot (queue depth, coalesce rate, per-tenant
  admits/rejects, latency percentiles, merged per-store cache stats).

Entry points: :meth:`repro.api.Session.serve` (the front door),
:class:`ServeEngine` directly, or ``python -m repro.experiments.runner
serve`` (line-JSON stdio, :mod:`repro.serve.protocol`).  See
``examples/serve_quickstart.py`` and docs/INVARIANTS.md ("serving
contract").
"""

from repro.serve.clock import use_clock
from repro.serve.config import ServeConfig
from repro.serve.engine import (
    ServeEngine,
    ServeEvent,
    ServeMetrics,
    ServeRejected,
    ServeRequest,
    ServeResult,
    TenantStats,
)
from repro.serve.protocol import serve_stdio

__all__ = [
    "ServeConfig",
    "ServeEngine",
    "ServeEvent",
    "ServeMetrics",
    "ServeRejected",
    "ServeRequest",
    "ServeResult",
    "TenantStats",
    "serve_stdio",
    "use_clock",
]
