"""The sanctioned monotonic-clock resolver for the serving layer.

The determinism lint rule (docs/INVARIANTS.md) extends to ``serve/``: a
served result must be as reproducible as a direct
:meth:`repro.api.Session.optimize_network` call, so serve modules may
not read wall clocks ad hoc.  But a serving engine is *about* time —
per-tenant token buckets refill with it, request deadlines are measured
against it, and latency percentiles are computed from it — so, exactly
like the anytime budget clock (:mod:`repro.optimizer.clock`), all of it
funnels through this one sanctioned module, and the clock is
*injectable*: tests install a fake monotonic clock with
:func:`use_clock` and exercise quota refill, deadline mapping and
latency accounting deterministically, without sleeping or flaking.

The separation from the optimizer's clock is deliberate: a test can
freeze serving time (so a request's deadline maps to one exact
``budget_ms``) while driving the search's budget clock through a
different fake — the two subsystems' notions of "now" never have to
agree.

The override stack is process-wide module state (an ALL_CAPS registry
per the scoped-config convention), shared across threads — the serve
engine reads the clock from both the event-loop thread (admission,
metrics) and its worker threads (deadline-to-budget mapping), and both
must observe the same fake during a test.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Iterator

#: A monotonic clock: call it for "now" in milliseconds.  Only differences
#: between readings are meaningful.
Clock = Callable[[], float]

#: LIFO of installed clock overrides (empty = real monotonic clock).
_CLOCK_OVERRIDES: list[Clock] = []


def monotonic_ms() -> float:
    """The real monotonic clock, in milliseconds.

    This is the one sanctioned wall-clock read in the serve package (see
    the module docstring and the determinism rule's exemption).
    """
    return time.monotonic() * 1000.0


def current_clock() -> Clock:
    """The active clock: the innermost :func:`use_clock` override, or the
    real :func:`monotonic_ms`."""
    if _CLOCK_OVERRIDES:
        return _CLOCK_OVERRIDES[-1]
    return monotonic_ms


def now_ms() -> float:
    """One reading of the active clock (shorthand for the hot paths)."""
    return current_clock()()


@contextlib.contextmanager
def use_clock(clock: Clock) -> Iterator[Clock]:
    """Install ``clock`` as the serving clock for the dynamic extent of
    the block (re-entrant; restores the previous clock on exit).

    For tests: a frozen or counter-backed fake makes quota refill and
    deadline mapping exact and repeatable::

        with use_clock(lambda: 0.0):        # serving time stands still
            ...  # a deadline_ms=5.0 request maps to budget_ms == 5.0
    """
    _CLOCK_OVERRIDES.append(clock)
    try:
        yield clock
    finally:
        _CLOCK_OVERRIDES.pop()
