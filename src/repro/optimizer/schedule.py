"""Lowering: turn a chosen configuration into hardware programming state.

The last step of the paper's software flow (Section V-E): "The final
configuration can then be used to derive all state needed to configure
Morph, e.g., bank assignments and FSM state."  This module produces, for
one evaluated layer:

* per-level **bank assignments** for the configurable buffers (Figure 7),
* per-boundary **FSM programs** — loop bounds and steps whose accumulator
  traces the tile-origin sequence of the chosen loop order (Figure 8),
  with tile-done event triggers,
* **NoC multicast masks** for the chosen PE parallelism, including the
  second mask for the final partial round (Section IV-B3).
"""

from __future__ import annotations

import dataclasses
import math

from repro.arch.accelerator import AcceleratorConfig
from repro.arch.buffers import FlexiblePartition
from repro.arch.fsm import EventTrigger, ProgrammableFsm, fsm_for_loop_nest
from repro.arch.noc import MulticastMask
from repro.core.dims import ALL_DIMS, DataType, Dim
from repro.core.evaluate import Evaluation
from repro.core.performance_model import split_parallelism
from repro.core.tiling import TileShape


@dataclasses.dataclass(frozen=True)
class BoundaryProgram:
    """FSM program for one boundary: walks child-tile origins in order."""

    name: str
    dims: tuple[Dim, ...]  #: loop dims, outermost first (degenerate removed)
    bounds: tuple[int, ...]  #: trip counts, innermost first (FSM convention)
    fsm: ProgrammableFsm

    def origins(self) -> list[int]:
        """Linearised tile-origin sequence the FSM generates."""
        return self.fsm.addresses()


@dataclasses.dataclass(frozen=True)
class LayerProgram:
    """Everything software writes into the accelerator at layer start."""

    layer_name: str
    bank_assignments: tuple[dict[DataType, int] | None, ...]  #: per level
    boundary_programs: tuple[BoundaryProgram, ...]
    pe_mask: MulticastMask
    last_round_mask: MulticastMask
    cluster_mask: MulticastMask


def _linear_strides(parent: TileShape, child: TileShape) -> dict[Dim, int]:
    """Strides of a row-major [W,H,C,K,F] linearisation of the parent."""
    strides: dict[Dim, int] = {}
    stride = 1
    for dim in reversed(ALL_DIMS):
        strides[dim] = stride
        stride *= parent.extent(dim)
    return strides


def program_boundary(
    name: str,
    parent: TileShape,
    child: TileShape,
    order_dims: tuple[Dim, ...],
) -> BoundaryProgram:
    """FSM walking child-tile origins within the parent, in loop order."""
    trips = parent.trip_counts(child)
    active = [d for d in order_dims if trips[d] > 1] or [order_dims[-1]]
    strides = _linear_strides(parent, child)
    # Innermost loop first, per the FSM convention.
    bounds = [trips[d] for d in reversed(active)]
    loop_strides = [strides[d] * child.extent(d) for d in reversed(active)]
    triggers = [
        EventTrigger("tile_done", tuple(True for _ in bounds)),
    ]
    fsm = fsm_for_loop_nest(bounds, loop_strides, triggers=triggers)
    return BoundaryProgram(
        name=name,
        dims=tuple(active),
        bounds=tuple(bounds),
        fsm=fsm,
    )


def lower(evaluation: Evaluation) -> LayerProgram:
    """Produce the full layer-start programming state for an evaluation."""
    arch: AcceleratorConfig = evaluation.arch
    layer = evaluation.layer
    dataflow = evaluation.dataflow
    hierarchy = dataflow.hierarchy

    bank_assignments: list[dict[DataType, int] | None] = []
    for index, (level, policy) in enumerate(zip(arch.levels, arch.partitions)):
        if isinstance(policy, FlexiblePartition):
            tile = hierarchy.tiles[index]
            tile_bytes = {
                dt: tile.bytes_of(dt, layer, arch.precision) for dt in DataType
            }
            bank_assignments.append(policy.bank_assignment(level, tile_bytes))
        else:
            bank_assignments.append(None)  # static partitions need no state

    programs = []
    parent = TileShape.full(layer)
    for index, tile in enumerate(hierarchy.tiles):
        order = dataflow.order_for_boundary(index)
        programs.append(
            program_boundary(
                name=f"boundary{index}",
                parent=parent,
                child=tile,
                order_dims=order.dims,
            )
        )
        parent = tile

    cluster_par, pe_par = split_parallelism(
        dataflow.parallelism, arch.clusters, arch.pes_per_cluster
    )
    pe_active = min(pe_par.degree, arch.pes_per_cluster)
    cluster_active = min(cluster_par.degree, arch.clusters)

    # Final partial round: leftover tiles when the PE-parallel trip counts
    # do not divide evenly (Section IV-B3's second mask + counter).
    inner = hierarchy.innermost
    pe_parent = hierarchy.parent_of(hierarchy.levels - 1)
    last_round = pe_active
    for dim in (Dim.W, Dim.H, Dim.K, Dim.F):
        degree = pe_par.of(dim)
        if degree > 1:
            tiles = math.ceil(pe_parent.extent(dim) / inner.extent(dim))
            remainder = tiles % degree
            if remainder:
                last_round = max(1, last_round * remainder // degree)

    return LayerProgram(
        layer_name=layer.name,
        bank_assignments=tuple(bank_assignments),
        boundary_programs=tuple(programs),
        pe_mask=MulticastMask.first_k(arch.pes_per_cluster, pe_active),
        last_round_mask=MulticastMask.first_k(arch.pes_per_cluster, last_round),
        cluster_mask=MulticastMask.first_k(arch.clusters, cluster_active),
    )
