"""Configuration-space enumeration (paper Section V-A).

The optimizer's parameter list is the cartesian product of loop orders,
last-level tile sizes and parallelisation parameters.  Taken literally that
space is enormous, and the paper notes it "can be discretized" to reduce
search time.  This module provides the discretisations:

* per-dimension tile extents on a halving ladder (full, 1/2, 1/4, ... 1),
  pruned by buffer capacity, which is monotone in every extent;
* loop orders either exhaustively (all 120 permutations, deduplicated by
  the cost-equivalence signature of :func:`loop_order_signature`) or from a
  curated representative set for fast runs;
* PE parallelisations as factorisations of the PE count over H/W/K/F.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, Sequence

from repro.arch.accelerator import AcceleratorConfig
from repro.core.dims import ALL_DIMS, DataType, Dim
from repro.core.dataflow import Parallelism
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder, all_loop_orders
from repro.core.tiling import TileShape

#: Curated loop orders covering the distinct reuse regimes: which data type
#: is kept stationary at the boundary and which dim provides slide reuse.
#: Includes every order the paper reports (Figure 4, Table III).
REPRESENTATIVE_OUTER_ORDERS = (
    "KWHCF", "KWFHC", "WFHCK", "WHCKF", "WFKHC", "FWHCK",
    "KCWHF", "WHFCK", "FKWHC", "CWHKF", "WHCFK", "CKWHF",
)
REPRESENTATIVE_INNER_ORDERS = (
    "CFWHK", "CWHFK", "KCFWH", "WHCKF", "WHKFC", "KFWHC",
    "FWHCK", "KWHCF", "WFKHC", "CKWHF", "FKCWH", "WFHCK",
)


def pins_data_type_kernel(w, h, c, k, f, full: TileShape):
    """Does a last-level tile keep one whole data type resident?

    Figure 4b shows the best configurations pin a whole data type in the
    L2 whenever possible, so such candidates are always retained.  Written
    with bitwise ops so one rule serves scalars and candidate columns.
    """
    return (
        ((c == full.c) & (k == full.k))  # all weights resident
        | ((w == full.w) & (h == full.h) & (c == full.c) & (f == full.f))  # inputs
        | ((w == full.w) & (h == full.h) & (k == full.k) & (f == full.f))  # outputs
    )


def _select_l2_candidates(items, pinned_flags, maccs_key, max_candidates: int):
    """Shared rank/truncate: pinned first (largest-reuse), then the rest.

    ``items`` may be tiles (scalar path) or column indices (vectorized
    path); ``maccs_key`` maps an item to its MAC count.  Sorts are stable,
    so ties keep enumeration order in both paths.
    """
    pinned_flags = list(pinned_flags)  # consumed twice below
    pinned = [item for item, p in zip(items, pinned_flags) if p]
    rest = [item for item, p in zip(items, pinned_flags) if not p]
    pinned.sort(key=maccs_key, reverse=True)
    rest.sort(key=maccs_key, reverse=True)
    take_pinned = pinned[: max(max_candidates // 3, 4)]
    result = take_pinned + rest[: max_candidates - len(take_pinned)]
    return result[:max_candidates]


def halving_ladder(extent: int, *, max_steps: int = 8) -> list[int]:
    """Candidate tile extents: full size repeatedly halved, down to 1."""
    values: list[int] = []
    current = extent
    for _ in range(max_steps):
        if current not in values:
            values.append(current)
        if current == 1:
            break
        current = math.ceil(current / 2)
    if 1 not in values:
        values.append(1)
    return values


def last_level_tile_candidates(
    layer: ConvLayer,
    arch: AcceleratorConfig,
    *,
    max_candidates: int = 24,
    level_index: int = 0,
    vectorize: bool = False,
) -> list[TileShape]:
    """Feasible last-level (L2) tile shapes, largest-reuse first.

    Walks the per-dimension halving ladders depth-first, pruning branches
    whose *smallest* completion already exceeds capacity (footprints are
    monotone in every extent).  Candidates that keep one data type fully
    resident are always retained — Figure 4b shows the best configurations
    pin a whole data type in the L2 whenever possible.

    ``vectorize=True`` evaluates the whole ladder grid through one columnar
    capacity check (:func:`repro.core.batch.tile_fits_mask`) instead of the
    per-tile recursion; the candidate list is identical, in the same order.
    """
    full = TileShape.full(layer)
    ladders = {dim: halving_ladder(full.extent(dim)) for dim in ALL_DIMS}
    feasible: list[TileShape] = []
    order = list(ALL_DIMS)

    if vectorize:
        import numpy as np

        from repro.core.batch import tile_fits_mask

        # Cartesian product in the recursion's DFS order: same feasible
        # set, same sequence.  Ranking happens on columns; TileShape
        # objects are materialised only for the returned candidates.
        grid = np.array(
            list(itertools.product(*(ladders[dim] for dim in order))),
            dtype=np.int64,
        ).T
        fits = tile_fits_mask(arch, level_index, layer, grid)
        if not fits.any():
            raise ValueError(
                f"no feasible last-level tile for {layer.name} on {arch.name}"
            )
        w, h, c, k, f = grid
        maccs = w * h * f * k * c * (layer.r * layer.s * layer.t)
        pins = pins_data_type_kernel(w, h, c, k, f, full)
        feasible_idx = [int(i) for i in np.flatnonzero(fits)]
        chosen = _select_l2_candidates(
            feasible_idx, (pins[i] for i in feasible_idx),
            maccs.__getitem__, max_candidates,
        )
        return [
            TileShape.from_mapping(dict(zip(order, map(int, grid[:, i]))))
            for i in chosen
        ]
    else:

        def recurse(index: int, chosen: dict[Dim, int]) -> None:
            if index == len(order):
                tile = TileShape.from_mapping(chosen)
                if arch.tile_fits(level_index, layer, tile):
                    feasible.append(tile)
                return
            dim = order[index]
            for value in ladders[dim]:
                probe = dict(chosen)
                probe[dim] = value
                for rest in order[index + 1:]:
                    probe[rest] = 1
                if not arch.tile_fits(
                    level_index, layer, TileShape.from_mapping(probe)
                ):
                    continue  # even the minimal completion is too big
                chosen[dim] = value
                recurse(index + 1, chosen)
            chosen.pop(dim, None)

        recurse(0, {})
    if not feasible:
        raise ValueError(
            f"no feasible last-level tile for {layer.name} on {arch.name}"
        )

    flags = [
        bool(pins_data_type_kernel(t.w, t.h, t.c, t.k, t.f, full))
        for t in feasible
    ]
    return _select_l2_candidates(
        feasible, flags, lambda t: t.maccs(layer), max_candidates
    )


def loop_order_candidates(
    *, exhaustive: bool, representative: Sequence[str]
) -> list[LoopOrder]:
    if exhaustive:
        return list(all_loop_orders())
    return [LoopOrder.parse(spec) for spec in representative]


_PARALLEL_DEGREE_GRID = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 768)


def parallelism_candidates(
    arch: AcceleratorConfig,
    layer: ConvLayer,
    *,
    max_candidates: int = 12,
) -> list[Parallelism]:
    """Factorisations of the PE count over the parallelisable dims.

    Full-machine factorisations are preferred (idle PEs never help); each
    dim's degree is capped by the layer's extent along it, since more
    workers than work guarantees idling.
    """
    total = arch.total_pes
    caps = {
        Dim.K: layer.k,
        Dim.H: layer.out_h,
        Dim.W: layer.out_w,
        Dim.F: layer.out_f,
    }
    grid = [d for d in _PARALLEL_DEGREE_GRID if d <= total]
    seen: set[tuple[int, int, int, int]] = set()
    results: list[Parallelism] = []
    for k, h, w, f in itertools.product(grid, repeat=4):
        if k * h * w * f != total:
            continue
        key = (k, h, w, f)
        if key in seen:
            continue
        seen.add(key)
        results.append(Parallelism(k=k, h=h, w=w, f=f))

    def slack(par: Parallelism) -> float:
        """How badly the degrees overshoot the available work (lower is
        better): product of per-dim overshoot ratios."""
        penalty = 1.0
        for dim, cap in caps.items():
            penalty *= max(1.0, par.of(dim) / max(cap, 1))
        return penalty

    results.sort(key=lambda p: (slack(p), p.replication(DataType.INPUTS)
                                + p.replication(DataType.WEIGHTS)))
    if not results:
        results = [Parallelism.none()]
    return results[:max_candidates]


def candidate_blocks(
    parallelisms: Sequence,
    l2_tiles: Sequence[TileShape],
    *,
    best_first: bool = False,
    block_bound=None,
) -> list[tuple[int, int, int]]:
    """Visit order for the search's (parallelism, L2-tile) blocks.

    Returns ``(legacy_index, parallelism_index, l2_tile_index)`` triples.
    Legacy order is the historical nesting — parallelism-major, L2-tile
    minor — and ``legacy_index`` numbers the blocks in that order; it is a
    pure function of candidate identity, never of visit order, so the
    search can break equal-score ties exactly as the legacy enumeration
    would regardless of how blocks are visited.

    With ``best_first=True``, blocks are sorted by ascending
    ``block_bound(parallelism_index, l2_tile_index)`` — the cheap
    objective lower bound of the block's best outer order
    (:func:`~repro.optimizer.search.objective_lower_bound`) — so the
    blocks most likely to contain the optimum are evaluated first and the
    incumbent-based prune bites as early as possible.  The bound's
    parallelism-aware floors (utilization ceiling, replication energy)
    differentiate blocks sharing an L2 tile; remaining ties fall back to
    legacy order, keeping the visit sequence deterministic.
    """
    blocks = [
        (p_idx * len(l2_tiles) + t_idx, p_idx, t_idx)
        for p_idx in range(len(parallelisms))
        for t_idx in range(len(l2_tiles))
    ]
    if best_first:
        bounds = {
            (p_idx, t_idx): block_bound(p_idx, t_idx)
            for _, p_idx, t_idx in blocks
        }
        blocks.sort(key=lambda block: (bounds[block[1:]], block[0]))
    return blocks


def dedupe_orders_by_signature(
    orders: Iterator[LoopOrder] | Sequence[LoopOrder],
    parent: TileShape,
    child: TileShape,
) -> list[LoopOrder]:
    """One representative per cost-equivalence class (see
    :func:`repro.core.access_model.loop_order_signature`)."""
    from repro.core.access_model import loop_order_signature

    seen: set[tuple] = set()
    result: list[LoopOrder] = []
    for order in orders:
        sig = loop_order_signature(parent, child, order)
        if sig not in seen:
            seen.add(sig)
            result.append(order)
    return result
