"""Persist and recall optimizer configurations (paper Section V).

"These optimizations need only be performed once per CNN. After best-fit
parameters are found once, a configuration file can be saved and recalled
instead of re-running the analysis."  This module is that configuration
file: JSON with one record per layer capturing exactly the paper's
configuration vector — ``[outer loop order, inner loop order, Ht, Wt, Ct,
Kt, Ft (per level), Hp, Wp, Kp]`` — plus enough layer shape to detect
mismatches on recall.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.arch.accelerator import AcceleratorConfig
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.evaluate import Evaluation, evaluate
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import TileHierarchy, TileShape
from repro.optimizer.search import NetworkResult

#: v2: layer signatures carry dilation (D2Conv3D support).
FORMAT_VERSION = 2


def _tile_to_json(tile: TileShape) -> dict:
    return {"w": tile.w, "h": tile.h, "c": tile.c, "k": tile.k, "f": tile.f}


def _tile_from_json(data: dict) -> TileShape:
    return TileShape(**data)


def layer_signature(layer: ConvLayer, *, include_name: bool = True) -> dict:
    """JSON-able identity of a layer's shape (optionally with its name).

    The network config files keep the name so recall can report which
    layer mismatched; the engine's dedup/disk keys drop it so identical
    shapes under different names share one search.
    """
    signature = {
        "h": layer.h, "w": layer.w, "c": layer.c, "f": layer.f,
        "k": layer.k, "r": layer.r, "s": layer.s, "t": layer.t,
        "stride": [layer.stride_h, layer.stride_w, layer.stride_f],
        "pad": [layer.pad_h, layer.pad_w, layer.pad_f],
        "dilation": [layer.dilation_h, layer.dilation_w, layer.dilation_f],
    }
    if include_name:
        signature = {"name": layer.name, **signature}
    return signature


def _layer_signature(layer: ConvLayer) -> dict:
    return layer_signature(layer)


def dataflow_to_json(dataflow: Dataflow) -> dict:
    par = dataflow.parallelism
    return {
        "outer_order": dataflow.outer_order.format().strip("[]"),
        "inner_order": dataflow.inner_order.format().strip("[]"),
        "tiles": [_tile_to_json(t) for t in dataflow.hierarchy.tiles],
        "parallelism": {"w": par.w, "h": par.h, "k": par.k, "f": par.f},
    }


def dataflow_from_json(layer: ConvLayer, data: dict) -> Dataflow:
    return Dataflow(
        outer_order=LoopOrder.parse(data["outer_order"]),
        inner_order=LoopOrder.parse(data["inner_order"]),
        hierarchy=TileHierarchy(
            layer, tuple(_tile_from_json(t) for t in data["tiles"])
        ),
        parallelism=Parallelism(**data["parallelism"]),
    )


class ConfigMismatchError(ValueError):
    """A stored configuration does not match the layer or machine."""


def save_network_configs(result: NetworkResult, path: str | Path) -> None:
    """Write every layer's chosen configuration to a JSON file."""
    records = []
    for layer_result in result.layers:
        ev = layer_result.best
        records.append(
            {
                "layer": _layer_signature(ev.layer),
                "dataflow": dataflow_to_json(ev.dataflow),
                "expected_energy_pj": ev.total_energy_pj,
            }
        )
    payload = {
        "format_version": FORMAT_VERSION,
        "network": result.network_name,
        "accelerator": result.arch_name,
        "layers": records,
    }
    Path(path).write_text(json.dumps(payload, indent=2))


@dataclasses.dataclass(frozen=True)
class RecalledNetwork:
    """Configurations recalled from disk, re-evaluated on the machine."""

    network_name: str
    evaluations: tuple[Evaluation, ...]

    @property
    def total_energy_pj(self) -> float:
        return sum(ev.total_energy_pj for ev in self.evaluations)


def load_network_configs(
    path: str | Path,
    layers: tuple[ConvLayer, ...],
    arch: AcceleratorConfig,
) -> RecalledNetwork:
    """Recall configurations and re-evaluate them (no search).

    Verifies layer shapes and the target machine name; a mismatch means
    the file belongs to a different network or accelerator and raises
    :class:`ConfigMismatchError` rather than silently mis-scheduling.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("format_version") != FORMAT_VERSION:
        raise ConfigMismatchError(
            f"unsupported config format {payload.get('format_version')}"
        )
    if payload["accelerator"] != arch.name:
        raise ConfigMismatchError(
            f"config saved for {payload['accelerator']!r}, "
            f"recalling on {arch.name!r}"
        )
    records = payload["layers"]
    if len(records) != len(layers):
        raise ConfigMismatchError(
            f"config has {len(records)} layers, network has {len(layers)}"
        )
    evaluations = []
    for record, layer in zip(records, layers):
        if record["layer"] != _layer_signature(layer):
            raise ConfigMismatchError(
                f"layer {layer.name!r} does not match the stored shape"
            )
        dataflow = dataflow_from_json(layer, record["dataflow"])
        evaluations.append(evaluate(dataflow, arch))
    return RecalledNetwork(
        network_name=payload["network"], evaluations=tuple(evaluations)
    )
