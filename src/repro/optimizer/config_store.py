"""Persist and recall optimizer configurations (paper Section V).

"These optimizations need only be performed once per CNN. After best-fit
parameters are found once, a configuration file can be saved and recalled
instead of re-running the analysis."  This module is that configuration
file: JSON with one record per layer capturing exactly the paper's
configuration vector — ``[outer loop order, inner loop order, Ht, Wt, Ct,
Kt, Ft (per level), Hp, Wp, Kp]`` — plus enough layer shape to detect
mismatches on recall.

Pluggable record stores
-----------------------
The optimizer engine keeps one versioned JSON record per unique search,
keyed by the sha256 of its search signature.  Where those records live is
a :class:`ConfigStore` backend, selected with ``cache_backend=`` on
:class:`~repro.optimizer.engine.OptimizerEngine` /
:func:`~repro.optimizer.search.optimize_network`, process-wide via
:func:`~repro.optimizer.engine.set_engine_defaults`, the
``REPRO_CACHE_BACKEND`` environment variable, or the runner's
``--cache-backend`` flag:

* ``"local"`` — :class:`LocalDirectoryStore`, the original flat
  ``<dir>/<key>.json`` layout.  Writes are atomic (temp file +
  ``os.replace``), so concurrent engines — processes or threads — racing
  on one directory never see torn records; unparseable records are moved
  to a ``quarantine/`` subdirectory and re-searched instead of crashing
  the sweep.
* ``"sharded"`` — :class:`ShardedStore`, a two-level fan-out layout
  (``<dir>/ab/cd/<key>.json`` for key ``abcd...``) plus an append-only
  ``MANIFEST.jsonl`` index.  Suited to cluster-shared mounts (NFS, object
  storage gateways) where a single flat directory with many thousands of
  entries is slow to list and the manifest gives cheap enumeration.
* ``"memory"`` — :class:`MemoryStore`, an in-process dict holding the
  JSON-serialised records; the process-wide instance behind the
  ``"memory"`` name is shared across engines (see :func:`memory_store`)
  so tests exercise the full save-and-recall flow without touching disk.

Any :class:`ConfigStore` *instance* can be passed wherever a backend name
is accepted, so bespoke stores (an object-storage client, a read-through
tier) plug in without touching the engine.
"""

from __future__ import annotations

import abc
import dataclasses
import json
import os
import threading
from pathlib import Path
from typing import Iterator

from repro.arch.accelerator import AcceleratorConfig
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.evaluate import Evaluation, evaluate
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import TileHierarchy, TileShape
from repro.optimizer.search import NetworkResult

#: v2: layer signatures carry dilation (D2Conv3D support).
FORMAT_VERSION = 2


def _tile_to_json(tile: TileShape) -> dict:
    return {"w": tile.w, "h": tile.h, "c": tile.c, "k": tile.k, "f": tile.f}


def _tile_from_json(data: dict) -> TileShape:
    return TileShape(**data)


def layer_signature(layer: ConvLayer, *, include_name: bool = True) -> dict:
    """JSON-able identity of a layer's shape (optionally with its name).

    The network config files keep the name so recall can report which
    layer mismatched; the engine's dedup/disk keys drop it so identical
    shapes under different names share one search.
    """
    signature = {
        "h": layer.h, "w": layer.w, "c": layer.c, "f": layer.f,
        "k": layer.k, "r": layer.r, "s": layer.s, "t": layer.t,
        "stride": [layer.stride_h, layer.stride_w, layer.stride_f],
        "pad": [layer.pad_h, layer.pad_w, layer.pad_f],
        "dilation": [layer.dilation_h, layer.dilation_w, layer.dilation_f],
    }
    if include_name:
        signature = {"name": layer.name, **signature}
    return signature


def _layer_signature(layer: ConvLayer) -> dict:
    return layer_signature(layer)


def dataflow_to_json(dataflow: Dataflow) -> dict:
    par = dataflow.parallelism
    return {
        "outer_order": dataflow.outer_order.format().strip("[]"),
        "inner_order": dataflow.inner_order.format().strip("[]"),
        "tiles": [_tile_to_json(t) for t in dataflow.hierarchy.tiles],
        "parallelism": {"w": par.w, "h": par.h, "k": par.k, "f": par.f},
    }


def dataflow_from_json(layer: ConvLayer, data: dict) -> Dataflow:
    return Dataflow(
        outer_order=LoopOrder.parse(data["outer_order"]),
        inner_order=LoopOrder.parse(data["inner_order"]),
        hierarchy=TileHierarchy(
            layer, tuple(_tile_from_json(t) for t in data["tiles"])
        ),
        parallelism=Parallelism(**data["parallelism"]),
    )


class ConfigMismatchError(ValueError):
    """A stored configuration does not match the layer or machine."""


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` so readers only ever see no file or the whole file.

    Stages into a temp file unique per process *and* thread (racing
    writers each stage their own), then ``os.replace``s it over the
    destination; last-writer-wins with no torn state.  Raises ``OSError``
    on failure, with the temp file cleaned up best-effort.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise


def save_network_configs(result: NetworkResult, path: str | Path) -> None:
    """Write every layer's chosen configuration to a JSON file."""
    records = []
    for layer_result in result.layers:
        ev = layer_result.best
        records.append(
            {
                "layer": _layer_signature(ev.layer),
                "dataflow": dataflow_to_json(ev.dataflow),
                "expected_energy_pj": ev.total_energy_pj,
            }
        )
    payload = {
        "format_version": FORMAT_VERSION,
        "network": result.network_name,
        "accelerator": result.arch_name,
        "layers": records,
    }
    _atomic_write_text(Path(path), json.dumps(payload, indent=2))


@dataclasses.dataclass(frozen=True)
class RecalledNetwork:
    """Configurations recalled from disk, re-evaluated on the machine."""

    network_name: str
    evaluations: tuple[Evaluation, ...]

    @property
    def total_energy_pj(self) -> float:
        return sum(ev.total_energy_pj for ev in self.evaluations)


def load_network_configs(
    path: str | Path,
    layers: tuple[ConvLayer, ...],
    arch: AcceleratorConfig,
) -> RecalledNetwork:
    """Recall configurations and re-evaluate them (no search).

    Verifies layer shapes and the target machine name; a mismatch means
    the file belongs to a different network or accelerator and raises
    :class:`ConfigMismatchError` rather than silently mis-scheduling.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("format_version") != FORMAT_VERSION:
        raise ConfigMismatchError(
            f"unsupported config format {payload.get('format_version')}"
        )
    if payload["accelerator"] != arch.name:
        raise ConfigMismatchError(
            f"config saved for {payload['accelerator']!r}, "
            f"recalling on {arch.name!r}"
        )
    records = payload["layers"]
    if len(records) != len(layers):
        raise ConfigMismatchError(
            f"config has {len(records)} layers, network has {len(layers)}"
        )
    evaluations = []
    for record, layer in zip(records, layers):
        if record["layer"] != _layer_signature(layer):
            raise ConfigMismatchError(
                f"layer {layer.name!r} does not match the stored shape"
            )
        dataflow = dataflow_from_json(layer, record["dataflow"])
        evaluations.append(evaluate(dataflow, arch))
    return RecalledNetwork(
        network_name=payload["network"], evaluations=tuple(evaluations)
    )


# ----------------------------------------------------------------------
# Pluggable per-search record stores (the engine's cache backends)
# ----------------------------------------------------------------------
#: Backend names accepted by ``cache_backend=`` / ``REPRO_CACHE_BACKEND``.
CACHE_BACKENDS = ("local", "sharded", "memory")


class ConfigStore(abc.ABC):
    """Key-value store of versioned per-search configuration records.

    Keys are sha256 hex digests of search signatures
    (:func:`repro.optimizer.engine.signature_key`); values are the
    JSON-able record dicts the engine writes (``format_version``, the full
    signature, the winning dataflow).  Implementations must be safe under
    concurrent writers — many engine processes or threads sharing one
    store — and must treat every failure as a miss, never an exception:
    the store is an optimisation, not a correctness requirement.
    """

    @abc.abstractmethod
    def get(self, key: str) -> dict | None:
        """Return the record stored under ``key``, or ``None`` on any miss
        (absent, unreadable, corrupt)."""

    @abc.abstractmethod
    def put(self, key: str, payload: dict) -> bool:
        """Store ``payload`` under ``key``; ``False`` on I/O failure."""

    @abc.abstractmethod
    def contains(self, key: str) -> bool:
        """Cheap existence probe (no payload validation)."""

    @abc.abstractmethod
    def keys(self) -> Iterator[str]:
        """Iterate over the keys of every stored record."""

    def describe(self) -> str:
        return type(self).__name__

    def kind(self) -> str:
        """Stable backend-kind label (``"local"`` / ``"sharded"`` /
        ``"memory"`` for the built-ins, the class name for bespoke
        stores)."""
        return type(self).__name__

    def identity(self) -> str:
        """Stable identifier of *this* store, not just its kind.

        Cache statistics are keyed by identity so two same-kind stores
        in one process (two ``local`` directories in one session window)
        keep separate counters.  File-backed stores return
        ``kind:resolved-directory`` — stable across processes, so
        sidecar totals merge correctly; the base fallback is unique only
        within the process."""
        return f"{self.kind()}#{id(self):x}"

    # -- cache-statistics sidecar ---------------------------------------
    # Per-process recall counters (repro.optimizer.engine.cache_statistics)
    # die with the process; sessions fold their deltas into a small JSON
    # sidecar *in the store* on close so cross-process sweeps sharing one
    # store can report merged totals.  The sidecar is advisory telemetry —
    # lock-free read-modify-write, so a concurrent flush can lose an
    # update — never a correctness input.

    def load_statistics(self) -> dict[str, dict[str, int]]:
        """The persisted cache-statistics sidecar (``{store_identity:
        {counter: total}}``); ``{}`` for stores without one."""
        return {}

    def merge_statistics(self, deltas: dict[str, dict[str, int]]) -> bool:
        """Fold counter deltas into the sidecar; ``False`` if this store
        does not persist statistics (the base default) or on I/O failure."""
        return False


class _FileConfigStore(ConfigStore):
    """Shared machinery of the directory-backed stores.

    Writes go through a per-process-and-thread temp file followed by
    ``os.replace``, so a reader (or a racing writer) only ever observes
    either no record or one complete record.  Records that exist but do
    not parse are *quarantined* — moved into ``<directory>/quarantine/``
    for forensics — and reported as misses, so one corrupt file (torn
    non-atomic copy, disk error, manual edit) costs one re-search instead
    of crashing the sweep.
    """

    QUARANTINE = "quarantine"
    STATS_SIDECAR = "CACHE_STATS.json"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory).expanduser()
        if self.directory.exists() and not self.directory.is_dir():
            raise ValueError(
                f"cache directory {str(self.directory)!r} exists and is "
                "not a directory"
            )
        self._identity: str | None = None

    def identity(self) -> str:
        """``kind:resolved-directory`` — two store objects over one
        directory share counters; two directories never do."""
        if self._identity is None:
            try:
                resolved = self.directory.resolve()
            except OSError:  # pragma: no cover - resolve on broken mounts
                resolved = self.directory.absolute()
            self._identity = f"{self.kind()}:{resolved.as_posix()}"
        return self._identity

    @abc.abstractmethod
    def path_for(self, key: str) -> Path:
        """Where ``key``'s record lives (exists or not)."""

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str) -> dict | None:
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self._quarantine(path)
            return None
        if not isinstance(payload, dict):
            self._quarantine(path)
            return None
        return payload

    def put(self, key: str, payload: dict) -> bool:
        path = self.path_for(key)
        try:
            _atomic_write_text(path, json.dumps(payload, indent=2))
        except OSError:
            return False
        self._register(key, path)
        return True

    def _quarantine(self, path: Path) -> None:
        """Move an unparseable record aside (best-effort, race-tolerant)."""
        quarantine = self.directory / self.QUARANTINE
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / f"{path.name}.{os.getpid()}")
        except OSError:
            pass  # a racing engine may have quarantined/rewritten it first

    def _register(self, key: str, path: Path) -> None:
        """Hook for layouts that maintain an index of written records."""

    # -- cache-statistics sidecar ---------------------------------------
    def load_statistics(self) -> dict[str, dict[str, int]]:
        try:
            payload = json.loads(
                (self.directory / self.STATS_SIDECAR).read_text()
            )
        except (OSError, ValueError):
            return {}
        if not isinstance(payload, dict):
            return {}
        stats = payload.get("statistics")
        return stats if isinstance(stats, dict) else {}

    def merge_statistics(self, deltas: dict[str, dict[str, int]]) -> bool:
        """Read-modify-write the ``CACHE_STATS.json`` sidecar atomically.

        Counters add across processes (each engine process flushes its own
        deltas on session close); the write is temp-file + ``os.replace``
        like every record write, so readers never see a torn sidecar.
        Concurrent flushes are last-writer-wins on the *replace* but each
        starts from a fresh read, so losses are bounded to one racing
        session's deltas — acceptable for advisory telemetry.
        """
        if not deltas:
            return True
        merged = self.load_statistics()
        for kind, counters in deltas.items():
            into = merged.setdefault(kind, {})
            for name, value in counters.items():
                if value:
                    into[name] = int(into.get(name, 0)) + int(value)
        path = self.directory / self.STATS_SIDECAR
        try:
            _atomic_write_text(
                path,
                json.dumps(
                    {"format_version": 1, "statistics": merged},
                    indent=2,
                    sort_keys=True,
                ),
            )
        except OSError:
            return False
        return True


class LocalDirectoryStore(_FileConfigStore):
    """The original flat layout: ``<directory>/<key>.json``.

    Right for a single machine or a modest record count; every write is
    atomic and corrupt records are quarantined rather than fatal.
    """

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def keys(self) -> Iterator[str]:
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("*.json")):
            # The statistics sidecar shares the flat directory but is
            # telemetry, not a record.
            if path.name == self.STATS_SIDECAR:
                continue
            yield path.stem

    def describe(self) -> str:
        return f"local:{self.directory}"

    def kind(self) -> str:
        return "local"


class ShardedStore(_FileConfigStore):
    """Two-level fan-out layout for cluster-shared cache mounts.

    Key ``abcdef...`` lives at ``<directory>/ab/cd/abcdef....json``: 65536
    shard directories bound each directory's entry count, which keeps
    listing and creation fast on NFS and object-storage gateways where
    flat million-entry directories degrade.  Each successful write also
    appends one line to ``MANIFEST.jsonl`` (``{"key": ..., "path": ...}``)
    — an advisory index giving cheap enumeration without walking the
    shard tree.  Appends are best-effort and line-oriented; readers
    tolerate torn or duplicate lines, and the shard tree (walked by
    :meth:`keys`) remains the source of truth.
    :meth:`compact_manifest` rewrites the manifest keeping only the
    latest entry per key, with an atomic replace — and runs
    *automatically* once the manifest's line count exceeds
    ``compact_ratio`` times its live (distinct) keys, checked every
    ``compact_check_interval`` appends so steady-state writes stay one
    ``O(1)`` append.  ``compact_ratio <= 0`` disables auto-compaction
    (:meth:`compact_manifest` stays available for manual/periodic runs).
    """

    MANIFEST = "MANIFEST.jsonl"

    #: Manifest lines per live key that trigger an automatic compaction.
    DEFAULT_COMPACT_RATIO = 4.0

    #: Manifest appends since the last ratio check, keyed by resolved
    #: directory and shared process-wide.  The engine builds a fresh
    #: store instance per :class:`~repro.optimizer.engine.OptimizerEngine`
    #: (i.e. per ``optimize_network`` call), so a per-*instance* counter
    #: would never reach the check interval; counting per directory makes
    #: the interval mean "appends to this manifest by this process".
    _APPENDS_SINCE_CHECK: dict[str, int] = {}
    _APPENDS_LOCK = threading.Lock()

    def __init__(
        self,
        directory: str | Path,
        *,
        compact_ratio: float | None = None,
        compact_check_interval: int = 64,
    ) -> None:
        super().__init__(directory)
        self.compact_ratio = (
            self.DEFAULT_COMPACT_RATIO
            if compact_ratio is None
            else float(compact_ratio)
        )
        self.compact_check_interval = max(1, int(compact_check_interval))

    def path_for(self, key: str) -> Path:
        prefix = key[:2] if len(key) >= 2 else "__"
        middle = key[2:4] if len(key) >= 4 else "__"
        return self.directory / prefix / middle / f"{key}.json"

    def keys(self) -> Iterator[str]:
        if not self.directory.is_dir():
            return
        # Two glob levels cover every shard (including the "__" fallback
        # dirs of sub-4-char keys) and cannot match the single-level
        # quarantine/ directory or the manifest.
        for path in sorted(self.directory.glob("*/*/*.json")):
            yield path.stem

    def manifest_keys(self) -> Iterator[str]:
        """Keys listed in the advisory manifest (deduplicated, in append
        order; torn or non-JSON lines are skipped)."""
        seen: set[str] = set()
        try:
            lines = (self.directory / self.MANIFEST).read_text().splitlines()
        except OSError:
            return
        for line in lines:
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            key = entry.get("key") if isinstance(entry, dict) else None
            if isinstance(key, str) and key not in seen:
                seen.add(key)
                yield key

    def _register(self, key: str, path: Path) -> None:
        entry = {"key": key, "path": str(path.relative_to(self.directory))}
        try:
            # O_APPEND: single-line writes from concurrent engines land
            # whole on POSIX local filesystems; on shared mounts a torn
            # line costs nothing (readers skip it, the tree is truth).
            with open(self.directory / self.MANIFEST, "a") as manifest:
                manifest.write(json.dumps(entry) + "\n")
        except OSError:
            return
        if self.compact_ratio <= 0:
            return
        counter_key = str(self.directory)
        with self._APPENDS_LOCK:
            count = self._APPENDS_SINCE_CHECK.get(counter_key, 0) + 1
            due = count >= self.compact_check_interval
            self._APPENDS_SINCE_CHECK[counter_key] = 0 if due else count
        if due:
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Compact when manifest lines exceed ``compact_ratio`` x live keys.

        One manifest read every ``compact_check_interval`` appends; torn
        or non-JSON lines count as bloat (they are dropped by compaction).
        """
        try:
            lines = (self.directory / self.MANIFEST).read_text().splitlines()
        except OSError:
            return
        total = len(lines)
        live: set[str] = set()
        for line in lines:
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict) and isinstance(entry.get("key"), str):
                live.add(entry["key"])
        if total > len(live) and total >= self.compact_ratio * max(1, len(live)):
            self.compact_manifest()

    def compact_manifest(self) -> int:
        """Rewrite the append-only manifest keeping only the latest entry
        per key.

        Long-running cluster caches grow one manifest line per write —
        re-writes of one key included — so periodic compaction keeps
        enumeration cheap.  Entries keep first-appearance order with each
        key's *latest* payload (torn or non-JSON lines are dropped); the
        replacement is atomic (temp file + ``os.replace``), so concurrent
        readers see either the old or the compacted manifest, never a torn
        one.  Appends racing with the rewrite can be lost from the
        manifest — which is advisory; the shard tree stays the source of
        truth and the next write re-registers its key.  Returns the number
        of entries kept (0 when there is no manifest or on I/O failure).
        """
        path = self.directory / self.MANIFEST
        try:
            lines = path.read_text().splitlines()
        except OSError:
            return 0
        latest: dict[str, dict] = {}
        for line in lines:
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict) and isinstance(entry.get("key"), str):
                latest[entry["key"]] = entry
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}"
        )
        try:
            tmp.write_text(
                "".join(json.dumps(entry) + "\n" for entry in latest.values())
            )
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return 0
        return len(latest)

    def describe(self) -> str:
        return f"sharded:{self.directory}"

    def kind(self) -> str:
        return "sharded"


class MemoryStore(ConfigStore):
    """In-process store holding JSON-serialised records.

    Records round-trip through ``json.dumps``/``json.loads`` so the
    backend has exactly the fidelity of the disk stores (no shared
    mutable payloads, no non-JSON-able smuggling) and the same property
    tests run against all three.  Single dict assignments keep it safe
    under the thread-mode engine.
    """

    def __init__(self, name: str | None = None) -> None:
        #: Registry name when created via :func:`memory_store`; anonymous
        #: instances (test isolation) key statistics per-object instead.
        self.name = name
        self._records: dict[str, str] = {}
        self._statistics: dict[str, dict[str, int]] = {}

    def get(self, key: str) -> dict | None:
        text = self._records.get(key)
        if text is None:
            return None
        try:
            payload = json.loads(text)
        except ValueError:  # pragma: no cover - puts only store valid JSON
            return None
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: dict) -> bool:
        try:
            self._records[key] = json.dumps(payload)
        except (TypeError, ValueError):
            return False
        return True

    def contains(self, key: str) -> bool:
        return key in self._records

    def keys(self) -> Iterator[str]:
        return iter(tuple(self._records))

    def clear(self) -> None:
        self._records.clear()
        self._statistics.clear()

    def load_statistics(self) -> dict[str, dict[str, int]]:
        return {kind: dict(c) for kind, c in self._statistics.items()}

    def merge_statistics(self, deltas: dict[str, dict[str, int]]) -> bool:
        for kind, counters in deltas.items():
            into = self._statistics.setdefault(kind, {})
            for name, value in counters.items():
                if value:
                    into[name] = into.get(name, 0) + int(value)
        return True

    def __len__(self) -> int:
        return len(self._records)

    def describe(self) -> str:
        return f"memory:{len(self._records)} records"

    def kind(self) -> str:
        return "memory"

    def identity(self) -> str:
        if self.name is not None:
            return f"memory:{self.name}"
        return f"memory#{id(self):x}"


#: Process-wide named :class:`MemoryStore` instances, so every engine
#: created with ``cache_backend="memory"`` shares one store (the whole
#: point of a cache); tests wanting isolation construct their own
#: :class:`MemoryStore` and pass the instance.
_SHARED_MEMORY_STORES: dict[str, MemoryStore] = {}


def memory_store(name: str = "default") -> MemoryStore:
    """The process-shared :class:`MemoryStore` registered under ``name``."""
    return _SHARED_MEMORY_STORES.setdefault(name, MemoryStore(name=name))


def clear_memory_stores() -> None:
    """Empty every shared :class:`MemoryStore` (test isolation helper)."""
    for store in _SHARED_MEMORY_STORES.values():
        store.clear()


def create_store(
    backend: str | ConfigStore,
    directory: str | Path | None = None,
    *,
    manifest_compact_ratio: float | None = None,
) -> ConfigStore:
    """Resolve a backend selector to a :class:`ConfigStore` instance.

    ``backend`` may already be a store (returned as-is), or one of
    :data:`CACHE_BACKENDS`: ``"local"`` / ``"sharded"`` need ``directory``;
    ``"memory"`` ignores it and returns the shared in-process store.
    ``manifest_compact_ratio`` tunes the sharded store's automatic
    manifest compaction (``None`` keeps the store default, ``0`` disables
    it); other backends ignore it.
    """
    if isinstance(backend, ConfigStore):
        return backend
    if backend == "memory":
        return memory_store()
    if backend == "local":
        if directory is None:
            raise ValueError("cache_backend 'local' needs a cache directory")
        return LocalDirectoryStore(directory)
    if backend == "sharded":
        if directory is None:
            raise ValueError("cache_backend 'sharded' needs a cache directory")
        return ShardedStore(directory, compact_ratio=manifest_compact_ratio)
    raise ValueError(
        f"unknown cache backend {backend!r}; choose from {CACHE_BACKENDS} "
        "or pass a ConfigStore instance"
    )
