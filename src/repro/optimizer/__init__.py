"""The Morph software optimizer (paper Section V).

Enumerates per-layer configurations (loop orders x tile sizes x
parallelism), allocates sub-tiles with the corner/f_reuse heuristic,
evaluates each candidate with the analytic models, and lowers the winner
to hardware programming state (FSM programs, bank assignments, NoC masks).

Module map:

* :mod:`~repro.optimizer.search` — the per-layer search
  (:class:`LayerOptimizer`) with its objective lower-bound early-prune
  fast path, plus :func:`optimize_network`.  Candidates are scored through
  the columnar batch pipeline (:mod:`repro.core.batch`) by default, with
  the scalar reference path behind ``vectorize=False`` /
  ``REPRO_VECTORIZE=0`` — identical results either way.  The
  (parallelism, L2-tile) candidate blocks are visited *best-first* —
  ascending by objective lower bound — so the prune bites as early as
  possible; the ordering guarantee (equal-score ties keyed to candidate
  identity, never visit order) makes the chosen configuration and score
  bit-identical to the legacy order, available for A/B runs via
  ``OptimizerOptions(search_order="legacy")``.  Block bounds are
  *parallelism-aware* (utilization ceiling + weight-replication floor,
  ``parallel_floors=False`` for the shape-only bounds), and the search
  is *anytime*: ``OptimizerOptions(budget_ms=...)`` stops at the first
  block boundary past the budget and returns the best-so-far
  configuration with a certified ``LayerResult.bound_gap`` —
  bit-identical to the unbudgeted search whenever the budget is not hit
  (the anytime contract in ``docs/INVARIANTS.md``).
* :mod:`~repro.optimizer.clock` — the sanctioned injectable monotonic
  clock behind the budget (``use_clock`` fakes time in tests; the only
  wall-clock read the determinism lint permits under ``optimizer/``).
* :mod:`~repro.optimizer.engine` — the scaling layer every network sweep
  runs through: content-keyed deduplication of identical layer shapes,
  process-pool (or, with ``parallelism_mode="thread"``, thread-pool)
  fan-out of unique searches, and the persistent configuration cache
  (paper Section V's "saved and recalled" configuration files).  Knobs:
  ``use_cache``, ``parallelism``, ``parallelism_mode``, ``cache_dir``,
  ``cache_backend``, ``vectorize``, ``budget_ms``, ``kernel_backend``
  (``"numpy"`` | ``"compiled"`` — the :mod:`repro.core.backend`
  registry; ``"compiled"`` JIT-compiles the shared kernels when numba
  is installed and silently matches numpy otherwise) and
  ``max_table_bytes`` (stream columnar tables in row chunks under a
  byte cap — bit-identical results, like every speed knob here) on
  :func:`optimize_network` / :func:`optimize_layer`; scoped defaults
  via a
  :class:`repro.api.Session` (preferred — concurrent sweeps with
  different configs coexist in one process), legacy process-wide
  defaults via the deprecated :func:`set_engine_defaults`, or the
  ``REPRO_PARALLELISM`` / ``REPRO_PARALLELISM_MODE`` /
  ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_BACKEND`` / ``REPRO_VECTORIZE``
  / ``REPRO_BUDGET_MS`` / ``REPRO_KERNEL_BACKEND`` /
  ``REPRO_MAX_TABLE_BYTES`` environment variables (runner flags of the
  same names exist for all of them; a malformed value raises naming
  the variable, it never silently falls back to a default).
* :mod:`~repro.optimizer.config_store` — the JSON codec for whole-network
  configuration files, the engine's per-layer cache records, and the
  pluggable :class:`~repro.optimizer.config_store.ConfigStore` backends
  those records live in: ``"local"`` (flat directory, atomic renames,
  corrupt-record quarantine), ``"sharded"`` (two-level fan-out plus
  manifest for cluster-shared NFS/object-storage mounts) and ``"memory"``
  (in-process) — or any user-supplied store instance.
* :mod:`~repro.optimizer.allocation` / :mod:`~repro.optimizer.space` —
  sub-tile allocation and search-space discretisation (including the
  best-first block ordering of
  :func:`~repro.optimizer.space.candidate_blocks`).
* :mod:`~repro.optimizer.schedule` — lowering to hardware state.
"""
