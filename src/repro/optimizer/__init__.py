"""The Morph software optimizer (paper Section V).

Enumerates per-layer configurations (loop orders x tile sizes x
parallelism), allocates sub-tiles with the corner/f_reuse heuristic,
evaluates each candidate with the analytic models, and lowers the winner
to hardware programming state (FSM programs, bank assignments, NoC masks).

Module map:

* :mod:`~repro.optimizer.search` — the per-layer search
  (:class:`LayerOptimizer`) with its objective lower-bound early-prune
  fast path, plus :func:`optimize_network`.  Candidates are scored through
  the columnar batch pipeline (:mod:`repro.core.batch`) by default, with
  the scalar reference path behind ``vectorize=False`` /
  ``REPRO_VECTORIZE=0`` — identical results either way.
* :mod:`~repro.optimizer.engine` — the scaling layer every network sweep
  runs through: content-keyed deduplication of identical layer shapes,
  process-pool fan-out of unique searches, and the persistent on-disk
  configuration cache (paper Section V's "saved and recalled"
  configuration files).  Knobs: ``use_cache``, ``parallelism``,
  ``cache_dir``, ``vectorize`` on :func:`optimize_network` /
  :func:`optimize_layer`, process-wide defaults via
  :func:`set_engine_defaults` or the ``REPRO_PARALLELISM`` /
  ``REPRO_CACHE_DIR`` / ``REPRO_VECTORIZE`` environment variables.
* :mod:`~repro.optimizer.config_store` — the JSON codec for whole-network
  configuration files and the engine's per-layer cache records.
* :mod:`~repro.optimizer.allocation` / :mod:`~repro.optimizer.space` —
  sub-tile allocation and search-space discretisation.
* :mod:`~repro.optimizer.schedule` — lowering to hardware state.
"""
