"""The Morph software optimizer (paper Section V).

Enumerates per-layer configurations (loop orders x tile sizes x
parallelism), allocates sub-tiles with the corner/f_reuse heuristic,
evaluates each candidate with the analytic models, and lowers the winner
to hardware programming state (FSM programs, bank assignments, NoC masks).
"""
