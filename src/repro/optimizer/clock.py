"""The sanctioned monotonic-clock resolver for budgeted anytime search.

The determinism lint rule (docs/INVARIANTS.md) bans wall-clock reads in
result-producing ``core/``/``optimizer/``/``sim/`` modules: a result that
depends on timing is not reproducible.  The budgeted anytime search
(:class:`repro.optimizer.search.LayerOptimizer` with
``OptimizerOptions.budget_ms``) is the one legitimate consumer of time in
the optimizer — the *budget* is timing-dependent by definition, while the
*result contract* stays deterministic: the search stops only at candidate
-block boundaries, so any result it returns is the exact prefix of the
unbudgeted search, bit-identical to it whenever the budget is not hit.

This module is therefore the single sanctioned clock source (the
determinism rule exempts exactly this file), and the clock is
*injectable*: tests install a fake monotonic clock with
:func:`use_clock` and exercise budget exhaustion deterministically,
without sleeping or flaking.

The override stack is process-wide module state (an ALL_CAPS registry
per the scoped-config convention), shared across threads — which is what
the thread-pool engine needs, and what lets a test drive a
``parallelism_mode="thread"`` search with a fake clock.  Worker
*processes* never inherit an override and always run the real monotonic
clock.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Iterator

#: A monotonic clock: call it for "now" in milliseconds.  Only differences
#: between readings are meaningful.
Clock = Callable[[], float]

#: LIFO of installed clock overrides (empty = real monotonic clock).
_CLOCK_OVERRIDES: list[Clock] = []


def monotonic_ms() -> float:
    """The real monotonic clock, in milliseconds.

    This is the one sanctioned wall-clock read in the optimizer package
    (see the module docstring and the determinism rule's exemption).
    """
    return time.monotonic() * 1000.0


def current_clock() -> Clock:
    """The active clock: the innermost :func:`use_clock` override, or the
    real :func:`monotonic_ms`."""
    if _CLOCK_OVERRIDES:
        return _CLOCK_OVERRIDES[-1]
    return monotonic_ms


@contextlib.contextmanager
def use_clock(clock: Clock) -> Iterator[Clock]:
    """Install ``clock`` as the budget clock for the dynamic extent of
    the block (re-entrant; restores the previous clock on exit).

    For tests: a counter-backed fake makes budget exhaustion exact and
    repeatable::

        ticks = iter(range(0, 10_000, 500))
        with use_clock(lambda: float(next(ticks))):
            result = LayerOptimizer(arch, options).optimize(layer)
    """
    _CLOCK_OVERRIDES.append(clock)
    try:
        yield clock
    finally:
        _CLOCK_OVERRIDES.pop()
