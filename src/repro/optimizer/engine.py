"""Parallel, deduplicated, persistent per-layer search engine.

The paper stresses that the per-layer configuration search "need only be
performed once per CNN.  After best-fit parameters are found once, a
configuration file can be saved and recalled instead of re-running the
analysis" (Section V).  This module is the subsystem that makes the
experiment harness behave that way at scale:

* **Deduplication** — layers are keyed by *search signature* (layer shape
  without its name + full accelerator description + optimizer options).
  Each unique signature is searched once; the winning configuration is
  fanned back out to every occurrence, re-evaluated under the occurrence's
  own layer name so every :class:`~repro.optimizer.search.LayerResult`
  carries correct metadata.  Modern video backbones repeat the same conv
  shape dozens of times, so this alone collapses most of a network sweep.
* **Parallel fan-out** — unique-layer searches run across a
  ``concurrent.futures.ProcessPoolExecutor`` when ``parallelism > 1``,
  with a ``parallelism == 1`` in-process fallback.  Results are collected
  with ``Executor.map`` in submission order, so the outcome is
  deterministic and identical to the serial path, layer by layer.
  ``parallelism_mode="thread"`` swaps in a ``ThreadPoolExecutor`` — the
  right executor on free-threaded builds (no pickling, shared memos) and
  for exercising the cache's thread-safety; results are identical.
* **Persistent config-store cache** — when a store is configured, each
  unique search's chosen configuration is written as a versioned JSON
  record (via :mod:`repro.optimizer.config_store`'s dataflow codec) keyed
  by the sha256 of its search signature.  A later run — any process —
  recalls the configuration and re-evaluates it (one model evaluation
  instead of a full search), exactly the paper's save-and-recall flow.
  Records whose embedded signature does not match (hash collision, older
  format, edited file) are treated as misses and rewritten.  *Where*
  records live is a pluggable :class:`~repro.optimizer.config_store.ConfigStore`
  backend — ``cache_backend=`` one of ``"local"`` (flat directory,
  atomic-rename writes, corrupt-record quarantine), ``"sharded"``
  (two-level fan-out plus manifest, for cluster-shared mounts) or
  ``"memory"`` (in-process, for tests) — or any ``ConfigStore`` instance.

API
---
:class:`OptimizerEngine` is the stateful front end::

    engine = OptimizerEngine(arch, options, parallelism=8, cache_dir="~/.cache/repro")
    result = engine.optimize_network(network.layers, network_name=network.name)
    print(engine.stats)          # dedup / memo / disk hit counters

:func:`optimize_layer` is the convenience single-layer path used by the
experiment modules (Table 3, Figure 4, the Eyeriss baseline), sharing the
same caches.  :func:`repro.optimizer.search.optimize_network` delegates
here, so every experiment, benchmark and example goes through the engine.

How experiments opt in/out
--------------------------
``optimize_network`` / ``optimize_layer`` accept ``use_cache``,
``parallelism``, ``parallelism_mode``, ``cache_dir``, ``cache_backend``
and ``vectorize`` keywords.  Leaving them as ``None`` falls back through
the resolution chain: the active :class:`repro.api.Session`'s config
(the preferred way to configure the engine — scoped, so concurrent
sweeps with different settings coexist in one process), then the
process-wide defaults of the *deprecated* :func:`set_engine_defaults`
mutator, then the ``REPRO_PARALLELISM`` /
``REPRO_PARALLELISM_MODE`` / ``REPRO_CACHE_DIR`` /
``REPRO_CACHE_BACKEND`` / ``REPRO_VECTORIZE`` environment variables
(the experiment runner materialises its ``--parallelism`` /
``--parallelism-mode`` / ``--cache-dir`` / ``--cache-backend`` /
``--no-cache`` / ``--vectorize`` / ``--no-vectorize`` flags into a
:class:`repro.api.SessionConfig` instead of mutating anything); the
built-in defaults are serial, process-pool workers, in-memory-only
caching, the ``"local"`` store layout, and columnar (vectorized)
candidate scoring when NumPy is available.  ``vectorize`` is purely a
speed knob — the columnar pipeline (:mod:`repro.core.batch`) returns
bit-identical configurations and scores to the scalar path, so it is
excluded from search signatures and cache keys (as are
``cache_backend``/``parallelism_mode``, which never change results).
Passing ``cache_dir=False`` disables the persistent cache entirely —
whatever the backend — even when a default is configured (``None``
merely defers to the defaults).

Cache location and versioning
-----------------------------
Records carry ``format_version`` (:data:`CACHE_FORMAT_VERSION`) plus the
full signature they were computed from.  Bump the version whenever the
analytic models or the record layout change meaning; stale records then
invalidate automatically on recall.  The on-store layout is the
backend's concern: flat ``<sha256>.json`` files for ``"local"``,
``ab/cd/<sha256>.json`` shards plus a manifest for ``"sharded"``, a dict
for ``"memory"`` — all safe under concurrent writers via atomic
temp-file + rename (corrupt records are quarantined, not fatal).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Iterable, Sequence

from repro._scope import active_value
from repro.arch.accelerator import AcceleratorConfig
from repro.core.evaluate import CapacityError, evaluate
from repro.core.layer import ConvLayer
from repro.optimizer.config_store import (
    CACHE_BACKENDS,
    ConfigStore,
    LocalDirectoryStore,
    create_store,
    dataflow_from_json,
    dataflow_to_json,
    layer_signature,
)
from repro.optimizer.search import (
    LayerOptimizer,
    LayerResult,
    NetworkResult,
    OptimizerOptions,
)

#: Version of the on-disk record layout *and* of what a signature means.
#: Bump when the analytic models, the search, or the record shape change.
#: v2: dilation-aware layer signatures (records from the pre-dilation
#: models invalidate automatically).
CACHE_FORMAT_VERSION = 2


# ----------------------------------------------------------------------
# Process-wide defaults (legacy: runner CLI flags / environment variables)
#
# Resolution order of every ``default_*`` knob below:
#   1. the active :class:`repro.api.Session`'s config (contextvar-scoped,
#      so concurrent sessions in one process never see each other);
#   2. the process-wide defaults set by the deprecated
#      :func:`set_engine_defaults`;
#   3. the ``$REPRO_*`` environment variable;
#   4. the built-in default.
# ----------------------------------------------------------------------
_DEFAULTS: dict = {
    "parallelism": None,
    "parallelism_mode": None,
    "cache_dir": None,
    "cache_backend": None,
    "use_cache": None,
    "vectorize": None,
}

#: Executor selectors accepted by ``parallelism_mode=``.
PARALLELISM_MODES = ("process", "thread")

#: Sentinel distinguishing "leave this knob untouched" from an explicit
#: ``None`` ("clear it back to the environment-derived behaviour").
_UNSET: object = object()


def set_engine_defaults(
    *,
    parallelism=_UNSET,
    parallelism_mode=_UNSET,
    cache_dir=_UNSET,
    cache_backend=_UNSET,
    use_cache=_UNSET,
    vectorize=_UNSET,
) -> None:
    """Set process-wide fallbacks for engine knobs left as ``None``.

    .. deprecated::
        Mutable process-wide defaults cannot express two differently
        configured sweeps in one process.  Scope the configuration with
        ``with repro.Session(repro.SessionConfig(...)):`` instead — the
        session covers every knob this function covers (and more) and
        restores the outer configuration on exit.

    Omitting a knob leaves its current default untouched; passing ``None``
    clears it back to the environment-derived behaviour (so repeated CLI
    invocations in one process never inherit a stale default).
    :func:`reset_engine_defaults` clears everything at once.
    """
    warnings.warn(
        "set_engine_defaults() mutates process-wide state and is "
        "deprecated; scope configuration with repro.Session / "
        "repro.SessionConfig instead",
        DeprecationWarning,
        stacklevel=2,
    )
    if parallelism is not _UNSET:
        _DEFAULTS["parallelism"] = parallelism
    if parallelism_mode is not _UNSET:
        _DEFAULTS["parallelism_mode"] = _check_mode(parallelism_mode)
    if cache_dir is not _UNSET:
        _DEFAULTS["cache_dir"] = None if cache_dir is None else Path(cache_dir)
    if cache_backend is not _UNSET:
        _DEFAULTS["cache_backend"] = _check_backend(cache_backend)
    if use_cache is not _UNSET:
        _DEFAULTS["use_cache"] = use_cache
    if vectorize is not _UNSET:
        _DEFAULTS["vectorize"] = vectorize


def reset_engine_defaults() -> None:
    _DEFAULTS.update(
        parallelism=None, parallelism_mode=None, cache_dir=None,
        cache_backend=None, use_cache=None, vectorize=None,
    )


def _check_mode(mode):
    if mode is not None and mode not in PARALLELISM_MODES:
        raise ValueError(
            f"parallelism_mode must be one of {PARALLELISM_MODES}, "
            f"got {mode!r}"
        )
    return mode


def _check_backend(backend):
    if (
        backend is not None
        and not isinstance(backend, ConfigStore)
        and backend not in CACHE_BACKENDS
    ):
        raise ValueError(
            f"cache_backend must be one of {CACHE_BACKENDS} or a "
            f"ConfigStore instance, got {backend!r}"
        )
    return backend


def default_parallelism() -> int:
    scoped = active_value("parallelism")
    if scoped is not None:
        return max(1, scoped)
    if _DEFAULTS["parallelism"] is not None:
        return _DEFAULTS["parallelism"]
    env = os.environ.get("REPRO_PARALLELISM")
    if not env:
        return 1
    try:
        return max(1, int(env))
    except ValueError:
        raise ValueError(
            f"REPRO_PARALLELISM must be an integer, got {env!r}"
        ) from None


def default_parallelism_mode() -> str:
    """Executor kind for parallel searches: ``"process"`` (default) or
    ``"thread"`` (free-threaded builds), via the active session,
    :func:`set_engine_defaults` or ``REPRO_PARALLELISM_MODE``."""
    scoped = active_value("parallelism_mode")
    if scoped is not None:
        return _check_mode(scoped)
    if _DEFAULTS["parallelism_mode"] is not None:
        return _DEFAULTS["parallelism_mode"]
    env = os.environ.get("REPRO_PARALLELISM_MODE")
    if not env:
        return "process"
    return _check_mode(env.strip().lower())


def default_cache_dir() -> Path | None:
    scoped = active_value("cache_dir")
    if scoped is not None:
        return Path(scoped)
    if _DEFAULTS["cache_dir"] is not None:
        return _DEFAULTS["cache_dir"]
    env = os.environ.get("REPRO_CACHE_DIR")
    return Path(env) if env else None


def default_cache_backend() -> str | ConfigStore:
    """Config-store backend selector: ``"local"`` unless overridden via
    the active session, :func:`set_engine_defaults` or
    ``REPRO_CACHE_BACKEND``."""
    scoped = active_value("cache_backend")
    if scoped is not None:
        return _check_backend(scoped)
    if _DEFAULTS["cache_backend"] is not None:
        return _DEFAULTS["cache_backend"]
    env = os.environ.get("REPRO_CACHE_BACKEND")
    if not env:
        return "local"
    return _check_backend(env.strip().lower())


_BOOL_TOKENS = {
    "1": True, "true": True, "yes": True, "on": True,
    "0": False, "false": False, "no": False, "off": False,
}


def _env_bool(name: str, value: str) -> bool:
    """Strict boolean env parse: an unrecognised token raises instead of
    silently meaning "true" (a typo'd ``REPRO_VECTORIZE=flase`` must not
    masquerade as the default)."""
    try:
        return _BOOL_TOKENS[value.strip().lower()]
    except KeyError:
        raise ValueError(
            f"{name} must be a boolean (1/true/yes/on or 0/false/no/off), "
            f"got {value!r}"
        ) from None


def default_use_cache() -> bool:
    scoped = active_value("use_cache")
    if scoped is not None:
        return scoped
    if _DEFAULTS["use_cache"] is not None:
        return _DEFAULTS["use_cache"]
    env = os.environ.get("REPRO_USE_CACHE")
    if env is not None and env.strip() != "":
        return _env_bool("REPRO_USE_CACHE", env)
    return True


def default_vectorize() -> bool:
    """Columnar batch evaluation on by default; ``REPRO_VECTORIZE=0`` (or
    a missing NumPy) falls back to the scalar reference path."""
    scoped = active_value("vectorize")
    if scoped is not None:
        return scoped
    if _DEFAULTS["vectorize"] is not None:
        return _DEFAULTS["vectorize"]
    env = os.environ.get("REPRO_VECTORIZE")
    if env is not None and env.strip() != "":
        return _env_bool("REPRO_VECTORIZE", env)
    from repro.core import batch

    return batch.available


def default_search_order() -> str:
    """Candidate-block visit order (``"best_first"`` unless overridden by
    the active session or ``REPRO_SEARCH_ORDER``).  Like ``vectorize``,
    this is a pure speed knob: results are bit-identical either way."""
    scoped = active_value("search_order")
    if scoped is not None:
        return scoped
    env = os.environ.get("REPRO_SEARCH_ORDER")
    if env:
        order = env.strip().lower()
        if order not in ("best_first", "legacy"):
            raise ValueError(
                "REPRO_SEARCH_ORDER must be 'best_first' or 'legacy', "
                f"got {env!r}"
            )
        return order
    return "best_first"


def default_budget_ms() -> float | None:
    """Anytime-search budget in milliseconds (``None`` = run to
    exhaustion), via the active session or ``$REPRO_BUDGET_MS``.

    An empty value means unset; an invalid one raises — a typo'd budget
    must never silently become an unbudgeted (or unbounded) run.
    """
    scoped = active_value("budget_ms")
    if scoped is not None:
        return scoped
    env = os.environ.get("REPRO_BUDGET_MS")
    if env is None or env.strip() == "":
        return None
    try:
        budget = float(env)
    except ValueError:
        raise ValueError(
            f"REPRO_BUDGET_MS must be a number (milliseconds), got {env!r}"
        ) from None
    if budget < 0:
        raise ValueError(
            f"REPRO_BUDGET_MS must be >= 0 (milliseconds), got {env!r}"
        )
    return budget


def default_kernel_backend() -> str:
    """Kernel-execution backend for the columnar passes (``"numpy"``
    unless overridden by the active session or
    ``$REPRO_KERNEL_BACKEND``).  A pure speed knob: every backend is
    bit-identical to the scalar oracle (``docs/INVARIANTS.md``, backend
    contract), so like ``vectorize`` it never enters search signatures.

    A name outside the registry raises — a typo'd backend must never
    silently run the default one.
    """
    scoped = active_value("kernel_backend")
    if scoped is not None:
        return scoped
    env = os.environ.get("REPRO_KERNEL_BACKEND")
    if env is None or env.strip() == "":
        return "numpy"
    from repro.core import backend as _backend

    name = env.strip().lower()
    if name not in _backend.KERNEL_BACKENDS:
        known = ", ".join(_backend.backend_names())
        raise ValueError(
            f"REPRO_KERNEL_BACKEND must be one of {known}, got {env!r}"
        )
    return name


def default_max_table_bytes() -> int | None:
    """Memory cap (bytes) for columnar schedule/candidate tables
    (``None`` = materialise full tables), via the active session or
    ``$REPRO_MAX_TABLE_BYTES``.  Capped passes stream row chunks with
    carried reductions — bit-identical to unchunked, so this too stays
    out of search signatures.

    An empty value means unset; an invalid or non-positive one raises —
    a typo'd cap must never silently mean "unlimited".
    """
    scoped = active_value("max_table_bytes")
    if scoped is not None:
        return scoped
    env = os.environ.get("REPRO_MAX_TABLE_BYTES")
    if env is None or env.strip() == "":
        return None
    try:
        cap = int(env)
    except ValueError:
        raise ValueError(
            f"REPRO_MAX_TABLE_BYTES must be an integer byte count, "
            f"got {env!r}"
        ) from None
    if cap < 1:
        raise ValueError(
            f"REPRO_MAX_TABLE_BYTES must be >= 1 (bytes), got {env!r}"
        )
    return cap


def default_manifest_compact_ratio() -> float | None:
    """Auto-compaction threshold for :class:`ShardedStore` manifests (the
    manifest is rewritten once its line count exceeds this multiple of
    its live keys).  ``None`` defers to the store's built-in default;
    overridable via the active session or
    ``$REPRO_MANIFEST_COMPACT_RATIO`` (``0`` disables auto-compaction)."""
    scoped = active_value("manifest_compact_ratio")
    if scoped is not None:
        return scoped
    env = os.environ.get("REPRO_MANIFEST_COMPACT_RATIO")
    if env is None or env.strip() == "":
        return None
    try:
        return float(env)
    except ValueError:
        raise ValueError(
            f"REPRO_MANIFEST_COMPACT_RATIO must be a number, got {env!r}"
        ) from None


# ----------------------------------------------------------------------
# Store resolution (shared by the engine and repro.api.Session)
# ----------------------------------------------------------------------
def resolve_store(
    cache_dir: str | Path | bool | None = None,
    cache_backend: str | ConfigStore | None = None,
) -> ConfigStore | None:
    """Resolve the ``cache_dir``/``cache_backend`` knob pair to a
    :class:`ConfigStore` (or ``None`` for in-memory-only operation).

    ``cache_dir=None`` defers to the scoped/process defaults; ``False``
    disables the persistent store outright — whatever the backend — even
    when a default directory is configured.  A ``ConfigStore`` instance
    passed as the backend wins over any directory.
    """
    if cache_dir is False:
        return None
    directory = default_cache_dir() if cache_dir is None else Path(cache_dir)
    backend = _check_backend(
        default_cache_backend() if cache_backend is None else cache_backend
    )
    if isinstance(backend, ConfigStore):
        return backend
    if backend == "memory":
        # The shared in-process store needs no directory.
        return create_store(backend)
    if directory is None:
        return None
    return create_store(
        backend,
        directory,
        manifest_compact_ratio=default_manifest_compact_ratio(),
    )


# ----------------------------------------------------------------------
# Search signatures
# ----------------------------------------------------------------------
def search_signature(
    layer: ConvLayer, arch: AcceleratorConfig, options: OptimizerOptions
) -> dict:
    """Content identity of one search: shape + machine + search knobs.

    The layer's *name* is deliberately excluded — two occurrences of the
    same conv shape are the same search.  The accelerator and options are
    captured through their full dataclass ``repr``: every field that can
    change the search outcome (buffer sizes, partition policies, NoC,
    technology constants, precision, pinned dataflows, effort knobs) is
    part of the identity, unlike a bare ``arch.name``.
    """
    return {
        "format_version": CACHE_FORMAT_VERSION,
        "layer": layer_signature(layer, include_name=False),
        "arch": repr(arch),
        "options": repr(options),
    }


def signature_key(signature: dict) -> str:
    """Stable sha256 hex key of a search signature (the cache filename)."""
    canonical = json.dumps(signature, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ----------------------------------------------------------------------
# Per-store cache statistics (process-wide, across engines)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class BackendCacheStats:
    """Cross-run recall statistics of one config store (keyed by
    :meth:`ConfigStore.identity`, so same-kind stores stay separate)."""

    hits: int = 0  #: records recalled and re-evaluated successfully
    misses: int = 0  #: lookups that fell through to a full search
    stale: int = 0  #: records present but format/signature mismatched
    recall_reevals: int = 0  #: recall re-evaluations attempted
    reeval_failures: int = 0  #: recalled configs the current models reject
    writes: int = 0  #: records written successfully
    write_failures: int = 0  #: writes that failed (I/O)

    def describe(self) -> str:
        lookups = self.hits + self.misses
        return (
            f"{self.hits}/{lookups} hits"
            f" ({self.stale} stale, {self.reeval_failures} re-eval rejects),"
            f" {self.recall_reevals} recall re-evals,"
            f" {self.writes} writes"
            + (f" ({self.write_failures} failed)" if self.write_failures else "")
        )


#: Backend kind (``"local"`` / ``"sharded"`` / ``"memory"`` / class name)
#: -> accumulated statistics.  Engines come and go per ``optimize_network``
#: call; this registry is what survives to the bench JSON and the runner's
#: end-of-run summary.
_CACHE_STATS: dict[str, BackendCacheStats] = {}

#: Counter state as of the last sidecar flush (see
#: :func:`consume_unflushed_statistics`).  Kept beside the counters so
#: :func:`reset_cache_statistics` clears both together.
_FLUSHED_STATS: dict[str, BackendCacheStats] = {}
_STATS_FLUSH_LOCK = threading.Lock()


def cache_statistics() -> dict[str, BackendCacheStats]:
    """Per-store-identity recall statistics accumulated in this
    process (returned as copies; mutate-safe)."""
    return {
        identity: dataclasses.replace(stats)
        for identity, stats in _CACHE_STATS.items()
    }


def reset_cache_statistics() -> None:
    _CACHE_STATS.clear()
    _FLUSHED_STATS.clear()


def _statistics_deltas(
    now: dict[str, BackendCacheStats],
    base: dict[str, BackendCacheStats],
) -> dict[str, dict[str, int]]:
    """Per-kind counter movement ``now - base`` as plain dicts (empty
    movements dropped; counters never go backwards between resets, and a
    reset clears both registries together)."""
    names = [field.name for field in dataclasses.fields(BackendCacheStats)]
    deltas: dict[str, dict[str, int]] = {}
    for kind, stats in now.items():
        baseline = base.get(kind, BackendCacheStats())
        movement = {
            name: getattr(stats, name) - getattr(baseline, name)
            for name in names
        }
        movement = {name: value for name, value in movement.items() if value}
        if movement:
            deltas[kind] = movement
    return deltas


def peek_unflushed_statistics() -> dict[str, dict[str, int]]:
    """Counter movement since the last flush by any session (read-only)."""
    with _STATS_FLUSH_LOCK:
        return _statistics_deltas(cache_statistics(), _FLUSHED_STATS)


def consume_unflushed_statistics() -> dict[str, dict[str, int]]:
    """Claim the unflushed counter movement and advance the baseline.

    Sessions call this when persisting statistics into a store's sidecar
    (:meth:`repro.api.Session.flush_statistics`): one process-wide
    baseline means overlapping sessions never persist the same movement
    twice.
    """
    with _STATS_FLUSH_LOCK:
        now = cache_statistics()
        deltas = _statistics_deltas(now, _FLUSHED_STATS)
        _FLUSHED_STATS.clear()
        _FLUSHED_STATS.update(now)
        return deltas


def describe_cache_statistics() -> str:
    """One line per store identity, for the runner's summary output."""
    if not _CACHE_STATS:
        return "config cache: no persistent-store activity"
    return "\n".join(
        f"config cache [{identity}]: {stats.describe()}"
        for identity, stats in sorted(_CACHE_STATS.items())
    )


def _stats_for(backend: ConfigStore) -> BackendCacheStats:
    # Keyed by identity, not kind: two same-kind stores in one process
    # (e.g. two local cache directories across session windows) must not
    # pool their hit/miss counters — ROADMAP flagged the kind-keyed
    # version as a wrong-attribution bug.
    return _CACHE_STATS.setdefault(backend.identity(), BackendCacheStats())


# ----------------------------------------------------------------------
# Persistent config cache (record codec over a pluggable store)
# ----------------------------------------------------------------------
class DiskConfigCache:
    """Versioned per-search configuration records over a config store.

    This class owns *what* a record means — the format version, the
    embedded signature check, the dataflow codec, re-evaluation on recall
    — while the :class:`~repro.optimizer.config_store.ConfigStore` backend
    owns *where* the bytes live.  Constructing it from a path keeps the
    historical behaviour (a flat local directory).
    """

    def __init__(self, target: str | Path | ConfigStore) -> None:
        self.backend: ConfigStore = (
            target
            if isinstance(target, ConfigStore)
            else LocalDirectoryStore(target)
        )

    def contains(self, signature: dict) -> bool:
        return self.backend.contains(signature_key(signature))

    def load(
        self,
        signature: dict,
        layer: ConvLayer,
        arch: AcceleratorConfig,
        options: OptimizerOptions,
    ) -> LayerResult | None:
        """Recall a configuration and re-evaluate it (no search).

        Returns ``None`` on any miss: absent or corrupt record (the file
        backends quarantine those), format or signature mismatch (stale
        record), or a configuration the current models reject.  Every
        outcome feeds the per-store-identity :func:`cache_statistics`.
        """
        stats = _stats_for(self.backend)
        payload = self.backend.get(signature_key(signature))
        if payload is None:
            stats.misses += 1
            return None
        if (
            payload.get("format_version") != CACHE_FORMAT_VERSION
            or payload.get("signature") != signature
        ):
            stats.stale += 1
            stats.misses += 1
            return None
        stats.recall_reevals += 1
        try:
            dataflow = dataflow_from_json(layer, payload["dataflow"])
            best = evaluate(dataflow, arch)
        except (KeyError, TypeError, ValueError, CapacityError):
            # Malformed record fields count as a miss, like unreadable JSON.
            stats.reeval_failures += 1
            stats.misses += 1
            return None
        stats.hits += 1
        # Optional telemetry round-trips losslessly: ``first_block_won``
        # is tri-state, and a record written before the field existed
        # recalls as ``None`` — absence is preserved, never coerced to a
        # concrete bool.
        first_block_won = payload.get("first_block_won")
        return LayerResult(
            layer=layer,
            best=best,
            evaluated=int(payload.get("evaluated", 0)),
            objective=options.objective,
            pruned=int(payload.get("pruned", 0)),
            first_block_won=(
                None if first_block_won is None else bool(first_block_won)
            ),
            parallelism_displaced=int(payload.get("parallelism_displaced", 0)),
        )

    def store(self, signature: dict, result: LayerResult) -> bool:
        """Atomically write one search's winning configuration.

        The cache is an optimisation, never a correctness requirement: an
        I/O failure (directory vanished, permissions, disk full) returns
        ``False`` instead of killing a sweep whose search work is done.

        Budget-exhausted results are refused outright: they are best-so-far
        prefixes, and caching one would let a truncated configuration
        impersonate the search's true optimum for every later run (the
        anytime contract in docs/INVARIANTS.md).
        """
        if result.budget_exhausted:
            raise ValueError(
                "refusing to cache a budget-exhausted (best-so-far) result "
                f"for {result.layer.name}; only completed searches are "
                "cacheable"
            )
        payload = {
            "format_version": CACHE_FORMAT_VERSION,
            "signature": signature,
            "dataflow": dataflow_to_json(result.best.dataflow),
            "evaluated": result.evaluated,
            "pruned": result.pruned,
            "objective": result.objective,
            "expected_score": result.score,
            "first_block_won": result.first_block_won,
            "parallelism_displaced": result.parallelism_displaced,
        }
        stats = _stats_for(self.backend)
        if self.backend.put(signature_key(signature), payload):
            stats.writes += 1
            return True
        stats.write_failures += 1
        return False


# ----------------------------------------------------------------------
# In-flight search coalescing (shared across engines and threads)
# ----------------------------------------------------------------------
class _InflightSearch:
    """One signature's in-flight search: the owner publishes, waiters wait.

    The entry lives in :data:`_INFLIGHT` from the moment an engine claims
    the signature until the owning search publishes (result or error), so
    every concurrent engine asking for the same signature in that window
    subscribes instead of searching again.  Publication removes the entry;
    later requests fall through to the memo/disk caches as before.
    """

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: LayerResult | None = None
        self.error: BaseException | None = None

    def wait(self, timeout: float) -> LayerResult | None:
        """The published result, or ``None`` when the owner failed or the
        wait timed out (callers fall back to searching themselves)."""
        if not self.event.wait(timeout):
            return None
        return self.result


#: Signature key -> in-flight search entry.  A sanctioned process-wide
#: registry (scoped-config convention): the table is what lets N
#: concurrent engines — the serve layer's worker pool above all — run
#: exactly one underlying search per unique signature.
_INFLIGHT: dict[str, _InflightSearch] = {}
_INFLIGHT_LOCK = threading.Lock()

#: Upper bound on how long a subscriber waits for another engine's search
#: before falling back to its own (a search takes seconds, not minutes;
#: the bound only matters if an owning thread is killed mid-search).
_INFLIGHT_WAIT_S = 600.0


def _inflight_claim(key: str) -> tuple[_InflightSearch, bool]:
    """Claim ``key`` (returns ``(entry, True)``: caller owns the search)
    or join the existing owner's entry (``(entry, False)``)."""
    with _INFLIGHT_LOCK:
        entry = _INFLIGHT.get(key)
        if entry is not None:
            return entry, False
        entry = _InflightSearch()
        _INFLIGHT[key] = entry
        return entry, True


def _inflight_publish(
    key: str,
    entry: _InflightSearch,
    result: LayerResult | None,
    error: BaseException | None = None,
) -> None:
    """Resolve an owned entry and retire it from the table."""
    with _INFLIGHT_LOCK:
        if _INFLIGHT.get(key) is entry:
            del _INFLIGHT[key]
    entry.result = result
    entry.error = error
    entry.event.set()


def inflight_searches() -> int:
    """Number of searches currently in flight process-wide (telemetry for
    the serve layer's metrics snapshot)."""
    with _INFLIGHT_LOCK:
        return len(_INFLIGHT)


# ----------------------------------------------------------------------
# In-process memoisation (shared across engines)
# ----------------------------------------------------------------------
_LAYER_MEMO: dict[str, LayerResult] = {}
#: Content key (layers + arch + options) -> NetworkResult.  The network
#: *name* is not part of the key: the same layer tuple under two names
#: (e.g. two-stream reusing a backbone) is one entry.
_NETWORK_MEMO: dict[tuple, NetworkResult] = {}


def clear_memory_caches() -> None:
    """Drop the in-process layer and network memos (disk cache untouched)."""
    _LAYER_MEMO.clear()
    _NETWORK_MEMO.clear()


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
def _search_one(
    payload: tuple[ConvLayer, AcceleratorConfig, OptimizerOptions],
) -> LayerResult:
    """Worker: one full per-layer search (module-level for pickling)."""
    layer, arch, options = payload
    return LayerOptimizer(arch, options).optimize(layer)


@dataclasses.dataclass
class EngineStats:
    """Where each requested layer's result came from."""

    requested: int = 0  #: layer occurrences asked for
    unique: int = 0  #: distinct search signatures among them
    dedup_hits: int = 0  #: occurrences served by fan-out from a duplicate
    memo_hits: int = 0  #: unique signatures served by the in-process memo
    disk_hits: int = 0  #: unique signatures recalled from the disk cache
    disk_misses: int = 0  #: disk lookups that fell through to a search
    searched: int = 0  #: full searches actually run
    #: Unique signatures served by subscribing to another engine's
    #: in-flight search (the serve layer's request coalescing): the work
    #: ran exactly once process-wide, in someone else's engine.
    coalesced: int = 0
    network_hits: int = 0  #: whole networks served by the network memo
    budget_exhausted: int = 0  #: searches cut short by the anytime budget
    #: Ranked parallelism candidates displaced so the canonical default
    #: kept its slot (see ``LayerOptimizer._parallelisms``) — a persistent
    #: non-zero count means ``max_parallelism_candidates`` is too small.
    parallelism_displaced: int = 0

    def describe(self) -> str:
        text = (
            f"{self.requested} layers -> {self.unique} unique "
            f"(dedup {self.dedup_hits}), memo {self.memo_hits}, "
            f"disk {self.disk_hits}/{self.disk_hits + self.disk_misses}, "
            f"searched {self.searched}"
        )
        if self.coalesced:
            text += f", coalesced {self.coalesced}"
        if self.network_hits:
            text += f", whole-network hits {self.network_hits}"
        if self.budget_exhausted:
            text += f", budget-exhausted {self.budget_exhausted}"
        if self.parallelism_displaced:
            text += f", parallelism displaced {self.parallelism_displaced}"
        return text


class OptimizerEngine:
    """Deduplicating, parallel, cache-backed per-layer optimizer.

    One engine binds an accelerator and an options set; its caches (the
    in-process memo and the optional disk cache) are shared process-wide,
    so short-lived engines — one per :func:`optimize_network` call — still
    recall earlier results.
    """

    def __init__(
        self,
        arch: AcceleratorConfig,
        options: OptimizerOptions | None = None,
        *,
        parallelism: int | None = None,
        parallelism_mode: str | None = None,
        cache_dir: str | Path | bool | None = None,
        cache_backend: str | ConfigStore | None = None,
        use_cache: bool | None = None,
        vectorize: bool | None = None,
        budget_ms: float | None = None,
        kernel_backend: str | None = None,
        max_table_bytes: int | None = None,
        coalesce_inflight: bool | None = None,
    ) -> None:
        self.arch = arch
        self.options = options or OptimizerOptions()
        # Resolve the speed knobs (vectorize, search order, anytime
        # budget) here and bake them into the options so worker processes
        # (which inherit neither set_engine_defaults state nor the active
        # session's contextvar) follow the same path.  None affects
        # results, signatures or cache keys — vectorize/search_order only
        # change how candidates are scored and visited, and budget-
        # exhausted results are never cached.
        if vectorize is None:
            vectorize = (
                self.options.vectorize
                if self.options.vectorize is not None
                else default_vectorize()
            )
        self.vectorize = vectorize
        resolved_order = (
            self.options.search_order
            if self.options.search_order is not None
            else default_search_order()
        )
        if budget_ms is None:
            budget_ms = (
                self.options.budget_ms
                if self.options.budget_ms is not None
                else default_budget_ms()
            )
        self.budget_ms = budget_ms
        if kernel_backend is None:
            kernel_backend = (
                self.options.kernel_backend
                if self.options.kernel_backend is not None
                else default_kernel_backend()
            )
        self.kernel_backend = kernel_backend
        if max_table_bytes is None:
            max_table_bytes = (
                self.options.max_table_bytes
                if self.options.max_table_bytes is not None
                else default_max_table_bytes()
            )
        self.max_table_bytes = max_table_bytes
        self.options = self.options.with_(
            vectorize=vectorize,
            search_order=resolved_order,
            budget_ms=budget_ms,
            kernel_backend=kernel_backend,
            max_table_bytes=max_table_bytes,
        )
        self.parallelism = (
            default_parallelism() if parallelism is None else max(1, parallelism)
        )
        self.parallelism_mode = _check_mode(
            default_parallelism_mode()
            if parallelism_mode is None
            else parallelism_mode
        )
        self.use_cache = default_use_cache() if use_cache is None else use_cache
        # Coalescing is pure dedup of *concurrent* identical searches
        # (claim-or-subscribe on the signature-keyed in-flight table) —
        # searches are deterministic, so a subscribed result is
        # bit-identical to searching again.  On by default; budgeted
        # engines opt out automatically (their results are request-
        # specific prefixes, see optimize_layers).
        self.coalesce_inflight = (
            True if coalesce_inflight is None else bool(coalesce_inflight)
        )
        # cache_dir: None defers to the session/default resolution chain;
        # False disables the persistent cache — whatever the backend —
        # even when a default is configured.
        store = resolve_store(cache_dir, cache_backend)
        self.disk = (
            DiskConfigCache(store) if (store is not None and self.use_cache)
            else None
        )
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    def optimize_layers(
        self, layers: Iterable[ConvLayer]
    ) -> tuple[LayerResult, ...]:
        """Optimize every layer; unique shapes searched once, in order."""
        layers = tuple(layers)
        keyed: list[tuple[ConvLayer, str]] = []
        signatures: dict[str, dict] = {}
        representatives: dict[str, ConvLayer] = {}
        for layer in layers:
            signature = search_signature(layer, self.arch, self.options)
            key = signature_key(signature)
            keyed.append((layer, key))
            if key not in signatures:
                signatures[key] = signature
            else:
                self.stats.dedup_hits += 1
            representatives.setdefault(key, layer)
        self.stats.requested += len(layers)
        self.stats.unique += len(signatures)

        # Budgeted engines never claim or join the in-flight table: a
        # deadline-bounded result is a request-specific best-so-far prefix
        # (how far it got depends on *this* request's budget), so sharing
        # one across requests would violate the anytime contract the same
        # way caching one would.
        coalesce = self.coalesce_inflight and self.budget_ms is None
        resolved: dict[str, LayerResult] = {}
        pending: list[str] = []
        claimed: dict[str, _InflightSearch] = {}
        joined: dict[str, _InflightSearch] = {}
        for key, signature in signatures.items():
            if self.use_cache and key in _LAYER_MEMO:
                resolved[key] = _LAYER_MEMO[key]
                self.stats.memo_hits += 1
                if self.disk is not None and not self.disk.contains(signature):
                    # Write-through: a warm memo still populates a cache
                    # directory configured after the original search.
                    self.disk.store(signature, resolved[key])
                continue
            if self.disk is not None:
                recalled = self.disk.load(
                    signature, representatives[key], self.arch, self.options
                )
                if recalled is not None:
                    resolved[key] = recalled
                    _LAYER_MEMO[key] = recalled
                    self.stats.disk_hits += 1
                    continue
                self.stats.disk_misses += 1
            if coalesce:
                entry, owned = _inflight_claim(key)
                if owned:
                    claimed[key] = entry
                    pending.append(key)
                else:
                    joined[key] = entry
            else:
                pending.append(key)

        try:
            outcomes = self._search(pending, representatives)
        except BaseException as error:
            # Never strand a subscriber: failed claims publish the error
            # so waiters fall back to their own search instead of hanging.
            for key in pending:
                entry = claimed.pop(key, None)
                if entry is not None:
                    _inflight_publish(key, entry, None, error)
            raise
        for key, result in zip(pending, outcomes):
            resolved[key] = result
            self.stats.searched += 1
            self.stats.parallelism_displaced += result.parallelism_displaced
            entry = claimed.pop(key, None)
            if result.budget_exhausted:
                # Best-so-far prefixes never enter a cache: a later run
                # (or a bigger budget) must get the chance to finish the
                # search instead of recalling a truncated optimum.  (A
                # budgeted engine never claims, so ``entry`` is None here
                # unless budget resolution and claiming ever disagree —
                # publish defensively either way.)
                self.stats.budget_exhausted += 1
                if entry is not None:
                    _inflight_publish(key, entry, None)
                continue
            if entry is not None:
                _inflight_publish(key, entry, result)
            if self.use_cache:
                _LAYER_MEMO[key] = result
            if self.disk is not None:
                self.disk.store(signatures[key], result)

        # Own searches are published *before* waiting on anyone else's, so
        # two engines claiming disjoint halves of each other's layer sets
        # can never deadlock.
        for key, entry in joined.items():
            shared = entry.wait(_INFLIGHT_WAIT_S)
            if shared is None:
                # Owner died or timed out: search it ourselves.
                shared = _search_one(
                    (representatives[key], self.arch, self.options)
                )
                self.stats.searched += 1
                self.stats.parallelism_displaced += shared.parallelism_displaced
                if not shared.budget_exhausted:
                    if self.use_cache:
                        _LAYER_MEMO[key] = shared
                    if self.disk is not None:
                        self.disk.store(signatures[key], shared)
            else:
                self.stats.coalesced += 1
                if self.use_cache:
                    _LAYER_MEMO[key] = shared
                if self.disk is not None and not self.disk.contains(
                    signatures[key]
                ):
                    # Write-through: the owner persisted into *its* store;
                    # this engine's (possibly different) store must end up
                    # with the record too, exactly as if it had searched.
                    # (Published results are never budget-exhausted — the
                    # owner publishes None for those.)
                    self.disk.store(signatures[key], shared)
            resolved[key] = shared

        return tuple(
            _rebind(resolved[key], layer, self.arch) for layer, key in keyed
        )

    def _search(
        self, pending: Sequence[str], representatives: dict[str, ConvLayer]
    ) -> list[LayerResult]:
        """Run the outstanding searches, serially or across processes."""
        payloads = [
            (representatives[key], self.arch, self.options) for key in pending
        ]
        if self.parallelism <= 1 or len(payloads) <= 1:
            return [_search_one(payload) for payload in payloads]
        workers = min(self.parallelism, len(payloads))
        executor = (
            ThreadPoolExecutor
            if self.parallelism_mode == "thread"
            else ProcessPoolExecutor
        )
        with executor(max_workers=workers) as pool:
            # Executor.map preserves submission order: deterministic,
            # layer-for-layer identical to the serial path (threads and
            # processes alike — searches share no mutable state).
            return list(pool.map(_search_one, payloads))

    # ------------------------------------------------------------------
    def optimize_network(
        self,
        layers: Iterable[ConvLayer],
        *,
        network_name: str = "network",
    ) -> NetworkResult:
        """Network sweep with a content-keyed whole-network memo on top."""
        layers = tuple(layers)
        memo_key = (repr(self.arch), self.options, layers)
        if self.use_cache and memo_key in _NETWORK_MEMO:
            cached = _NETWORK_MEMO[memo_key]
            self.stats.requested += len(layers)
            self.stats.network_hits += 1
            self._write_through(cached)
            if cached.network_name == network_name:
                return cached
            return dataclasses.replace(cached, network_name=network_name)
        results = self.optimize_layers(layers)
        outcome = NetworkResult(
            network_name=network_name, arch_name=self.arch.name, layers=results
        )
        if self.use_cache and not any(r.budget_exhausted for r in results):
            # A network containing any best-so-far prefix is itself a
            # prefix — same never-cache rule as the layer memo.
            _NETWORK_MEMO[memo_key] = outcome
        return outcome

    def _write_through(self, cached: NetworkResult) -> None:
        """Backfill the disk cache from a whole-network memo hit.

        Mirrors the layer-level write-through: a cache directory
        configured *after* the original search still ends up populated.
        """
        if self.disk is None:
            return
        seen: set[str] = set()
        for layer_result in cached.layers:
            signature = search_signature(
                layer_result.layer, self.arch, self.options
            )
            key = signature_key(signature)
            if key in seen:
                continue
            seen.add(key)
            if not self.disk.contains(signature):
                self.disk.store(signature, layer_result)


def _rebind(
    result: LayerResult, layer: ConvLayer, arch: AcceleratorConfig
) -> LayerResult:
    """Fan a shared search result out to one occurrence of the shape.

    When the occurrence *is* the searched layer the result passes through
    untouched; otherwise the winning configuration is re-evaluated under
    the occurrence's own layer (same shape, different name), so every
    evaluation in a :class:`NetworkResult` names the layer it belongs to.
    One model evaluation — not a search.
    """
    if result.layer == layer:
        return result
    dataflow = result.best.dataflow
    rebound = dataclasses.replace(
        dataflow, hierarchy=dataclasses.replace(dataflow.hierarchy, layer=layer)
    )
    return dataclasses.replace(result, layer=layer, best=evaluate(rebound, arch))


def optimize_layer(
    layer: ConvLayer,
    arch: AcceleratorConfig,
    options: OptimizerOptions | None = None,
    *,
    use_cache: bool | None = None,
    parallelism: int | None = None,
    parallelism_mode: str | None = None,
    cache_dir: str | Path | bool | None = None,
    cache_backend: str | ConfigStore | None = None,
    vectorize: bool | None = None,
    budget_ms: float | None = None,
    kernel_backend: str | None = None,
    max_table_bytes: int | None = None,
    coalesce_inflight: bool | None = None,
) -> LayerResult:
    """Single-layer search through the engine's shared caches.

    Compatibility shim over :mod:`repro.api`: runs through the currently
    scoped session (or the process default session), so ``with
    repro.Session(...):`` blocks configure it.  ``budget_ms`` bounds the
    search's wall-clock (anytime mode — see
    :attr:`repro.optimizer.search.OptimizerOptions.budget_ms`); ``None``
    defers to the session / ``REPRO_BUDGET_MS`` default.
    ``kernel_backend`` / ``max_table_bytes`` select the kernel-execution
    backend and the columnar-table memory cap (pure speed knobs,
    bit-identical results; ``None`` defers to the session /
    ``REPRO_KERNEL_BACKEND`` / ``REPRO_MAX_TABLE_BYTES``).
    ``coalesce_inflight`` (default on) subscribes concurrent identical
    searches to one another through the process-wide in-flight table
    instead of running them twice — pure concurrent dedup, identical
    results; budgeted searches never coalesce.
    """
    from repro.api import current_session

    return current_session().optimize_layer(
        layer,
        arch,
        options,
        parallelism=parallelism,
        parallelism_mode=parallelism_mode,
        cache_dir=cache_dir,
        cache_backend=cache_backend,
        use_cache=use_cache,
        vectorize=vectorize,
        budget_ms=budget_ms,
        kernel_backend=kernel_backend,
        max_table_bytes=max_table_bytes,
        coalesce_inflight=coalesce_inflight,
    )
