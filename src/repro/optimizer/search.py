"""Per-layer configuration search (paper Section V).

For every layer the optimizer enumerates [outer order, inner order, last-
level tile, sub-tile allocation, parallelism] configurations, evaluates each
with the analytic models and returns the best under the chosen objective
("it is straightforward to optimize for power or performance or
performance/power", Section V-E).

Inflexible machines reuse the same search with their dataflow pinned:
Morph-base fixes loop orders, static partitions and parallelism but still
sizes tiles per layer (its FSMs are fixed-function *per dataflow*, not per
shape); Eyeriss additionally has only two buffer levels.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable

from repro.arch.accelerator import AcceleratorConfig
from repro.core.access_model import boundary_fill_profile
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.dims import DataType, Dim
from repro.core.evaluate import CapacityError, Evaluation, evaluate
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.performance_model import parallel_level_degrees
from repro.core.tiling import TileHierarchy, TileShape
from repro.optimizer.allocation import allocate_hierarchy
from repro.optimizer.space import (
    REPRESENTATIVE_INNER_ORDERS,
    REPRESENTATIVE_OUTER_ORDERS,
    candidate_blocks,
    dedupe_orders_by_signature,
    last_level_tile_candidates,
    loop_order_candidates,
    parallelism_candidates,
)

#: Objective -> scalar score (lower is better).
OBJECTIVES: dict[str, Callable[[Evaluation], float]] = {
    "energy": lambda ev: ev.total_energy_pj,
    "latency": lambda ev: ev.cycles,
    "edp": lambda ev: ev.edp,
    "perf_per_watt": lambda ev: -ev.perf_per_watt,
}


@dataclasses.dataclass(frozen=True)
class OptimizerOptions:
    """Search-effort knobs (the paper's space discretisation)."""

    objective: str = "energy"
    exhaustive_orders: bool = False
    max_l2_candidates: int = 16
    keep_allocations: int = 3
    keep_per_level: int = 4
    max_parallelism_candidates: int = 4
    #: Overrides for motivation-style sweeps (Figure 4 fixes one order and
    #: sweeps everything else).
    fixed_outer_order: LoopOrder | None = None
    fixed_inner_order: LoopOrder | None = None
    fixed_parallelism: Parallelism | None = None
    #: Columnar batch evaluation of candidates (results are identical to
    #: the scalar path; this is purely a speed knob, so it is excluded from
    #: search signatures and cache keys).  ``None`` defers to the engine
    #: default (:func:`repro.optimizer.engine.default_vectorize`, i.e. on
    #: when NumPy is available unless ``REPRO_VECTORIZE=0``).
    vectorize: bool | None = dataclasses.field(
        default=None, repr=False, compare=False
    )
    #: Visit order of the (parallelism, L2-tile) candidate blocks:
    #: ``"best_first"`` sorts blocks by ascending objective lower bound so
    #: the early-prune incumbent tightens as fast as possible;
    #: ``"legacy"`` keeps the historical enumeration order.  ``None``
    #: defers to the engine default
    #: (:func:`repro.optimizer.engine.default_search_order` — the active
    #: session / ``REPRO_SEARCH_ORDER`` / ``"best_first"``).
    #: **Ordering guarantee:** the chosen configuration and score are
    #: bit-identical either way — equal-score ties are broken by candidate
    #: identity (legacy enumeration rank), never by visit order — so,
    #: like ``vectorize``, this is a pure speed knob excluded from search
    #: signatures and cache keys.
    search_order: str | None = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; "
                f"choose from {sorted(OBJECTIVES)}"
            )
        if self.search_order not in (None, "best_first", "legacy"):
            raise ValueError(
                f"unknown search_order {self.search_order!r}; "
                "choose 'best_first' or 'legacy'"
            )

    @classmethod
    def fast(cls, **overrides) -> "OptimizerOptions":
        """Coarser discretisation for benchmarks and CI."""
        defaults = dict(
            max_l2_candidates=8,
            keep_allocations=2,
            keep_per_level=3,
            max_parallelism_candidates=2,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def thorough(cls, **overrides) -> "OptimizerOptions":
        defaults = dict(
            max_l2_candidates=32,
            keep_allocations=4,
            keep_per_level=5,
            max_parallelism_candidates=6,
            exhaustive_orders=True,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def with_(self, **overrides) -> "OptimizerOptions":
        return dataclasses.replace(self, **overrides)


@dataclasses.dataclass(frozen=True)
class LayerResult:
    """Best configuration found for one layer.

    ``evaluated`` counts full model evaluations; ``pruned`` counts
    candidates discarded by the cheap objective lower bound before
    evaluation (see :meth:`LayerOptimizer.optimize`).  ``objective`` is the
    objective the search ran under, so :attr:`score` reports the quantity
    the optimizer actually minimised.
    """

    layer: ConvLayer
    best: Evaluation
    evaluated: int
    objective: str = "energy"
    #: Candidates (or whole L2-tile branches, counted per outer order)
    #: discarded by the lower bound without a model evaluation.
    pruned: int = 0
    #: Bound-quality telemetry: did the *first-visited* (parallelism,
    #: L2-tile) block contain the eventual winner?  Under best-first
    #: ordering this measures how often the cheap objective lower bound
    #: ranks the winning block first (the prune's best case); ``None``
    #: for results recalled from the persistent cache (no search ran).
    first_block_won: bool | None = None

    @property
    def score(self) -> float:
        return OBJECTIVES[self.objective](self.best)

    @property
    def considered(self) -> int:
        """Total candidates ranked: evaluated plus bound-pruned."""
        return self.evaluated + self.pruned


def layer_cost_floors(
    layer: ConvLayer, arch: AcceleratorConfig
) -> tuple[float, float, float]:
    """Candidate-independent cost floors of one layer on one machine.

    Returns ``(energy_floor_pj, cycles_floor, static_pj_per_cycle)``:
    every configuration pays the full MACC energy, the unconditional
    ALU-side L0 reads (one input byte per vector round, one weight byte
    per MAC — Section IV-A2), at least ``maccs / peak`` cycles, and the
    machine's leakage for every cycle it runs.  The formulas are shared
    with the real models (:func:`alu_read_bytes`,
    :func:`repro.core.energy_model.static_pj_per_cycle`) so bound and
    model cannot drift apart.
    """
    from repro.core.access_model import alu_read_bytes
    from repro.core.energy_model import static_pj_per_cycle

    maccs = layer.maccs
    inner = arch.num_levels - 1
    input_reads, weight_reads = alu_read_bytes(
        maccs, arch.vector_width, arch.precision
    )
    alu_read_pj = (
        input_reads * arch.read_pj_per_byte(inner, DataType.INPUTS)
        + weight_reads * arch.read_pj_per_byte(inner, DataType.WEIGHTS)
    )
    energy_floor = arch.technology.macc_energy_pj(maccs) + alu_read_pj
    cycles_floor = maccs / arch.peak_maccs_per_cycle
    return energy_floor, cycles_floor, static_pj_per_cycle(arch)


def objective_lower_bound(
    layer: ConvLayer,
    arch: AcceleratorConfig,
    l2_tile: TileShape,
    outer_order: LoopOrder,
    objective: str,
    floors: tuple[float, float, float] | None = None,
) -> float:
    """Cheap lower bound on an objective for one (L2 tile, outer order).

    Every candidate sharing the last-level tile and outer loop order moves
    at least the DRAM traffic implied by that boundary (parallelism never
    splits the DRAM boundary's loops — clusters and PEs divide the inner
    levels), and additionally pays the candidate-independent floors of
    :func:`layer_cost_floors`:

    * ``energy >= dram_pj + macc_pj + alu_l0_pj + leakage * cycles_lb``,
    * ``cycles >= max(maccs / peak, dram_bytes / dram_bandwidth)``,

    with the edp / perf-per-watt bounds derived from those.  Only one
    boundary of the traffic model runs — no sub-tile allocation,
    performance or energy model — so the optimizer can discard whole
    branches of the candidate space without evaluating them.
    """
    if floors is None:
        floors = layer_cost_floors(layer, arch)
    energy_floor, cycles_floor, static_pj_per_cycle = floors
    precision = arch.precision
    profile = boundary_fill_profile(
        layer, TileShape.full(layer), l2_tile, outer_order, precision
    )
    out_psum_bytes = layer.output_elements * precision.psum_bytes
    psum_fill = profile[DataType.PSUMS][1]
    spill = max(0, psum_fill - out_psum_bytes)
    read_bytes = (
        profile[DataType.INPUTS][1]
        + profile[DataType.WEIGHTS][1]
        + spill  # psum re-loads mirror spills
    )
    write_bytes = spill + layer.output_elements * precision.activation_bytes
    tech = arch.technology
    cycles_lb = max(
        cycles_floor,
        (read_bytes + write_bytes)
        / arch.noc.boundary_bandwidth_bytes_per_cycle(0),
    )
    if objective == "latency":
        return cycles_lb
    energy_lb = (
        tech.dram_energy_pj(read_bytes + write_bytes)
        + energy_floor
        + static_pj_per_cycle * cycles_lb
    )
    if objective == "energy":
        return energy_lb
    if objective == "edp":
        return energy_lb * 1e-12 * cycles_lb / tech.clock_hz
    if objective == "perf_per_watt":
        return -layer.maccs / (energy_lb * 1e-12)
    raise ValueError(f"no lower bound for objective {objective!r}")


class LayerOptimizer:
    """Searches configurations for single layers on one accelerator."""

    def __init__(
        self,
        arch: AcceleratorConfig,
        options: OptimizerOptions | None = None,
    ) -> None:
        self.arch = arch
        self.options = options or OptimizerOptions()
        self._score = OBJECTIVES[self.options.objective]
        if self.options.vectorize is None:
            from repro.optimizer.engine import default_vectorize

            self.vectorize = default_vectorize()
        else:
            self.vectorize = self.options.vectorize
        if self.vectorize:
            from repro.core import batch

            if not batch.available:
                self.vectorize = False
        if self.options.search_order is None:
            from repro.optimizer.engine import default_search_order

            self.search_order = default_search_order()
        else:
            self.search_order = self.options.search_order
        if self.search_order not in ("best_first", "legacy"):
            raise ValueError(
                f"unknown search_order {self.search_order!r}; "
                "choose 'best_first' or 'legacy'"
            )

    # ------------------------------------------------------------------
    def _outer_orders(self, layer: ConvLayer, l2_tile: TileShape) -> list[LoopOrder]:
        fixed = self.options.fixed_outer_order or self.arch.fixed_outer_order
        if fixed is not None:
            return [fixed]
        orders = loop_order_candidates(
            exhaustive=self.options.exhaustive_orders,
            representative=REPRESENTATIVE_OUTER_ORDERS,
        )
        return dedupe_orders_by_signature(orders, TileShape.full(layer), l2_tile)

    def _inner_orders(self) -> list[LoopOrder]:
        fixed = self.options.fixed_inner_order or self.arch.fixed_inner_order
        if fixed is not None:
            return [fixed]
        return loop_order_candidates(
            exhaustive=self.options.exhaustive_orders,
            representative=REPRESENTATIVE_INNER_ORDERS,
        )

    def _parallelisms(self, layer: ConvLayer) -> list[Parallelism]:
        fixed = self.options.fixed_parallelism or self.arch.fixed_parallelism
        if fixed is not None:
            return [fixed]
        candidates = parallelism_candidates(self.arch, layer)
        # Always keep the canonical arrangement (K across clusters, H
        # across PEs — Morph-base's choice) in the search so a flexible
        # machine can never do worse than the inflexible default.  Append
        # it *before* truncating so the candidate list never exceeds
        # ``max_parallelism_candidates``; if truncation would drop it, it
        # takes the last kept slot (with a budget of 1 that means the
        # default is the whole search — the cap wins over ranking).
        default = Parallelism(k=self.arch.clusters, h=self.arch.pes_per_cluster)
        if default not in candidates:
            candidates = [*candidates, default]
        chosen = candidates[: self.options.max_parallelism_candidates]
        if not chosen:
            return [default]
        if default not in chosen:
            chosen[-1] = default
        return chosen

    def _level_degrees(
        self, parallelism: Parallelism
    ) -> tuple[dict[Dim, int], ...]:
        """Per-level parallel splits capping sub-tile sizes."""
        return parallel_level_degrees(
            self.arch.num_levels,
            self.arch.clusters,
            self.arch.pes_per_cluster,
            parallelism,
        )

    # ------------------------------------------------------------------
    def optimize(self, layer: ConvLayer) -> LayerResult:
        """Find the best configuration for ``layer`` under the objective.

        A cheap per-(L2 tile, outer order) lower bound on the objective
        (:func:`objective_lower_bound`) prunes candidates that provably
        cannot beat the incumbent before the full analytic models run;
        the returned best configuration is identical to an unpruned sweep.

        By default the (parallelism, L2-tile) candidate blocks are visited
        best-first — ascending by each block's objective lower bound
        (:func:`repro.optimizer.space.candidate_blocks`) — so the
        incumbent reaches near-optimal almost immediately and the prune
        discards most of the space.  **The chosen configuration and score
        are bit-identical to the legacy visit order** (and to an unpruned
        sweep): candidates are ranked lexicographically by
        ``(score, legacy enumeration rank)``, so equal-score ties resolve
        by candidate identity no matter when each candidate is visited,
        and the bound only discards candidates that provably lose that
        comparison.  ``options.search_order="legacy"`` restores the
        historical order (for A/B measurement; results are identical).

        With vectorization on (the default), candidates are lowered into
        columnar tables and scored by :mod:`repro.core.batch` — same
        equations, same chosen configuration and score, a fraction of the
        time.  ``evaluated``/``pruned`` counters can differ slightly
        between the two paths because the batch path updates its incumbent
        once per candidate block rather than per candidate.
        """
        if self.vectorize:
            return self._optimize_batch(layer)
        return self._optimize_scalar(layer)

    def _optimize_scalar(self, layer: ConvLayer) -> LayerResult:
        """Pure-Python reference search (``vectorize=False``)."""
        best: Evaluation | None = None
        best_score = float("inf")
        #: Legacy-enumeration rank (block index, row index) of the
        #: incumbent: equal-score ties resolve to the candidate the legacy
        #: order would have met first, independent of visit order.
        best_rank = (float("inf"), float("inf"))
        evaluated = 0
        pruned = 0
        #: (l2 tile, outer order) -> objective lower bound, memoised across
        #: the inner-order / allocation / parallelism loops.
        bounds: dict[tuple[TileShape, LoopOrder], float] = {}
        floors = layer_cost_floors(layer, self.arch)

        l2_tiles = last_level_tile_candidates(
            layer, self.arch, max_candidates=self.options.max_l2_candidates
        )
        inner_orders = self._inner_orders()
        parallelisms = self._parallelisms(layer)

        def bound_for(l2_tile: TileShape, outer: LoopOrder) -> float:
            bound = bounds.get((l2_tile, outer))
            if bound is None:
                bound = objective_lower_bound(
                    layer, self.arch, l2_tile, outer,
                    self.options.objective, floors,
                )
                bounds[(l2_tile, outer)] = bound
            return bound

        #: L2 tile -> deduped outer orders (pure function of the tile).
        outer_memo: dict[TileShape, list[LoopOrder]] = {}

        def outers_for(l2_tile: TileShape) -> list[LoopOrder]:
            orders = outer_memo.get(l2_tile)
            if orders is None:
                orders = self._outer_orders(layer, l2_tile)
                outer_memo[l2_tile] = orders
            return orders

        def can_beat(value: float, block_idx: int, row_idx) -> bool:
            """Could a candidate with lower bound (or score) ``value`` at
            legacy rank ``(block_idx, row_idx)`` displace the incumbent
            under the (score, rank) lexicographic comparison?"""
            if value < best_score:
                return True
            return value == best_score and (block_idx, row_idx) < best_rank

        best_first = self.search_order == "best_first"
        blocks = candidate_blocks(
            parallelisms, l2_tiles, best_first=best_first,
            block_bound=(
                (lambda l2: min(bound_for(l2, o) for o in outers_for(l2)))
                if best_first else None
            ),
        )

        for block_idx, p_idx, t_idx in blocks:
            par = parallelisms[p_idx]
            l2_tile = l2_tiles[t_idx]
            outer_orders = outers_for(l2_tile)
            # Branch-level prune: if no outer order of this L2 tile can
            # displace the incumbent, skip the whole sub-tile allocation.
            if not any(
                can_beat(bound_for(l2_tile, o), block_idx, -1)
                for o in outer_orders
            ):
                pruned += len(outer_orders)
                continue
            level_degrees = self._level_degrees(par)
            row = -1  # legacy row rank within this block
            for inner in inner_orders:
                try:
                    beams = allocate_hierarchy(
                        layer,
                        self.arch,
                        l2_tile,
                        inner,
                        keep_per_level=self.options.keep_per_level,
                        level_degrees=level_degrees,
                    )
                except ValueError:
                    continue
                for tiles in beams[: self.options.keep_allocations]:
                    hierarchy = TileHierarchy(layer, tiles)
                    for outer in outer_orders:
                        row += 1
                        # Per-candidate prune against the (possibly
                        # improved) incumbent.
                        if not can_beat(bound_for(l2_tile, outer), block_idx, row):
                            pruned += 1
                            continue
                        dataflow = Dataflow(outer, inner, hierarchy, par)
                        try:
                            ev = evaluate(dataflow, self.arch)
                        except CapacityError:
                            continue
                        evaluated += 1
                        score = self._score(ev)
                        if can_beat(score, block_idx, row):
                            best, best_score = ev, score
                            best_rank = (block_idx, row)

        if best is None:
            raise CapacityError(
                f"no feasible configuration for {layer.name} on {self.arch.name}"
            )
        return LayerResult(
            layer=layer,
            best=best,
            evaluated=evaluated,
            objective=self.options.objective,
            pruned=pruned,
            first_block_won=bool(blocks) and best_rank[0] == blocks[0][0],
        )

    def _optimize_batch(self, layer: ConvLayer) -> LayerResult:
        """Columnar search: enumerate candidate tables, score in bulk.

        Enumeration follows the scalar path's nesting exactly — per
        ``(parallelism, L2 tile)`` block the rows run [inner order x
        allocation x outer order], blocks visited best-first by default —
        and ties are broken by legacy enumeration rank exactly as in
        :meth:`_optimize_scalar`, so the chosen configuration and score
        match it bit for bit.  The PR 1 lower-bound prune survives as a
        vectorized mask: branches whose bound cannot displace the
        incumbent are skipped before allocation, rows before evaluation.
        """
        import numpy as np

        from repro.core.batch import CandidateBatch

        objective = self.options.objective
        best_batch: CandidateBatch | None = None
        best_row = -1
        best_score = float("inf")
        #: Legacy-enumeration rank (block index, row index) of the
        #: incumbent — the same tie-break key as the scalar path.
        best_rank = (float("inf"), float("inf"))
        evaluated = 0
        pruned = 0
        bounds: dict[tuple[TileShape, LoopOrder], float] = {}
        #: (level, parent, cap) -> sub-tile candidates, shared across the
        #: inner-order loop (candidate generation is order-independent).
        candidate_memo: dict = {}
        floors = layer_cost_floors(layer, self.arch)

        l2_tiles = last_level_tile_candidates(
            layer,
            self.arch,
            max_candidates=self.options.max_l2_candidates,
            vectorize=True,
        )
        inner_orders = self._inner_orders()
        parallelisms = tuple(self._parallelisms(layer))

        #: Stable order registry shared by outer and inner columns.
        order_index: dict[LoopOrder, int] = {}

        def index_of(order: LoopOrder) -> int:
            return order_index.setdefault(order, len(order_index))

        def bound_for(l2_tile: TileShape, outer: LoopOrder) -> float:
            bound = bounds.get((l2_tile, outer))
            if bound is None:
                bound = objective_lower_bound(
                    layer, self.arch, l2_tile, outer, objective, floors,
                )
                bounds[(l2_tile, outer)] = bound
            return bound

        outer_memo: dict[TileShape, list[LoopOrder]] = {}

        def outers_for(l2_tile: TileShape) -> list[LoopOrder]:
            orders = outer_memo.get(l2_tile)
            if orders is None:
                orders = self._outer_orders(layer, l2_tile)
                outer_memo[l2_tile] = orders
            return orders

        def can_beat(value: float, block_idx: int, row_idx) -> bool:
            if value < best_score:
                return True
            return value == best_score and (block_idx, row_idx) < best_rank

        best_first = self.search_order == "best_first"
        blocks = candidate_blocks(
            parallelisms, l2_tiles, best_first=best_first,
            block_bound=(
                (lambda l2: min(bound_for(l2, o) for o in outers_for(l2)))
                if best_first else None
            ),
        )

        num_levels = self.arch.num_levels
        for block_idx, p_idx, t_idx in blocks:
            par = parallelisms[p_idx]
            l2_tile = l2_tiles[t_idx]
            outer_orders = outers_for(l2_tile)
            # Branch-level prune, as in the scalar path.
            if not any(
                can_beat(bound_for(l2_tile, o), block_idx, -1)
                for o in outer_orders
            ):
                pruned += len(outer_orders)
                continue
            level_degrees = self._level_degrees(par)

            rows_tiles: list[tuple[TileShape, ...]] = []
            rows_outer: list[int] = []
            rows_inner: list[int] = []
            rows_rank: list[int] = []
            row = -1  # legacy row rank within this block
            for inner in inner_orders:
                try:
                    beams = allocate_hierarchy(
                        layer,
                        self.arch,
                        l2_tile,
                        inner,
                        keep_per_level=self.options.keep_per_level,
                        level_degrees=level_degrees,
                        vectorize=True,
                        candidate_memo=candidate_memo,
                    )
                except ValueError:
                    continue
                inner_idx = index_of(inner)
                for tiles in beams[: self.options.keep_allocations]:
                    for outer in outer_orders:
                        row += 1
                        # Vectorized-mask analogue of the scalar
                        # per-candidate prune (block-start incumbent).
                        if not can_beat(bound_for(l2_tile, outer), block_idx, row):
                            pruned += 1
                            continue
                        rows_tiles.append(tiles)
                        rows_outer.append(index_of(outer))
                        rows_inner.append(inner_idx)
                        rows_rank.append(row)
            if not rows_tiles:
                continue

            n = len(rows_tiles)
            tiles_cols = np.empty((num_levels, 5, n), dtype=np.int64)
            for i, tiles in enumerate(rows_tiles):
                for lvl in range(num_levels):
                    tile = tiles[lvl]
                    tiles_cols[lvl, 0, i] = tile.w
                    tiles_cols[lvl, 1, i] = tile.h
                    tiles_cols[lvl, 2, i] = tile.c
                    tiles_cols[lvl, 3, i] = tile.k
                    tiles_cols[lvl, 4, i] = tile.f
            batch = CandidateBatch(
                layer,
                self.arch,
                tuple(order_index),
                parallelisms,
                tiles_cols,
                np.array(rows_outer, dtype=np.int64),
                np.array(rows_inner, dtype=np.int64),
                np.full(n, p_idx, dtype=np.int64),
            )
            scores = batch.scores(objective)
            evaluated += int(np.isfinite(scores).sum())
            # First minimum wins: among equal scores argmin picks the
            # lowest table position, which (ranks increase with position)
            # is the lowest legacy rank in this block.
            winner = int(np.argmin(scores))
            winner_score = float(scores[winner])
            # The finiteness guard keeps an all-infeasible block (score
            # inf) from tying the initial incumbent via the rank rule.
            if np.isfinite(winner_score) and can_beat(
                winner_score, block_idx, rows_rank[winner]
            ):
                best_batch, best_row = batch, winner
                best_score = winner_score
                best_rank = (block_idx, rows_rank[winner])

        if best_batch is None:
            raise CapacityError(
                f"no feasible configuration for {layer.name} on {self.arch.name}"
            )
        best = best_batch.evaluate_row(best_row)
        if self._score(best) != best_score:
            # Self-check at materialisation: the scalar re-evaluation of
            # the winner must reproduce the batch score bit for bit.  A
            # mismatch means the columnar int64 arithmetic left the scalar
            # path's exact-integer envelope (e.g. overflow on a pathological
            # layer) — fall back to the reference search rather than
            # return a silently mis-ranked configuration.
            return self._optimize_scalar(layer)
        return LayerResult(
            layer=layer,
            best=best,
            evaluated=evaluated,
            objective=objective,
            pruned=pruned,
            first_block_won=bool(blocks) and best_rank[0] == blocks[0][0],
        )


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class NetworkResult:
    """Per-layer best configurations plus network-level aggregates."""

    network_name: str
    arch_name: str
    layers: tuple[LayerResult, ...]

    @property
    def total_energy_pj(self) -> float:
        return sum(r.best.total_energy_pj for r in self.layers)

    @property
    def total_cycles(self) -> float:
        return sum(r.best.cycles for r in self.layers)

    @property
    def total_maccs(self) -> int:
        return sum(r.best.traffic.maccs for r in self.layers)

    @property
    def perf_per_watt(self) -> float:
        """Network MACs per joule (energy includes runtime-static)."""
        return self.total_maccs / (self.total_energy_pj * 1e-12)

    def energy_components_pj(self) -> dict[str, float]:
        """Summed Figure 9 components across layers."""
        totals: dict[str, float] = {}
        for result in self.layers:
            for name, pj in result.best.energy.figure9_components().items():
                totals[name] = totals.get(name, 0.0) + pj
        return totals

    def layer_result(self, layer_name: str) -> LayerResult:
        for result in self.layers:
            if result.layer.name == layer_name:
                return result
        raise KeyError(layer_name)


def optimize_network(
    layers: Iterable[ConvLayer],
    arch: AcceleratorConfig,
    options: OptimizerOptions | None = None,
    *,
    network_name: str = "network",
    use_cache: bool | None = None,
    parallelism: int | None = None,
    parallelism_mode: str | None = None,
    cache_dir=None,
    cache_backend=None,
    vectorize: bool | None = None,
) -> NetworkResult:
    """Optimize each layer of a network through the optimizer engine.

    The paper notes these optimizations "need only be performed once per
    CNN" with the configuration saved and recalled (Section V) — the
    engine (:mod:`repro.optimizer.engine`) plays that role: unique layer
    shapes are searched once (duplicates fan the result back out), results
    are memoised in-process keyed on *content* (layers + arch + options,
    never the network name), and, when a cache directory is configured,
    recalled from versioned on-disk configuration files across runs.

    ``parallelism`` > 1 fans unique-layer searches out across worker
    processes — or threads with ``parallelism_mode="thread"`` (the right
    executor on free-threaded builds); ``None`` defers to the engine
    defaults (see :func:`repro.optimizer.engine.set_engine_defaults` /
    ``REPRO_PARALLELISM`` / ``REPRO_PARALLELISM_MODE``).  ``cache_dir``
    likewise defaults to ``REPRO_CACHE_DIR`` when unset, and
    ``cache_backend`` selects the config-store layout — ``"local"``
    (flat directory), ``"sharded"`` (two-level fan-out for cluster-shared
    mounts), ``"memory"`` (in-process), or any
    :class:`~repro.optimizer.config_store.ConfigStore` instance —
    defaulting to ``REPRO_CACHE_BACKEND`` / ``"local"``.
    ``use_cache=False`` disables both the in-process memo and the
    persistent cache (deduplication still applies — it never changes
    results).  ``vectorize`` selects the columnar batch evaluator
    (``None`` defers to the engine default / ``REPRO_VECTORIZE``; results
    are identical either way).

    This function is a compatibility shim over :mod:`repro.api`: the call
    runs through the currently scoped session (or the process default
    session when none is active), so ``with repro.Session(...):`` blocks
    configure it and results are bit-identical to
    :meth:`repro.api.Session.optimize_network`.
    """
    from repro.api import current_session

    return current_session().optimize_network(
        layers,
        arch,
        options,
        network_name=network_name,
        parallelism=parallelism,
        parallelism_mode=parallelism_mode,
        cache_dir=cache_dir,
        cache_backend=cache_backend,
        use_cache=use_cache,
        vectorize=vectorize,
    )


def clear_cache() -> None:
    """Drop every in-process memo (the persistent config store survives).

    Beyond the engine's layer/network memos and the Eyeriss baseline
    cache, this also resets the model-constant memos added for the
    columnar pipeline — the :func:`split_parallelism` divisor search, the
    per-machine energy cost tables and the batch pipeline's constant
    columns — so tests (or notebooks) that mutate an accelerator or
    technology description in place can never observe stale constants.
    """
    from repro.baselines import eyeriss
    from repro.core import batch, energy_model, performance_model
    from repro.optimizer import engine

    engine.clear_memory_caches()
    eyeriss.clear_cache()
    performance_model.clear_memos()
    energy_model.clear_memos()
    batch.clear_constant_caches()
