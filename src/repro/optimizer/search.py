"""Per-layer configuration search (paper Section V).

For every layer the optimizer enumerates [outer order, inner order, last-
level tile, sub-tile allocation, parallelism] configurations, evaluates each
with the analytic models and returns the best under the chosen objective
("it is straightforward to optimize for power or performance or
performance/power", Section V-E).

Inflexible machines reuse the same search with their dataflow pinned:
Morph-base fixes loop orders, static partitions and parallelism but still
sizes tiles per layer (its FSMs are fixed-function *per dataflow*, not per
shape); Eyeriss additionally has only two buffer levels.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable

from repro.arch.accelerator import AcceleratorConfig
from repro.core.access_model import boundary_fill_profile
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.dims import DataType, Dim
from repro.core.evaluate import CapacityError, Evaluation, evaluate
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.performance_model import parallel_level_degrees, split_parallelism
from repro.core.tiling import TileHierarchy, TileShape
from repro.optimizer.allocation import allocate_hierarchy
from repro.optimizer.clock import current_clock
from repro.optimizer.space import (
    REPRESENTATIVE_INNER_ORDERS,
    REPRESENTATIVE_OUTER_ORDERS,
    candidate_blocks,
    dedupe_orders_by_signature,
    last_level_tile_candidates,
    loop_order_candidates,
    parallelism_candidates,
)

#: Objective -> scalar score (lower is better).
OBJECTIVES: dict[str, Callable[[Evaluation], float]] = {
    "energy": lambda ev: ev.total_energy_pj,
    "latency": lambda ev: ev.cycles,
    "edp": lambda ev: ev.edp,
    "perf_per_watt": lambda ev: -ev.perf_per_watt,
}


@dataclasses.dataclass(frozen=True)
class OptimizerOptions:
    """Search-effort knobs (the paper's space discretisation)."""

    objective: str = "energy"
    exhaustive_orders: bool = False
    max_l2_candidates: int = 16
    keep_allocations: int = 3
    keep_per_level: int = 4
    max_parallelism_candidates: int = 4
    #: Overrides for motivation-style sweeps (Figure 4 fixes one order and
    #: sweeps everything else).
    fixed_outer_order: LoopOrder | None = None
    fixed_inner_order: LoopOrder | None = None
    fixed_parallelism: Parallelism | None = None
    #: Columnar batch evaluation of candidates (results are identical to
    #: the scalar path; this is purely a speed knob, so it is excluded from
    #: search signatures and cache keys).  ``None`` defers to the engine
    #: default (:func:`repro.optimizer.engine.default_vectorize`, i.e. on
    #: when NumPy is available unless ``REPRO_VECTORIZE=0``).
    vectorize: bool | None = dataclasses.field(
        default=None, repr=False, compare=False
    )
    #: Visit order of the (parallelism, L2-tile) candidate blocks:
    #: ``"best_first"`` sorts blocks by ascending objective lower bound so
    #: the early-prune incumbent tightens as fast as possible;
    #: ``"legacy"`` keeps the historical enumeration order.  ``None``
    #: defers to the engine default
    #: (:func:`repro.optimizer.engine.default_search_order` — the active
    #: session / ``REPRO_SEARCH_ORDER`` / ``"best_first"``).
    #: **Ordering guarantee:** the chosen configuration and score are
    #: bit-identical either way — equal-score ties are broken by candidate
    #: identity (legacy enumeration rank), never by visit order — so,
    #: like ``vectorize``, this is a pure speed knob excluded from search
    #: signatures and cache keys.
    search_order: str | None = dataclasses.field(
        default=None, repr=False, compare=False
    )
    #: Anytime search budget in milliseconds (``None`` = run to
    #: exhaustion; ``None`` in options also defers to the engine default
    #: — the active session / ``REPRO_BUDGET_MS``).  The clock is polled
    #: only at (parallelism, L2-tile) block boundaries, and the first
    #: block always completes, so a budgeted result is an exact *prefix*
    #: of the unbudgeted search: **bit-identical whenever the budget is
    #: not hit**, and carrying :attr:`LayerResult.bound_gap` /
    #: :attr:`LayerResult.budget_exhausted` when it is.  Excluded from
    #: search signatures and cache keys — sound because budget-exhausted
    #: results are never cached (memo or disk), and a cached unbudgeted
    #: result recalled for a budgeted request is exactly the anytime
    #: contract's best case (full quality within any budget).
    budget_ms: float | None = dataclasses.field(
        default=None, repr=False, compare=False
    )
    #: Parallelism-aware lower-bound floors (utilization ceiling +
    #: replication energy floor) that differentiate same-L2-tile blocks.
    #: A pure speed knob: the floors are provable lower bounds, so the
    #: chosen configuration and score are bit-identical either way —
    #: ``False`` restores the parallelism-blind PR 4 bound for A/B runs.
    parallel_floors: bool = dataclasses.field(
        default=True, repr=False, compare=False
    )
    #: Kernel-execution backend for the columnar batch evaluator —
    #: ``"numpy"`` (plain vectorized kernels) or ``"compiled"`` (the same
    #: kernels JIT-compiled via :mod:`repro.core.backend`; silently
    #: identical to ``"numpy"`` when no JIT is installed).  Backends lower
    #: the shared ``*_kernel`` formulas, never fork them, so scores and
    #: winners are bit-identical across backends — a pure speed knob,
    #: excluded from search signatures and cache keys.  ``None`` defers to
    #: the engine default
    #: (:func:`repro.optimizer.engine.default_kernel_backend` — the active
    #: session / ``REPRO_KERNEL_BACKEND`` / ``"numpy"``).
    kernel_backend: str | None = dataclasses.field(
        default=None, repr=False, compare=False
    )
    #: Memory cap (bytes) on any one columnar candidate/schedule table.
    #: When set, batch scoring streams candidates in row chunks with
    #: carried first-min reductions — bit-identical to the unchunked
    #: sweep, so huge search spaces never fall back to the scalar path.
    #: ``None`` defers to the engine default
    #: (:func:`repro.optimizer.engine.default_max_table_bytes` — the
    #: active session / ``REPRO_MAX_TABLE_BYTES`` / uncapped).  A pure
    #: speed/memory knob, excluded from search signatures and cache keys.
    max_table_bytes: int | None = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; "
                f"choose from {sorted(OBJECTIVES)}"
            )
        if self.search_order not in (None, "best_first", "legacy"):
            raise ValueError(
                f"unknown search_order {self.search_order!r}; "
                "choose 'best_first' or 'legacy'"
            )
        if self.budget_ms is not None and self.budget_ms < 0:
            raise ValueError(
                f"budget_ms must be >= 0 (milliseconds), got {self.budget_ms!r}"
            )
        if self.kernel_backend is not None:
            from repro.core.backend import check_backend_name

            check_backend_name(self.kernel_backend)
        if self.max_table_bytes is not None and self.max_table_bytes < 1:
            raise ValueError(
                "max_table_bytes must be a positive byte count, "
                f"got {self.max_table_bytes!r}"
            )

    @classmethod
    def fast(cls, **overrides) -> "OptimizerOptions":
        """Coarser discretisation for benchmarks and CI."""
        defaults = dict(
            max_l2_candidates=8,
            keep_allocations=2,
            keep_per_level=3,
            max_parallelism_candidates=2,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def thorough(cls, **overrides) -> "OptimizerOptions":
        defaults = dict(
            max_l2_candidates=32,
            keep_allocations=4,
            keep_per_level=5,
            max_parallelism_candidates=6,
            exhaustive_orders=True,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def with_(self, **overrides) -> "OptimizerOptions":
        return dataclasses.replace(self, **overrides)


@dataclasses.dataclass(frozen=True)
class LayerResult:
    """Best configuration found for one layer.

    ``evaluated`` counts full model evaluations; ``pruned`` counts
    candidates discarded by the cheap objective lower bound before
    evaluation (see :meth:`LayerOptimizer.optimize`).  ``objective`` is the
    objective the search ran under, so :attr:`score` reports the quantity
    the optimizer actually minimised.
    """

    layer: ConvLayer
    best: Evaluation
    evaluated: int
    objective: str = "energy"
    #: Candidates (or whole L2-tile branches, counted per outer order)
    #: discarded by the lower bound without a model evaluation.
    pruned: int = 0
    #: Bound-quality telemetry: did the *first-visited* (parallelism,
    #: L2-tile) block contain the eventual winner?  Under best-first
    #: ordering this measures how often the cheap objective lower bound
    #: ranks the winning block first (the prune's best case).  Tri-state:
    #: results recalled from the persistent cache carry the original
    #: search's value when the record has one, and ``None`` for records
    #: predating the telemetry (the absence is preserved, never coerced).
    first_block_won: bool | None = None
    #: Anytime-search telemetry: upper bound on how far :attr:`score` sits
    #: above the true optimum, computed from the unvisited blocks' lower
    #: bounds when the budget ran out.  ``0.0`` for a budgeted search that
    #: completed; ``None`` when no budget applied (including recalls).
    bound_gap: float | None = None
    #: Did the search stop early because ``options.budget_ms`` ran out?
    #: Exhausted results are best-so-far prefixes and are never cached.
    budget_exhausted: bool = False
    #: Ranked parallelism candidates displaced (not merely truncated) to
    #: keep the canonical default arrangement in the search — see
    #: :meth:`LayerOptimizer._parallelisms`.  Accumulated into
    #: :class:`repro.optimizer.engine.EngineStats`.
    parallelism_displaced: int = 0

    @property
    def score(self) -> float:
        return OBJECTIVES[self.objective](self.best)

    @property
    def considered(self) -> int:
        """Total candidates ranked: evaluated plus bound-pruned."""
        return self.evaluated + self.pruned


def layer_cost_floors(
    layer: ConvLayer, arch: AcceleratorConfig
) -> tuple[float, float, float]:
    """Candidate-independent cost floors of one layer on one machine.

    Returns ``(energy_floor_pj, cycles_floor, static_pj_per_cycle)``:
    every configuration pays the full MACC energy, the unconditional
    ALU-side L0 reads (one input byte per vector round, one weight byte
    per MAC — Section IV-A2), at least ``maccs / peak`` cycles, and the
    machine's leakage for every cycle it runs.  The formulas are shared
    with the real models (:func:`alu_read_bytes`,
    :func:`repro.core.energy_model.static_pj_per_cycle`) so bound and
    model cannot drift apart.
    """
    from repro.core.access_model import alu_read_bytes
    from repro.core.energy_model import static_pj_per_cycle

    maccs = layer.maccs
    inner = arch.num_levels - 1
    input_reads, weight_reads = alu_read_bytes(
        maccs, arch.vector_width, arch.precision
    )
    alu_read_pj = (
        input_reads * arch.read_pj_per_byte(inner, DataType.INPUTS)
        + weight_reads * arch.read_pj_per_byte(inner, DataType.WEIGHTS)
    )
    energy_floor = arch.technology.macc_energy_pj(maccs) + alu_read_pj
    cycles_floor = maccs / arch.peak_maccs_per_cycle
    return energy_floor, cycles_floor, static_pj_per_cycle(arch)


def boundary_dram_bytes(
    layer: ConvLayer,
    arch: AcceleratorConfig,
    l2_tile: TileShape,
    outer_order: LoopOrder,
) -> tuple[float, float]:
    """DRAM ``(read_bytes, write_bytes)`` every candidate sharing this
    last-level tile and outer order must move (the parallelism-independent
    part of :func:`objective_lower_bound`, split out so the search can
    memoise the one expensive traffic-model call per (tile, order) and
    recombine it cheaply with per-parallelism floors)."""
    precision = arch.precision
    profile = boundary_fill_profile(
        layer, TileShape.full(layer), l2_tile, outer_order, precision
    )
    out_psum_bytes = layer.output_elements * precision.psum_bytes
    psum_fill = profile[DataType.PSUMS][1]
    spill = max(0, psum_fill - out_psum_bytes)
    read_bytes = (
        profile[DataType.INPUTS][1]
        + profile[DataType.WEIGHTS][1]
        + spill  # psum re-loads mirror spills
    )
    write_bytes = spill + layer.output_elements * precision.activation_bytes
    return read_bytes, write_bytes


def parallelism_utilization_ceiling(
    arch: AcceleratorConfig,
    parallelism: Parallelism,
    l2_tile: TileShape,
) -> float:
    """Upper bound on the utilization any candidate in one
    (parallelism, L2-tile) block can sustain.

    The real model (:func:`repro.core.performance_model.compute_utilization`)
    multiplies ``degree / total_pes`` by per-dim load-imbalance factors
    ``imbalance(tiles, degree) = tiles / (ceil(tiles/degree) * degree)``
    at the cluster and PE levels, and a vector-lane factor on the
    innermost K tile.  Each factor is bounded above by what the L2 tile
    extents allow:

    * on 3+-level machines the cluster-level tile count is at most the L2
      extent (mid tiles are clipped to their parent), so the cluster
      factor is at most ``min(1, extent / cluster_degree)``; likewise the
      PE-level count is at most the mid-tile extent <= L2 extent.  On
      2-level machines the cluster "parent" is the whole layer, so only
      the PE-level factor (whose parent *is* the L2 tile) is bounded.
    * ``imbalance(t, g) <= min(1, t/g)`` for every ``t``, and the
      vector-lane factor is at most ``min(1, K_extent / Vw)``.

    Maximising each factor independently can only overestimate, so the
    product is a true ceiling: a small tile spread across a high degree
    provably idles PEs no matter how sub-tiles are allocated.  This is
    what differentiates blocks that share an L2 tile but not a
    parallelism — the PR 4 bound could not tell them apart.
    """
    cluster_par, pe_par = split_parallelism(
        parallelism, arch.clusters, arch.pes_per_cluster
    )
    ceiling = parallelism.degree / arch.total_pes
    bound_clusters = arch.num_levels >= 3
    for dim in (Dim.W, Dim.H, Dim.K, Dim.F):
        extent = l2_tile.extent(dim)
        if bound_clusters:
            ceiling *= min(1.0, extent / cluster_par.of(dim))
        ceiling *= min(1.0, extent / pe_par.of(dim))
    ceiling *= min(1.0, l2_tile.extent(Dim.K) / arch.vector_width)
    return ceiling


def parallelism_replication_floor_pj(
    layer: ConvLayer, arch: AcceleratorConfig, parallelism: Parallelism
) -> float:
    """Replication energy every candidate under one parallelism must pay.

    The energy model charges innermost-buffer *writes* at ``fill_bytes *
    replication`` (:func:`repro.core.energy_model.energy_accumulation_kernel`:
    ``dest_bytes = fills * repl[child]``), and every weight element is
    installed into the innermost buffers at least once — weights have no
    halo or stride subtleties, so the total fill can never undercut the
    region.  Spreading parallelism across weight-irrelevant dims (W, H,
    F) therefore multiplies a floor of ``weight_bytes *
    replication(WEIGHTS)`` L0 writes, charged at that level's write cost.
    No other term of the bound counts L0 writes, so the floor is purely
    additive tightening.
    """
    inner = arch.num_levels - 1
    weight_bytes = layer.weight_bytes(arch.precision.weight_bytes)
    return (
        weight_bytes
        * parallelism.replication(DataType.WEIGHTS)
        * arch.write_pj_per_byte(inner, DataType.WEIGHTS)
    )


def bound_from_terms(
    layer: ConvLayer,
    arch: AcceleratorConfig,
    objective: str,
    floors: tuple[float, float, float],
    read_bytes: float,
    write_bytes: float,
    utilization_ceiling: float = 1.0,
    replication_floor_pj: float = 0.0,
) -> float:
    """Combine memoised bound ingredients into one objective lower bound
    (the cheap tail of :func:`objective_lower_bound`)."""
    energy_floor, cycles_floor, static_pj_per_cycle = floors
    tech = arch.technology
    cycles_lb = max(
        cycles_floor / utilization_ceiling,
        (read_bytes + write_bytes)
        / arch.noc.boundary_bandwidth_bytes_per_cycle(0),
    )
    if objective == "latency":
        return cycles_lb
    energy_lb = (
        tech.dram_energy_pj(read_bytes + write_bytes)
        + energy_floor
        + replication_floor_pj
        + static_pj_per_cycle * cycles_lb
    )
    if objective == "energy":
        return energy_lb
    if objective == "edp":
        return energy_lb * 1e-12 * cycles_lb / tech.clock_hz
    if objective == "perf_per_watt":
        return -layer.maccs / (energy_lb * 1e-12)
    raise ValueError(f"no lower bound for objective {objective!r}")


def objective_lower_bound(
    layer: ConvLayer,
    arch: AcceleratorConfig,
    l2_tile: TileShape,
    outer_order: LoopOrder,
    objective: str,
    floors: tuple[float, float, float] | None = None,
    parallelism: Parallelism | None = None,
) -> float:
    """Cheap lower bound on an objective for one (L2 tile, outer order)
    — and, when ``parallelism`` is given, one candidate block.

    Every candidate sharing the last-level tile and outer loop order moves
    at least the DRAM traffic implied by that boundary (parallelism never
    splits the DRAM boundary's loops — clusters and PEs divide the inner
    levels), and additionally pays the candidate-independent floors of
    :func:`layer_cost_floors`:

    * ``energy >= dram_pj + macc_pj + alu_l0_pj + repl_pj + leakage * cycles_lb``,
    * ``cycles >= max(maccs / (peak * util_ceiling), dram_bytes / dram_bandwidth)``,

    with the edp / perf-per-watt bounds derived from those.  The
    parallelism-aware terms — ``util_ceiling`` from
    :func:`parallelism_utilization_ceiling` and ``repl_pj`` from
    :func:`parallelism_replication_floor_pj` — differentiate blocks that
    share an L2 tile but split the machine differently; with
    ``parallelism=None`` they degrade to 1 and 0 and the bound is the
    parallelism-blind PR 4 one.  Only one boundary of the traffic model
    runs — no sub-tile allocation, performance or energy model — so the
    optimizer can discard whole branches of the candidate space without
    evaluating them.
    """
    if floors is None:
        floors = layer_cost_floors(layer, arch)
    read_bytes, write_bytes = boundary_dram_bytes(
        layer, arch, l2_tile, outer_order
    )
    utilization_ceiling = 1.0
    replication_floor = 0.0
    if parallelism is not None:
        utilization_ceiling = parallelism_utilization_ceiling(
            arch, parallelism, l2_tile
        )
        replication_floor = parallelism_replication_floor_pj(
            layer, arch, parallelism
        )
    return bound_from_terms(
        layer, arch, objective, floors, read_bytes, write_bytes,
        utilization_ceiling, replication_floor,
    )


class LayerOptimizer:
    """Searches configurations for single layers on one accelerator."""

    def __init__(
        self,
        arch: AcceleratorConfig,
        options: OptimizerOptions | None = None,
    ) -> None:
        self.arch = arch
        self.options = options or OptimizerOptions()
        self._score = OBJECTIVES[self.options.objective]
        if self.options.vectorize is None:
            from repro.optimizer.engine import default_vectorize

            self.vectorize = default_vectorize()
        else:
            self.vectorize = self.options.vectorize
        if self.vectorize:
            from repro.core import batch

            if not batch.available:
                self.vectorize = False
        if self.options.search_order is None:
            from repro.optimizer.engine import default_search_order

            self.search_order = default_search_order()
        else:
            self.search_order = self.options.search_order
        if self.search_order not in ("best_first", "legacy"):
            raise ValueError(
                f"unknown search_order {self.search_order!r}; "
                "choose 'best_first' or 'legacy'"
            )
        if self.options.budget_ms is None:
            from repro.optimizer.engine import default_budget_ms

            self.budget_ms = default_budget_ms()
        else:
            self.budget_ms = self.options.budget_ms
        if self.options.kernel_backend is None:
            from repro.optimizer.engine import default_kernel_backend

            self.kernel_backend = default_kernel_backend()
        else:
            self.kernel_backend = self.options.kernel_backend
        if self.options.max_table_bytes is None:
            from repro.optimizer.engine import default_max_table_bytes

            self.max_table_bytes = default_max_table_bytes()
        else:
            self.max_table_bytes = self.options.max_table_bytes

    # ------------------------------------------------------------------
    def _outer_orders(self, layer: ConvLayer, l2_tile: TileShape) -> list[LoopOrder]:
        fixed = self.options.fixed_outer_order or self.arch.fixed_outer_order
        if fixed is not None:
            return [fixed]
        orders = loop_order_candidates(
            exhaustive=self.options.exhaustive_orders,
            representative=REPRESENTATIVE_OUTER_ORDERS,
        )
        return dedupe_orders_by_signature(orders, TileShape.full(layer), l2_tile)

    def _inner_orders(self) -> list[LoopOrder]:
        fixed = self.options.fixed_inner_order or self.arch.fixed_inner_order
        if fixed is not None:
            return [fixed]
        return loop_order_candidates(
            exhaustive=self.options.exhaustive_orders,
            representative=REPRESENTATIVE_INNER_ORDERS,
        )

    def _parallelisms(self, layer: ConvLayer) -> tuple[list[Parallelism], int]:
        """Parallelism candidates plus the displacement count.

        The second element counts ranked candidates *displaced* (not merely
        truncated) so the canonical default could take the last kept slot —
        surfaced as :attr:`LayerResult.parallelism_displaced` and rolled up
        into engine stats, so a too-small ``max_parallelism_candidates``
        shows up in telemetry instead of silently shrinking the search.
        """
        fixed = self.options.fixed_parallelism or self.arch.fixed_parallelism
        if fixed is not None:
            return [fixed], 0
        candidates = parallelism_candidates(self.arch, layer)
        # Always keep the canonical arrangement (K across clusters, H
        # across PEs — Morph-base's choice) in the search so a flexible
        # machine can never do worse than the inflexible default.  Append
        # it *before* truncating so the candidate list never exceeds
        # ``max_parallelism_candidates``; if truncation would drop it, it
        # takes the last kept slot (with a budget of 1 that means the
        # default is the whole search — the cap wins over ranking).
        default = Parallelism(k=self.arch.clusters, h=self.arch.pes_per_cluster)
        if default not in candidates:
            candidates = [*candidates, default]
        chosen = candidates[: self.options.max_parallelism_candidates]
        if not chosen:
            return [default], 0
        displaced = 0
        if default not in chosen:
            chosen[-1] = default
            displaced = 1
        assert len(set(chosen)) == len(chosen), (
            f"duplicate parallelism candidates for {layer.name}: {chosen}"
        )
        return chosen, displaced

    def _level_degrees(
        self, parallelism: Parallelism
    ) -> tuple[dict[Dim, int], ...]:
        """Per-level parallel splits capping sub-tile sizes."""
        return parallel_level_degrees(
            self.arch.num_levels,
            self.arch.clusters,
            self.arch.pes_per_cluster,
            parallelism,
        )

    def _bound_closures(
        self,
        layer: ConvLayer,
        floors: tuple[float, float, float],
        parallelisms: list[Parallelism] | tuple[Parallelism, ...],
        l2_tiles: list[TileShape],
    ):
        """Memoised lower-bound closures shared by both search paths.

        Returns ``(outers_for, bound_for, block_bound)``: the deduped
        outer orders of an L2 tile, the objective lower bound of one
        (parallelism, L2-tile, outer-order) branch, and the bound of a
        whole (parallelism, L2-tile) block (its minimum over the tile's
        outer orders).  The expensive traffic-model term is memoised per
        (tile, outer order); the parallelism-aware floors per
        (parallelism, tile) and per parallelism — so tightening the bound
        with :attr:`OptimizerOptions.parallel_floors` costs arithmetic,
        not extra traffic-model runs.
        """
        objective = self.options.objective
        use_floors = self.options.parallel_floors
        outer_memo: dict[TileShape, list[LoopOrder]] = {}
        dram_memo: dict[tuple[TileShape, LoopOrder], tuple[float, float]] = {}
        util_memo: dict[tuple[int, int], float] = {}
        repl_memo: dict[int, float] = {}
        bounds: dict[tuple[int, int, LoopOrder], float] = {}

        def outers_for(l2_tile: TileShape) -> list[LoopOrder]:
            orders = outer_memo.get(l2_tile)
            if orders is None:
                orders = self._outer_orders(layer, l2_tile)
                outer_memo[l2_tile] = orders
            return orders

        def bound_for(p_idx: int, t_idx: int, outer: LoopOrder) -> float:
            key = (p_idx, t_idx, outer)
            bound = bounds.get(key)
            if bound is not None:
                return bound
            l2_tile = l2_tiles[t_idx]
            dram = dram_memo.get((l2_tile, outer))
            if dram is None:
                dram = boundary_dram_bytes(layer, self.arch, l2_tile, outer)
                dram_memo[(l2_tile, outer)] = dram
            utilization_ceiling = 1.0
            replication_floor = 0.0
            if use_floors:
                ceiling = util_memo.get((p_idx, t_idx))
                if ceiling is None:
                    ceiling = parallelism_utilization_ceiling(
                        self.arch, parallelisms[p_idx], l2_tile
                    )
                    util_memo[(p_idx, t_idx)] = ceiling
                utilization_ceiling = ceiling
                repl = repl_memo.get(p_idx)
                if repl is None:
                    repl = parallelism_replication_floor_pj(
                        layer, self.arch, parallelisms[p_idx]
                    )
                    repl_memo[p_idx] = repl
                replication_floor = repl
            bound = bound_from_terms(
                layer, self.arch, objective, floors, *dram,
                utilization_ceiling, replication_floor,
            )
            bounds[key] = bound
            return bound

        def block_bound(p_idx: int, t_idx: int) -> float:
            return min(
                bound_for(p_idx, t_idx, outer)
                for outer in outers_for(l2_tiles[t_idx])
            )

        return outers_for, bound_for, block_bound

    @staticmethod
    def _bound_gap(
        best_score: float,
        remaining: list[tuple[int, int, int]],
        block_bound,
    ) -> float:
        """Optimality-gap certificate when the budget ran out: how far the
        best-so-far score could sit above the true optimum, from the
        unvisited blocks' lower bounds (0.0 when nothing was skipped or
        every skipped block provably cannot win)."""
        if not remaining:
            return 0.0
        lowest = min(
            block_bound(p_idx, t_idx) for _, p_idx, t_idx in remaining
        )
        return max(0.0, best_score - lowest)

    # ------------------------------------------------------------------
    def optimize(self, layer: ConvLayer) -> LayerResult:
        """Find the best configuration for ``layer`` under the objective.

        A cheap per-(L2 tile, outer order) lower bound on the objective
        (:func:`objective_lower_bound`) prunes candidates that provably
        cannot beat the incumbent before the full analytic models run;
        the returned best configuration is identical to an unpruned sweep.

        By default the (parallelism, L2-tile) candidate blocks are visited
        best-first — ascending by each block's objective lower bound
        (:func:`repro.optimizer.space.candidate_blocks`) — so the
        incumbent reaches near-optimal almost immediately and the prune
        discards most of the space.  **The chosen configuration and score
        are bit-identical to the legacy visit order** (and to an unpruned
        sweep): candidates are ranked lexicographically by
        ``(score, legacy enumeration rank)``, so equal-score ties resolve
        by candidate identity no matter when each candidate is visited,
        and the bound only discards candidates that provably lose that
        comparison.  ``options.search_order="legacy"`` restores the
        historical order (for A/B measurement; results are identical).

        With vectorization on (the default), candidates are lowered into
        columnar tables and scored by :mod:`repro.core.batch` — same
        equations, same chosen configuration and score, a fraction of the
        time.  ``evaluated``/``pruned`` counters can differ slightly
        between the two paths because the batch path updates its incumbent
        once per candidate block rather than per candidate.
        """
        if self.vectorize:
            return self._optimize_batch(layer)
        return self._optimize_scalar(layer)

    def _optimize_scalar(self, layer: ConvLayer) -> LayerResult:
        """Pure-Python reference search (``vectorize=False``)."""
        best: Evaluation | None = None
        best_score = float("inf")
        #: Legacy-enumeration rank (block index, row index) of the
        #: incumbent: equal-score ties resolve to the candidate the legacy
        #: order would have met first, independent of visit order.
        best_rank = (float("inf"), float("inf"))
        evaluated = 0
        pruned = 0
        floors = layer_cost_floors(layer, self.arch)

        l2_tiles = last_level_tile_candidates(
            layer, self.arch, max_candidates=self.options.max_l2_candidates
        )
        inner_orders = self._inner_orders()
        parallelisms, displaced = self._parallelisms(layer)

        outers_for, bound_for, block_bound = self._bound_closures(
            layer, floors, parallelisms, l2_tiles
        )

        def can_beat(value: float, block_idx: int, row_idx) -> bool:
            """Could a candidate with lower bound (or score) ``value`` at
            legacy rank ``(block_idx, row_idx)`` displace the incumbent
            under the (score, rank) lexicographic comparison?"""
            if value < best_score:
                return True
            return value == best_score and (block_idx, row_idx) < best_rank

        best_first = self.search_order == "best_first"
        blocks = candidate_blocks(
            parallelisms, l2_tiles, best_first=best_first,
            block_bound=block_bound if best_first else None,
        )

        budget_ms = self.budget_ms
        clock = current_clock() if budget_ms is not None else None
        start = clock() if clock is not None else 0.0
        budget_exhausted = False
        remaining: list[tuple[int, int, int]] = []

        for pos, (block_idx, p_idx, t_idx) in enumerate(blocks):
            # Budget poll — only at block boundaries, and never before a
            # feasible block has completed, so a budgeted result is always
            # a valid best-so-far and an exact *prefix* of the unbudgeted
            # search (bit-identical whenever the budget is not hit).
            if (
                clock is not None
                and best is not None
                and clock() - start >= budget_ms
            ):
                budget_exhausted = True
                remaining = blocks[pos:]
                break
            par = parallelisms[p_idx]
            l2_tile = l2_tiles[t_idx]
            outer_orders = outers_for(l2_tile)
            # Branch-level prune: if no outer order of this block can
            # displace the incumbent, skip the whole sub-tile allocation.
            if not any(
                can_beat(bound_for(p_idx, t_idx, o), block_idx, -1)
                for o in outer_orders
            ):
                pruned += len(outer_orders)
                continue
            level_degrees = self._level_degrees(par)
            row = -1  # legacy row rank within this block
            for inner in inner_orders:
                try:
                    beams = allocate_hierarchy(
                        layer,
                        self.arch,
                        l2_tile,
                        inner,
                        keep_per_level=self.options.keep_per_level,
                        level_degrees=level_degrees,
                    )
                except ValueError:
                    continue
                for tiles in beams[: self.options.keep_allocations]:
                    hierarchy = TileHierarchy(layer, tiles)
                    for outer in outer_orders:
                        row += 1
                        # Per-candidate prune against the (possibly
                        # improved) incumbent.
                        if not can_beat(
                            bound_for(p_idx, t_idx, outer), block_idx, row
                        ):
                            pruned += 1
                            continue
                        dataflow = Dataflow(outer, inner, hierarchy, par)
                        try:
                            ev = evaluate(dataflow, self.arch)
                        except CapacityError:
                            continue
                        evaluated += 1
                        score = self._score(ev)
                        if can_beat(score, block_idx, row):
                            best, best_score = ev, score
                            best_rank = (block_idx, row)

        if best is None:
            raise CapacityError(
                f"no feasible configuration for {layer.name} on {self.arch.name}"
            )
        bound_gap: float | None = None
        if budget_ms is not None:
            bound_gap = self._bound_gap(best_score, remaining, block_bound)
        return LayerResult(
            layer=layer,
            best=best,
            evaluated=evaluated,
            objective=self.options.objective,
            pruned=pruned,
            first_block_won=bool(blocks) and best_rank[0] == blocks[0][0],
            bound_gap=bound_gap,
            budget_exhausted=budget_exhausted,
            parallelism_displaced=displaced,
        )

    def _optimize_batch(self, layer: ConvLayer) -> LayerResult:
        """Columnar search: enumerate candidate tables, score in bulk.

        Enumeration follows the scalar path's nesting exactly — per
        ``(parallelism, L2 tile)`` block the rows run [inner order x
        allocation x outer order], blocks visited best-first by default —
        and ties are broken by legacy enumeration rank exactly as in
        :meth:`_optimize_scalar`, so the chosen configuration and score
        match it bit for bit.  The PR 1 lower-bound prune survives as a
        vectorized mask: branches whose bound cannot displace the
        incumbent are skipped before allocation, rows before evaluation.
        """
        import numpy as np

        from repro.core.batch import CandidateBatch

        objective = self.options.objective
        best_batch: CandidateBatch | None = None
        best_row = -1
        best_score = float("inf")
        #: Legacy-enumeration rank (block index, row index) of the
        #: incumbent — the same tie-break key as the scalar path.
        best_rank = (float("inf"), float("inf"))
        evaluated = 0
        pruned = 0
        #: (level, parent, cap) -> sub-tile candidates, shared across the
        #: inner-order loop (candidate generation is order-independent).
        candidate_memo: dict = {}
        floors = layer_cost_floors(layer, self.arch)

        l2_tiles = last_level_tile_candidates(
            layer,
            self.arch,
            max_candidates=self.options.max_l2_candidates,
            vectorize=True,
        )
        inner_orders = self._inner_orders()
        parallelism_list, displaced = self._parallelisms(layer)
        parallelisms = tuple(parallelism_list)

        #: Stable order registry shared by outer and inner columns.
        order_index: dict[LoopOrder, int] = {}

        def index_of(order: LoopOrder) -> int:
            return order_index.setdefault(order, len(order_index))

        outers_for, bound_for, block_bound = self._bound_closures(
            layer, floors, parallelisms, l2_tiles
        )

        def can_beat(value: float, block_idx: int, row_idx) -> bool:
            if value < best_score:
                return True
            return value == best_score and (block_idx, row_idx) < best_rank

        best_first = self.search_order == "best_first"
        blocks = candidate_blocks(
            parallelisms, l2_tiles, best_first=best_first,
            block_bound=block_bound if best_first else None,
        )

        budget_ms = self.budget_ms
        clock = current_clock() if budget_ms is not None else None
        start = clock() if clock is not None else 0.0
        budget_exhausted = False
        remaining: list[tuple[int, int, int]] = []

        num_levels = self.arch.num_levels
        for pos, (block_idx, p_idx, t_idx) in enumerate(blocks):
            # Budget poll at block boundaries — same contract as the
            # scalar path: a budgeted result is an exact prefix of the
            # unbudgeted search, never returned before a feasible block
            # has completed.
            if (
                clock is not None
                and best_batch is not None
                and clock() - start >= budget_ms
            ):
                budget_exhausted = True
                remaining = blocks[pos:]
                break
            par = parallelisms[p_idx]
            l2_tile = l2_tiles[t_idx]
            outer_orders = outers_for(l2_tile)
            # Branch-level prune, as in the scalar path.
            if not any(
                can_beat(bound_for(p_idx, t_idx, o), block_idx, -1)
                for o in outer_orders
            ):
                pruned += len(outer_orders)
                continue
            level_degrees = self._level_degrees(par)

            rows_tiles: list[tuple[TileShape, ...]] = []
            rows_outer: list[int] = []
            rows_inner: list[int] = []
            rows_rank: list[int] = []
            row = -1  # legacy row rank within this block
            for inner in inner_orders:
                try:
                    beams = allocate_hierarchy(
                        layer,
                        self.arch,
                        l2_tile,
                        inner,
                        keep_per_level=self.options.keep_per_level,
                        level_degrees=level_degrees,
                        vectorize=True,
                        candidate_memo=candidate_memo,
                    )
                except ValueError:
                    continue
                inner_idx = index_of(inner)
                for tiles in beams[: self.options.keep_allocations]:
                    for outer in outer_orders:
                        row += 1
                        # Vectorized-mask analogue of the scalar
                        # per-candidate prune (block-start incumbent).
                        if not can_beat(
                            bound_for(p_idx, t_idx, outer), block_idx, row
                        ):
                            pruned += 1
                            continue
                        rows_tiles.append(tiles)
                        rows_outer.append(index_of(outer))
                        rows_inner.append(inner_idx)
                        rows_rank.append(row)
            if not rows_tiles:
                continue

            n = len(rows_tiles)
            tiles_cols = np.empty((num_levels, 5, n), dtype=np.int64)
            for i, tiles in enumerate(rows_tiles):
                for lvl in range(num_levels):
                    tile = tiles[lvl]
                    tiles_cols[lvl, 0, i] = tile.w
                    tiles_cols[lvl, 1, i] = tile.h
                    tiles_cols[lvl, 2, i] = tile.c
                    tiles_cols[lvl, 3, i] = tile.k
                    tiles_cols[lvl, 4, i] = tile.f
            batch = CandidateBatch(
                layer,
                self.arch,
                tuple(order_index),
                parallelisms,
                tiles_cols,
                np.array(rows_outer, dtype=np.int64),
                np.array(rows_inner, dtype=np.int64),
                np.full(n, p_idx, dtype=np.int64),
            )
            # First minimum wins: among equal scores the lowest table
            # position is kept (ranks increase with position, so that is
            # the lowest legacy rank in this block); ``best`` preserves
            # this across chunk boundaries when ``max_table_bytes`` caps
            # the score table, so chunked and unchunked runs are
            # bit-identical.
            winner, winner_score, finite = batch.best(
                objective,
                kernel_backend=self.kernel_backend,
                max_table_bytes=self.max_table_bytes,
            )
            evaluated += finite
            # The finiteness guard keeps an all-infeasible block (score
            # inf) from tying the initial incumbent via the rank rule.
            if np.isfinite(winner_score) and can_beat(
                winner_score, block_idx, rows_rank[winner]
            ):
                best_batch, best_row = batch, winner
                best_score = winner_score
                best_rank = (block_idx, rows_rank[winner])

        if best_batch is None:
            raise CapacityError(
                f"no feasible configuration for {layer.name} on {self.arch.name}"
            )
        best = best_batch.evaluate_row(best_row)
        if self._score(best) != best_score:
            # Self-check at materialisation: the scalar re-evaluation of
            # the winner must reproduce the batch score bit for bit.  A
            # mismatch means the columnar int64 arithmetic left the scalar
            # path's exact-integer envelope (e.g. overflow on a pathological
            # layer) — fall back to the reference search rather than
            # return a silently mis-ranked configuration.
            return self._optimize_scalar(layer)
        bound_gap: float | None = None
        if budget_ms is not None:
            bound_gap = self._bound_gap(best_score, remaining, block_bound)
        return LayerResult(
            layer=layer,
            best=best,
            evaluated=evaluated,
            objective=objective,
            pruned=pruned,
            first_block_won=bool(blocks) and best_rank[0] == blocks[0][0],
            bound_gap=bound_gap,
            budget_exhausted=budget_exhausted,
            parallelism_displaced=displaced,
        )


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class NetworkResult:
    """Per-layer best configurations plus network-level aggregates."""

    network_name: str
    arch_name: str
    layers: tuple[LayerResult, ...]

    @property
    def total_energy_pj(self) -> float:
        return sum(r.best.total_energy_pj for r in self.layers)

    @property
    def total_cycles(self) -> float:
        return sum(r.best.cycles for r in self.layers)

    @property
    def total_maccs(self) -> int:
        return sum(r.best.traffic.maccs for r in self.layers)

    @property
    def perf_per_watt(self) -> float:
        """Network MACs per joule (energy includes runtime-static)."""
        return self.total_maccs / (self.total_energy_pj * 1e-12)

    def energy_components_pj(self) -> dict[str, float]:
        """Summed Figure 9 components across layers."""
        totals: dict[str, float] = {}
        for result in self.layers:
            for name, pj in result.best.energy.figure9_components().items():
                totals[name] = totals.get(name, 0.0) + pj
        return totals

    def layer_result(self, layer_name: str) -> LayerResult:
        for result in self.layers:
            if result.layer.name == layer_name:
                return result
        raise KeyError(layer_name)


def optimize_network(
    layers: Iterable[ConvLayer],
    arch: AcceleratorConfig,
    options: OptimizerOptions | None = None,
    *,
    network_name: str = "network",
    use_cache: bool | None = None,
    parallelism: int | None = None,
    parallelism_mode: str | None = None,
    cache_dir=None,
    cache_backend=None,
    vectorize: bool | None = None,
    budget_ms: float | None = None,
    kernel_backend: str | None = None,
    max_table_bytes: int | None = None,
) -> NetworkResult:
    """Optimize each layer of a network through the optimizer engine.

    The paper notes these optimizations "need only be performed once per
    CNN" with the configuration saved and recalled (Section V) — the
    engine (:mod:`repro.optimizer.engine`) plays that role: unique layer
    shapes are searched once (duplicates fan the result back out), results
    are memoised in-process keyed on *content* (layers + arch + options,
    never the network name), and, when a cache directory is configured,
    recalled from versioned on-disk configuration files across runs.

    ``parallelism`` > 1 fans unique-layer searches out across worker
    processes — or threads with ``parallelism_mode="thread"`` (the right
    executor on free-threaded builds); ``None`` defers to the engine
    defaults (see :func:`repro.optimizer.engine.set_engine_defaults` /
    ``REPRO_PARALLELISM`` / ``REPRO_PARALLELISM_MODE``).  ``cache_dir``
    likewise defaults to ``REPRO_CACHE_DIR`` when unset, and
    ``cache_backend`` selects the config-store layout — ``"local"``
    (flat directory), ``"sharded"`` (two-level fan-out for cluster-shared
    mounts), ``"memory"`` (in-process), or any
    :class:`~repro.optimizer.config_store.ConfigStore` instance —
    defaulting to ``REPRO_CACHE_BACKEND`` / ``"local"``.
    ``use_cache=False`` disables both the in-process memo and the
    persistent cache (deduplication still applies — it never changes
    results).  ``vectorize`` selects the columnar batch evaluator
    (``None`` defers to the engine default / ``REPRO_VECTORIZE``; results
    are identical either way).  ``budget_ms`` bounds each layer search's
    wall-clock (anytime mode; ``None`` defers to the session /
    ``REPRO_BUDGET_MS`` default — see
    :attr:`OptimizerOptions.budget_ms` for the prefix/bit-identity
    contract).  ``kernel_backend`` picks the kernel-execution backend
    (``"numpy"`` / ``"compiled"``) and ``max_table_bytes`` caps columnar
    table memory via chunked streaming — both pure speed knobs with
    bit-identical results, deferring to ``REPRO_KERNEL_BACKEND`` /
    ``REPRO_MAX_TABLE_BYTES`` when ``None`` (see
    :attr:`OptimizerOptions.kernel_backend` /
    :attr:`OptimizerOptions.max_table_bytes`).

    This function is a compatibility shim over :mod:`repro.api`: the call
    runs through the currently scoped session (or the process default
    session when none is active), so ``with repro.Session(...):`` blocks
    configure it and results are bit-identical to
    :meth:`repro.api.Session.optimize_network`.
    """
    from repro.api import current_session

    return current_session().optimize_network(
        layers,
        arch,
        options,
        network_name=network_name,
        parallelism=parallelism,
        parallelism_mode=parallelism_mode,
        cache_dir=cache_dir,
        cache_backend=cache_backend,
        use_cache=use_cache,
        vectorize=vectorize,
        budget_ms=budget_ms,
        kernel_backend=kernel_backend,
        max_table_bytes=max_table_bytes,
    )


def clear_cache() -> None:
    """Drop every in-process memo (the persistent config store survives).

    Beyond the engine's layer/network memos and the Eyeriss baseline
    cache, this also resets the model-constant memos added for the
    columnar pipeline — the :func:`split_parallelism` divisor search, the
    per-machine energy cost tables and the batch pipeline's constant
    columns — and the kernel-backend state added for the compiled
    backend: the compiled-kernel dispatch memos and chunk-plan caches of
    :mod:`repro.core.backend`, so a cleared process re-JITs (or re-probes
    for a JIT) from scratch.
    """
    from repro.baselines import eyeriss
    from repro.core import backend as kernel_backend
    from repro.core import batch, energy_model, performance_model
    from repro.optimizer import engine

    engine.clear_memory_caches()
    eyeriss.clear_cache()
    performance_model.clear_memos()
    energy_model.clear_memos()
    batch.clear_constant_caches()
    kernel_backend.clear_backend_caches()
