"""Per-layer configuration search (paper Section V).

For every layer the optimizer enumerates [outer order, inner order, last-
level tile, sub-tile allocation, parallelism] configurations, evaluates each
with the analytic models and returns the best under the chosen objective
("it is straightforward to optimize for power or performance or
performance/power", Section V-E).

Inflexible machines reuse the same search with their dataflow pinned:
Morph-base fixes loop orders, static partitions and parallelism but still
sizes tiles per layer (its FSMs are fixed-function *per dataflow*, not per
shape); Eyeriss additionally has only two buffer levels.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable

from repro.arch.accelerator import AcceleratorConfig
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.dims import Dim
from repro.core.evaluate import CapacityError, Evaluation, evaluate
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.performance_model import parallel_level_degrees
from repro.core.tiling import TileHierarchy, TileShape
from repro.optimizer.allocation import allocate_hierarchy
from repro.optimizer.space import (
    REPRESENTATIVE_INNER_ORDERS,
    REPRESENTATIVE_OUTER_ORDERS,
    dedupe_orders_by_signature,
    last_level_tile_candidates,
    loop_order_candidates,
    parallelism_candidates,
)

#: Objective -> scalar score (lower is better).
OBJECTIVES: dict[str, Callable[[Evaluation], float]] = {
    "energy": lambda ev: ev.total_energy_pj,
    "latency": lambda ev: ev.cycles,
    "edp": lambda ev: ev.edp,
    "perf_per_watt": lambda ev: -ev.perf_per_watt,
}


@dataclasses.dataclass(frozen=True)
class OptimizerOptions:
    """Search-effort knobs (the paper's space discretisation)."""

    objective: str = "energy"
    exhaustive_orders: bool = False
    max_l2_candidates: int = 16
    keep_allocations: int = 3
    keep_per_level: int = 4
    max_parallelism_candidates: int = 4
    #: Overrides for motivation-style sweeps (Figure 4 fixes one order and
    #: sweeps everything else).
    fixed_outer_order: LoopOrder | None = None
    fixed_inner_order: LoopOrder | None = None
    fixed_parallelism: Parallelism | None = None

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; "
                f"choose from {sorted(OBJECTIVES)}"
            )

    @classmethod
    def fast(cls, **overrides) -> "OptimizerOptions":
        """Coarser discretisation for benchmarks and CI."""
        defaults = dict(
            max_l2_candidates=8,
            keep_allocations=2,
            keep_per_level=3,
            max_parallelism_candidates=2,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def thorough(cls, **overrides) -> "OptimizerOptions":
        defaults = dict(
            max_l2_candidates=32,
            keep_allocations=4,
            keep_per_level=5,
            max_parallelism_candidates=6,
            exhaustive_orders=True,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def with_(self, **overrides) -> "OptimizerOptions":
        return dataclasses.replace(self, **overrides)


@dataclasses.dataclass(frozen=True)
class LayerResult:
    """Best configuration found for one layer."""

    layer: ConvLayer
    best: Evaluation
    evaluated: int

    @property
    def score(self) -> float:
        return OBJECTIVES["energy"](self.best)


class LayerOptimizer:
    """Searches configurations for single layers on one accelerator."""

    def __init__(
        self,
        arch: AcceleratorConfig,
        options: OptimizerOptions | None = None,
    ) -> None:
        self.arch = arch
        self.options = options or OptimizerOptions()
        self._score = OBJECTIVES[self.options.objective]

    # ------------------------------------------------------------------
    def _outer_orders(self, layer: ConvLayer, l2_tile: TileShape) -> list[LoopOrder]:
        fixed = self.options.fixed_outer_order or self.arch.fixed_outer_order
        if fixed is not None:
            return [fixed]
        orders = loop_order_candidates(
            exhaustive=self.options.exhaustive_orders,
            representative=REPRESENTATIVE_OUTER_ORDERS,
        )
        return dedupe_orders_by_signature(orders, TileShape.full(layer), l2_tile)

    def _inner_orders(self) -> list[LoopOrder]:
        fixed = self.options.fixed_inner_order or self.arch.fixed_inner_order
        if fixed is not None:
            return [fixed]
        return loop_order_candidates(
            exhaustive=self.options.exhaustive_orders,
            representative=REPRESENTATIVE_INNER_ORDERS,
        )

    def _parallelisms(self, layer: ConvLayer) -> list[Parallelism]:
        fixed = self.options.fixed_parallelism or self.arch.fixed_parallelism
        if fixed is not None:
            return [fixed]
        candidates = parallelism_candidates(self.arch, layer)
        chosen = candidates[: self.options.max_parallelism_candidates]
        # Always keep the canonical arrangement (K across clusters, H
        # across PEs — Morph-base's choice) in the search so a flexible
        # machine can never do worse than the inflexible default.
        default = Parallelism(k=self.arch.clusters, h=self.arch.pes_per_cluster)
        if default not in chosen:
            chosen.append(default)
        return chosen

    def _level_degrees(
        self, parallelism: Parallelism
    ) -> tuple[dict[Dim, int], ...]:
        """Per-level parallel splits capping sub-tile sizes."""
        return parallel_level_degrees(
            self.arch.num_levels,
            self.arch.clusters,
            self.arch.pes_per_cluster,
            parallelism,
        )

    # ------------------------------------------------------------------
    def optimize(self, layer: ConvLayer) -> LayerResult:
        """Find the best configuration for ``layer`` under the objective."""
        best: Evaluation | None = None
        best_score = float("inf")
        evaluated = 0

        l2_tiles = last_level_tile_candidates(
            layer, self.arch, max_candidates=self.options.max_l2_candidates
        )
        inner_orders = self._inner_orders()
        parallelisms = self._parallelisms(layer)

        for par in parallelisms:
            level_degrees = self._level_degrees(par)
            for l2_tile in l2_tiles:
                outer_orders = self._outer_orders(layer, l2_tile)
                for inner in inner_orders:
                    try:
                        beams = allocate_hierarchy(
                            layer,
                            self.arch,
                            l2_tile,
                            inner,
                            keep_per_level=self.options.keep_per_level,
                            level_degrees=level_degrees,
                        )
                    except ValueError:
                        continue
                    for tiles in beams[: self.options.keep_allocations]:
                        hierarchy = TileHierarchy(layer, tiles)
                        for outer in outer_orders:
                            dataflow = Dataflow(outer, inner, hierarchy, par)
                            try:
                                ev = evaluate(dataflow, self.arch)
                            except CapacityError:
                                continue
                            evaluated += 1
                            score = self._score(ev)
                            if score < best_score:
                                best, best_score = ev, score

        if best is None:
            raise CapacityError(
                f"no feasible configuration for {layer.name} on {self.arch.name}"
            )
        return LayerResult(layer=layer, best=best, evaluated=evaluated)


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class NetworkResult:
    """Per-layer best configurations plus network-level aggregates."""

    network_name: str
    arch_name: str
    layers: tuple[LayerResult, ...]

    @property
    def total_energy_pj(self) -> float:
        return sum(r.best.total_energy_pj for r in self.layers)

    @property
    def total_cycles(self) -> float:
        return sum(r.best.cycles for r in self.layers)

    @property
    def total_maccs(self) -> int:
        return sum(r.best.traffic.maccs for r in self.layers)

    @property
    def perf_per_watt(self) -> float:
        """Network MACs per joule (energy includes runtime-static)."""
        return self.total_maccs / (self.total_energy_pj * 1e-12)

    def energy_components_pj(self) -> dict[str, float]:
        """Summed Figure 9 components across layers."""
        totals: dict[str, float] = {}
        for result in self.layers:
            for name, pj in result.best.energy.figure9_components().items():
                totals[name] = totals.get(name, 0.0) + pj
        return totals

    def layer_result(self, layer_name: str) -> LayerResult:
        for result in self.layers:
            if result.layer.name == layer_name:
                return result
        raise KeyError(layer_name)


_NETWORK_CACHE: dict[tuple, NetworkResult] = {}


def optimize_network(
    layers: Iterable[ConvLayer],
    arch: AcceleratorConfig,
    options: OptimizerOptions | None = None,
    *,
    network_name: str = "network",
    use_cache: bool = True,
) -> NetworkResult:
    """Optimize each layer of a network; results are memoised in-process.

    The paper notes these optimizations "need only be performed once per
    CNN" with the configuration saved and recalled (Section V) — the cache
    plays that role for the experiment harness.
    """
    layers = tuple(layers)
    options = options or OptimizerOptions()
    key = (network_name, arch.name, options, tuple(layers))
    if use_cache and key in _NETWORK_CACHE:
        return _NETWORK_CACHE[key]
    optimizer = LayerOptimizer(arch, options)
    results = tuple(optimizer.optimize(layer) for layer in layers)
    outcome = NetworkResult(
        network_name=network_name, arch_name=arch.name, layers=results
    )
    if use_cache:
        _NETWORK_CACHE[key] = outcome
    return outcome


def clear_cache() -> None:
    _NETWORK_CACHE.clear()
