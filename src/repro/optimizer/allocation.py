"""Sub-tile memory allocation heuristic (paper Section V-C).

Given a level-``n+1`` tile, ``allocate`` finds level-``n`` sub-tile shapes
such that ``Tmin <= Tn <= Tn+1``, the summed footprints respect the buffer
(policy-aware: static partitions or bank-granular sharing), and ``f_reuse``
— the ratio of compute per byte filled across the boundary — is maximised.

The candidate generator follows the paper: for a D-dimensional tile it
proposes the ``2^D`` corners where each dimension is at its minimum or
maximum, which we extend with geometric midpoints and a greedy
"halve-the-biggest-footprint" ladder so that layers whose corners are all
infeasible still allocate well.
"""

from __future__ import annotations

import itertools
import math

from repro.arch.accelerator import AcceleratorConfig
from repro.core.access_model import boundary_fill_profile
from repro.core.dims import ALL_DIMS, Dim
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import TileShape


def f_reuse(
    layer: ConvLayer,
    parent: TileShape,
    child: TileShape,
    inner_order: LoopOrder,
    arch: AcceleratorConfig,
) -> float:
    """Compute per fill-byte across the boundary (higher is better).

    The paper's ``freuse`` "calculates the ratio of buffer fills (from a
    higher level buffer) to reads and updates (from lower levels)"; we score
    the equivalent compute-per-byte so bigger parents aren't penalised.
    """
    profile = boundary_fill_profile(layer, parent, child, inner_order, arch.precision)
    fill_bytes = sum(bytes_ for _, bytes_ in profile.values())
    return parent.maccs(layer) / max(fill_bytes, 1)


def _mid(lo: int, hi: int) -> int:
    """Geometric midpoint, biased up, clamped to [lo, hi]."""
    return max(lo, min(hi, round(math.sqrt(lo * hi))))


def candidate_sub_tiles(
    layer: ConvLayer,
    arch: AcceleratorConfig,
    level_index: int,
    parent: TileShape,
    *,
    cap: TileShape | None = None,
) -> list[TileShape]:
    """Corner + midpoint + halving-ladder candidates, capacity-filtered.

    ``cap`` bounds each dimension's maximum from above; the search uses it
    to guarantee enough sub-tiles exist along parallelised dims for every
    PE/cluster to receive work (tile sizes and parallelism are co-designed,
    Section V-A's joint configuration vector).
    """
    dims = list(ALL_DIMS)
    bounds = {
        dim: (1, min(parent.extent(dim), cap.extent(dim) if cap else parent.extent(dim)))
        for dim in dims
    }
    candidates: set[tuple[int, ...]] = set()

    # 2^D corners (Section V-C).
    for mask in itertools.product((0, 1), repeat=len(dims)):
        extents = tuple(
            bounds[dim][bit] for dim, bit in zip(dims, mask)
        )
        candidates.add(extents)

    # Geometric midpoints: all-mid, and each dim at max with others mid.
    mid = tuple(_mid(*bounds[dim]) for dim in dims)
    candidates.add(mid)
    for i, dim in enumerate(dims):
        boosted = list(mid)
        boosted[i] = bounds[dim][1]
        candidates.add(tuple(boosted))

    # Halving ladder: from the largest allowed shape, repeatedly halve the
    # dimension contributing most footprint until the tile fits.
    current = {dim: bounds[dim][1] for dim in dims}
    for _ in range(40):
        tile = TileShape.from_mapping(current)
        candidates.add(tuple(current[d] for d in dims))
        if arch.tile_fits(level_index, layer, tile):
            break
        heaviest = max(
            dims,
            key=lambda d: _footprint_gradient(layer, tile, d, arch),
        )
        if current[heaviest] == 1:
            break
        current[heaviest] = math.ceil(current[heaviest] / 2)

    feasible = []
    for extents in candidates:
        tile = TileShape.from_mapping(dict(zip(dims, extents)))
        if arch.tile_fits(level_index, layer, tile):
            feasible.append(tile)
    return feasible


def _footprint_gradient(
    layer: ConvLayer, tile: TileShape, dim: Dim, arch: AcceleratorConfig
) -> int:
    """Bytes freed by halving ``dim`` — used to pick what to shrink."""
    if tile.extent(dim) == 1:
        return -1
    halved = TileShape.from_mapping(
        {d: (math.ceil(tile.extent(d) / 2) if d is dim else tile.extent(d))
         for d in ALL_DIMS}
    )
    return tile.total_bytes(layer, arch.precision) - halved.total_bytes(
        layer, arch.precision
    )


def allocate_level(
    layer: ConvLayer,
    arch: AcceleratorConfig,
    level_index: int,
    parent: TileShape,
    inner_order: LoopOrder,
    *,
    keep: int = 6,
    cap: TileShape | None = None,
) -> list[TileShape]:
    """Top-``keep`` sub-tile shapes for one level by ``f_reuse`` score."""
    feasible = candidate_sub_tiles(layer, arch, level_index, parent, cap=cap)
    if not feasible:
        raise ValueError(
            f"no feasible sub-tile at level {level_index} of {arch.name} "
            f"for {layer.name} (parent {parent.describe()})"
        )
    scored = sorted(
        feasible,
        key=lambda tile: f_reuse(layer, parent, tile, inner_order, arch),
        reverse=True,
    )
    return scored[:keep]


def parallel_caps(
    parent: TileShape, degrees: dict[Dim, int]
) -> TileShape:
    """Largest child tile leaving one sub-tile per parallel worker.

    With ``degrees[d]`` workers splitting the parent along ``d``, the child
    extent must not exceed ``ceil(parent / degree)`` or some workers idle.
    """
    return TileShape.from_mapping(
        {
            dim: max(1, math.ceil(parent.extent(dim) / degrees.get(dim, 1)))
            for dim in ALL_DIMS
        }
    )


def allocate_hierarchy(
    layer: ConvLayer,
    arch: AcceleratorConfig,
    last_level_tile: TileShape,
    inner_order: LoopOrder,
    *,
    keep_per_level: int = 4,
    level_degrees: tuple[dict[Dim, int], ...] | None = None,
) -> list[tuple[TileShape, ...]]:
    """Candidate full hierarchies below a chosen last-level tile.

    Called level by level from ``N-1`` down to 0 as in the paper; at each
    level the best few allocations are kept and expanded (beam search).
    ``level_degrees[i]`` gives the parallel split applied when tiles of
    level ``i`` are distributed (clusters at the middle level, PEs at the
    innermost), which caps tile extents so every worker gets a sub-tile.
    """
    beams: list[tuple[TileShape, ...]] = [(last_level_tile,)]
    for level_index in range(1, arch.num_levels):
        degrees = None
        if level_degrees is not None:
            degrees = level_degrees[level_index]
        new_beams: list[tuple[TileShape, ...]] = []
        for beam in beams:
            parent = beam[-1]
            cap = parallel_caps(parent, degrees) if degrees else None
            try:
                tiles = allocate_level(
                    layer, arch, level_index, parent, inner_order,
                    keep=keep_per_level, cap=cap,
                )
            except ValueError:
                continue
            for tile in tiles:
                new_beams.append(beam + (tile.clipped(parent),))
        if not new_beams:
            raise ValueError(
                f"no feasible allocation below {last_level_tile.describe()} "
                f"for {layer.name} on {arch.name}"
            )
        # Keep the globally best few beams by last-boundary f_reuse.
        new_beams.sort(
            key=lambda b: f_reuse(layer, b[-2], b[-1], inner_order, arch),
            reverse=True,
        )
        beams = new_beams[: max(keep_per_level, 2)]
    return beams
